//! Parameter tuning: sweep (D, K, H) over a sequence and print the
//! trade-off table an application designer would use, ending with the
//! paper's own recommendation.
//!
//! ```sh
//! cargo run --example parameter_tuning [driving1|driving2|tennis|backyard]
//! ```

use mpeg_smooth::prelude::*;
use smooth_metrics::delay_stats;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "driving1".into());
    let video = match which.as_str() {
        "driving1" => driving1(),
        "driving2" => driving2(),
        "tennis" => tennis(),
        "backyard" => backyard(),
        other => {
            eprintln!("unknown sequence {other:?}; pick driving1|driving2|tennis|backyard");
            std::process::exit(2);
        }
    };
    let n = video.pattern.n();
    println!("tuning {} (pattern {}, N = {n})", video.name, video.pattern);

    // --- Sweep the delay bound D at K = 1, H = N (Figure 6's axis).
    println!("\nD sweep (K=1, H=N):");
    println!(
        "{:>8}  {:>9}  {:>8}  {:>10}  {:>9}  {:>10}",
        "D (s)", "area diff", "changes", "max (Mbps)", "SD (kbps)", "max delay"
    );
    for d in [0.0667, 0.1, 0.1333, 0.2, 0.3] {
        let result = smooth(&video, SmootherParams::at_30fps(d, 1, n).expect("feasible"));
        let m = measure(&video, &result);
        let ds = delay_stats(result.delays(), Some(d));
        println!(
            "{:>8.4}  {:>9.4}  {:>8}  {:>10.3}  {:>9.1}  {:>8.1}ms",
            d,
            m.area_difference,
            m.rate_changes,
            m.max_rate_bps / 1e6,
            m.std_dev_bps / 1e3,
            ds.max * 1e3
        );
    }

    // --- Sweep the lookahead H at D = 0.2, K = 1 (Figure 7's axis).
    println!("\nH sweep (D=0.2, K=1):");
    println!(
        "{:>4}  {:>9}  {:>8}  {:>10}  {:>9}",
        "H", "area diff", "changes", "max (Mbps)", "SD (kbps)"
    );
    for h in [1, n / 3, n, 2 * n] {
        let h = h.max(1);
        let result = smooth(
            &video,
            SmootherParams::at_30fps(0.2, 1, h).expect("feasible"),
        );
        let m = measure(&video, &result);
        println!(
            "{:>4}  {:>9.4}  {:>8}  {:>10.3}  {:>9.1}",
            h,
            m.area_difference,
            m.rate_changes,
            m.max_rate_bps / 1e6,
            m.std_dev_bps / 1e3
        );
    }

    // --- Sweep K at constant slack (Figure 8's axis).
    println!("\nK sweep (D = 0.1333 + (K+1)/30, H=N):");
    println!(
        "{:>4}  {:>9}  {:>8}  {:>10}  {:>10}",
        "K", "area diff", "changes", "max (Mbps)", "mean delay"
    );
    for k in [1, 2, 3, 6, 9] {
        let params = SmootherParams::constant_slack(k, n, 1.0 / 30.0);
        let result = smooth(&video, params);
        let m = measure(&video, &result);
        let ds = delay_stats(result.delays(), None);
        println!(
            "{:>4}  {:>9.4}  {:>8}  {:>10.3}  {:>8.1}ms",
            k,
            m.area_difference,
            m.rate_changes,
            m.max_rate_bps / 1e6,
            ds.mean * 1e3
        );
    }

    println!("\nConclusion (matches the paper's §6): use K = 1, H = N, D = 0.2 s.");
    println!("Larger D buys little; larger H only adds rate changes; larger K only adds delay.");
}
