//! Statistical multiplexing: why a network operator wants you to smooth.
//!
//! Eight independent VBR video sources (seed variants of Driving1 with
//! random phases) share a 20 Mbps ATM link with a small cell buffer. We
//! compare the switch's loss ratio when the sources transmit raw encoder
//! output versus when each runs the paper's smoothing algorithm — the
//! claim of the paper's §1/§3 (after refs [10, 11]) made concrete.
//!
//! ```sh
//! cargo run --release --example atm_multiplexing
//! ```

use mpeg_smooth::prelude::*;
use smooth_netsim::{buffer_sweep, MultiplexConfig, SourceMode};
use smooth_trace::SequenceId;

fn main() {
    let params = SmootherParams::at_30fps(0.2, 1, 9).expect("feasible");
    let base = MultiplexConfig {
        sequence: SequenceId::Driving1,
        pictures: 150,
        sources: 8,
        mode: SourceMode::Unsmoothed,
        capacity_bps: 19.0e6,
        buffer_bits: 0.0,
        seed: 2024,
    };

    println!("8 x Driving1 variants -> one 19 Mbps link (nominal load ~0.9)");
    println!();
    println!(
        "{:>14}  {:>12}  {:>12}  {:>9}",
        "buffer (cells)", "raw loss", "smooth loss", "gain"
    );
    // ATM cell = 424 wire bits; sweep realistic switch buffer sizes.
    let cell_bits = 424.0;
    let buffers: Vec<f64> = [64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0]
        .iter()
        .map(|c| c * cell_bits)
        .collect();
    for (buf, raw, smoothed) in buffer_sweep(&base, params, &buffers) {
        let gain = if smoothed > 0.0 {
            raw / smoothed
        } else {
            f64::INFINITY
        };
        println!(
            "{:>14.0}  {:>12.6}  {:>12.6}  {:>8.1}x",
            buf / cell_bits,
            raw,
            smoothed,
            gain
        );
    }
    println!();
    println!("Same sources, same link, same buffer - smoothing removes the");
    println!("picture-scale bursts that small ATM buffers cannot absorb.");
}
