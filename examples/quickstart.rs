//! Quickstart: smooth one of the paper's video sequences and inspect the
//! guarantees.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use mpeg_smooth::prelude::*;

fn main() {
    // One of the four MPEG sequences from the paper's evaluation (§5.1):
    // a fast driving scene, a cut to a close-up, and a cut back.
    let video = driving1();
    println!(
        "sequence : {} ({} pictures, pattern {}, {})",
        video.name,
        video.len(),
        video.pattern,
        video.resolution
    );

    let stats = analyze(&video);
    println!(
        "pictures : I mean {:>7.0} bits   P mean {:>7.0} bits   B mean {:>7.0} bits",
        stats.i.mean, stats.p.mean, stats.b.mean
    );
    println!(
        "rates    : mean {:.2} Mbps, unsmoothed peak {:.2} Mbps ({:.1}x mean)",
        stats.mean_rate_bps / 1e6,
        stats.peak_rate_bps / 1e6,
        stats.peak_to_mean
    );

    // The paper's recommended parameters (§6): K = 1, H = N, D = 0.2 s.
    let params = SmootherParams::recommended(video.pattern.n());
    let result = smooth(&video, params);

    // Theorem 1, audited independently of the algorithm:
    let report = check_theorem1(&result);
    assert!(report.holds(), "Theorem 1 must hold for K >= 1");
    println!(
        "smoothing: D = {:.3} s, K = {}, H = {} -> max delay {:.4} s, {} delay violations",
        params.delay_bound, params.k, params.h, report.max_delay, report.delay_violations
    );

    let m = measure(&video, &result);
    println!(
        "smoothed : max rate {:.2} Mbps, SD {:.0} kbps, {} rate changes, area diff {:.4}",
        m.max_rate_bps / 1e6,
        m.std_dev_bps / 1e3,
        m.rate_changes,
        m.area_difference
    );
    println!(
        "=> peak network allocation cut from {:.2} Mbps to {:.2} Mbps, losslessly,",
        stats.peak_rate_bps / 1e6,
        m.max_rate_bps / 1e6
    );
    println!(
        "   with every picture delivered within {:.0} ms.",
        params.delay_bound * 1e3
    );
}
