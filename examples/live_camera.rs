//! Live capture: drive the streaming interface the way a transport
//! protocol attached to a camera + encoder would (paper Figure 1).
//!
//! Pictures are pushed one at a time as they finish encoding; the
//! smoother emits `notify`-style rate decisions as soon as each becomes
//! decidable (after K further pictures for the earliest ones).
//!
//! ```sh
//! cargo run --example live_camera
//! ```

use mpeg_smooth::prelude::*;

fn main() {
    // "Live" source: the Tennis sequence, whose motion ramps up as the
    // instructor stands — the smoothed rate will track that ramp.
    let video = tennis();
    let params = SmootherParams::at_30fps(0.2, 1, video.pattern.n()).expect("feasible");

    // Live mode: the smoother does not know when the sequence will end.
    let mut smoother = OnlineSmoother::new(params, video.pattern);

    let mut decisions = Vec::new();
    let mut last_rate = f64::NAN;
    println!(
        "{:>7}  {:>4}  {:>11}  {:>9}",
        "picture", "type", "rate (Mbps)", "delay(ms)"
    );
    for &bits in &video.sizes {
        // The encoder finished a picture: hand it to the transport.
        for d in smoother.push(bits) {
            if d.rate != last_rate {
                println!(
                    "{:>7}  {:>4}  {:>11.3}  {:>9.1}",
                    d.index,
                    video.type_of(d.index).to_string(),
                    d.rate / 1e6,
                    d.delay * 1e3
                );
                last_rate = d.rate;
            }
            decisions.push(d);
        }
    }
    // Camera stopped: flush the tail.
    decisions.extend(smoother.finish());

    assert_eq!(decisions.len(), video.len());
    let max_delay = decisions.iter().map(|d| d.delay).fold(0.0f64, f64::max);
    let changes = decisions
        .windows(2)
        .filter(|w| w[1].rate != w[0].rate)
        .count();
    println!("---");
    println!(
        "{} pictures, {} rate changes, max delay {:.1} ms (bound {:.0} ms)",
        decisions.len(),
        changes,
        max_delay * 1e3,
        params.delay_bound * 1e3
    );
    assert!(
        max_delay <= params.delay_bound + 1e-9,
        "Theorem 1 holds in live mode too"
    );
}
