//! Adaptive encoder: smooth a video whose GOP pattern changes mid-stream
//! (paper §4.4: "An MPEG encoder may change the values of M and N
//! adaptively as the scene … changes").
//!
//! The driving video is re-encoded with a short-GOP `(2, 6)` pattern in
//! the fast scenes and the efficient `(3, 9)` pattern in the close-up.
//! The schedule-aware smoother estimates sizes from the most recent
//! picture of the same type; we compare it against naively assuming the
//! pattern never changed.
//!
//! ```sh
//! cargo run --example adaptive_encoder
//! ```

use mpeg_smooth::prelude::*;
use smooth_core::{check_theorem1, smooth_adaptive};
use smooth_trace::adaptive_driving;

fn main() {
    let video = adaptive_driving();
    println!("video    : {} ({} pictures)", video.name, video.len());
    println!("schedule : {}", video.schedule);
    println!("switches : {:?}", video.schedule.switch_points());

    let params = SmootherParams::at_30fps(0.2, 1, 9).expect("feasible");
    let aware = smooth_adaptive(&video, params, RateSelection::Basic);
    let report = check_theorem1(&aware);
    assert!(report.holds(), "Theorem 1 is pattern-agnostic");

    // The naive alternative: pretend the pattern is a constant (2, 6).
    let naive_trace = VideoTrace::new(
        "naive",
        GopPattern::new(2, 6).expect("static"),
        video.resolution,
        video.fps,
        video.sizes.clone(),
    )
    .expect("valid");
    let naive = smooth(&naive_trace, params);

    let stats = |r: &SmoothingResult| {
        let rates: Vec<f64> = r.rates().collect();
        let mean = rates.iter().sum::<f64>() / rates.len() as f64;
        let sd = (rates.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / rates.len() as f64)
            .sqrt();
        let peak = rates.iter().cloned().fold(0.0f64, f64::max);
        (peak, sd, r.rate_changes(), r.max_delay())
    };

    println!();
    println!(
        "{:<20} {:>10} {:>10} {:>8} {:>10}",
        "estimation", "peak Mbps", "SD kbps", "changes", "max delay"
    );
    for (name, r) in [("schedule-aware", &aware), ("fixed-pattern naive", &naive)] {
        let (peak, sd, changes, max_delay) = stats(r);
        println!(
            "{:<20} {:>10.3} {:>10.1} {:>8} {:>8.1}ms",
            name,
            peak / 1e6,
            sd / 1e3,
            changes,
            max_delay * 1e3
        );
    }
    println!();
    println!("Both satisfy the delay bound (Theorem 1 never depended on the");
    println!("pattern), but pattern-aware estimation is smoother: wrong type");
    println!("guesses after a switch inflate the lookahead bounds.");
}
