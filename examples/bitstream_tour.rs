//! Bitstream tour: build a real (structural) MPEG-1 stream from a trace,
//! parse it back, then damage it and watch the decoder resynchronize at
//! slice boundaries — the §2 error behaviour the paper describes.
//!
//! ```sh
//! cargo run --example bitstream_tour
//! ```

use mpeg_smooth::prelude::*;
use smooth_mpeg::bitstream::{
    flip_random_bits, parse_stream, scan_start_codes, write_stream, SequenceHeader, StartCode,
    StreamSpec,
};
use smooth_rng::Rng;

fn main() {
    // A short Driving1 excerpt: 27 pictures (3 GOPs at N = 9).
    let video = driving1().truncated(27);
    let spec = StreamSpec::new(SequenceHeader::vbr(video.resolution), video.pattern);
    let written = write_stream(&spec, &video.sizes, 7);
    println!(
        "wrote {} bytes: {} pictures in transmission order, 3 GOP headers",
        written.bytes.len(),
        written.coded_order.len()
    );

    // Show the reordering the decoder must undo (paper §2).
    let display: String = (0..13).map(|i| video.type_of(i).as_char()).collect();
    let coded: String = written
        .coded_order
        .iter()
        .take(13)
        .map(|&d| video.type_of(d).as_char())
        .collect();
    println!("display order     : {display}...");
    println!("transmission order: {coded}...");

    // Start-code census.
    let mut pictures = 0;
    let mut slices = 0;
    for (_, code) in scan_start_codes(&written.bytes) {
        match code {
            StartCode::Picture => pictures += 1,
            StartCode::Slice(_) => slices += 1,
            _ => {}
        }
    }
    println!("start codes       : {pictures} pictures, {slices} slices");

    // Clean parse: every picture recovered, sizes match the trace.
    let parsed = parse_stream(&written.bytes);
    assert!(parsed.is_clean());
    let recovered = parsed.display_order_sizes();
    let matches = recovered
        .iter()
        .zip(&video.sizes)
        .filter(|(have, want)| **have == (**want / 8) * 8)
        .count();
    println!(
        "clean parse       : {}/{} picture sizes recovered exactly",
        matches,
        video.len()
    );

    // Now the §2 experiment, part 1: random channel errors. Nearly all
    // land in (opaque) macroblock payload — harmless to the *structure* —
    // which is itself the point: headers are a tiny, vulnerable fraction.
    println!();
    for n_flips in [10usize, 1_000, 10_000] {
        let mut damaged = written.bytes.clone();
        flip_random_bits(
            &mut damaged,
            n_flips,
            &mut Rng::seed_from_u64(n_flips as u64),
        );
        let parsed = parse_stream(&damaged);
        let total_slices: usize = parsed.pictures.iter().map(|p| p.slices.len()).sum();
        println!(
            "{:>5} random bit errors -> {:>2} pictures, {:>3}/{} slices, {:>2} issues logged",
            n_flips,
            parsed.pictures.len(),
            total_slices,
            slices,
            parsed.issues.len()
        );
    }

    // Part 2: targeted header damage — zero the header byte of the first
    // slice of k pictures and watch the decoder drop exactly those slices
    // and resynchronize at the next start code.
    println!();
    for k in [1usize, 5, 20] {
        let mut damaged = written.bytes.clone();
        let mut hit = 0;
        for (at, code) in scan_start_codes(&written.bytes) {
            if let StartCode::Slice(1) = code {
                damaged[at + 4] = 0x00; // quantizer_scale = 0: invalid
                hit += 1;
                if hit == k {
                    break;
                }
            }
        }
        let parsed = parse_stream(&damaged);
        let total_slices: usize = parsed.pictures.iter().map(|p| p.slices.len()).sum();
        println!(
            "{:>5} corrupted slice headers -> {}/{} slices survive, {} issues, all pictures intact: {}",
            k,
            total_slices,
            slices,
            parsed.issues.len(),
            parsed.pictures.len() == video.len()
        );
    }
    println!();
    println!("Damage is contained: the parser skips to the next start code and");
    println!("resumes - one or more slices are lost, never the whole stream (paper §2).");
}
