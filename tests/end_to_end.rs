//! End-to-end pipeline: scene script → synthetic encoder → real MPEG-1
//! bitstream → resynchronizing parser → trace → smoothing algorithm →
//! Theorem 1 audit → metrics → ATM packetizer → cell multiplexer.
//!
//! Every crate of the workspace participates; the sizes that reach the
//! smoother are the ones *measured from the coded bitstream*, not the
//! generator's bookkeeping.

use mpeg_smooth::prelude::*;
use smooth_mpeg::bitstream::{parse_strict, write_stream, SequenceHeader, StreamSpec};
use smooth_netsim::{cell_times, CellMux, CELL_PAYLOAD_BITS};

#[test]
fn full_pipeline_driving1() {
    // 1. Synthetic encode (the trace is the encoder's declared output).
    let declared = driving1().truncated(90);

    // 2. Write a structurally real MPEG-1 stream with those picture sizes.
    let spec = StreamSpec::new(SequenceHeader::vbr(declared.resolution), declared.pattern);
    let written = write_stream(&spec, &declared.sizes, 99);

    // 3. Parse it back and measure the actual coded sizes.
    let parsed = parse_strict(&written.bytes).expect("clean stream");
    assert_eq!(parsed.pictures.len(), declared.len());
    let measured_sizes = parsed.display_order_sizes();
    for (have, want) in measured_sizes.iter().zip(&declared.sizes) {
        assert_eq!(
            *have,
            (want / 8) * 8,
            "parser must recover the written size"
        );
    }

    // 4. Build the trace the transport layer would see.
    let video = VideoTrace::new(
        "Driving1-from-bitstream",
        declared.pattern,
        declared.resolution,
        declared.fps,
        measured_sizes,
    )
    .expect("valid measured trace");

    // 5. Smooth with the paper's recommended parameters.
    let params = SmootherParams::recommended(video.pattern.n());
    let result = smooth(&video, params);

    // 6. Audit Theorem 1 on the real (bitstream-measured) sizes.
    let report = check_theorem1(&result);
    assert!(report.holds(), "{report:?}");

    // 7. Metrics: the smoothed peak must sit far below the unsmoothed one.
    let m = measure(&video, &result);
    assert!(m.max_rate_bps < 0.55 * video.peak_picture_rate_bps());

    // 8. Packetize the smoothed schedule into ATM cells.
    let cells = cell_times(&result.rate_segments());
    let expected_cells = (video.total_bits() as f64 / CELL_PAYLOAD_BITS).ceil() as usize;
    assert_eq!(cells.len(), expected_cells, "every bit rides in a cell");

    // 9. Feed a cell-granular switch provisioned at the smoothed peak:
    // zero drops with a small buffer.
    let mux = CellMux {
        capacity_bps: 1.25 * m.max_rate_bps,
        buffer_cells: 64,
    };
    let stats = mux.run(&cells);
    assert_eq!(
        stats.dropped_cells, 0,
        "provisioning at the smoothed peak suffices"
    );

    // 10. The same switch fed by the UNSMOOTHED sender drops cells: this
    // is the whole point of the paper.
    let raw_cells = cell_times(&unsmoothed(&video).segments);
    let raw_stats = mux.run(&raw_cells);
    assert!(
        raw_stats.dropped_cells > 0,
        "unsmoothed bursts must overflow a switch provisioned for smoothed traffic"
    );
}

#[test]
fn full_pipeline_all_sequences_smoke() {
    for declared in paper_sequences() {
        let declared = declared.truncated(3 * declared.pattern.n());
        let spec = StreamSpec::new(SequenceHeader::vbr(declared.resolution), declared.pattern);
        let written = write_stream(&spec, &declared.sizes, 5);
        let parsed = parse_strict(&written.bytes).expect("clean stream");
        let video = VideoTrace::new(
            declared.name.clone(),
            declared.pattern,
            declared.resolution,
            declared.fps,
            parsed.display_order_sizes(),
        )
        .expect("valid");
        let params = SmootherParams::recommended(video.pattern.n());
        let result = smooth(&video, params);
        assert!(check_theorem1(&result).holds(), "{}", video.name);
    }
}

#[test]
fn streaming_transport_over_bitstream_arrivals() {
    // The online smoother fed by sizes measured picture-by-picture from
    // the coded stream, in display order, as a receiver-side transport
    // would do for a stored file.
    let declared = tennis().truncated(54);
    let spec = StreamSpec::new(SequenceHeader::vbr(declared.resolution), declared.pattern);
    let written = write_stream(&spec, &declared.sizes, 3);
    let parsed = parse_strict(&written.bytes).expect("clean");
    let sizes = parsed.display_order_sizes();

    let params = SmootherParams::at_30fps(0.2, 1, 9).unwrap();
    let mut online = OnlineSmoother::for_stored(params, declared.pattern, sizes.len());
    let mut schedule = Vec::new();
    for &s in &sizes {
        schedule.extend(online.push(s));
    }
    schedule.extend(online.finish());
    assert_eq!(schedule.len(), sizes.len());
    let max_delay = schedule.iter().map(|p| p.delay).fold(0.0f64, f64::max);
    assert!(max_delay <= params.delay_bound + 1e-9);
}
