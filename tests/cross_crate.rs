//! Cross-crate interactions and the ablation experiments DESIGN.md calls
//! out (X-mod: moving-average selection; estimator choice; K = N vs ideal
//! smoothing).

use mpeg_smooth::prelude::*;
use smooth_core::{smooth_with, OracleEstimator, TypeDefaultEstimator};
use smooth_metrics::{baseline_rate_function, rate_function};
use smooth_trace::{from_csv, to_csv};

const TAU: f64 = 1.0 / 30.0;

/// X-mod ablation (paper §4.4): the moving-average variant makes *more,
/// smaller* rate changes and tracks ideal smoothing more closely — a
/// smaller area difference — on every paper sequence.
#[test]
fn moving_average_tracks_ideal_more_closely() {
    let est = PatternEstimator::default();
    for video in paper_sequences() {
        let n = video.pattern.n();
        let params = SmootherParams::at_30fps(0.2, 1, n).unwrap();
        let basic = smooth_with(&video, params, &est, RateSelection::Basic);
        let ma = smooth_with(&video, params, &est, RateSelection::MovingAverage);

        let m_basic = measure(&video, &basic);
        let m_ma = measure(&video, &ma);

        assert!(
            m_ma.rate_changes > m_basic.rate_changes,
            "{}: MA should change rate more often ({} vs {})",
            video.name,
            m_ma.rate_changes,
            m_basic.rate_changes
        );
        assert!(
            m_ma.area_difference < m_basic.area_difference,
            "{}: MA should have smaller area difference ({} vs {})",
            video.name,
            m_ma.area_difference,
            m_basic.area_difference
        );
    }
}

/// Estimator ablation: on the paper's own measure — area difference to
/// the ideal rate function — the pattern estimator (S_{j−N}) beats fixed
/// type defaults, and the oracle beats both, on EVERY paper sequence.
/// All three satisfy the delay bound (Theorem 1 does not need estimates).
#[test]
fn estimator_quality_only_affects_smoothness() {
    for video in paper_sequences() {
        let n = video.pattern.n();
        let params = SmootherParams::at_30fps(0.2, 1, n).unwrap();

        let pattern_est = PatternEstimator::default();
        let default_est = TypeDefaultEstimator::default();
        let oracle_est = OracleEstimator {
            sizes: video.sizes.clone(),
        };

        let r_pattern = smooth_with(&video, params, &pattern_est, RateSelection::Basic);
        let r_default = smooth_with(&video, params, &default_est, RateSelection::Basic);
        let r_oracle = smooth_with(&video, params, &oracle_est, RateSelection::Basic);

        for (name, r) in [
            ("pattern", &r_pattern),
            ("default", &r_default),
            ("oracle", &r_oracle),
        ] {
            assert_eq!(r.delay_violations(), 0, "{}/{name}", video.name);
            assert!(r.continuous_service(), "{}/{name}", video.name);
        }

        let area = |r: &SmoothingResult| measure(&video, r).area_difference;
        assert!(
            area(&r_pattern) < area(&r_default),
            "{}: pattern memory should beat fixed defaults: {} vs {}",
            video.name,
            area(&r_pattern),
            area(&r_default)
        );
        assert!(
            area(&r_oracle) < area(&r_pattern),
            "{}: the oracle should track ideal most closely: {} vs {}",
            video.name,
            area(&r_oracle),
            area(&r_pattern)
        );
    }
}

/// Paper §5.2: "For K = H = N = 9, the smoothing algorithm does not
/// estimate picture sizes. In this case, the basic algorithm is very
/// similar to ideal smoothing." — the two rate functions nearly coincide
/// after alignment.
#[test]
fn k_equals_n_approaches_ideal_smoothing() {
    let video = driving1();
    let n = video.pattern.n();
    let params = SmootherParams::constant_slack(n, n, TAU); // K = H = N
    let result = smooth(&video, params);
    assert_eq!(result.delay_violations(), 0);

    let r = rate_function(&result);
    let ideal = baseline_rate_function(&ideal_smooth(&video));
    // Align: the algorithm starts (N - K)·τ = 0 earlier than ideal here
    // (K = N), so no shift is needed.
    let t_end = video.duration();
    let diff = r.integrate_with(&ideal, 0.5, t_end, |a, b| (a - b).abs());
    let mass = ideal.integral(0.5, t_end);
    let rel = diff / mass;
    assert!(
        rel < 0.15,
        "K=N should nearly reproduce ideal smoothing: rel diff {rel}"
    );
}

/// The ideal-smoothing rate levels equal the trace's pattern rates.
#[test]
fn ideal_levels_match_pattern_rates() {
    let video = backyard();
    let ideal = ideal_smooth(&video);
    let rates = video.pattern_rates_bps();
    // Sample the ideal rate function in the middle of each pattern slot.
    let f = baseline_rate_function(&ideal);
    let n_tau = video.pattern.n() as f64 * TAU;
    for (p, &want) in rates.iter().enumerate() {
        let t = (p as f64 + 1.5) * n_tau; // inside pattern p's send window
        let have = f.value_at(t);
        assert!(
            (have / want - 1.0).abs() < 1e-9,
            "pattern {p}: ideal sends at {have}, pattern rate {want}"
        );
    }
}

/// Traces survive a CSV round trip through the io layer and still smooth
/// to identical schedules.
#[test]
fn csv_roundtrip_preserves_smoothing() {
    for video in paper_sequences() {
        let csv = to_csv(&video);
        let back = from_csv(&csv).expect("roundtrip");
        assert_eq!(back, video);
        let params = SmootherParams::recommended(video.pattern.n());
        assert_eq!(smooth(&video, params), smooth(&back, params));
    }
}

/// The four sequences each stress a different code path; make sure the
/// recommended configuration works on ALL of them with one call.
#[test]
fn recommended_params_work_everywhere() {
    for video in paper_sequences() {
        let params = SmootherParams::recommended(video.pattern.n());
        let result = smooth(&video, params);
        let report = check_theorem1(&result);
        assert!(report.holds(), "{}: {report:?}", video.name);
        // And produce a genuinely smooth output: SD under a third of the
        // mean rate.
        let m = measure(&video, &result);
        assert!(
            m.std_dev_bps < video.mean_rate_bps() / 3.0 + 1.0,
            "{}: SD {} vs mean {}",
            video.name,
            m.std_dev_bps,
            video.mean_rate_bps()
        );
    }
}

/// Rate functions produced by the algorithm integrate to the trace's
/// total bits even when converted through the metrics layer.
#[test]
fn metrics_rate_function_conserves_bits() {
    let video = driving2();
    let params = SmootherParams::recommended(video.pattern.n());
    let result = smooth(&video, params);
    let f = rate_function(&result);
    let sent = f.integral(f.domain_start(), f.domain_end());
    assert!((sent / video.total_bits() as f64 - 1.0).abs() < 1e-9);
}
