//! Shape-level reproduction of the paper's Figures 4–8.
//!
//! Absolute numbers come from synthetic traces (DESIGN.md §2), so these
//! tests assert the *shapes* the paper reports: who improves with which
//! parameter, where the knees fall, and which guarantees never break.

use mpeg_smooth::prelude::*;
use smooth_metrics::delay_stats;

const TAU: f64 = 1.0 / 30.0;

fn measures_for(trace: &VideoTrace, d: f64, k: usize, h: usize) -> SmoothnessMeasures {
    let params = SmootherParams::at_30fps(d, k, h).expect("feasible test parameters");
    let result = smooth(trace, params);
    assert_eq!(
        result.delay_violations(),
        0,
        "Theorem 1 must hold (D={d}, K={k}, H={h})"
    );
    measure(trace, &result)
}

/// Figure 4: for Driving1 at K=1, H=9, smoothness improves as D is
/// relaxed — and the improvement from 0.2 to 0.3 is marginal compared to
/// the improvement from 0.1 to 0.2.
#[test]
fn fig4_smoothness_improves_with_d_then_saturates() {
    let trace = driving1();
    let m01 = measures_for(&trace, 0.1, 1, 9);
    let m02 = measures_for(&trace, 0.2, 1, 9);
    let m03 = measures_for(&trace, 0.3, 1, 9);

    // Monotone improvement in SD and max rate.
    assert!(
        m02.std_dev_bps < m01.std_dev_bps,
        "{} !< {}",
        m02.std_dev_bps,
        m01.std_dev_bps
    );
    // Saturation: by D = 0.2 the SD has bottomed out (±6% wiggle room —
    // the paper likewise notes no significant change past 0.2).
    assert!(m03.std_dev_bps <= m02.std_dev_bps * 1.06);
    assert!(m02.max_rate_bps <= m01.max_rate_bps);
    assert!(m03.max_rate_bps <= m02.max_rate_bps * 1.001);

    // Diminishing returns: the 0.2 -> 0.3 gain is smaller than the
    // 0.1 -> 0.2 gain ("the improvement in smoothness from D = 0.2 to
    // D = 0.3 is not significant", §5.2).
    let gain_12 = m01.std_dev_bps - m02.std_dev_bps;
    let gain_23 = m02.std_dev_bps - m03.std_dev_bps;
    assert!(
        gain_23 < gain_12,
        "expected diminishing returns: gain(0.1->0.2)={gain_12}, gain(0.2->0.3)={gain_23}"
    );
}

/// Figure 4 (continued): even at D = 0.1 the smoothed rate function is far
/// tamer than the encoder output, whose largest I picture would need over
/// 6 Mbps to send in one period (§1, §5.2).
#[test]
fn fig4_even_tight_d_beats_unsmoothed() {
    let trace = driving1();
    let m = measures_for(&trace, 0.1, 1, 9);
    let unsmoothed_peak = trace.peak_picture_rate_bps();
    assert!(
        unsmoothed_peak > 6.0e6,
        "paper: I pictures need >6 Mbps unsmoothed"
    );
    assert!(
        m.max_rate_bps < 0.6 * unsmoothed_peak,
        "smoothed max {} should be far below unsmoothed {}",
        m.max_rate_bps,
        unsmoothed_peak
    );
}

/// Figure 5 (left): delays bounded by D for the algorithm; ideal smoothing
/// delays are much larger.
#[test]
fn fig5_delay_comparison_with_ideal() {
    let trace = driving1();
    for d in [0.1, 0.3] {
        let result = smooth(&trace, SmootherParams::at_30fps(d, 1, 9).unwrap());
        let stats = delay_stats(result.delays(), Some(d));
        assert_eq!(stats.over_bound, 0, "D={d}");
        assert!(stats.max <= d + 1e-9);
    }
    let ideal = ideal_smooth(&trace);
    let ideal_stats = delay_stats(ideal.delays(), None);
    // N = 9 at 30 pictures/s: ideal buffers a whole pattern, so delays sit
    // well above 0.3 s for the first pictures of each pattern.
    assert!(
        ideal_stats.max > 0.3,
        "ideal smoothing delay should dwarf the bound: max {}",
        ideal_stats.max
    );
    assert!(ideal_stats.mean > 0.2);
}

/// Figure 5 (right): at constant slack D = 0.1333 + (K+1)/30, K = 9 incurs
/// visibly larger delays than K = 1 — the reason the paper recommends
/// K = 1.
#[test]
fn fig5_k1_has_smaller_delays_than_k9() {
    let trace = driving1();
    let r1 = smooth(&trace, SmootherParams::constant_slack(1, 9, TAU));
    let r9 = smooth(&trace, SmootherParams::constant_slack(9, 9, TAU));
    let d1 = delay_stats(r1.delays(), None);
    let d9 = delay_stats(r9.delays(), None);
    assert!(
        d9.mean > d1.mean + 0.1,
        "K=9 mean delay {} should exceed K=1 mean delay {} by ~(K-1)τ",
        d9.mean,
        d1.mean
    );
    // Both satisfy their own bounds.
    assert_eq!(r1.delay_violations(), 0);
    assert_eq!(r9.delay_violations(), 0);
}

/// Figure 6: all four measures improve (weakly) as D grows, on all four
/// sequences; Backyard is the easiest to smooth; max smoothed rates are
/// ~3 Mbps for the VGA sequences and ~1.5 Mbps for Backyard.
#[test]
fn fig6_measures_vs_d_all_sequences() {
    let ds = [0.0667, 0.1, 0.1333, 0.2, 0.3];
    for trace in paper_sequences() {
        let h = trace.pattern.n();
        let ms: Vec<SmoothnessMeasures> =
            ds.iter().map(|&d| measures_for(&trace, d, 1, h)).collect();
        // Endpoint-to-endpoint improvement in every continuous measure.
        let first = ms.first().unwrap();
        let last = ms.last().unwrap();
        assert!(
            last.std_dev_bps < first.std_dev_bps,
            "{}: SD should fall with D ({} -> {})",
            trace.name,
            first.std_dev_bps,
            last.std_dev_bps
        );
        assert!(
            last.max_rate_bps <= first.max_rate_bps,
            "{}: max rate",
            trace.name
        );
        assert!(
            last.area_difference <= first.area_difference + 0.01,
            "{}: area",
            trace.name
        );
        // Max rate is weakly monotone along the whole sweep.
        for w in ms.windows(2) {
            assert!(
                w[1].max_rate_bps <= w[0].max_rate_bps * 1.005,
                "{}: max-rate not monotone in D",
                trace.name
            );
        }
    }

    // Absolute levels at D = 0.2 (the paper's §5.2 observations).
    let at_02: Vec<(String, SmoothnessMeasures)> = paper_sequences()
        .into_iter()
        .map(|t| {
            let n = t.pattern.n();
            let m = measures_for(&t, 0.2, 1, n);
            (t.name.clone(), m)
        })
        .collect();
    for (name, m) in &at_02 {
        if name == "Backyard" {
            assert!(
                (0.9e6..2.0e6).contains(&m.max_rate_bps),
                "Backyard max smoothed rate ~1.5 Mbps, got {}",
                m.max_rate_bps
            );
        } else {
            assert!(
                (1.8e6..3.6e6).contains(&m.max_rate_bps),
                "{name} max smoothed rate ~3 Mbps, got {}",
                m.max_rate_bps
            );
        }
    }
    // Backyard is the easiest to smooth: lowest normalized SD.
    let norm_sd = |m: &SmoothnessMeasures| m.std_dev_bps / m.max_rate_bps;
    let backyard = at_02.iter().find(|(n, _)| n == "Backyard").unwrap();
    for (name, m) in &at_02 {
        if name != "Backyard" {
            assert!(
                norm_sd(&backyard.1) < norm_sd(m),
                "Backyard should smooth easiest ({} vs {name})",
                norm_sd(&backyard.1)
            );
        }
    }
}

/// Figure 7: no noticeable improvement for H beyond N, and the number of
/// rate changes *increases* with H.
#[test]
fn fig7_lookahead_beyond_pattern_is_useless() {
    for trace in paper_sequences() {
        let n = trace.pattern.n();
        let at_n = measures_for(&trace, 0.2, 1, n);
        let at_2n = measures_for(&trace, 0.2, 1, 2 * n);
        // Area difference and SD do not meaningfully improve past H = N.
        assert!(
            at_2n.area_difference > at_n.area_difference - 0.02,
            "{}: area diff should not improve past H=N ({} vs {})",
            trace.name,
            at_n.area_difference,
            at_2n.area_difference
        );
        assert!(
            at_2n.std_dev_bps > at_n.std_dev_bps * 0.9,
            "{}: SD should not improve much past H=N",
            trace.name
        );
    }
    // Rate changes grow with H (paper: "the number of rate changes
    // increases as H increases") - check on Driving1 across a sweep.
    let trace = driving1();
    let changes: Vec<usize> = [3usize, 9, 18]
        .iter()
        .map(|&h| measures_for(&trace, 0.2, 1, h).rate_changes)
        .collect();
    assert!(
        changes[2] >= changes[1],
        "rate changes should not fall as H grows past N: {changes:?}"
    );
}

/// Figure 8: at constant slack, increasing K barely improves smoothness —
/// "a small improvement as K increases, but barely noticeable" — so K = 1
/// is the right choice.
#[test]
fn fig8_k_barely_matters_at_constant_slack() {
    for trace in paper_sequences() {
        let n = trace.pattern.n();
        let m1 = {
            let p = SmootherParams::constant_slack(1, n, TAU);
            let r = smooth(&trace, p);
            assert_eq!(r.delay_violations(), 0);
            measure(&trace, &r)
        };
        let m9 = {
            let p = SmootherParams::constant_slack(9.min(n), n, TAU);
            let r = smooth(&trace, p);
            assert_eq!(r.delay_violations(), 0);
            measure(&trace, &r)
        };
        // K=9 may be a little smoother, but not dramatically so - the
        // improvement does not justify the extra (K-1)τ of delay.
        assert!(
            m9.std_dev_bps > 0.5 * m1.std_dev_bps,
            "{}: K=9 should NOT be dramatically smoother (K1 SD {}, K9 SD {})",
            trace.name,
            m1.std_dev_bps,
            m9.std_dev_bps
        );
    }
}

/// §5.2: "No delay bound violation has been observed in any of our
/// experiments where K >= 1" — swept across the full parameter grid of
/// Figures 6-8 on all four sequences.
#[test]
fn no_violation_anywhere_in_the_paper_grid() {
    for trace in paper_sequences() {
        let n = trace.pattern.n();
        for d in [0.0667, 0.1, 0.2, 0.3] {
            for k in [1usize, 2, 3] {
                if d < (k as f64 + 1.0) * TAU {
                    continue;
                }
                for h in [1usize, n, 2 * n] {
                    let r = smooth(&trace, SmootherParams::at_30fps(d, k, h).unwrap());
                    assert_eq!(
                        r.delay_violations(),
                        0,
                        "{}: violation at D={d} K={k} H={h}",
                        trace.name
                    );
                    assert!(
                        r.continuous_service(),
                        "{}: idle at D={d} K={k} H={h}",
                        trace.name
                    );
                }
            }
        }
    }
}
