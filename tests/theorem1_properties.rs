//! Property-based verification of Theorem 1 and the core invariants.
//!
//! The paper *proves* that for `K ≥ 1` and `D ≥ (K+1)τ` the algorithm
//! satisfies the delay bound and continuous service for every input.
//! These properties quantify over random traces and random feasible
//! parameters, so any implementation drift from the theorem shows up as a
//! counterexample, not a hunch.

use proptest::prelude::*;
use smooth_core::{
    check_theorem1, ott_smooth, smooth, smooth_streaming, smooth_with, PatternEstimator,
    RateSelection, SmootherParams, TypeDefaultEstimator,
};
use smooth_metrics::StepFunction;
use smooth_mpeg::{GopPattern, PictureType, Resolution};
use smooth_trace::VideoTrace;

const TAU: f64 = 1.0 / 30.0;

/// Strategy: a random trace with a random regular pattern and wildly
/// varying picture sizes (1 kbit .. 1 Mbit).
fn arb_trace() -> impl Strategy<Value = VideoTrace> {
    let patterns = prop_oneof![
        Just((3usize, 9usize)),
        Just((2, 6)),
        Just((3, 12)),
        Just((1, 5)),
        Just((1, 1)),
        Just((4, 12)),
        Just((2, 2)),
    ];
    (patterns, 1usize..120)
        .prop_flat_map(|((m, n), len)| {
            (
                Just((m, n)),
                proptest::collection::vec(1_000u64..1_000_000, len),
            )
        })
        .prop_map(|((m, n), sizes)| {
            VideoTrace::new(
                "prop",
                GopPattern::new(m, n).expect("regular"),
                Resolution::VGA,
                30.0,
                sizes,
            )
            .expect("positive sizes")
        })
}

/// Strategy: feasible parameters for a given K range, sometimes with a
/// channel rate grid (the snapped rate must keep every guarantee).
fn arb_params() -> impl Strategy<Value = SmootherParams> {
    (
        1usize..=6,
        1usize..=20,
        0.0f64..0.4,
        proptest::option::of(1_000.0f64..500_000.0),
    )
        .prop_map(|(k, h, extra_slack, grid)| {
            let d = (k as f64 + 1.0) * TAU + extra_slack;
            let p = SmootherParams::new(d, k, h, TAU).expect("feasible by construction");
            match grid {
                Some(g) => p.with_rate_grid(g),
                None => p,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Theorem 1, full strength: delay bound, continuous service, rate
    /// bounds, and no underflow, for every random (trace, params) pair
    /// with K >= 1.
    #[test]
    fn theorem1_holds_for_all_feasible_configs(trace in arb_trace(), params in arb_params()) {
        let result = smooth(&trace, params);
        let report = check_theorem1(&result);
        prop_assert!(report.holds(), "violation: {report:?} (params {params:?})");
    }

    /// The same, under the moving-average rate selection (eq. 15): the
    /// modification never endangers the theorem.
    #[test]
    fn theorem1_holds_for_moving_average(trace in arb_trace(), params in arb_params()) {
        let est = PatternEstimator::default();
        let result = smooth_with(&trace, params, &est, RateSelection::MovingAverage);
        let report = check_theorem1(&result);
        prop_assert!(report.holds(), "violation: {report:?}");
    }

    /// And under a deliberately bad estimator: Theorem 1 requires only
    /// S_i to be exact, so constant per-type guesses must not break it.
    #[test]
    fn theorem1_immune_to_estimation_error(trace in arb_trace(), params in arb_params()) {
        let est = TypeDefaultEstimator::default();
        let result = smooth_with(&trace, params, &est, RateSelection::Basic);
        let report = check_theorem1(&result);
        prop_assert!(report.holds(), "violation: {report:?}");
    }

    /// Work conservation: the rate function integrates to exactly the
    /// trace's total bits.
    #[test]
    fn bits_are_conserved(trace in arb_trace(), params in arb_params()) {
        let result = smooth(&trace, params);
        let f = StepFunction::from_segments(&result.rate_segments());
        let sent = f.integral(f.domain_start(), f.domain_end());
        let expected = trace.total_bits() as f64;
        prop_assert!((sent / expected - 1.0).abs() < 1e-9,
            "sent {sent} vs trace {expected}");
    }

    /// Offline and streaming (stored mode) produce bit-identical results.
    #[test]
    fn streaming_equals_offline(trace in arb_trace(), params in arb_params()) {
        let offline = smooth(&trace, params);
        let streamed = smooth_streaming(&trace, params);
        prop_assert_eq!(offline, streamed);
    }

    /// The a-priori (taut string) schedule respects its delay bound and
    /// never beats physics: it sends no bit before it has arrived.
    #[test]
    fn taut_string_is_feasible(trace in arb_trace(), extra in 0.01f64..0.4) {
        let d = 1.5 * TAU + extra;
        let r = ott_smooth(&trace, d).expect("feasible bound");
        for p in &r.schedule {
            prop_assert!(p.delay <= d + 1e-6, "picture {} delay {}", p.index, p.delay);
        }
        // Causality at every arrival instant.
        let cum_at = |time: f64| -> f64 {
            r.segments.iter()
                .take_while(|s| s.start < time)
                .map(|s| s.rate * (time.min(s.end) - s.start).max(0.0))
                .sum()
        };
        let mut prefix = 0.0;
        for j in 0..trace.len() {
            let arrival = (j as f64 + 1.0) * TAU;
            prop_assert!(cum_at(arrival) <= prefix + trace.sizes[j] as f64 + 1.0,
                "sent ahead of arrival at picture {j}");
            prefix += trace.sizes[j] as f64;
        }
    }

    /// The oracle schedule's peak rate is a lower bound for the online
    /// algorithm's peak at the same delay bound (oracle optimality).
    #[test]
    fn oracle_peak_never_exceeds_online_peak(trace in arb_trace(), extra in 0.05f64..0.3) {
        let d = 2.0 * TAU + extra;
        let opt = ott_smooth(&trace, d).expect("feasible");
        let online = smooth(&trace, SmootherParams::new(d, 1, 9, TAU).expect("feasible"));
        let online_peak = online.rates().fold(0.0f64, f64::max);
        prop_assert!(opt.max_rate() <= online_peak + 1e-6,
            "oracle {} > online {}", opt.max_rate(), online_peak);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Step-function algebra: integral additivity over adjacent windows.
    #[test]
    fn step_integral_is_additive(
        breaks in proptest::collection::vec(0.0f64..100.0, 2..20),
        split in 0.0f64..100.0,
    ) {
        let mut b = breaks;
        b.sort_by(|x, y| x.partial_cmp(y).expect("finite"));
        b.dedup_by(|x, y| (*x - *y).abs() < 1e-9);
        prop_assume!(b.len() >= 2);
        let values: Vec<f64> = (0..b.len() - 1).map(|i| (i as f64) * 7.5 % 13.0).collect();
        let f = StepFunction::new(b.clone(), values);
        let (lo, hi) = (b[0], *b.last().expect("nonempty"));
        let mid = split.clamp(lo, hi);
        let whole = f.integral(lo, hi);
        let parts = f.integral(lo, mid) + f.integral(mid, hi);
        prop_assert!((whole - parts).abs() < 1e-6 * whole.abs().max(1.0));
    }

    /// Shifting left by dt moves the integration window exactly.
    #[test]
    fn step_shift_preserves_mass(dt in -50.0f64..50.0) {
        let f = StepFunction::new(vec![0.0, 1.0, 3.0, 7.0], vec![2.0, 8.0, 1.0]);
        let g = f.shifted_left(dt);
        let a = f.integral(0.0, 7.0);
        let b = g.integral(-dt, 7.0 - dt);
        prop_assert!((a - b).abs() < 1e-9);
    }
}

/// Deterministic adversarial check (not a proptest: it must always fire):
/// K = 0 with near-zero slack CAN violate the bound — the paper's §5.2
/// observation, and the reason Theorem 1 requires K >= 1.
#[test]
fn k0_violations_are_constructible() {
    let pattern = GopPattern::new(3, 9).unwrap();
    let mut sizes = vec![4_000u64; 36];
    for (i, s) in sizes.iter_mut().enumerate() {
        if pattern.type_at(i) == PictureType::I {
            *s = 450_000;
        }
    }
    let trace = VideoTrace::new("adv", pattern, Resolution::VGA, 30.0, sizes).unwrap();
    let params = SmootherParams::new_unchecked(TAU + 0.001, 0, 9, TAU);
    let result = smooth(&trace, params);
    assert!(
        result.delay_violations() > 0,
        "K=0 with ~1ms slack must violate on an I-picture surprise (max delay {})",
        result.max_delay()
    );
}
