//! Fuzz-style robustness properties of the bitstream layer: the parser is
//! total (never panics, never loops) on arbitrary and on corrupted input,
//! and damage can only ever shrink what is recovered.

use proptest::prelude::*;
use smooth_mpeg::bitstream::{
    apply_ber, flip_random_bits, parse_stream, write_stream, zero_bytes, SequenceHeader, StreamSpec,
};
use smooth_mpeg::{GopPattern, Resolution};
use smooth_rng::Rng;

fn sample_stream(seed: u64) -> Vec<u8> {
    let pattern = GopPattern::new(3, 9).expect("static");
    let spec = StreamSpec::new(SequenceHeader::vbr(Resolution::CIF), pattern);
    let sizes: Vec<u64> = (0..18)
        .map(|i| match pattern.type_at(i) {
            smooth_mpeg::PictureType::I => 60_000,
            smooth_mpeg::PictureType::P => 30_000,
            smooth_mpeg::PictureType::B => 8_000,
        })
        .collect();
    write_stream(&spec, &sizes, seed).bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The parser accepts arbitrary bytes without panicking and recovers
    /// nothing spurious from genuinely structureless input.
    #[test]
    fn parser_is_total_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let parsed = parse_stream(&data);
        // Each recovered picture must sit within the buffer.
        for p in &parsed.pictures {
            prop_assert!(p.byte_range.end <= data.len());
            prop_assert!(p.byte_range.start <= p.byte_range.end);
        }
    }

    /// Random bit errors never crash the parser, and every surviving
    /// picture still has plausible structure.
    #[test]
    fn parser_survives_random_bit_errors(seed in 0u64..1000, flips in 0usize..5000) {
        let mut bytes = sample_stream(seed);
        flip_random_bits(&mut bytes, flips, &mut Rng::seed_from_u64(seed ^ 0xF00D));
        let parsed = parse_stream(&bytes);
        prop_assert!(parsed.pictures.len() <= 18 + flips, "cannot invent many pictures");
        for p in &parsed.pictures {
            prop_assert!(p.size_bits() > 0);
        }
    }

    /// Burst erasures (zeroed byte runs) are contained: the parser still
    /// terminates and reports issues rather than failing.
    #[test]
    fn parser_survives_burst_erasure(seed in 0u64..200, offset in 0usize..300_000, len in 1usize..50_000) {
        let mut bytes = sample_stream(seed);
        let at = offset % bytes.len().max(1);
        zero_bytes(&mut bytes, at, len);
        let parsed = parse_stream(&bytes);
        // A zeroed burst can only remove content, never conjure more
        // pictures than were written (18) -- zero runs cannot contain the
        // 0x01 a start code needs.
        prop_assert!(parsed.pictures.len() <= 18);
    }

    /// A binary symmetric channel at any error rate leaves the parser
    /// deterministic and total.
    #[test]
    fn parser_survives_bsc(seed in 0u64..100, ber_millis in 0u32..20) {
        let mut bytes = sample_stream(seed);
        let ber = f64::from(ber_millis) / 1000.0;
        apply_ber(&mut bytes, ber, &mut Rng::seed_from_u64(seed));
        let a = parse_stream(&bytes);
        let b = parse_stream(&bytes);
        prop_assert_eq!(a.pictures.len(), b.pictures.len(), "parsing must be deterministic");
        prop_assert_eq!(a.issues.len(), b.issues.len());
    }

    /// Truncation at any byte boundary yields a clean prefix parse.
    #[test]
    fn truncation_yields_prefix(seed in 0u64..200, cut_frac in 0.0f64..1.0) {
        let bytes = sample_stream(seed);
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        let full = parse_stream(&bytes);
        let part = parse_stream(&bytes[..cut]);
        prop_assert!(part.pictures.len() <= full.pictures.len());
        // Pictures fully inside the prefix parse identically.
        for (a, b) in part.pictures.iter().zip(&full.pictures) {
            if b.byte_range.end <= cut {
                prop_assert_eq!(a.header, b.header);
            }
        }
    }
}
