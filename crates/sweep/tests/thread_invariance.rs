//! Property: sweep output never depends on the worker count.
//!
//! `par_map` must equal the serial map for any thread count, and a
//! `smooth_with` grid over a random trace must come back bit-identical
//! (full `SmoothingResult` equality — schedules, rates, departures)
//! whether computed on 1 thread or many.

use proptest::prelude::*;
use smooth_core::estimate::PatternEstimator;
use smooth_core::{smooth, RateSelection, SmootherParams};
use smooth_mpeg::{GopPattern, Resolution};
use smooth_sweep::{par_map, smooth_batch, smooth_grid, SweepJob};
use smooth_trace::VideoTrace;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn par_map_equals_serial_map(
        items in proptest::collection::vec(0u64..1_000_000, 0..80),
        threads in 1usize..17,
    ) {
        let expected: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, &x)| x.wrapping_mul(2654435761).rotate_left((i % 64) as u32))
            .collect();
        let got = par_map(threads, &items, |i, &x| {
            x.wrapping_mul(2654435761).rotate_left((i % 64) as u32)
        });
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn smoothing_grid_is_thread_count_invariant(
        sizes in proptest::collection::vec(1_000u64..400_000, 27..120),
        d_idx in 0usize..3,
        k in 1usize..4,
        h in 1usize..20,
        threads in 2usize..17,
    ) {
        let pattern = GopPattern::new(3, 9).expect("valid pattern");
        let trace = VideoTrace::new("prop", pattern, Resolution::VGA, 30.0, sizes)
            .expect("valid trace");
        let d = [0.15, 0.2, 0.35][d_idx];
        let params = SmootherParams::at_30fps(d, k, h);
        prop_assume!(params.is_ok());
        let params = vec![params.expect("checked feasible")];
        let est = PatternEstimator::default();

        let serial = smooth_grid(1, &[&trace], &params, &est, RateSelection::Basic);
        let parallel = smooth_grid(threads, &[&trace], &params, &est, RateSelection::Basic);
        prop_assert_eq!(serial, parallel);
    }

    /// `smooth_batch` (scratch-reusing workers) equals the one-shot
    /// offline smoother per job, for any worker count — reused scratch
    /// must never leak state between jobs, and sharding must never
    /// reorder results.
    #[test]
    fn batch_is_thread_count_invariant_and_matches_one_shot(
        sizes_a in proptest::collection::vec(1_000u64..400_000, 1..90),
        sizes_b in proptest::collection::vec(1_000u64..400_000, 1..90),
        k in 1usize..4,
        h in 1usize..24,
        threads in 1usize..17,
    ) {
        let pattern = GopPattern::new(3, 9).expect("valid pattern");
        let ta = VideoTrace::new("a", pattern, Resolution::VGA, 30.0, sizes_a)
            .expect("valid trace");
        let tb = VideoTrace::new("b", pattern, Resolution::VGA, 30.0, sizes_b)
            .expect("valid trace");
        let params = SmootherParams::at_30fps(0.2, k, h);
        prop_assume!(params.is_ok());
        let params = params.expect("checked feasible");
        // Alternate traces so consecutive jobs on one worker differ in
        // length — the stale-scratch shape most likely to leak.
        let jobs: Vec<SweepJob<'_>> = [&ta, &tb, &ta, &tb, &ta]
            .into_iter()
            .map(|trace| SweepJob { trace, params })
            .collect();

        let (results, stats) = smooth_batch(threads, &jobs);
        let expected: Vec<_> = jobs.iter().map(|j| smooth(j.trace, j.params)).collect();
        prop_assert_eq!(results, expected);
        prop_assert_eq!(stats.jobs, jobs.len());
        prop_assert_eq!(
            stats.pictures,
            (3 * ta.len() + 2 * tb.len()) as u64
        );
    }
}
