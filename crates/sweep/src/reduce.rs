//! Deterministic, shard-decomposable floating-point reduction.
//!
//! f64 addition is not associative, so "sum these S values" has as many
//! answers as there are summation orders — poison for a codebase whose
//! contract is *bit-identical output for any thread count*. This module
//! fixes one canonical order: a **pairwise summation tree** over the
//! values, padded to a power of two with zeros. Two properties make it
//! the right canonical form:
//!
//! 1. **Every node is a pure function of the current leaf values** (each
//!    internal node is the rounded sum of its two children). An engine
//!    that updates one leaf and recomputes the O(log n) path to the root
//!    ([`SumTree::set`]) reads the *same* root as one that rebuilds the
//!    whole tree from scratch ([`SumTree::sum_of`]) — history cannot leak
//!    into the bits.
//! 2. **Subtrees are themselves canonical sums.** Splitting the leaves at
//!    power-of-two-aligned boundaries ([`ShardPlan`]) and combining the
//!    per-shard roots with a [`SumTree`] over the shards reproduces the
//!    whole-slice sum bit-for-bit, because the shard roots *are* interior
//!    nodes of the big tree. That is what lets a parallel fan-out reduce
//!    shard partials in order and still match the serial engine exactly.
//!
//! (Pairwise summation also has O(log n) rounding-error growth versus
//! O(n) for a left-to-right fold — the canonical order is the *more*
//! accurate one, not a compromise.)

use std::ops::Range;

/// A pairwise summation tree over `n` f64 leaves, padded with zeros to
/// the next power of two.
///
/// `set` is O(log n); `total` is O(1). The root equals
/// [`SumTree::sum_of`] over the current leaf values, bit-for-bit.
#[derive(Debug, Clone, PartialEq)]
pub struct SumTree {
    /// Number of addressable leaves (callers' `n`).
    n: usize,
    /// Padded leaf count, a power of two.
    width: usize,
    /// 1-indexed heap layout: `nodes[1]` is the root, leaves occupy
    /// `width .. 2 * width`.
    nodes: Vec<f64>,
}

impl SumTree {
    /// A tree of `n` leaves, all zero.
    pub fn new(n: usize) -> Self {
        let width = n.max(1).next_power_of_two();
        SumTree {
            n,
            width,
            nodes: vec![0.0; 2 * width],
        }
    }

    /// Number of addressable leaves.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the tree has no addressable leaves.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Current value of leaf `i`.
    pub fn get(&self, i: usize) -> f64 {
        assert!(i < self.n, "leaf {i} out of range (n = {})", self.n);
        self.nodes[self.width + i]
    }

    /// Sets leaf `i` and recomputes the path to the root.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()` or `v` is not finite.
    pub fn set(&mut self, i: usize, v: f64) {
        assert!(i < self.n, "leaf {i} out of range (n = {})", self.n);
        debug_assert!(v.is_finite(), "leaf values must be finite");
        // Narrow the slice so the length is symbolically `2 * width`:
        // with `k < 2 * width` established once at the leaf, the
        // optimizer can prove every index below in range (`k / 2 <
        // width` implies `2 * (k / 2) + 1 < 2 * width`) and drop the
        // per-level bounds checks — this is the hottest loop of the
        // incremental aggregation path.
        let width = self.width;
        let nodes = &mut self.nodes[..2 * width];
        let mut k = width + i;
        nodes[k] = v;
        while k > 1 {
            k /= 2;
            nodes[k] = nodes[2 * k] + nodes[2 * k + 1];
        }
    }

    /// The canonical pairwise sum of all leaves.
    pub fn total(&self) -> f64 {
        self.nodes[1]
    }

    /// The canonical pairwise sum of a slice: build-and-read. Defined so
    /// that incrementally maintained trees ([`SumTree::set`]) and
    /// from-scratch evaluation agree bit-for-bit.
    pub fn sum_of(values: &[f64]) -> f64 {
        let mut tree = SumTree::new(values.len());
        tree.nodes[tree.width..tree.width + values.len()].copy_from_slice(values);
        for k in (1..tree.width).rev() {
            tree.nodes[k] = tree.nodes[2 * k] + tree.nodes[2 * k + 1];
        }
        tree.total()
    }
}

/// A power-of-two-aligned partition of `0..n` into shards whose
/// boundaries coincide with [`SumTree`] subtrees.
///
/// `width` and `count` are powers of two with
/// `width * count == n.next_power_of_two()`, so shard `s` covers exactly
/// the leaves of one depth-`log2(count)` subtree of the `n`-leaf tree.
/// Consequently: per-shard sums computed with a `width`-leaf [`SumTree`]
/// (missing leaves left at zero), combined in shard order by a
/// `count`-leaf [`SumTree`], equal `SumTree::sum_of` over the whole
/// slice bit-for-bit — the invariant the
/// `sharded_reduce_matches_whole_slice_sum` proptest pins.
///
/// The plan depends only on `n` and `max_shards`, never on a thread
/// count: parallel schedules change which worker computes a shard, not
/// what any shard contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlan {
    /// Items being partitioned.
    pub n: usize,
    /// Leaves per shard (power of two).
    pub width: usize,
    /// Number of shards (power of two); trailing shards may be empty.
    pub count: usize,
}

impl ShardPlan {
    /// Plans at most `max_shards` aligned shards over `n` items.
    pub fn new(n: usize, max_shards: usize) -> Self {
        let padded = n.max(1).next_power_of_two();
        // Floor `max_shards` to a power of two, then clamp to the padded
        // width (a shard must hold at least one leaf).
        let mut count = max_shards.max(1).next_power_of_two();
        if count > max_shards {
            count /= 2;
        }
        let count = count.min(padded);
        ShardPlan {
            n,
            width: padded / count,
            count,
        }
    }

    /// The item range of shard `s` (clipped to `n`; may be empty).
    pub fn range(&self, s: usize) -> Range<usize> {
        assert!(s < self.count, "shard {s} out of range");
        let start = (s * self.width).min(self.n);
        let end = ((s + 1) * self.width).min(self.n);
        start..end
    }

    /// All shard ranges, in order.
    pub fn ranges(&self) -> impl Iterator<Item = Range<usize>> + '_ {
        (0..self.count).map(|s| self.range(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn tree_sums_exactly_for_exact_inputs() {
        let mut tree = SumTree::new(5);
        for (i, v) in [1.0, 2.0, 3.0, 4.0, 5.0].iter().enumerate() {
            tree.set(i, *v);
        }
        assert_eq!(tree.total(), 15.0);
        assert_eq!(tree.get(2), 3.0);
        tree.set(2, 10.0);
        assert_eq!(tree.total(), 22.0);
        assert_eq!(SumTree::sum_of(&[1.0, 2.0, 10.0, 4.0, 5.0]), 22.0);
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(SumTree::sum_of(&[]), 0.0);
        assert_eq!(SumTree::new(0).total(), 0.0);
        assert!(SumTree::new(0).is_empty());
        assert_eq!(SumTree::sum_of(&[7.5]), 7.5);
        let mut one = SumTree::new(1);
        one.set(0, -3.25);
        assert_eq!(one.total(), -3.25);
        assert_eq!(one.len(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_rejects_out_of_range() {
        SumTree::new(3).set(3, 1.0);
    }

    #[test]
    fn shard_plan_shapes() {
        let p = ShardPlan::new(10, 4);
        assert_eq!((p.width, p.count), (4, 4));
        let ranges: Vec<_> = p.ranges().collect();
        assert_eq!(ranges, vec![0..4, 4..8, 8..10, 10..10]);

        // max_shards floors to a power of two.
        let p = ShardPlan::new(100, 6);
        assert_eq!(p.count, 4);
        assert_eq!(p.width * p.count, 128);

        // Tiny n: never more shards than padded leaves.
        let p = ShardPlan::new(1, 64);
        assert_eq!((p.width, p.count), (1, 1));
        let p = ShardPlan::new(0, 8);
        assert_eq!(p.range(0), 0..0);
    }

    fn reduce_via_shards(values: &[f64], max_shards: usize) -> f64 {
        let plan = ShardPlan::new(values.len(), max_shards);
        let mut top = SumTree::new(plan.count);
        for (s, range) in plan.ranges().enumerate() {
            // A full-width shard tree with missing leaves left at zero —
            // exactly the corresponding subtree of the big tree.
            let mut shard = SumTree::new(plan.width);
            for (j, &v) in values[range].iter().enumerate() {
                shard.set(j, v);
            }
            top.set(s, shard.total());
        }
        top.total()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn incremental_tree_matches_from_scratch(
            values in proptest::collection::vec(-1.0e9..1.0e9f64, 0..70),
        ) {
            let mut tree = SumTree::new(values.len());
            for (i, &v) in values.iter().enumerate() {
                tree.set(i, v);
            }
            prop_assert_eq!(
                tree.total().to_bits(),
                SumTree::sum_of(&values).to_bits()
            );
        }

        #[test]
        fn sharded_reduce_matches_whole_slice_sum(
            values in proptest::collection::vec(-1.0e9..1.0e9f64, 0..70),
            max_shards in 1usize..20,
        ) {
            prop_assert_eq!(
                reduce_via_shards(&values, max_shards).to_bits(),
                SumTree::sum_of(&values).to_bits()
            );
        }

        #[test]
        fn updates_cannot_leak_history_into_bits(
            values in proptest::collection::vec(-1.0e6..1.0e6f64, 1..40),
            overwrites in proptest::collection::vec((0usize..40, -1.0e6..1.0e6f64), 0..40),
        ) {
            // Apply a churn of overwrites, then restore the original
            // values: the root must be exactly the from-scratch sum.
            let mut tree = SumTree::new(values.len());
            for (i, &v) in values.iter().enumerate() {
                tree.set(i, v);
            }
            for &(i, v) in &overwrites {
                tree.set(i % values.len(), v);
            }
            for (i, &v) in values.iter().enumerate() {
                tree.set(i, v);
            }
            prop_assert_eq!(
                tree.total().to_bits(),
                SumTree::sum_of(&values).to_bits()
            );
        }
    }
}
