//! Cache-aware thread placement for the scaling harness.
//!
//! The cores-vs-throughput curve (`mpeg-smooth scale`, the `scalebench`
//! suite) wants each worker to *own* its shards: a *static* block-cyclic
//! shard→worker assignment (worker `w` takes items `w, w + T, …`), the
//! worker pinned to one CPU so the shards it first-touched stay in that
//! core's cache (and, on NUMA boxes, its local memory node). This
//! module provides the three pieces:
//!
//! * [`par_map_pinned`] — the statically-assigned, pinned counterpart of
//!   [`crate::par_map`]; results are placed by input index, so output is
//!   bit-identical to serial for any worker count (the assignment only
//!   changes *which thread* computes an item, never the item's input).
//! * [`pin_current_thread`] / [`pinning_supported`] — best-effort
//!   `sched_setaffinity` pinning on Linux, a graceful no-op elsewhere
//!   (the harness records whether pinning was live in the report's
//!   provenance instead of pretending).
//! * [`physical_cores`] / [`logical_cores`] — the physical-vs-logical
//!   distinction `BENCH_sweep.json` provenance records, so a throughput
//!   curve measured across SMT siblings cannot masquerade as one
//!   measured across real cores.
//!
//! The pinning syscall is declared by hand (`extern "C"`): this build is
//! hermetic (no crates.io, so no `libc`), and one syscall does not
//! justify vendoring one. The `unsafe` surface is the single FFI call,
//! scoped to this module under `deny(unsafe_op_in_unsafe_fn)`.

#![allow(unsafe_code)]

/// Logical CPUs visible to this process
/// ([`std::thread::available_parallelism`], 1 if unknown).
pub fn logical_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Physical cores: unique `(physical id, core id)` pairs from
/// `/proc/cpuinfo`. Falls back to [`logical_cores`] when the file is
/// missing or unparsable (non-Linux, restricted container), so the
/// result is always ≥ 1 — callers compare it to `logical_cores()` to
/// detect SMT.
pub fn physical_cores() -> usize {
    physical_cores_from(&std::fs::read_to_string("/proc/cpuinfo").unwrap_or_default())
        .unwrap_or_else(logical_cores)
}

/// Parses `/proc/cpuinfo` text; `None` when no complete
/// `(physical id, core id)` pair appears (e.g. non-x86 layouts).
fn physical_cores_from(cpuinfo: &str) -> Option<usize> {
    let mut pairs = std::collections::BTreeSet::new();
    let (mut package, mut core) = (None::<u64>, None::<u64>);
    for line in cpuinfo.lines() {
        let mut split = line.splitn(2, ':');
        let key = split.next().unwrap_or("").trim();
        let value = split.next().unwrap_or("").trim();
        match key {
            "physical id" => package = value.parse().ok(),
            "core id" => core = value.parse().ok(),
            "" => {
                // Blank line: end of one processor stanza.
                if let (Some(p), Some(c)) = (package, core) {
                    pairs.insert((p, c));
                }
                package = None;
                core = None;
            }
            _ => {}
        }
    }
    if let (Some(p), Some(c)) = (package, core) {
        pairs.insert((p, c)); // file without trailing blank line
    }
    if pairs.is_empty() {
        None
    } else {
        Some(pairs.len())
    }
}

#[cfg(target_os = "linux")]
mod affinity {
    /// `cpu_set_t` as glibc lays it out: 1024 bits of CPU mask.
    #[repr(C)]
    struct CpuSet {
        bits: [u64; 16],
    }

    extern "C" {
        /// `sched_setaffinity(2)`; `pid == 0` targets the calling thread.
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const CpuSet) -> i32;
    }

    pub fn pin(core: usize) -> bool {
        if core >= 16 * 64 {
            return false;
        }
        let mut set = CpuSet { bits: [0; 16] };
        set.bits[core / 64] |= 1u64 << (core % 64);
        // SAFETY: `set` is a live, correctly sized `cpu_set_t`-layout
        // value for the duration of the call; pid 0 addresses only the
        // calling thread, so no other thread's state is touched. The
        // kernel copies the mask before returning.
        let rc = unsafe { sched_setaffinity(0, std::mem::size_of::<CpuSet>(), &set) };
        rc == 0
    }
}

/// Pins the calling thread to `core` (a logical CPU index). Returns
/// whether the pin took effect; always `false` off Linux. Callers pin
/// short-lived scoped workers, never the main thread — a pin outlives
/// nothing but the thread it binds.
pub fn pin_current_thread(core: usize) -> bool {
    #[cfg(target_os = "linux")]
    {
        affinity::pin(core)
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = core;
        false
    }
}

/// Whether thread pinning actually works here (Linux with an
/// unrestricted affinity mask). Probes with a throwaway thread so the
/// caller's own affinity is never disturbed. Recorded in
/// `BENCH_sweep.json` provenance as `pinned`.
pub fn pinning_supported() -> bool {
    std::thread::scope(|scope| {
        scope
            .spawn(|| pin_current_thread(0))
            .join()
            .unwrap_or(false)
    })
}

/// [`crate::par_map`] with **static block-cyclic assignment and pinned
/// workers**: worker `w` (pinned to logical CPU `w`, best-effort)
/// computes exactly the items `w, w + workers, w + 2·workers, …`.
///
/// Use this when the items are *stateful shards a worker should own*
/// (first-touch placement, cache residency across repeated calls with
/// the same `threads`); use [`crate::par_map`]'s dynamic cursor when
/// items are independent jobs of unpredictable cost. Results are placed
/// by input index, so the output — like `par_map`'s — is identical to
/// the serial map for every worker count.
///
/// Panics in `f` propagate to the caller.
pub fn par_map_pinned<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let workers = threads.max(1).min(n.max(1));
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let buckets: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let f = &f;
                scope.spawn(move || {
                    pin_current_thread(w);
                    ((w..n).step_by(workers))
                        .map(|i| (i, f(i, &items[i])))
                        .collect()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("pinned sweep worker panicked"))
            .collect()
    });
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for bucket in buckets {
        for (i, r) in bucket {
            debug_assert!(slots[i].is_none(), "index {i} produced twice");
            slots[i] = Some(r);
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index is claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_pinned_preserves_input_order() {
        let items: Vec<usize> = (0..101).collect();
        for threads in [1, 2, 3, 8, 64] {
            let out = par_map_pinned(threads, &items, |i, &x| {
                assert_eq!(i, x);
                x * 3
            });
            assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_map_pinned_handles_empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(par_map_pinned(4, &empty, |_, &x| x).is_empty());
        assert_eq!(par_map_pinned(4, &[9u32], |_, &x| x + 1), vec![10]);
    }

    #[test]
    fn core_counts_are_sane() {
        let logical = logical_cores();
        let physical = physical_cores();
        assert!(logical >= 1);
        assert!(physical >= 1);
        assert!(
            physical <= logical,
            "physical {physical} > logical {logical}"
        );
    }

    #[test]
    fn cpuinfo_parser_counts_unique_core_pairs() {
        // Two packages × two cores, each core listed twice (SMT).
        let text = "processor\t: 0\nphysical id\t: 0\ncore id\t: 0\n\n\
                    processor\t: 1\nphysical id\t: 0\ncore id\t: 1\n\n\
                    processor\t: 2\nphysical id\t: 1\ncore id\t: 0\n\n\
                    processor\t: 3\nphysical id\t: 1\ncore id\t: 1\n\n\
                    processor\t: 4\nphysical id\t: 0\ncore id\t: 0\n\n\
                    processor\t: 5\nphysical id\t: 0\ncore id\t: 1\n\n\
                    processor\t: 6\nphysical id\t: 1\ncore id\t: 0\n\n\
                    processor\t: 7\nphysical id\t: 1\ncore id\t: 1\n";
        assert_eq!(physical_cores_from(text), Some(4));
        assert_eq!(physical_cores_from(""), None);
        assert_eq!(physical_cores_from("model name: x\n"), None);
    }

    #[test]
    fn pinning_probe_does_not_panic() {
        // Result is platform-dependent; the call itself must be safe
        // and must not alter the calling thread's affinity.
        let _ = pinning_supported();
    }
}
