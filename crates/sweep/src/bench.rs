//! Wall-clock recording for sweep runs: the `BENCH_sweep.json` report.
//!
//! The experiments binary times each figure's generation and serializes a
//! [`SweepBenchReport`] so perf regressions across commits are diffable:
//! thread count **with its provenance** (flag/env/cores — so the report
//! can never silently contradict `available_cores`), per-figure wall
//! seconds with serial baselines, hot-path throughput records
//! (pictures/sec on a synthetic trace), and the git commit the numbers
//! belong to.

use std::path::Path;
use std::process::Command;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use crate::ThreadSource;

/// Min / median / spread (max − min) of a repeated wall-time sample.
/// The min is the noise-robust point estimate the records headline;
/// median and spread expose how noisy the box was. Empty samples give
/// `(0, 0, 0)`.
pub fn wall_stats(walls: &[f64]) -> (f64, f64, f64) {
    if walls.is_empty() {
        return (0.0, 0.0, 0.0);
    }
    let mut sorted = walls.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("wall times are finite"));
    let min = sorted[0];
    let max = sorted[sorted.len() - 1];
    let median = if sorted.len() % 2 == 1 {
        sorted[sorted.len() / 2]
    } else {
        0.5 * (sorted[sorted.len() / 2 - 1] + sorted[sorted.len() / 2])
    };
    (min, median, max - min)
}

/// Timing for one named unit of sweep work (usually a figure).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FigureTiming {
    pub name: String,
    /// Wall time with the report's thread count.
    pub wall_seconds: f64,
    /// Wall time of the same work forced serial, when it was measured
    /// (`None` when the run skipped the baseline).
    #[serde(default)]
    pub serial_seconds: Option<f64>,
}

impl FigureTiming {
    /// Serial-over-parallel speedup, when both sides were measured.
    pub fn speedup(&self) -> Option<f64> {
        self.serial_seconds.map(|s| {
            if self.wall_seconds > 0.0 {
                s / self.wall_seconds
            } else {
                1.0
            }
        })
    }
}

/// One hot-path throughput measurement: how many pictures per second a
/// named configuration schedules.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThroughputRecord {
    /// Configuration label, e.g. `hotpath_synthetic_1M_H32_engine`.
    pub name: String,
    /// Pictures scheduled.
    pub pictures: u64,
    /// Wall-clock seconds (min over repeats).
    pub wall_seconds: f64,
    /// Median wall seconds over the repeats (`None` on legacy records
    /// and single-shot measurements).
    #[serde(default)]
    pub wall_seconds_median: Option<f64>,
    /// Max − min wall seconds over the repeats.
    #[serde(default)]
    pub wall_seconds_spread: Option<f64>,
    /// `pictures / wall_seconds`.
    pub pictures_per_sec: f64,
    /// Worker threads the measurement used (1 = serial hot path).
    pub threads: usize,
    /// Commit the record was measured at — stamped by
    /// [`SweepBenchReport::record_throughput`], part of the dedup key.
    #[serde(default)]
    pub git_commit: Option<String>,
}

impl ThroughputRecord {
    /// Builds a record from raw counts, deriving the rate.
    pub fn new(name: &str, pictures: u64, wall_seconds: f64, threads: usize) -> Self {
        ThroughputRecord {
            name: name.to_string(),
            pictures,
            wall_seconds,
            wall_seconds_median: None,
            wall_seconds_spread: None,
            pictures_per_sec: if wall_seconds > 0.0 {
                pictures as f64 / wall_seconds
            } else {
                0.0
            },
            threads,
            git_commit: None,
        }
    }

    /// Builds a record from the full repeat sample, headlining the min
    /// and carrying median/spread.
    pub fn with_walls(name: &str, pictures: u64, walls: &[f64], threads: usize) -> Self {
        let (min, median, spread) = wall_stats(walls);
        let mut rec = Self::new(name, pictures, min, threads);
        rec.wall_seconds_median = Some(median);
        rec.wall_seconds_spread = Some(spread);
        rec
    }
}

/// One multiplexer-throughput measurement: how fast a named source
/// ensemble sweeps through the mux layer, and how the streaming engine
/// compares to the frozen quadratic `mux::reference` when the latter was
/// cheap enough to time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MuxThroughputRecord {
    /// Configuration label, e.g. `mux_synthetic_S1000`.
    pub name: String,
    /// Sources feeding the multiplexer.
    pub sources: usize,
    /// Total rate-function breakpoints processed (the sweep's `T`).
    pub events: u64,
    /// Streaming-engine wall seconds (min over repeats).
    pub wall_seconds: f64,
    /// Median wall seconds over the repeats (`None` on legacy records).
    #[serde(default)]
    pub wall_seconds_median: Option<f64>,
    /// Max − min wall seconds over the repeats.
    #[serde(default)]
    pub wall_seconds_spread: Option<f64>,
    /// `events / wall_seconds`.
    pub events_per_sec: f64,
    /// Frozen `mux::reference` wall seconds (min over repeats), when the
    /// quadratic oracle was affordable at this scale.
    #[serde(default)]
    pub reference_seconds: Option<f64>,
    /// `reference_seconds / wall_seconds`, when both were measured.
    #[serde(default)]
    pub speedup: Option<f64>,
    /// Worker threads the engine measurement used.
    pub threads: usize,
    /// Commit the record was measured at — stamped by
    /// [`SweepBenchReport::record_mux_throughput`], part of the dedup
    /// key.
    #[serde(default)]
    pub git_commit: Option<String>,
}

impl MuxThroughputRecord {
    /// Builds a record from raw measurements, deriving the rates.
    pub fn new(
        name: &str,
        sources: usize,
        events: u64,
        wall_seconds: f64,
        reference_seconds: Option<f64>,
        threads: usize,
    ) -> Self {
        MuxThroughputRecord {
            name: name.to_string(),
            sources,
            events,
            wall_seconds,
            wall_seconds_median: None,
            wall_seconds_spread: None,
            events_per_sec: if wall_seconds > 0.0 {
                events as f64 / wall_seconds
            } else {
                0.0
            },
            reference_seconds,
            speedup: reference_seconds.map(|r| {
                if wall_seconds > 0.0 {
                    r / wall_seconds
                } else {
                    0.0
                }
            }),
            threads,
            git_commit: None,
        }
    }

    /// Builds a record from the full engine repeat sample, headlining
    /// the min and carrying median/spread.
    pub fn with_walls(
        name: &str,
        sources: usize,
        events: u64,
        walls: &[f64],
        reference_seconds: Option<f64>,
        threads: usize,
    ) -> Self {
        let (min, median, spread) = wall_stats(walls);
        let mut rec = Self::new(name, sources, events, min, reference_seconds, threads);
        rec.wall_seconds_median = Some(median);
        rec.wall_seconds_spread = Some(spread);
        rec
    }
}

/// One session-engine throughput measurement: how many aggregate
/// picture decisions per second a fleet of concurrent live sessions
/// sustains through lockstep ticks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionThroughputRecord {
    /// Configuration label, e.g. `sessions_synthetic_S1000000`.
    pub name: String,
    /// Concurrent sessions in the fleet.
    pub sessions: usize,
    /// Lockstep ticks (pictures fed per session).
    pub ticks: u64,
    /// Total picture decisions made across the fleet.
    pub decisions: u64,
    /// Wall-clock seconds (min over repeats).
    pub wall_seconds: f64,
    /// Median wall seconds over the repeats (`None` on legacy records).
    #[serde(default)]
    pub wall_seconds_median: Option<f64>,
    /// Max − min wall seconds over the repeats.
    #[serde(default)]
    pub wall_seconds_spread: Option<f64>,
    /// `decisions / wall_seconds`.
    pub decisions_per_second: f64,
    /// Worker threads the measurement used (1 = serial).
    pub threads: usize,
    /// Commit the record was measured at — stamped by
    /// [`SweepBenchReport::record_session_throughput`], part of the
    /// dedup key.
    #[serde(default)]
    pub git_commit: Option<String>,
}

impl SessionThroughputRecord {
    /// Builds a record from raw counts, deriving the rate.
    pub fn new(
        name: &str,
        sessions: usize,
        ticks: u64,
        decisions: u64,
        wall_seconds: f64,
        threads: usize,
    ) -> Self {
        SessionThroughputRecord {
            name: name.to_string(),
            sessions,
            ticks,
            decisions,
            wall_seconds,
            wall_seconds_median: None,
            wall_seconds_spread: None,
            decisions_per_second: if wall_seconds > 0.0 {
                decisions as f64 / wall_seconds
            } else {
                0.0
            },
            threads,
            git_commit: None,
        }
    }

    /// Builds a record from the full repeat sample, headlining the min
    /// and carrying median/spread.
    pub fn with_walls(
        name: &str,
        sessions: usize,
        ticks: u64,
        decisions: u64,
        walls: &[f64],
        threads: usize,
    ) -> Self {
        let (min, median, spread) = wall_stats(walls);
        let mut rec = Self::new(name, sessions, ticks, decisions, min, threads);
        rec.wall_seconds_median = Some(median);
        rec.wall_seconds_spread = Some(spread);
        rec
    }
}

/// One event-driven churn-throughput measurement: the [`DynamicEngine`]
/// replaying a seeded arrival/departure trace over a heterogeneous
/// fps mix, timed end to end (ramp + churn + decisions). Lives in the
/// `churn_throughput[]` array of `BENCH_sweep.json` and shares the
/// report-level provenance fields (`git_commit`, `thread_source`,
/// `available_cores`, `physical_cores`).
///
/// [`DynamicEngine`]: https://docs.rs/smooth-engine
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnThroughputRecord {
    /// Configuration label, e.g. `churn_synthetic_S1000000`.
    pub name: String,
    /// Initial fleet size (sessions live after the ramp second).
    pub sessions: usize,
    /// Churn intensity in parts-per-million of the initial fleet per
    /// simulated second (10_000 = 1 %/s).
    pub churn_ppm_per_sec: u64,
    /// Sessions that ever joined (initial fleet + churn arrivals).
    pub joined: u64,
    /// Simulated scheduler ticks replayed (horizon of the trace).
    pub ticks: u64,
    /// Total picture decisions made across the fleet.
    pub decisions: u64,
    /// Wall-clock seconds (min over repeats).
    pub wall_seconds: f64,
    /// Median wall seconds over the repeats.
    #[serde(default)]
    pub wall_seconds_median: Option<f64>,
    /// Max − min wall seconds over the repeats.
    #[serde(default)]
    pub wall_seconds_spread: Option<f64>,
    /// `decisions / wall_seconds`.
    pub decisions_per_second: f64,
    /// Worker threads the measurement used (1 = serial).
    pub threads: usize,
    /// Commit the record was measured at — stamped by
    /// [`SweepBenchReport::record_churn_throughput`], part of the
    /// dedup key.
    #[serde(default)]
    pub git_commit: Option<String>,
}

impl ChurnThroughputRecord {
    /// Builds a record from the full repeat sample, headlining the min
    /// and carrying median/spread.
    #[allow(clippy::too_many_arguments)]
    pub fn with_walls(
        name: &str,
        sessions: usize,
        churn_ppm_per_sec: u64,
        joined: u64,
        ticks: u64,
        decisions: u64,
        walls: &[f64],
        threads: usize,
    ) -> Self {
        let (min, median, spread) = wall_stats(walls);
        ChurnThroughputRecord {
            name: name.to_string(),
            sessions,
            churn_ppm_per_sec,
            joined,
            ticks,
            decisions,
            wall_seconds: min,
            wall_seconds_median: Some(median),
            wall_seconds_spread: Some(spread),
            decisions_per_second: if min > 0.0 {
                decisions as f64 / min
            } else {
                0.0
            },
            threads,
            git_commit: None,
        }
    }
}

/// One fused fleet-to-link measurement: the session engine streaming
/// its decisions straight into the online link aggregator (`LiveMux`),
/// against the offline baseline that runs the engine, materializes every
/// schedule, and sweeps them through the multiplexer afterwards. Lives
/// in the `fleet_mux_throughput[]` array of `BENCH_sweep.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetMuxThroughputRecord {
    /// Configuration label, e.g. `fleet_mux_synthetic_S1000000`.
    pub name: String,
    /// Concurrent sessions in the fleet.
    pub sessions: usize,
    /// Lockstep ticks (pictures fed per session).
    pub ticks: u64,
    /// Total picture decisions made across the fleet.
    pub decisions: u64,
    /// Fused-path wall seconds (min over repeats): engine run plus
    /// online aggregation, end to end.
    pub wall_seconds: f64,
    /// Median wall seconds over the repeats.
    #[serde(default)]
    pub wall_seconds_median: Option<f64>,
    /// Max − min wall seconds over the repeats.
    #[serde(default)]
    pub wall_seconds_spread: Option<f64>,
    /// `decisions / wall_seconds`.
    pub decisions_per_second: f64,
    /// Offline-baseline wall seconds (min over repeats): run the engine
    /// for the fleet product, then `mux_sessions` (which must replay a
    /// fresh engine through its cursor layer) for the link aggregate —
    /// the pre-fusion end-to-end cost of obtaining both.
    #[serde(default)]
    pub offline_seconds: Option<f64>,
    /// `offline_seconds / wall_seconds` — end-to-end speedup.
    #[serde(default)]
    pub speedup: Option<f64>,
    /// Bare engine run wall seconds (min over repeats), no aggregation:
    /// the decision work both paths share — the Amdahl floor of the
    /// end-to-end speedup on a given thread count.
    #[serde(default)]
    pub engine_seconds: Option<f64>,
    /// Speedup of the aggregation pass alone:
    /// `(offline − engine) / (wall − engine)` — the second pass the
    /// fused path replaces versus the fused overhead over the bare
    /// engine run.
    #[serde(default)]
    pub mux_pass_speedup: Option<f64>,
    /// Worker threads the measurement used (1 = serial).
    pub threads: usize,
    /// Commit the record was measured at — stamped by
    /// [`SweepBenchReport::record_fleet_mux_throughput`], part of the
    /// dedup key.
    #[serde(default)]
    pub git_commit: Option<String>,
}

impl FleetMuxThroughputRecord {
    /// Builds a record from the full fused repeat sample, headlining the
    /// min and deriving the end-to-end and aggregation-pass speedups
    /// over the offline baseline.
    #[allow(clippy::too_many_arguments)]
    pub fn with_walls(
        name: &str,
        sessions: usize,
        ticks: u64,
        decisions: u64,
        walls: &[f64],
        offline_seconds: Option<f64>,
        engine_seconds: Option<f64>,
        threads: usize,
    ) -> Self {
        let (min, median, spread) = wall_stats(walls);
        let mux_pass_speedup = match (offline_seconds, engine_seconds) {
            (Some(o), Some(e)) if min > e && o > e => Some((o - e) / (min - e)),
            _ => None,
        };
        FleetMuxThroughputRecord {
            name: name.to_string(),
            sessions,
            ticks,
            decisions,
            wall_seconds: min,
            wall_seconds_median: Some(median),
            wall_seconds_spread: Some(spread),
            decisions_per_second: if min > 0.0 {
                decisions as f64 / min
            } else {
                0.0
            },
            offline_seconds,
            speedup: offline_seconds.map(|o| if min > 0.0 { o / min } else { 0.0 }),
            engine_seconds,
            mux_pass_speedup,
            threads,
            git_commit: None,
        }
    }
}

/// One point of the cores-vs-throughput scaling curve: the 1M-session
/// engine run at a fixed worker count with cache-aware placement
/// (static shard→thread striping, per-worker first-touch construction,
/// best-effort pinning). The `scaling[]` array of `BENCH_sweep.json`
/// holds the whole curve; on a 1-core box it is legitimately one point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalingRecord {
    /// Configuration label, e.g. `scale_synthetic_S1000000` (the worker
    /// count lives in `threads`, part of the dedup key).
    pub name: String,
    /// Concurrent sessions in the fleet.
    pub sessions: usize,
    /// Lockstep ticks (pictures fed per session).
    pub ticks: u64,
    /// Total picture decisions made across the fleet.
    pub decisions: u64,
    /// Worker threads (the curve's x axis).
    pub threads: usize,
    /// Wall-clock seconds (min over repeats).
    pub wall_seconds: f64,
    /// Median wall seconds over the repeats.
    #[serde(default)]
    pub wall_seconds_median: Option<f64>,
    /// Max − min wall seconds over the repeats.
    #[serde(default)]
    pub wall_seconds_spread: Option<f64>,
    /// `decisions / wall_seconds` (the curve's y axis).
    pub decisions_per_second: f64,
    /// Whether shard→thread pinning actually took effect.
    pub pinned: bool,
    /// Whether shards were first-touch-constructed by their own worker.
    pub first_touch: bool,
    /// Commit the point was measured at — stamped by
    /// [`SweepBenchReport::record_scaling`], part of the dedup key.
    #[serde(default)]
    pub git_commit: Option<String>,
}

impl ScalingRecord {
    /// Builds a point from the full repeat sample, headlining the min.
    #[allow(clippy::too_many_arguments)]
    pub fn with_walls(
        name: &str,
        sessions: usize,
        ticks: u64,
        decisions: u64,
        walls: &[f64],
        threads: usize,
        pinned: bool,
        first_touch: bool,
    ) -> Self {
        let (min, median, spread) = wall_stats(walls);
        ScalingRecord {
            name: name.to_string(),
            sessions,
            ticks,
            decisions,
            threads,
            wall_seconds: min,
            wall_seconds_median: Some(median),
            wall_seconds_spread: Some(spread),
            decisions_per_second: if min > 0.0 {
                decisions as f64 / min
            } else {
                0.0
            },
            pinned,
            first_touch,
            git_commit: None,
        }
    }
}

/// The on-disk `BENCH_sweep.json` document.
///
/// Fields added after the first release carry `#[serde(default)]` so old
/// reports still load.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepBenchReport {
    /// Worker threads the timed runs used.
    pub threads: usize,
    /// Where `threads` came from: `"flag"`, `"env"`, or `"cores"`.
    #[serde(default)]
    pub thread_source: String,
    /// Cores the machine reported at run time
    /// ([`std::thread::available_parallelism`] — logical CPUs).
    pub available_cores: usize,
    /// Physical cores (unique `(package, core)` pairs from
    /// `/proc/cpuinfo`); equals `logical_cores` when SMT is off or the
    /// topology is unreadable. 0 on legacy reports.
    #[serde(default)]
    pub physical_cores: usize,
    /// Logical CPUs, recorded explicitly next to `physical_cores` so a
    /// curve measured across SMT siblings cannot masquerade as one
    /// measured across real cores. 0 on legacy reports.
    #[serde(default)]
    pub logical_cores: usize,
    /// Whether shard→thread pinning (`sched_setaffinity`) was available
    /// to the timed runs.
    #[serde(default)]
    pub pinned: bool,
    /// Commit the numbers were measured at (`git rev-parse HEAD`), empty
    /// when git was unavailable.
    #[serde(default)]
    pub git_commit: String,
    pub figures: Vec<FigureTiming>,
    /// Hot-path throughput measurements (see [`ThroughputRecord`]).
    #[serde(default)]
    pub throughput: Vec<ThroughputRecord>,
    /// Multiplexer-sweep throughput measurements (see
    /// [`MuxThroughputRecord`]); shares the report-level provenance
    /// fields (`git_commit`, `thread_source`, `available_cores`).
    #[serde(default)]
    pub mux_throughput: Vec<MuxThroughputRecord>,
    /// Session-engine throughput measurements (see
    /// [`SessionThroughputRecord`]); shares the report-level provenance
    /// fields.
    #[serde(default)]
    pub session_throughput: Vec<SessionThroughputRecord>,
    /// Event-driven churn throughput measurements (see
    /// [`ChurnThroughputRecord`]); shares the report-level provenance
    /// fields.
    #[serde(default)]
    pub churn_throughput: Vec<ChurnThroughputRecord>,
    /// Fused fleet-to-link throughput measurements (see
    /// [`FleetMuxThroughputRecord`]); shares the report-level provenance
    /// fields.
    #[serde(default)]
    pub fleet_mux_throughput: Vec<FleetMuxThroughputRecord>,
    /// Cores-vs-throughput scaling curve (see [`ScalingRecord`]); one
    /// point per measured worker count.
    #[serde(default)]
    pub scaling: Vec<ScalingRecord>,
    pub total_seconds: f64,
}

impl SweepBenchReport {
    pub fn new(threads: usize) -> Self {
        Self::with_thread_source(threads, ThreadSource::Flag)
    }

    /// Creates a report recording both the worker count and how it was
    /// chosen, plus the current git commit when resolvable.
    pub fn with_thread_source(threads: usize, source: ThreadSource) -> Self {
        SweepBenchReport {
            threads,
            thread_source: source.as_str().to_string(),
            available_cores: crate::place::logical_cores(),
            physical_cores: crate::place::physical_cores(),
            logical_cores: crate::place::logical_cores(),
            pinned: crate::place::pinning_supported(),
            git_commit: current_git_commit().unwrap_or_default(),
            figures: Vec::new(),
            throughput: Vec::new(),
            mux_throughput: Vec::new(),
            session_throughput: Vec::new(),
            churn_throughput: Vec::new(),
            fleet_mux_throughput: Vec::new(),
            scaling: Vec::new(),
            total_seconds: 0.0,
        }
    }

    /// The commit stamp new records carry: the report's commit, `None`
    /// when git was unavailable.
    fn record_commit(&self) -> Option<String> {
        if self.git_commit.is_empty() {
            None
        } else {
            Some(self.git_commit.clone())
        }
    }

    /// Appends a throughput measurement, replacing any existing record
    /// with the same `(name, git_commit, threads)` — repeated local runs
    /// refresh their numbers instead of growing the file without bound.
    pub fn record_throughput(&mut self, mut record: ThroughputRecord) {
        record.git_commit = self.record_commit();
        self.throughput.retain(|r| {
            (&r.name, &r.git_commit, r.threads)
                != (&record.name, &record.git_commit, record.threads)
        });
        self.throughput.push(record);
    }

    /// Appends a multiplexer-throughput measurement, deduplicating by
    /// `(name, git_commit, threads)`.
    pub fn record_mux_throughput(&mut self, mut record: MuxThroughputRecord) {
        record.git_commit = self.record_commit();
        self.mux_throughput.retain(|r| {
            (&r.name, &r.git_commit, r.threads)
                != (&record.name, &record.git_commit, record.threads)
        });
        self.mux_throughput.push(record);
    }

    /// Appends a session-engine throughput measurement, deduplicating by
    /// `(name, git_commit, threads)`.
    pub fn record_session_throughput(&mut self, mut record: SessionThroughputRecord) {
        record.git_commit = self.record_commit();
        self.session_throughput.retain(|r| {
            (&r.name, &r.git_commit, r.threads)
                != (&record.name, &record.git_commit, record.threads)
        });
        self.session_throughput.push(record);
    }

    /// Appends a churn-throughput measurement, deduplicating by
    /// `(name, git_commit, threads)`.
    pub fn record_churn_throughput(&mut self, mut record: ChurnThroughputRecord) {
        record.git_commit = self.record_commit();
        self.churn_throughput.retain(|r| {
            (&r.name, &r.git_commit, r.threads)
                != (&record.name, &record.git_commit, record.threads)
        });
        self.churn_throughput.push(record);
    }

    /// Appends a fused fleet-to-link throughput measurement,
    /// deduplicating by `(name, git_commit, threads)`.
    pub fn record_fleet_mux_throughput(&mut self, mut record: FleetMuxThroughputRecord) {
        record.git_commit = self.record_commit();
        self.fleet_mux_throughput.retain(|r| {
            (&r.name, &r.git_commit, r.threads)
                != (&record.name, &record.git_commit, record.threads)
        });
        self.fleet_mux_throughput.push(record);
    }

    /// Appends a scaling-curve point, deduplicating by
    /// `(name, git_commit, threads)`.
    pub fn record_scaling(&mut self, mut record: ScalingRecord) {
        record.git_commit = self.record_commit();
        self.scaling.retain(|r| {
            (&r.name, &r.git_commit, r.threads)
                != (&record.name, &record.git_commit, record.threads)
        });
        self.scaling.push(record);
    }

    /// Times `f`, records it under `name`, and returns its output.
    pub fn time<R>(&mut self, name: &str, f: impl FnOnce() -> R) -> R {
        let t0 = Instant::now();
        let out = f();
        let dt = t0.elapsed().as_secs_f64();
        self.figures.push(FigureTiming {
            name: name.to_string(),
            wall_seconds: dt,
            serial_seconds: None,
        });
        self.total_seconds += dt;
        out
    }

    /// Attaches a serial-baseline wall time to an already-recorded figure.
    pub fn set_serial_baseline(&mut self, name: &str, serial_seconds: f64) {
        if let Some(fig) = self.figures.iter_mut().find(|f| f.name == name) {
            fig.serial_seconds = Some(serial_seconds);
        }
    }

    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }

    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    pub fn load(path: &Path) -> std::io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        serde_json::from_str(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }
}

/// `git rev-parse HEAD` of the working directory, if git is present and
/// this is a repository.
pub fn current_git_commit() -> Option<String> {
    let out = Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    let hash = String::from_utf8(out.stdout).ok()?.trim().to_string();
    if hash.is_empty() {
        None
    } else {
        Some(hash)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_round_trips_through_json() {
        let mut report = SweepBenchReport::with_thread_source(4, ThreadSource::Env);
        let x = report.time("fig7", || 41 + 1);
        assert_eq!(x, 42);
        report.time("fig8", || ());
        report.set_serial_baseline("fig7", 2.0);
        report.record_throughput(ThroughputRecord::new("hotpath", 1_000_000, 0.5, 1));
        report.record_mux_throughput(MuxThroughputRecord::new(
            "mux_synthetic_S1000",
            1000,
            64_000,
            0.004,
            Some(1.2),
            1,
        ));
        report.record_session_throughput(SessionThroughputRecord::new(
            "sessions_synthetic_S1000000",
            1_000_000,
            32,
            32_000_000,
            4.0,
            1,
        ));
        assert_eq!(report.figures.len(), 2);
        assert!(report.total_seconds >= 0.0);
        assert_eq!(report.thread_source, "env");

        let json = report.to_json();
        let back: SweepBenchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
        assert!(back.figures[0].serial_seconds.is_some());
        assert!(back.figures[1].serial_seconds.is_none());
        assert_eq!(back.throughput.len(), 1);
        assert!((back.throughput[0].pictures_per_sec - 2_000_000.0).abs() < 1e-6);
        assert_eq!(back.mux_throughput.len(), 1);
        let mux = &back.mux_throughput[0];
        assert_eq!(mux.sources, 1000);
        assert!((mux.events_per_sec - 16_000_000.0).abs() < 1e-3);
        assert!((mux.speedup.unwrap() - 300.0).abs() < 1e-9);
        assert_eq!(back.session_throughput.len(), 1);
        let sess = &back.session_throughput[0];
        assert_eq!(sess.sessions, 1_000_000);
        assert!((sess.decisions_per_second - 8_000_000.0).abs() < 1e-3);
    }

    #[test]
    fn mux_record_without_reference_has_no_speedup() {
        let r = MuxThroughputRecord::new("mux_synthetic_S10000", 10_000, 640_000, 0.05, None, 1);
        assert_eq!(r.reference_seconds, None);
        assert_eq!(r.speedup, None);
        assert!((r.events_per_sec - 12_800_000.0).abs() < 1e-3);
    }

    #[test]
    fn old_reports_without_new_fields_still_load() {
        // The pre-PR on-disk schema: no thread_source, git_commit, or
        // throughput keys.
        let legacy = r#"{
            "threads": 2,
            "available_cores": 1,
            "figures": [
                {"name": "fig7", "wall_seconds": 1.5, "serial_seconds": 3.0}
            ],
            "total_seconds": 1.5
        }"#;
        let report: SweepBenchReport = serde_json::from_str(legacy).unwrap();
        assert_eq!(report.threads, 2);
        assert_eq!(report.thread_source, "");
        assert_eq!(report.git_commit, "");
        assert!(report.throughput.is_empty());
        assert!(report.mux_throughput.is_empty());
        assert!(report.session_throughput.is_empty());
        assert!(report.fleet_mux_throughput.is_empty());
        assert!(report.scaling.is_empty());
        assert_eq!(report.physical_cores, 0);
        assert_eq!(report.logical_cores, 0);
        assert!(!report.pinned);
    }

    #[test]
    fn wall_stats_reports_min_median_spread() {
        assert_eq!(wall_stats(&[]), (0.0, 0.0, 0.0));
        assert_eq!(wall_stats(&[2.0]), (2.0, 2.0, 0.0));
        let (min, median, spread) = wall_stats(&[3.0, 1.0, 2.0, 5.0, 4.0]);
        assert_eq!((min, median, spread), (1.0, 3.0, 4.0));
        let (min, median, spread) = wall_stats(&[4.0, 1.0, 3.0, 2.0]);
        assert_eq!((min, median, spread), (1.0, 2.5, 3.0));
    }

    #[test]
    fn with_walls_carries_the_sample_summary() {
        let r = ThroughputRecord::with_walls("t", 100, &[0.5, 0.25, 1.0], 1);
        assert_eq!(r.wall_seconds, 0.25);
        assert_eq!(r.wall_seconds_median, Some(0.5));
        assert_eq!(r.wall_seconds_spread, Some(0.75));
        assert!((r.pictures_per_sec - 400.0).abs() < 1e-9);
        let s = SessionThroughputRecord::with_walls("s", 10, 4, 40, &[2.0, 4.0], 1);
        assert_eq!(s.wall_seconds, 2.0);
        assert_eq!(s.wall_seconds_median, Some(3.0));
        let m = MuxThroughputRecord::with_walls("m", 3, 30, &[0.1, 0.3], None, 1);
        assert_eq!(m.wall_seconds_median, Some(0.2));
        let p = ScalingRecord::with_walls("p", 10, 4, 40, &[1.0, 3.0], 2, true, true);
        assert_eq!(p.wall_seconds, 1.0);
        assert_eq!(p.threads, 2);
        assert!((p.decisions_per_second - 40.0).abs() < 1e-9);
        assert!(p.pinned && p.first_touch);
    }

    #[test]
    fn record_append_dedups_by_name_commit_and_threads() {
        let mut report = SweepBenchReport::with_thread_source(1, ThreadSource::Cores);
        report.record_session_throughput(SessionThroughputRecord::new("a", 10, 4, 40, 2.0, 1));
        report.record_session_throughput(SessionThroughputRecord::new("a", 10, 4, 40, 1.0, 1));
        assert_eq!(report.session_throughput.len(), 1, "same key replaces");
        assert_eq!(report.session_throughput[0].wall_seconds, 1.0);
        report.record_session_throughput(SessionThroughputRecord::new("a", 10, 4, 40, 1.0, 2));
        assert_eq!(
            report.session_throughput.len(),
            2,
            "new thread count appends"
        );
        // A record measured at a different commit never collides.
        let mut foreign = SessionThroughputRecord::new("a", 10, 4, 40, 3.0, 1);
        foreign.git_commit = Some("older".into());
        report.session_throughput.push(foreign);
        report.record_session_throughput(SessionThroughputRecord::new("a", 10, 4, 40, 0.5, 1));
        assert_eq!(report.session_throughput.len(), 3);

        report.record_scaling(ScalingRecord::with_walls(
            "sc",
            10,
            4,
            40,
            &[1.0],
            1,
            false,
            true,
        ));
        report.record_scaling(ScalingRecord::with_walls(
            "sc",
            10,
            4,
            40,
            &[2.0],
            1,
            false,
            true,
        ));
        assert_eq!(report.scaling.len(), 1);
        assert_eq!(report.scaling[0].wall_seconds, 2.0);
        report.record_throughput(ThroughputRecord::new("t", 5, 1.0, 1));
        report.record_throughput(ThroughputRecord::new("t", 5, 2.0, 1));
        assert_eq!(report.throughput.len(), 1);
        report.record_mux_throughput(MuxThroughputRecord::new("m", 2, 10, 1.0, None, 1));
        report.record_mux_throughput(MuxThroughputRecord::new("m", 2, 10, 2.0, None, 1));
        assert_eq!(report.mux_throughput.len(), 1);
        report.record_fleet_mux_throughput(FleetMuxThroughputRecord::with_walls(
            "fm",
            10,
            4,
            40,
            &[1.0],
            None,
            None,
            1,
        ));
        report.record_fleet_mux_throughput(FleetMuxThroughputRecord::with_walls(
            "fm",
            10,
            4,
            40,
            &[2.0],
            None,
            None,
            1,
        ));
        assert_eq!(report.fleet_mux_throughput.len(), 1);
        assert_eq!(report.fleet_mux_throughput[0].wall_seconds, 2.0);
    }

    #[test]
    fn fleet_mux_record_derives_rate_and_speedups() {
        let r = FleetMuxThroughputRecord::with_walls(
            "fleet_mux_synthetic_S1000000",
            1_000_000,
            32,
            32_000_000,
            &[4.0, 5.0, 6.0],
            Some(48.0),
            Some(3.0),
            1,
        );
        assert_eq!(r.wall_seconds, 4.0);
        assert_eq!(r.wall_seconds_median, Some(5.0));
        assert_eq!(r.wall_seconds_spread, Some(2.0));
        assert!((r.decisions_per_second - 8_000_000.0).abs() < 1e-3);
        assert!((r.speedup.unwrap() - 12.0).abs() < 1e-9);
        // Aggregation pass: (48 − 3) / (4 − 3) = 45×.
        assert!((r.mux_pass_speedup.unwrap() - 45.0).abs() < 1e-9);
        let no_base = FleetMuxThroughputRecord::with_walls("fm", 10, 4, 40, &[1.0], None, None, 1);
        assert_eq!(no_base.offline_seconds, None);
        assert_eq!(no_base.speedup, None);
        assert_eq!(no_base.mux_pass_speedup, None);
    }

    #[test]
    fn provenance_records_core_topology() {
        let report = SweepBenchReport::with_thread_source(1, ThreadSource::Cores);
        assert!(report.logical_cores >= 1);
        assert!(report.physical_cores >= 1);
        assert!(report.physical_cores <= report.logical_cores);
        assert_eq!(report.available_cores, report.logical_cores);
    }

    #[test]
    fn zero_wall_seconds_gives_zero_rate() {
        let r = ThroughputRecord::new("degenerate", 10, 0.0, 1);
        assert_eq!(r.pictures_per_sec, 0.0);
    }

    #[test]
    fn speedup_needs_both_measurements() {
        let fig = FigureTiming {
            name: "f".into(),
            wall_seconds: 1.0,
            serial_seconds: Some(3.0),
        };
        assert_eq!(fig.speedup(), Some(3.0));
        let fig = FigureTiming {
            name: "f".into(),
            wall_seconds: 1.0,
            serial_seconds: None,
        };
        assert_eq!(fig.speedup(), None);
    }
}
