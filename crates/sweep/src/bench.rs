//! Wall-clock recording for sweep runs: the `BENCH_sweep.json` report.
//!
//! The experiments binary times each figure's generation and serializes a
//! [`SweepBenchReport`] so perf regressions across commits are diffable
//! (thread count, per-figure wall seconds, serial baselines where
//! measured).

use std::path::Path;
use std::time::Instant;

use serde::{Deserialize, Serialize};

/// Timing for one named unit of sweep work (usually a figure).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FigureTiming {
    pub name: String,
    /// Wall time with the report's thread count.
    pub wall_seconds: f64,
    /// Wall time of the same work forced serial, when it was measured
    /// (`None` when the run skipped the baseline).
    #[serde(default)]
    pub serial_seconds: Option<f64>,
}

impl FigureTiming {
    /// Serial-over-parallel speedup, when both sides were measured.
    pub fn speedup(&self) -> Option<f64> {
        self.serial_seconds.map(|s| {
            if self.wall_seconds > 0.0 {
                s / self.wall_seconds
            } else {
                1.0
            }
        })
    }
}

/// The on-disk `BENCH_sweep.json` document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepBenchReport {
    /// Worker threads the timed runs used.
    pub threads: usize,
    /// Cores the machine reported at run time.
    pub available_cores: usize,
    pub figures: Vec<FigureTiming>,
    pub total_seconds: f64,
}

impl SweepBenchReport {
    pub fn new(threads: usize) -> Self {
        SweepBenchReport {
            threads,
            available_cores: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            figures: Vec::new(),
            total_seconds: 0.0,
        }
    }

    /// Times `f`, records it under `name`, and returns its output.
    pub fn time<R>(&mut self, name: &str, f: impl FnOnce() -> R) -> R {
        let t0 = Instant::now();
        let out = f();
        let dt = t0.elapsed().as_secs_f64();
        self.figures.push(FigureTiming {
            name: name.to_string(),
            wall_seconds: dt,
            serial_seconds: None,
        });
        self.total_seconds += dt;
        out
    }

    /// Attaches a serial-baseline wall time to an already-recorded figure.
    pub fn set_serial_baseline(&mut self, name: &str, serial_seconds: f64) {
        if let Some(fig) = self.figures.iter_mut().find(|f| f.name == name) {
            fig.serial_seconds = Some(serial_seconds);
        }
    }

    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }

    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    pub fn load(path: &Path) -> std::io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        serde_json::from_str(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_round_trips_through_json() {
        let mut report = SweepBenchReport::new(4);
        let x = report.time("fig7", || 41 + 1);
        assert_eq!(x, 42);
        report.time("fig8", || ());
        report.set_serial_baseline("fig7", 2.0);
        assert_eq!(report.figures.len(), 2);
        assert!(report.total_seconds >= 0.0);

        let json = report.to_json();
        let back: SweepBenchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
        assert!(back.figures[0].serial_seconds.is_some());
        assert!(back.figures[1].serial_seconds.is_none());
    }

    #[test]
    fn speedup_needs_both_measurements() {
        let fig = FigureTiming {
            name: "f".into(),
            wall_seconds: 1.0,
            serial_seconds: Some(3.0),
        };
        assert_eq!(fig.speedup(), Some(3.0));
        let fig = FigureTiming {
            name: "f".into(),
            wall_seconds: 1.0,
            serial_seconds: None,
        };
        assert_eq!(fig.speedup(), None);
    }
}
