//! Wall-clock recording for sweep runs: the `BENCH_sweep.json` report.
//!
//! The experiments binary times each figure's generation and serializes a
//! [`SweepBenchReport`] so perf regressions across commits are diffable:
//! thread count **with its provenance** (flag/env/cores — so the report
//! can never silently contradict `available_cores`), per-figure wall
//! seconds with serial baselines, hot-path throughput records
//! (pictures/sec on a synthetic trace), and the git commit the numbers
//! belong to.

use std::path::Path;
use std::process::Command;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use crate::ThreadSource;

/// Timing for one named unit of sweep work (usually a figure).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FigureTiming {
    pub name: String,
    /// Wall time with the report's thread count.
    pub wall_seconds: f64,
    /// Wall time of the same work forced serial, when it was measured
    /// (`None` when the run skipped the baseline).
    #[serde(default)]
    pub serial_seconds: Option<f64>,
}

impl FigureTiming {
    /// Serial-over-parallel speedup, when both sides were measured.
    pub fn speedup(&self) -> Option<f64> {
        self.serial_seconds.map(|s| {
            if self.wall_seconds > 0.0 {
                s / self.wall_seconds
            } else {
                1.0
            }
        })
    }
}

/// One hot-path throughput measurement: how many pictures per second a
/// named configuration schedules.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThroughputRecord {
    /// Configuration label, e.g. `hotpath_synthetic_1M_H32_engine`.
    pub name: String,
    /// Pictures scheduled.
    pub pictures: u64,
    /// Wall-clock seconds.
    pub wall_seconds: f64,
    /// `pictures / wall_seconds`.
    pub pictures_per_sec: f64,
    /// Worker threads the measurement used (1 = serial hot path).
    pub threads: usize,
}

impl ThroughputRecord {
    /// Builds a record from raw counts, deriving the rate.
    pub fn new(name: &str, pictures: u64, wall_seconds: f64, threads: usize) -> Self {
        ThroughputRecord {
            name: name.to_string(),
            pictures,
            wall_seconds,
            pictures_per_sec: if wall_seconds > 0.0 {
                pictures as f64 / wall_seconds
            } else {
                0.0
            },
            threads,
        }
    }
}

/// One multiplexer-throughput measurement: how fast a named source
/// ensemble sweeps through the mux layer, and how the streaming engine
/// compares to the frozen quadratic `mux::reference` when the latter was
/// cheap enough to time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MuxThroughputRecord {
    /// Configuration label, e.g. `mux_synthetic_S1000`.
    pub name: String,
    /// Sources feeding the multiplexer.
    pub sources: usize,
    /// Total rate-function breakpoints processed (the sweep's `T`).
    pub events: u64,
    /// Streaming-engine wall seconds (min over repeats).
    pub wall_seconds: f64,
    /// `events / wall_seconds`.
    pub events_per_sec: f64,
    /// Frozen `mux::reference` wall seconds (min over repeats), when the
    /// quadratic oracle was affordable at this scale.
    #[serde(default)]
    pub reference_seconds: Option<f64>,
    /// `reference_seconds / wall_seconds`, when both were measured.
    #[serde(default)]
    pub speedup: Option<f64>,
    /// Worker threads the engine measurement used.
    pub threads: usize,
}

impl MuxThroughputRecord {
    /// Builds a record from raw measurements, deriving the rates.
    pub fn new(
        name: &str,
        sources: usize,
        events: u64,
        wall_seconds: f64,
        reference_seconds: Option<f64>,
        threads: usize,
    ) -> Self {
        MuxThroughputRecord {
            name: name.to_string(),
            sources,
            events,
            wall_seconds,
            events_per_sec: if wall_seconds > 0.0 {
                events as f64 / wall_seconds
            } else {
                0.0
            },
            reference_seconds,
            speedup: reference_seconds.map(|r| {
                if wall_seconds > 0.0 {
                    r / wall_seconds
                } else {
                    0.0
                }
            }),
            threads,
        }
    }
}

/// One session-engine throughput measurement: how many aggregate
/// picture decisions per second a fleet of concurrent live sessions
/// sustains through lockstep ticks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionThroughputRecord {
    /// Configuration label, e.g. `sessions_synthetic_S1000000`.
    pub name: String,
    /// Concurrent sessions in the fleet.
    pub sessions: usize,
    /// Lockstep ticks (pictures fed per session).
    pub ticks: u64,
    /// Total picture decisions made across the fleet.
    pub decisions: u64,
    /// Wall-clock seconds (min over repeats).
    pub wall_seconds: f64,
    /// `decisions / wall_seconds`.
    pub decisions_per_second: f64,
    /// Worker threads the measurement used (1 = serial).
    pub threads: usize,
}

impl SessionThroughputRecord {
    /// Builds a record from raw counts, deriving the rate.
    pub fn new(
        name: &str,
        sessions: usize,
        ticks: u64,
        decisions: u64,
        wall_seconds: f64,
        threads: usize,
    ) -> Self {
        SessionThroughputRecord {
            name: name.to_string(),
            sessions,
            ticks,
            decisions,
            wall_seconds,
            decisions_per_second: if wall_seconds > 0.0 {
                decisions as f64 / wall_seconds
            } else {
                0.0
            },
            threads,
        }
    }
}

/// The on-disk `BENCH_sweep.json` document.
///
/// Fields added after the first release carry `#[serde(default)]` so old
/// reports still load.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepBenchReport {
    /// Worker threads the timed runs used.
    pub threads: usize,
    /// Where `threads` came from: `"flag"`, `"env"`, or `"cores"`.
    #[serde(default)]
    pub thread_source: String,
    /// Cores the machine reported at run time.
    pub available_cores: usize,
    /// Commit the numbers were measured at (`git rev-parse HEAD`), empty
    /// when git was unavailable.
    #[serde(default)]
    pub git_commit: String,
    pub figures: Vec<FigureTiming>,
    /// Hot-path throughput measurements (see [`ThroughputRecord`]).
    #[serde(default)]
    pub throughput: Vec<ThroughputRecord>,
    /// Multiplexer-sweep throughput measurements (see
    /// [`MuxThroughputRecord`]); shares the report-level provenance
    /// fields (`git_commit`, `thread_source`, `available_cores`).
    #[serde(default)]
    pub mux_throughput: Vec<MuxThroughputRecord>,
    /// Session-engine throughput measurements (see
    /// [`SessionThroughputRecord`]); shares the report-level provenance
    /// fields.
    #[serde(default)]
    pub session_throughput: Vec<SessionThroughputRecord>,
    pub total_seconds: f64,
}

impl SweepBenchReport {
    pub fn new(threads: usize) -> Self {
        Self::with_thread_source(threads, ThreadSource::Flag)
    }

    /// Creates a report recording both the worker count and how it was
    /// chosen, plus the current git commit when resolvable.
    pub fn with_thread_source(threads: usize, source: ThreadSource) -> Self {
        SweepBenchReport {
            threads,
            thread_source: source.as_str().to_string(),
            available_cores: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            git_commit: current_git_commit().unwrap_or_default(),
            figures: Vec::new(),
            throughput: Vec::new(),
            mux_throughput: Vec::new(),
            session_throughput: Vec::new(),
            total_seconds: 0.0,
        }
    }

    /// Appends a throughput measurement.
    pub fn record_throughput(&mut self, record: ThroughputRecord) {
        self.throughput.push(record);
    }

    /// Appends a multiplexer-throughput measurement.
    pub fn record_mux_throughput(&mut self, record: MuxThroughputRecord) {
        self.mux_throughput.push(record);
    }

    /// Appends a session-engine throughput measurement.
    pub fn record_session_throughput(&mut self, record: SessionThroughputRecord) {
        self.session_throughput.push(record);
    }

    /// Times `f`, records it under `name`, and returns its output.
    pub fn time<R>(&mut self, name: &str, f: impl FnOnce() -> R) -> R {
        let t0 = Instant::now();
        let out = f();
        let dt = t0.elapsed().as_secs_f64();
        self.figures.push(FigureTiming {
            name: name.to_string(),
            wall_seconds: dt,
            serial_seconds: None,
        });
        self.total_seconds += dt;
        out
    }

    /// Attaches a serial-baseline wall time to an already-recorded figure.
    pub fn set_serial_baseline(&mut self, name: &str, serial_seconds: f64) {
        if let Some(fig) = self.figures.iter_mut().find(|f| f.name == name) {
            fig.serial_seconds = Some(serial_seconds);
        }
    }

    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }

    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    pub fn load(path: &Path) -> std::io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        serde_json::from_str(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }
}

/// `git rev-parse HEAD` of the working directory, if git is present and
/// this is a repository.
pub fn current_git_commit() -> Option<String> {
    let out = Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    let hash = String::from_utf8(out.stdout).ok()?.trim().to_string();
    if hash.is_empty() {
        None
    } else {
        Some(hash)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_round_trips_through_json() {
        let mut report = SweepBenchReport::with_thread_source(4, ThreadSource::Env);
        let x = report.time("fig7", || 41 + 1);
        assert_eq!(x, 42);
        report.time("fig8", || ());
        report.set_serial_baseline("fig7", 2.0);
        report.record_throughput(ThroughputRecord::new("hotpath", 1_000_000, 0.5, 1));
        report.record_mux_throughput(MuxThroughputRecord::new(
            "mux_synthetic_S1000",
            1000,
            64_000,
            0.004,
            Some(1.2),
            1,
        ));
        report.record_session_throughput(SessionThroughputRecord::new(
            "sessions_synthetic_S1000000",
            1_000_000,
            32,
            32_000_000,
            4.0,
            1,
        ));
        assert_eq!(report.figures.len(), 2);
        assert!(report.total_seconds >= 0.0);
        assert_eq!(report.thread_source, "env");

        let json = report.to_json();
        let back: SweepBenchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
        assert!(back.figures[0].serial_seconds.is_some());
        assert!(back.figures[1].serial_seconds.is_none());
        assert_eq!(back.throughput.len(), 1);
        assert!((back.throughput[0].pictures_per_sec - 2_000_000.0).abs() < 1e-6);
        assert_eq!(back.mux_throughput.len(), 1);
        let mux = &back.mux_throughput[0];
        assert_eq!(mux.sources, 1000);
        assert!((mux.events_per_sec - 16_000_000.0).abs() < 1e-3);
        assert!((mux.speedup.unwrap() - 300.0).abs() < 1e-9);
        assert_eq!(back.session_throughput.len(), 1);
        let sess = &back.session_throughput[0];
        assert_eq!(sess.sessions, 1_000_000);
        assert!((sess.decisions_per_second - 8_000_000.0).abs() < 1e-3);
    }

    #[test]
    fn mux_record_without_reference_has_no_speedup() {
        let r = MuxThroughputRecord::new("mux_synthetic_S10000", 10_000, 640_000, 0.05, None, 1);
        assert_eq!(r.reference_seconds, None);
        assert_eq!(r.speedup, None);
        assert!((r.events_per_sec - 12_800_000.0).abs() < 1e-3);
    }

    #[test]
    fn old_reports_without_new_fields_still_load() {
        // The pre-PR on-disk schema: no thread_source, git_commit, or
        // throughput keys.
        let legacy = r#"{
            "threads": 2,
            "available_cores": 1,
            "figures": [
                {"name": "fig7", "wall_seconds": 1.5, "serial_seconds": 3.0}
            ],
            "total_seconds": 1.5
        }"#;
        let report: SweepBenchReport = serde_json::from_str(legacy).unwrap();
        assert_eq!(report.threads, 2);
        assert_eq!(report.thread_source, "");
        assert_eq!(report.git_commit, "");
        assert!(report.throughput.is_empty());
        assert!(report.mux_throughput.is_empty());
        assert!(report.session_throughput.is_empty());
    }

    #[test]
    fn zero_wall_seconds_gives_zero_rate() {
        let r = ThroughputRecord::new("degenerate", 10, 0.0, 1);
        assert_eq!(r.pictures_per_sec, 0.0);
    }

    #[test]
    fn speedup_needs_both_measurements() {
        let fig = FigureTiming {
            name: "f".into(),
            wall_seconds: 1.0,
            serial_seconds: Some(3.0),
        };
        assert_eq!(fig.speedup(), Some(3.0));
        let fig = FigureTiming {
            name: "f".into(),
            wall_seconds: 1.0,
            serial_seconds: None,
        };
        assert_eq!(fig.speedup(), None);
    }
}
