//! Deterministic parallel sweep engine.
//!
//! The paper's evaluation (Figures 4–8, the multiplexing study, the
//! parameter ablations) is a grid of *independent* smoothing runs:
//! sequences × (D, K, H) × buffer sizes × source counts. This crate
//! expresses "run [`smooth_with`] over a grid" as a parallel map with
//! **deterministic, index-ordered result collection**: output is
//! byte-identical to a serial run regardless of thread count or
//! scheduling, because each job's result is placed by its input index and
//! nothing about a job depends on execution order.
//!
//! The executor is a scoped-thread work-stealing loop over
//! [`std::thread::scope`] rather than `rayon`: this build environment is
//! hermetic (no crates.io), so the dependency is vendored in spirit — the
//! API mirrors a `par_iter().map().collect()` at the one call shape the
//! workspace needs. Swapping the internals for rayon later only touches
//! [`par_map`].
//!
//! Thread-count resolution order: explicit argument, else a process-wide
//! override ([`set_default_threads`], what `--threads` flags set), else
//! the `SMOOTH_THREADS` environment variable, else all cores
//! ([`std::thread::available_parallelism`]).

use std::sync::atomic::{AtomicUsize, Ordering};

use smooth_core::estimate::SizeEstimator;
use smooth_core::{smooth_with, RateSelection, SmootherParams, SmoothingResult};
use smooth_trace::VideoTrace;

pub mod bench;

/// Process-wide thread-count override; 0 means unset.
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Sets (n > 0) or clears (n = 0) the process-wide default worker count.
/// Because sweep output is deterministic, changing this mid-process never
/// changes any result — only how fast it arrives.
pub fn set_default_threads(n: usize) {
    GLOBAL_THREADS.store(n, Ordering::Relaxed);
}

/// Default worker count: the [`set_default_threads`] override if set,
/// else `SMOOTH_THREADS` if set and positive, else all available cores.
pub fn default_threads() -> usize {
    let global = GLOBAL_THREADS.load(Ordering::Relaxed);
    if global > 0 {
        return global;
    }
    if let Ok(v) = std::env::var("SMOOTH_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Resolves an optional user-facing thread request (`--threads`):
/// `None` or `Some(0)` mean "use the default".
pub fn resolve_threads(requested: Option<usize>) -> usize {
    match requested {
        Some(n) if n > 0 => n,
        _ => default_threads(),
    }
}

/// Applies `f` to every item and collects results **in input order**.
///
/// Work distribution is dynamic (an atomic cursor, so long jobs do not
/// stall a fixed chunk), but each result is stored at its item's index —
/// the output is identical to `items.iter().enumerate().map(f).collect()`
/// for any `threads`. With `threads <= 1` (or one item) it *is* that
/// serial loop, on the calling thread.
///
/// Panics in `f` propagate to the caller.
pub fn par_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let workers = threads.max(1).min(n.max(1));
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let cursor = AtomicUsize::new(0);
    let buckets: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i, &items[i])));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    });

    // Index-ordered placement: determinism independent of scheduling.
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for bucket in buckets {
        for (i, r) in bucket {
            debug_assert!(slots[i].is_none(), "index {i} produced twice");
            slots[i] = Some(r);
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index is claimed exactly once"))
        .collect()
}

/// One cell of a smoothing sweep: a trace paired with parameters.
#[derive(Clone)]
pub struct SweepJob<'a> {
    pub trace: &'a VideoTrace,
    pub params: SmootherParams,
}

/// Runs [`smooth_with`] over explicit (trace, params) jobs in parallel;
/// results arrive in job order.
pub fn smooth_jobs(
    threads: usize,
    jobs: &[SweepJob<'_>],
    estimator: &(dyn SizeEstimator + Sync),
    selection: RateSelection,
) -> Vec<SmoothingResult> {
    par_map(threads, jobs, |_, job| {
        smooth_with(job.trace, job.params, estimator, selection)
    })
}

/// Runs [`smooth_with`] over the full cross product `traces × params`,
/// row-major (all parameter points of `traces[0]`, then `traces[1]`, ...).
pub fn smooth_grid(
    threads: usize,
    traces: &[&VideoTrace],
    params: &[SmootherParams],
    estimator: &(dyn SizeEstimator + Sync),
    selection: RateSelection,
) -> Vec<SmoothingResult> {
    let jobs: Vec<SweepJob<'_>> = traces
        .iter()
        .flat_map(|t| {
            params.iter().map(move |&p| SweepJob {
                trace: t,
                params: p,
            })
        })
        .collect();
    smooth_jobs(threads, &jobs, estimator, selection)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smooth_core::estimate::PatternEstimator;
    use smooth_mpeg::{GopPattern, PictureType, Resolution};

    fn trace(n: usize, seed: u64) -> VideoTrace {
        let pattern = GopPattern::new(3, 9).unwrap();
        let sizes: Vec<u64> = (0..n)
            .map(|i| match pattern.type_at(i) {
                PictureType::I => 180_000 + (i as u64 * 31 + seed) % 40_000,
                PictureType::P => 80_000 + (i as u64 * 17 + seed) % 20_000,
                PictureType::B => 16_000 + (i as u64 * 7 + seed) % 8_000,
            })
            .collect();
        VideoTrace::new("sweep-test", pattern, Resolution::VGA, 30.0, sizes).unwrap()
    }

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 2, 3, 8, 64] {
            let out = par_map(threads, &items, |i, &x| {
                assert_eq!(i, x);
                x * x
            });
            assert_eq!(out, items.iter().map(|x| x * x).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(8, &empty, |_, &x| x).is_empty());
        assert_eq!(par_map(8, &[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn grid_results_are_identical_across_thread_counts() {
        let t0 = trace(120, 1);
        let t1 = trace(120, 2);
        let traces = [&t0, &t1];
        let params: Vec<SmootherParams> = [(0.1, 1, 9), (0.2, 1, 9), (0.2, 3, 18)]
            .iter()
            .map(|&(d, k, h)| SmootherParams::at_30fps(d, k, h).unwrap())
            .collect();
        let est = PatternEstimator::default();

        let serial = smooth_grid(1, &traces, &params, &est, RateSelection::Basic);
        for threads in [2, 4, 16] {
            let parallel = smooth_grid(threads, &traces, &params, &est, RateSelection::Basic);
            assert_eq!(serial, parallel, "threads={threads}");
        }
        assert_eq!(serial.len(), traces.len() * params.len());
    }

    #[test]
    fn grid_is_row_major() {
        let t0 = trace(30, 1);
        let t1 = trace(30, 9);
        let params = [
            SmootherParams::at_30fps(0.1, 1, 9).unwrap(),
            SmootherParams::at_30fps(0.2, 1, 9).unwrap(),
        ];
        let est = PatternEstimator::default();
        let out = smooth_grid(4, &[&t0, &t1], &params, &est, RateSelection::Basic);
        assert_eq!(out[0].params, params[0]);
        assert_eq!(out[1].params, params[1]);
        // Rows 2,3 are the second trace: same params again, different data.
        assert_eq!(out[2].params, params[0]);
        assert_ne!(out[0].schedule, out[2].schedule);
    }

    #[test]
    fn resolve_threads_prefers_explicit() {
        assert_eq!(resolve_threads(Some(3)), 3);
        assert!(resolve_threads(None) >= 1);
        assert!(resolve_threads(Some(0)) >= 1);
    }
}
