//! Deterministic parallel sweep engine.
//!
//! The paper's evaluation (Figures 4–8, the multiplexing study, the
//! parameter ablations) is a grid of *independent* smoothing runs:
//! sequences × (D, K, H) × buffer sizes × source counts. This crate
//! expresses "run [`smooth_with`] over a grid" as a parallel map with
//! **deterministic, index-ordered result collection**: output is
//! byte-identical to a serial run regardless of thread count or
//! scheduling, because each job's result is placed by its input index and
//! nothing about a job depends on execution order.
//!
//! The executor is a scoped-thread work-stealing loop over
//! [`std::thread::scope`] rather than `rayon`: this build environment is
//! hermetic (no crates.io), so the dependency is vendored in spirit — the
//! API mirrors a `par_iter().map().collect()` at the one call shape the
//! workspace needs. Swapping the internals for rayon later only touches
//! [`par_map_with`] (which [`par_map`] and [`smooth_batch`] wrap).
//!
//! Thread-count resolution order: explicit argument, else a process-wide
//! override ([`set_default_threads`], what `--threads` flags set), else
//! the `SMOOTH_THREADS` environment variable, else all cores
//! ([`std::thread::available_parallelism`]).

// `unsafe` is denied everywhere except the one hand-declared
// `sched_setaffinity` FFI call in [`place`], which scopes an `allow`
// and documents its safety argument; nested unsafe operations always
// need their own block.
#![deny(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use smooth_core::estimate::SizeEstimator;
use smooth_core::{
    smooth_with, smooth_with_scratch, RateSelection, SmoothScratch, SmootherParams, SmoothingResult,
};
use smooth_trace::VideoTrace;

pub mod bench;
pub mod place;
pub mod reduce;

pub use place::{
    logical_cores, par_map_pinned, physical_cores, pin_current_thread, pinning_supported,
};
pub use reduce::{ShardPlan, SumTree};

/// Process-wide thread-count override; 0 means unset.
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Sets (n > 0) or clears (n = 0) the process-wide default worker count.
/// Because sweep output is deterministic, changing this mid-process never
/// changes any result — only how fast it arrives.
pub fn set_default_threads(n: usize) {
    GLOBAL_THREADS.store(n, Ordering::Relaxed);
}

/// Default worker count: the [`set_default_threads`] override if set,
/// else `SMOOTH_THREADS` if set and positive, else all available cores.
pub fn default_threads() -> usize {
    resolve_threads_with_source(None).0
}

/// Resolves an optional user-facing thread request (`--threads`):
/// `None` or `Some(0)` mean "use the default".
pub fn resolve_threads(requested: Option<usize>) -> usize {
    resolve_threads_with_source(requested).0
}

/// Where a resolved worker count came from — recorded in
/// `BENCH_sweep.json` so a report can never claim a thread count the
/// machine does not explain (e.g. `threads: 2` next to
/// `available_cores: 1` with no hint that a flag forced it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadSource {
    /// An explicit request (a `--threads` flag or API argument), including
    /// a [`set_default_threads`] override installed by a flag.
    Flag,
    /// The `SMOOTH_THREADS` environment variable.
    Env,
    /// [`std::thread::available_parallelism`] (or 1 if unknown).
    Cores,
}

impl ThreadSource {
    /// Stable lowercase label used in reports.
    pub fn as_str(self) -> &'static str {
        match self {
            ThreadSource::Flag => "flag",
            ThreadSource::Env => "env",
            ThreadSource::Cores => "cores",
        }
    }
}

/// [`resolve_threads`] plus the provenance of the returned count.
pub fn resolve_threads_with_source(requested: Option<usize>) -> (usize, ThreadSource) {
    if let Some(n) = requested {
        if n > 0 {
            return (n, ThreadSource::Flag);
        }
    }
    let global = GLOBAL_THREADS.load(Ordering::Relaxed);
    if global > 0 {
        return (global, ThreadSource::Flag);
    }
    if let Ok(v) = std::env::var("SMOOTH_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return (n, ThreadSource::Env);
            }
        }
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    (cores, ThreadSource::Cores)
}

/// Applies `f` to every item and collects results **in input order**.
///
/// Work distribution is dynamic (an atomic cursor, so long jobs do not
/// stall a fixed chunk), but each result is stored at its item's index —
/// the output is identical to `items.iter().enumerate().map(f).collect()`
/// for any `threads`. With `threads <= 1` (or one item) it *is* that
/// serial loop, on the calling thread.
///
/// Panics in `f` propagate to the caller.
pub fn par_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_with(threads, items, || (), |_, i, t| f(i, t))
}

/// [`par_map`] with per-worker state: each worker calls `init` once and
/// threads the resulting value through every job it claims.
///
/// Determinism is unchanged — results are placed by input index, and the
/// contract on `f` is that its *output* must not depend on the state's
/// history (state is scratch memory, not an accumulator). This is the
/// hook [`smooth_batch`] uses to give every worker one reused
/// [`SmoothScratch`], so the per-picture hot path allocates nothing no
/// matter how jobs are distributed.
pub fn par_map_with<T, R, S, I, F>(threads: usize, items: &[T], init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    let n = items.len();
    let workers = threads.max(1).min(n.max(1));
    if workers <= 1 {
        let mut state = init();
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| f(&mut state, i, t))
            .collect();
    }

    let cursor = AtomicUsize::new(0);
    let buckets: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut state = init();
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(&mut state, i, &items[i])));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    });

    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for bucket in buckets {
        for (i, r) in bucket {
            debug_assert!(slots[i].is_none(), "index {i} produced twice");
            slots[i] = Some(r);
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index is claimed exactly once"))
        .collect()
}

/// One cell of a smoothing sweep: a trace paired with parameters.
#[derive(Clone)]
pub struct SweepJob<'a> {
    pub trace: &'a VideoTrace,
    pub params: SmootherParams,
}

/// Runs [`smooth_with`] over explicit (trace, params) jobs in parallel;
/// results arrive in job order.
pub fn smooth_jobs(
    threads: usize,
    jobs: &[SweepJob<'_>],
    estimator: &(dyn SizeEstimator + Sync),
    selection: RateSelection,
) -> Vec<SmoothingResult> {
    par_map(threads, jobs, |_, job| {
        smooth_with(job.trace, job.params, estimator, selection)
    })
}

/// Runs [`smooth_with`] over the full cross product `traces × params`,
/// row-major (all parameter points of `traces[0]`, then `traces[1]`, ...).
pub fn smooth_grid(
    threads: usize,
    traces: &[&VideoTrace],
    params: &[SmootherParams],
    estimator: &(dyn SizeEstimator + Sync),
    selection: RateSelection,
) -> Vec<SmoothingResult> {
    let jobs: Vec<SweepJob<'_>> = traces
        .iter()
        .flat_map(|t| {
            params.iter().map(move |&p| SweepJob {
                trace: t,
                params: p,
            })
        })
        .collect();
    smooth_jobs(threads, &jobs, estimator, selection)
}

/// Aggregate throughput of one [`smooth_batch`] call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchStats {
    /// Jobs executed.
    pub jobs: usize,
    /// Total pictures scheduled across all jobs.
    pub pictures: u64,
    /// Wall-clock seconds for the whole batch.
    pub wall_seconds: f64,
    /// Worker threads used.
    pub threads: usize,
}

impl BatchStats {
    /// Aggregate pictures scheduled per wall-clock second.
    pub fn pictures_per_sec(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.pictures as f64 / self.wall_seconds
        } else {
            0.0
        }
    }
}

/// Smooths many (trace, params) jobs with the paper's defaults, sharding
/// across `threads` deterministic workers that each reuse one
/// [`SmoothScratch`], and reports aggregate throughput.
///
/// Results arrive in job order and are bit-identical for every thread
/// count (the `batch_is_thread_count_invariant` proptest pins this); only
/// [`BatchStats::wall_seconds`] varies between runs.
pub fn smooth_batch(threads: usize, jobs: &[SweepJob<'_>]) -> (Vec<SmoothingResult>, BatchStats) {
    let t0 = Instant::now();
    let results = par_map_with(threads, jobs, SmoothScratch::new, |scratch, _, job| {
        smooth_with_scratch(job.trace, job.params, scratch)
    });
    let stats = BatchStats {
        jobs: jobs.len(),
        pictures: jobs.iter().map(|j| j.trace.len() as u64).sum(),
        wall_seconds: t0.elapsed().as_secs_f64(),
        threads: threads.max(1),
    };
    (results, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smooth_core::estimate::PatternEstimator;
    use smooth_mpeg::{GopPattern, PictureType, Resolution};

    fn trace(n: usize, seed: u64) -> VideoTrace {
        let pattern = GopPattern::new(3, 9).unwrap();
        let sizes: Vec<u64> = (0..n)
            .map(|i| match pattern.type_at(i) {
                PictureType::I => 180_000 + (i as u64 * 31 + seed) % 40_000,
                PictureType::P => 80_000 + (i as u64 * 17 + seed) % 20_000,
                PictureType::B => 16_000 + (i as u64 * 7 + seed) % 8_000,
            })
            .collect();
        VideoTrace::new("sweep-test", pattern, Resolution::VGA, 30.0, sizes).unwrap()
    }

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 2, 3, 8, 64] {
            let out = par_map(threads, &items, |i, &x| {
                assert_eq!(i, x);
                x * x
            });
            assert_eq!(out, items.iter().map(|x| x * x).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(8, &empty, |_, &x| x).is_empty());
        assert_eq!(par_map(8, &[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn grid_results_are_identical_across_thread_counts() {
        let t0 = trace(120, 1);
        let t1 = trace(120, 2);
        let traces = [&t0, &t1];
        let params: Vec<SmootherParams> = [(0.1, 1, 9), (0.2, 1, 9), (0.2, 3, 18)]
            .iter()
            .map(|&(d, k, h)| SmootherParams::at_30fps(d, k, h).unwrap())
            .collect();
        let est = PatternEstimator::default();

        let serial = smooth_grid(1, &traces, &params, &est, RateSelection::Basic);
        for threads in [2, 4, 16] {
            let parallel = smooth_grid(threads, &traces, &params, &est, RateSelection::Basic);
            assert_eq!(serial, parallel, "threads={threads}");
        }
        assert_eq!(serial.len(), traces.len() * params.len());
    }

    #[test]
    fn grid_is_row_major() {
        let t0 = trace(30, 1);
        let t1 = trace(30, 9);
        let params = [
            SmootherParams::at_30fps(0.1, 1, 9).unwrap(),
            SmootherParams::at_30fps(0.2, 1, 9).unwrap(),
        ];
        let est = PatternEstimator::default();
        let out = smooth_grid(4, &[&t0, &t1], &params, &est, RateSelection::Basic);
        assert_eq!(out[0].params, params[0]);
        assert_eq!(out[1].params, params[1]);
        // Rows 2,3 are the second trace: same params again, different data.
        assert_eq!(out[2].params, params[0]);
        assert_ne!(out[0].schedule, out[2].schedule);
    }

    #[test]
    fn resolve_threads_prefers_explicit() {
        assert_eq!(resolve_threads(Some(3)), 3);
        assert!(resolve_threads(None) >= 1);
        assert!(resolve_threads(Some(0)) >= 1);
    }

    #[test]
    fn resolve_threads_reports_source() {
        assert_eq!(
            resolve_threads_with_source(Some(3)),
            (3, ThreadSource::Flag)
        );
        let (n, src) = resolve_threads_with_source(None);
        assert!(n >= 1);
        // Without an explicit request the source is whatever the process
        // environment dictates — never Flag unless an override is set.
        if GLOBAL_THREADS.load(Ordering::Relaxed) == 0 {
            assert_ne!(src, ThreadSource::Flag);
        }
        assert_eq!(ThreadSource::Cores.as_str(), "cores");
        assert_eq!(ThreadSource::Env.as_str(), "env");
        assert_eq!(ThreadSource::Flag.as_str(), "flag");
    }

    #[test]
    fn par_map_with_reuses_state_within_worker() {
        let items: Vec<usize> = (0..50).collect();
        // State counts how many jobs this worker has run; output must not
        // depend on it (the contract), but we can observe reuse serially.
        let out = par_map_with(
            1,
            &items,
            || 0usize,
            |seen, i, &x| {
                *seen += 1;
                assert_eq!(*seen, i + 1, "serial worker sees every job");
                x * 2
            },
        );
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn batch_matches_smooth_jobs_for_any_thread_count() {
        let t0 = trace(120, 3);
        let t1 = trace(90, 8);
        let jobs: Vec<SweepJob<'_>> = [
            (&t0, SmootherParams::at_30fps(0.1, 1, 9).unwrap()),
            (&t1, SmootherParams::at_30fps(0.2, 1, 9).unwrap()),
            (&t0, SmootherParams::at_30fps(0.2, 3, 18).unwrap()),
        ]
        .into_iter()
        .map(|(trace, params)| SweepJob { trace, params })
        .collect();
        let est = PatternEstimator::default();
        let expected = smooth_jobs(1, &jobs, &est, RateSelection::Basic);
        for threads in [1, 2, 4] {
            let (got, stats) = smooth_batch(threads, &jobs);
            assert_eq!(got, expected, "threads={threads}");
            assert_eq!(stats.jobs, 3);
            assert_eq!(stats.pictures, 120 + 90 + 120);
            assert!(stats.pictures_per_sec() > 0.0);
        }
    }
}
