//! The `mpeg-smooth` command-line entry point; the logic lives in
//! `mpeg_smooth::cli` so the test suite can exercise it in-process.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout();
    match mpeg_smooth::cli::run(&args, &mut stdout) {
        Ok(code) => std::process::exit(code),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}
