//! # mpeg-smooth
//!
//! A production-quality Rust reproduction of
//! **"An Algorithm for Lossless Smoothing of MPEG Video"**
//! (Simon S. Lam, Simon Chow, David K. Y. Yau — ACM SIGCOMM '94).
//!
//! MPEG's interframe compression makes consecutive coded pictures differ
//! in size by an order of magnitude, so a constant picture rate produces
//! a wildly fluctuating bit rate. This workspace implements the paper's
//! sender-side **lossless smoothing algorithm** — which buffers pictures
//! and picks per-picture sending rates that provably respect a delay
//! bound `D` while keeping the server busy and the rate nearly constant —
//! together with every substrate needed to reproduce the paper's entire
//! evaluation.
//!
//! This umbrella crate re-exports the five member crates:
//!
//! * [`mpeg`] (`smooth-mpeg`) — picture types, GOP patterns, transmission
//!   reordering, a structural MPEG-1 bitstream writer/parser, and the
//!   calibrated synthetic encoder;
//! * [`trace`] (`smooth-trace`) — the four paper video sequences and
//!   trace I/O;
//! * [`core`] (`smooth-core`) — the smoothing algorithm, Theorem 1
//!   verification, ideal/a-priori/unsmoothed baselines, and a streaming
//!   interface;
//! * [`metrics`] (`smooth-metrics`) — step functions and the paper's four
//!   smoothness measures;
//! * [`netsim`] (`smooth-netsim`) — an ATM-style packetizer and
//!   finite-buffer multiplexer demonstrating the statistical-multiplexing
//!   motivation;
//! * [`engine`] (`smooth-engine`) — the million-session fleet engine:
//!   up to 1M concurrent live smoothing sessions advanced in lockstep
//!   picture ticks with bounded per-session memory (the `sessions` CLI
//!   subcommand drives it).
//!
//! ## Sixty seconds to smoothed video
//!
//! ```
//! use mpeg_smooth::prelude::*;
//!
//! // One of the paper's sequences (synthetic regeneration, see DESIGN.md).
//! let video = driving1();
//!
//! // The paper's recommended parameters: K = 1, H = N, D = 0.2 s.
//! let params = SmootherParams::recommended(video.pattern.n());
//! let result = smooth(&video, params);
//!
//! // Theorem 1 in action:
//! assert_eq!(result.delay_violations(), 0);
//! assert!(result.continuous_service());
//!
//! // And the point of it all — the peak network rate collapses:
//! let m = measure(&video, &result);
//! assert!(m.max_rate_bps < 0.5 * video.peak_picture_rate_bps());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cli;

pub use smooth_core as core;
pub use smooth_engine as engine;
pub use smooth_metrics as metrics;
pub use smooth_mpeg as mpeg;
pub use smooth_netsim as netsim;
pub use smooth_trace as trace;

/// One-stop imports for applications.
pub mod prelude {
    pub use smooth_core::{
        check_theorem1, ideal_smooth, ott_smooth, smooth, smooth_streaming, smooth_with,
        unsmoothed, OnlineSmoother, PatternEstimator, RateSelection, SmootherParams,
        SmoothingResult,
    };
    pub use smooth_metrics::{measure, rate_function, SmoothnessMeasures, StepFunction};
    pub use smooth_mpeg::{GopPattern, PictureType, Resolution};
    pub use smooth_trace::{
        analyze,
        sequences::{backyard, driving1, driving2, paper_sequences, tennis},
        VideoTrace,
    };
}
