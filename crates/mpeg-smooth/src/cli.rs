//! The `mpeg-smooth` command-line tool.
//!
//! Thin, dependency-free argument handling over the library:
//!
//! ```text
//! mpeg-smooth generate --sequence driving1 --out trace.csv
//! mpeg-smooth analyze  --trace trace.csv
//! mpeg-smooth smooth   --trace trace.csv --d 0.2 --k 1 --h 9 \
//!                      [--policy basic|moving-average] \
//!                      [--schedule out.csv] [--segments out.csv] [--json out.json]
//! mpeg-smooth sweep    --trace trace.csv --d 0.1,0.2,0.3 [--k 1,3] [--h 9,18] \
//!                      [--threads N] [--csv out.csv] \
//!                      [--sources N] [--capacity-mbps C] [--buffer-kbit B] [--mux-seed S]
//! mpeg-smooth verify   --trace trace.csv --d 0.2 --k 1 --h 9
//! mpeg-smooth sessions [--sessions N] [--pictures N] [--threads N] [--seed S]
//!                      [--classes 24:1,30:2]
//! mpeg-smooth churn    [--sessions N] [--seconds S] [--churn-ppm P] [--threads N]
//!                      [--seed S] [--classes 24:1,25:1,30:1,60:1] [--shard-size N]
//!                      [--batch B] [--repeats R] [--out BENCH_sweep.json]
//! mpeg-smooth scale    [--sessions N] [--pictures N] [--repeats R]
//!                      [--max-threads T] [--out BENCH_sweep.json]
//! ```
//!
//! The fleet commands (`sessions`, `churn`) print the decision digest on
//! a stable machine-parsable line — `fleet_digest=<16 hex digits>` — the
//! determinism witness scripts can grep for, identical for every thread
//! count.
//!
//! All functions take an output sink so the test suite can drive the CLI
//! without spawning processes.

use smooth_core::{check_theorem1, smooth_with, PatternEstimator, RateSelection, SmootherParams};
use smooth_metrics::{measure, schedule_to_csv, segments_to_csv};
use smooth_trace::{
    analyze, autocorrelation, generate, load_csv, save_csv, SequenceId, VideoTrace,
};
use std::fmt;
use std::io::Write;

/// CLI failure, carrying the message shown to the user.
#[derive(Debug)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

/// Parsed `--key value` options. Sub-commands take no positional
/// arguments, so any are rejected up front.
struct Options {
    pairs: Vec<(String, String)>,
    consumed: Vec<bool>,
}

impl Options {
    fn parse(args: &[String]) -> Result<Options, CliError> {
        let mut pairs = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                let value = it
                    .next()
                    .ok_or_else(|| err(format!("option --{key} requires a value")))?;
                pairs.push((key.to_string(), value.clone()));
            } else {
                return Err(err(format!("unexpected argument {a:?}")));
            }
        }
        let consumed = vec![false; pairs.len()];
        Ok(Options { pairs, consumed })
    }

    fn take(&mut self, key: &str) -> Option<String> {
        for (i, (k, v)) in self.pairs.iter().enumerate() {
            if k == key && !self.consumed[i] {
                self.consumed[i] = true;
                return Some(v.clone());
            }
        }
        None
    }

    fn take_parsed<T: std::str::FromStr>(&mut self, key: &str) -> Result<Option<T>, CliError> {
        match self.take(key) {
            None => Ok(None),
            Some(v) => v
                .parse::<T>()
                .map(Some)
                .map_err(|_| err(format!("--{key}: cannot parse {v:?}"))),
        }
    }

    fn finish(&self) -> Result<(), CliError> {
        for (i, (k, _)) in self.pairs.iter().enumerate() {
            if !self.consumed[i] {
                return Err(err(format!("unknown option --{k}")));
            }
        }
        Ok(())
    }
}

const USAGE: &str = "\
mpeg-smooth - lossless smoothing of MPEG video (Lam/Chow/Yau, SIGCOMM '94)

usage:
  mpeg-smooth generate --sequence <driving1|driving2|tennis|backyard>
                       [--pictures N] [--seed S] --out <trace.csv>
  mpeg-smooth analyze  --trace <trace.csv>
  mpeg-smooth smooth   --trace <trace.csv> --d <seconds> [--k K] [--h H]
                       [--policy basic|moving-average] [--grid <bps>]
                       [--schedule <out.csv>] [--segments <out.csv>] [--json <out.json>]
  mpeg-smooth sweep    --trace <trace.csv> --d <d1,d2,...> [--k <k1,k2,...>]
                       [--h <h1,h2,...>] [--threads N] [--csv <out.csv>]
                       [--sources N] [--capacity-mbps C] [--buffer-kbit B] [--mux-seed S]
  mpeg-smooth verify   --trace <trace.csv> --d <seconds> [--k K] [--h H]
  mpeg-smooth sessions [--sessions N] [--pictures N] [--threads N] [--seed S]
                       [--classes <fps:weight,...>]
                       [--mux-capacity-mbps C [--mux-buffer-kbit B]]
  mpeg-smooth churn    [--sessions N] [--seconds S] [--churn-ppm P] [--threads N]
                       [--seed S] [--classes <fps:weight,...>] [--shard-size N]
                       [--batch B] [--repeats R] [--out <BENCH_sweep.json>]
                       [--mux-capacity-mbps C [--mux-buffer-kbit B]]
  mpeg-smooth scale    [--sessions N] [--pictures N] [--repeats R]
                       [--max-threads T] [--out <BENCH_sweep.json>]
  mpeg-smooth help
";

/// Runs the CLI. Returns the process exit code.
pub fn run(args: &[String], out: &mut dyn Write) -> Result<i32, CliError> {
    let Some((command, rest)) = args.split_first() else {
        let _ = write!(out, "{USAGE}");
        return Ok(2);
    };
    match command.as_str() {
        "generate" => cmd_generate(rest, out),
        "analyze" => cmd_analyze(rest, out),
        "smooth" => cmd_smooth(rest, out),
        "sweep" => cmd_sweep(rest, out),
        "verify" => cmd_verify(rest, out),
        "sessions" => cmd_sessions(rest, out),
        "churn" => cmd_churn(rest, out),
        "scale" => cmd_scale(rest, out),
        "help" | "--help" | "-h" => {
            let _ = write!(out, "{USAGE}");
            Ok(0)
        }
        other => Err(err(format!(
            "unknown command {other:?}; try `mpeg-smooth help`"
        ))),
    }
}

fn sequence_by_name(name: &str) -> Result<SequenceId, CliError> {
    Ok(match name.to_ascii_lowercase().as_str() {
        "driving1" => SequenceId::Driving1,
        "driving2" => SequenceId::Driving2,
        "tennis" => SequenceId::Tennis,
        "backyard" => SequenceId::Backyard,
        other => return Err(err(format!("unknown sequence {other:?}"))),
    })
}

fn default_pictures(id: SequenceId) -> usize {
    match id {
        SequenceId::Backyard => 360,
        _ => 300,
    }
}

fn canonical_seed(id: SequenceId) -> u64 {
    match id {
        SequenceId::Driving1 | SequenceId::Driving2 => 0xD1,
        SequenceId::Tennis => 0x7E,
        SequenceId::Backyard => 0xBA,
    }
}

fn cmd_generate(args: &[String], out: &mut dyn Write) -> Result<i32, CliError> {
    let mut opts = Options::parse(args)?;
    let name = opts
        .take("sequence")
        .ok_or_else(|| err("generate requires --sequence"))?;
    let id = sequence_by_name(&name)?;
    let pictures = opts
        .take_parsed::<usize>("pictures")?
        .unwrap_or_else(|| default_pictures(id));
    let seed = opts
        .take_parsed::<u64>("seed")?
        .unwrap_or_else(|| canonical_seed(id));
    let path = opts
        .take("out")
        .ok_or_else(|| err("generate requires --out"))?;
    opts.finish()?;

    let trace = generate(id, pictures, seed);
    save_csv(&trace, &path).map_err(|e| err(format!("writing {path}: {e}")))?;
    let _ = writeln!(
        out,
        "wrote {} ({} pictures, pattern {}, {:.2} Mbps mean) to {path}",
        trace.name,
        trace.len(),
        trace.pattern,
        trace.mean_rate_bps() / 1e6
    );
    Ok(0)
}

fn load_trace(opts: &mut Options) -> Result<VideoTrace, CliError> {
    let path = opts
        .take("trace")
        .ok_or_else(|| err("missing --trace <file.csv>"))?;
    load_csv(&path).map_err(|e| err(format!("loading {path}: {e}")))
}

fn cmd_analyze(args: &[String], out: &mut dyn Write) -> Result<i32, CliError> {
    let mut opts = Options::parse(args)?;
    let trace = load_trace(&mut opts)?;
    opts.finish()?;

    let st = analyze(&trace);
    let _ = writeln!(
        out,
        "sequence : {} ({} pictures, pattern {})",
        trace.name,
        trace.len(),
        trace.pattern
    );
    let _ = writeln!(
        out,
        "I        : n={:4} mean={:9.0} min={:8} max={:8}",
        st.i.count, st.i.mean, st.i.min, st.i.max
    );
    let _ = writeln!(
        out,
        "P        : n={:4} mean={:9.0} min={:8} max={:8}",
        st.p.count, st.p.mean, st.p.min, st.p.max
    );
    let _ = writeln!(
        out,
        "B        : n={:4} mean={:9.0} min={:8} max={:8}",
        st.b.count, st.b.mean, st.b.min, st.b.max
    );
    let _ = writeln!(
        out,
        "rates    : mean {:.3} Mbps, peak {:.3} Mbps ({:.1}x)",
        st.mean_rate_bps / 1e6,
        st.peak_rate_bps / 1e6,
        st.peak_to_mean
    );
    let n = trace.pattern.n();
    let acf = autocorrelation(&trace, &[n, 2 * n]);
    if let Some(&(_, r)) = acf.first() {
        let _ = writeln!(out, "acf      : r(N)={r:.3}");
    }
    Ok(0)
}

/// Shared parameter parsing for `smooth` and `verify`.
fn params_from(opts: &mut Options, tau: f64) -> Result<SmootherParams, CliError> {
    let d = opts
        .take_parsed::<f64>("d")?
        .ok_or_else(|| err("missing --d <seconds> (the delay bound)"))?;
    let k = opts.take_parsed::<usize>("k")?.unwrap_or(1);
    let h = opts.take_parsed::<usize>("h")?.unwrap_or(0);
    // H defaults to N, but N is the caller's: 0 sentinel resolved there.
    SmootherParams::new(d, k, h.max(1), tau)
        .map_err(|e| err(e.to_string()))
        .map(|mut p| {
            if h == 0 {
                p.h = 0; // resolved by caller to N
            }
            p
        })
}

fn cmd_smooth(args: &[String], out: &mut dyn Write) -> Result<i32, CliError> {
    let mut opts = Options::parse(args)?;
    let trace = load_trace(&mut opts)?;
    let mut params = params_from(&mut opts, trace.tau())?;
    if params.h == 0 {
        params.h = trace.pattern.n();
    }
    if let Some(grid) = opts.take_parsed::<f64>("grid")? {
        if !(grid.is_finite() && grid > 0.0) {
            return Err(err(format!("--grid must be a positive rate, got {grid}")));
        }
        params = params.with_rate_grid(grid);
    }
    let policy = match opts.take("policy").as_deref() {
        None | Some("basic") => RateSelection::Basic,
        Some("moving-average") => RateSelection::MovingAverage,
        Some(other) => return Err(err(format!("unknown policy {other:?}"))),
    };
    let schedule_path = opts.take("schedule");
    let segments_path = opts.take("segments");
    let json_path = opts.take("json");
    opts.finish()?;

    let estimator = PatternEstimator::default();
    let result = smooth_with(&trace, params, &estimator, policy);
    let report = check_theorem1(&result);
    let m = measure(&trace, &result);

    let _ = writeln!(
        out,
        "smoothed {} pictures: D={:.4}s K={} H={} policy={:?}",
        trace.len(),
        params.delay_bound,
        params.k,
        params.h,
        policy
    );
    let _ = writeln!(
        out,
        "max delay {:.4}s ({} violations), {} rate changes, peak {:.3} Mbps, SD {:.1} kbps",
        report.max_delay,
        report.delay_violations,
        m.rate_changes,
        m.max_rate_bps / 1e6,
        m.std_dev_bps / 1e3
    );

    if let Some(p) = schedule_path {
        std::fs::write(&p, schedule_to_csv(&result))
            .map_err(|e| err(format!("writing {p}: {e}")))?;
        let _ = writeln!(out, "schedule -> {p}");
    }
    if let Some(p) = segments_path {
        std::fs::write(&p, segments_to_csv(&result.rate_segments()))
            .map_err(|e| err(format!("writing {p}: {e}")))?;
        let _ = writeln!(out, "segments -> {p}");
    }
    if let Some(p) = json_path {
        smooth_metrics::save_result_json(&result, &p)
            .map_err(|e| err(format!("writing {p}: {e}")))?;
        let _ = writeln!(out, "result -> {p}");
    }
    Ok(0)
}

/// Parses a comma-separated list option (`--d 0.1,0.2,0.3`).
fn take_list<T: std::str::FromStr>(
    opts: &mut Options,
    key: &str,
) -> Result<Option<Vec<T>>, CliError> {
    let Some(raw) = opts.take(key) else {
        return Ok(None);
    };
    let mut values = Vec::new();
    for part in raw.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        values.push(
            part.parse::<T>()
                .map_err(|_| err(format!("--{key}: cannot parse {part:?}")))?,
        );
    }
    if values.is_empty() {
        return Err(err(format!("--{key}: empty list")));
    }
    Ok(Some(values))
}

fn cmd_sweep(args: &[String], out: &mut dyn Write) -> Result<i32, CliError> {
    let mut opts = Options::parse(args)?;
    let trace = load_trace(&mut opts)?;
    let ds = take_list::<f64>(&mut opts, "d")?
        .ok_or_else(|| err("sweep requires --d <d1,d2,...> (delay bounds)"))?;
    let ks = take_list::<usize>(&mut opts, "k")?.unwrap_or_else(|| vec![1]);
    let hs = take_list::<usize>(&mut opts, "h")?.unwrap_or_else(|| vec![trace.pattern.n()]);
    let threads = smooth_sweep::resolve_threads(opts.take_parsed::<usize>("threads")?);
    let csv_path = opts.take("csv");
    let sources = opts.take_parsed::<usize>("sources")?;
    let capacity_mbps = opts.take_parsed::<f64>("capacity-mbps")?;
    let buffer_kbit = opts.take_parsed::<f64>("buffer-kbit")?;
    let mux_seed = opts.take_parsed::<u64>("mux-seed")?.unwrap_or(42);
    opts.finish()?;
    if sources.is_none() && (capacity_mbps.is_some() || buffer_kbit.is_some()) {
        return Err(err(
            "--capacity-mbps/--buffer-kbit only apply with --sources",
        ));
    }
    if sources == Some(0) {
        return Err(err("--sources: must be at least 1"));
    }

    // Cross product d × k × h; infeasible combinations (slack below
    // (K+1)τ) are skipped, not fatal — a sweep mixes K values on purpose.
    let mut grid: Vec<SmootherParams> = Vec::new();
    let mut skipped = 0usize;
    for &d in &ds {
        for &k in &ks {
            for &h in &hs {
                match SmootherParams::new(d, k, h.max(1), trace.tau()) {
                    Ok(p) => grid.push(p),
                    Err(_) => skipped += 1,
                }
            }
        }
    }
    if grid.is_empty() {
        return Err(err("sweep: every combination is infeasible"));
    }

    let estimator = PatternEstimator::default();
    let jobs: Vec<smooth_sweep::SweepJob<'_>> = grid
        .iter()
        .map(|&params| smooth_sweep::SweepJob {
            trace: &trace,
            params,
        })
        .collect();
    let t0 = std::time::Instant::now();
    let results = smooth_sweep::smooth_jobs(threads, &jobs, &estimator, RateSelection::Basic);
    let wall = t0.elapsed().as_secs_f64();
    let pictures = (grid.len() * trace.len()) as f64;
    let pps = if wall > 0.0 { pictures / wall } else { 0.0 };

    // Throughput shares the thread-count line: the thread-invariance test
    // strips lines containing "thread(s)", and wall time is the one thing
    // allowed to vary between runs.
    let _ = writeln!(
        out,
        "sweep: {} configs x {} pictures on {threads} thread(s){}, {pps:.0} pictures/s",
        grid.len(),
        trace.len(),
        if skipped > 0 {
            format!(" ({skipped} infeasible skipped)")
        } else {
            String::new()
        }
    );
    let header = [
        "D (s)",
        "K",
        "H",
        "max delay (s)",
        "violations",
        "rate changes",
        "peak Mbps",
        "SD kbps",
    ];
    let _ = writeln!(out, "{}", header.join(","));
    let mut csv = String::new();
    csv.push_str(&header.join(","));
    csv.push('\n');
    for (params, result) in grid.iter().zip(&results) {
        let m = measure(&trace, result);
        let line = format!(
            "{:.4},{},{},{:.4},{},{},{:.3},{:.1}",
            params.delay_bound,
            params.k,
            params.h,
            result.max_delay(),
            result.delay_violations(),
            m.rate_changes,
            m.max_rate_bps / 1e6,
            m.std_dev_bps / 1e3
        );
        let _ = writeln!(out, "{line}");
        csv.push_str(&line);
        csv.push('\n');
    }
    if let Some(p) = csv_path {
        std::fs::write(&p, csv).map_err(|e| err(format!("writing {p}: {e}")))?;
        let _ = writeln!(out, "sweep -> {p}");
    }

    // The mux-scale knob: feed each smoothed schedule to a finite-buffer
    // switch as `--sources` phase-staggered looping copies, through the
    // streaming k-way-merge engine. Stats are bit-identical for every
    // thread count (the engine's sharded reduction is deterministic), so
    // only the events/s line carries "thread(s)" for the invariance
    // tests to strip.
    if let Some(n) = sources {
        use smooth_metrics::rate_function;
        use smooth_netsim::{cyclic_wrap, RateSweep};
        use smooth_rng::Rng;

        let period = trace.duration();
        let capacity_bps = capacity_mbps
            .map(|c| c * 1e6)
            .unwrap_or_else(|| 1.1 * trace.mean_rate_bps() * n as f64);
        let buffer_bits = buffer_kbit.unwrap_or(100.0) * 1e3;
        if capacity_bps <= 0.0 {
            return Err(err("--capacity-mbps: must be positive"));
        }
        if buffer_bits < 0.0 {
            return Err(err("--buffer-kbit: must be non-negative"));
        }
        let _ = writeln!(
            out,
            "mux: {n} phase-staggered copies per config, capacity {:.2} Mbps, buffer {:.0} kbit",
            capacity_bps / 1e6,
            buffer_bits / 1e3
        );
        let header = [
            "D (s)",
            "K",
            "H",
            "loss ratio",
            "utilization",
            "max queue kbit",
        ];
        let _ = writeln!(out, "{}", header.join(","));
        let engine = RateSweep {
            capacity_bps,
            buffer_bits,
        };
        let t0 = std::time::Instant::now();
        let mut events = 0u64;
        for (params, result) in grid.iter().zip(&results) {
            let f = rate_function(result);
            let mut rng = Rng::seed_from_u64(mux_seed);
            let ensemble: Vec<smooth_metrics::StepFunction> = (0..n)
                .map(|_| cyclic_wrap(&f, rng.range_f64(0.0, period), period))
                .collect();
            events += ensemble
                .iter()
                .map(|g| g.breakpoints().len() as u64)
                .sum::<u64>();
            let stats = engine.run_threaded(&ensemble, 0.0, period, threads);
            let _ = writeln!(
                out,
                "{:.4},{},{},{:.6},{:.4},{:.1}",
                params.delay_bound,
                params.k,
                params.h,
                stats.loss_ratio(),
                stats.utilization,
                stats.max_queue_bits / 1e3
            );
        }
        let wall = t0.elapsed().as_secs_f64();
        let eps = if wall > 0.0 {
            events as f64 / wall
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "mux: {events} events on {threads} thread(s), {eps:.0} events/s"
        );
    }
    Ok(0)
}

/// Parses a `--classes` fps mix (`24:1,25:1,30:2`; the weight defaults
/// to 1) into [`smooth_engine::fps_class`] classes plus their weights.
/// Each fps must divide the scheduler clock
/// ([`smooth_engine::TICKS_PER_SEC`] = 600 ticks/s) so picture periods
/// are whole ticks.
fn parse_classes(raw: &str) -> Result<(Vec<smooth_engine::DynamicClass>, Vec<u32>), CliError> {
    use smooth_engine::{fps_class, TICKS_PER_SEC};

    let mut classes = Vec::new();
    let mut weights = Vec::new();
    for part in raw.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (fps_str, weight_str) = match part.split_once(':') {
            Some((f, w)) => (f, Some(w)),
            None => (part, None),
        };
        let fps: u64 = fps_str
            .parse()
            .map_err(|_| err(format!("--classes: cannot parse fps {fps_str:?}")))?;
        if fps == 0 || TICKS_PER_SEC % fps != 0 {
            return Err(err(format!(
                "--classes: fps {fps} does not divide the {TICKS_PER_SEC} ticks/s clock \
                 (try 24, 25, 30, or 60)"
            )));
        }
        let weight: u32 = match weight_str {
            None => 1,
            Some(w) => w
                .parse()
                .map_err(|_| err(format!("--classes: cannot parse weight {w:?}")))?,
        };
        if weight == 0 {
            return Err(err("--classes: weights must be at least 1"));
        }
        classes.push(fps_class(fps));
        weights.push(weight);
    }
    if classes.is_empty() {
        return Err(err("--classes: empty list"));
    }
    Ok((classes, weights))
}

/// Splits `total` sessions across classes proportionally to `weights`
/// (largest-remainder, so the counts sum exactly to `total`).
fn split_by_weight(total: usize, weights: &[u32]) -> Vec<usize> {
    let sum: u64 = weights.iter().map(|&w| u64::from(w)).sum();
    let mut counts: Vec<usize> = weights
        .iter()
        .map(|&w| (total as u64 * u64::from(w) / sum) as usize)
        .collect();
    let mut assigned: usize = counts.iter().sum();
    let n = counts.len();
    let mut i = 0;
    while assigned < total {
        counts[i % n] += 1;
        assigned += 1;
        i += 1;
    }
    counts
}

/// Parses the fused-mux link flags shared by `sessions` and `churn`:
/// `--mux-capacity-mbps` switches the fused fleet-to-link path on, and
/// `--mux-buffer-kbit` (default 500) sizes the link buffer. Returns
/// `(capacity_bps, buffer_bits)` when the fused path is requested.
fn take_mux_link(opts: &mut Options) -> Result<Option<(f64, f64)>, CliError> {
    let capacity = opts.take_parsed::<f64>("mux-capacity-mbps")?;
    let buffer = opts.take_parsed::<f64>("mux-buffer-kbit")?;
    let Some(c) = capacity else {
        if buffer.is_some() {
            return Err(err("--mux-buffer-kbit: requires --mux-capacity-mbps"));
        }
        return Ok(None);
    };
    if c.is_nan() || c <= 0.0 {
        return Err(err("--mux-capacity-mbps: must be positive"));
    }
    let b = buffer.unwrap_or(500.0);
    if b.is_nan() || b < 0.0 {
        return Err(err("--mux-buffer-kbit: must be non-negative"));
    }
    Ok(Some((c * 1.0e6, b * 1.0e3)))
}

/// Prints the fused run's outcome: link stats, peak, and the
/// machine-parsable `mux_digest=` witness (next to `fleet_digest=`).
fn report_mux(
    out: &mut dyn Write,
    stats: &smooth_engine::LiveMuxStats,
    mux: &smooth_engine::LiveMux,
) {
    let c = mux.config();
    let _ = writeln!(
        out,
        "mux: {:.1} Mbit/s link, {:.0} kbit buffer, window [{:.3}, {:.3}]s, rho {:.0} bit/s",
        c.capacity_bps / 1e6,
        c.buffer_bits / 1e3,
        c.t_start,
        c.t_end,
        c.descriptor_rho_bps
    );
    let _ = writeln!(
        out,
        "mux: utilization {:.4}, lost {:.0} bits, peak {:.3} Mbit/s, max queue {:.0} bits",
        stats.mux.utilization,
        stats.mux.lost_bits,
        stats.peak_rate_bps / 1e6,
        stats.mux.max_queue_bits
    );
    let _ = writeln!(
        out,
        "mux_digest={:016x}",
        smooth_engine::mux_digest(stats, &mux.descriptors())
    );
}

/// `sessions`: advance a fleet of concurrent live smoothing sessions
/// (synthetic picture sizes, the paper-recommended class — or a
/// `--classes` fps mix) through the session engine and report aggregate
/// throughput plus the decision digest — the determinism witness,
/// identical for every thread count and echoed on the machine-parsable
/// `fleet_digest=` line.
fn cmd_sessions(args: &[String], out: &mut dyn Write) -> Result<i32, CliError> {
    use smooth_engine::{SessionClass, SessionEngine, SyntheticFleet};

    let mut opts = Options::parse(args)?;
    let sessions = opts.take_parsed::<usize>("sessions")?.unwrap_or(10_000);
    let pictures = opts.take_parsed::<u64>("pictures")?.unwrap_or(32);
    let threads = smooth_sweep::resolve_threads(opts.take_parsed::<usize>("threads")?);
    let seed = opts.take_parsed::<u64>("seed")?.unwrap_or(0x5e55be7c);
    let classes_raw = opts.take("classes");
    let mux_link = take_mux_link(&mut opts)?;
    opts.finish()?;
    if sessions == 0 {
        return Err(err("--sessions: must be at least 1"));
    }
    if pictures == 0 {
        return Err(err("--pictures: must be at least 1"));
    }

    let pattern = smooth_mpeg::GopPattern::new(3, 9).expect("(3,9) is valid");
    let fleet = SyntheticFleet { seed, pattern };
    let mut engine;
    // Widest picture period in the mix, for the fused measurement
    // window (lockstep ticks land every class's τ on it).
    let mut max_period_ticks = 20u64;
    match classes_raw.as_deref() {
        None => {
            // The paper-recommended single class at 30 fps.
            let params = SmootherParams::at_30fps(0.2, 1, 9).expect("0.2 s is feasible");
            let class = SessionClass::new(params, pattern);
            engine = SessionEngine::new(vec![class]);
            engine.add_sessions(0, sessions);
            let cap = engine.class_ring_cap(0);
            let _ = writeln!(
                out,
                "sessions: {sessions} concurrent x {pictures} pictures (seed {seed:#x})"
            );
            let _ = writeln!(
                out,
                "class: D={:.4}s K={} H={} pattern {pattern}, ring slot {cap} sizes/session",
                params.delay_bound, params.k, params.h
            );
        }
        Some(raw) => {
            // A heterogeneous fps mix: one engine class per entry,
            // sessions split proportionally to the weights. Lockstep
            // ticks feed every class; the per-class τ shapes the
            // smoother's delay budget.
            let (mix, weights) = parse_classes(raw)?;
            let counts = split_by_weight(sessions, &weights);
            max_period_ticks = mix.iter().map(|c| c.period_ticks).max().expect("non-empty");
            engine = SessionEngine::new(mix.iter().map(|c| c.class.clone()).collect());
            for (i, &n) in counts.iter().enumerate() {
                engine.add_sessions(i, n);
            }
            let _ = writeln!(
                out,
                "sessions: {sessions} concurrent x {pictures} pictures (seed {seed:#x})"
            );
            let desc: Vec<String> = mix
                .iter()
                .zip(&counts)
                .map(|(c, n)| format!("{}fps x {n}", TICKS_PER_SEC_FPS / c.period_ticks))
                .collect();
            let _ = writeln!(out, "classes: {}", desc.join(", "));
        }
    }

    let mut fused = None;
    let t0 = std::time::Instant::now();
    match mux_link {
        None => {
            engine.run(&fleet, pictures, true, threads);
        }
        Some((capacity_bps, buffer_bits)) => {
            // Fused fleet-to-link: decisions stream straight into the
            // online aggregator — no materialized schedules, no
            // second pass. ρ defaults to the per-session fair share.
            let cfg = smooth_engine::MuxConfig {
                capacity_bps,
                buffer_bits,
                t_start: 0.0,
                t_end: pictures as f64 * max_period_ticks as f64 / TICKS_PER_SEC_FPS as f64,
                descriptor_rho_bps: capacity_bps / sessions as f64,
            };
            let mut mux = smooth_engine::LiveMux::new(sessions, engine.shard_size(), cfg);
            let stats = engine
                .run_fused(&fleet, pictures, threads, &mut mux)
                .map_err(|e| err(e.to_string()))?;
            fused = Some((stats, mux));
        }
    }
    let wall = t0.elapsed().as_secs_f64();
    let decisions = engine.decisions();
    let rate = if wall > 0.0 {
        decisions as f64 / wall
    } else {
        0.0
    };

    let _ = writeln!(
        out,
        "decisions: {decisions} (digest {:016x}, max retained {})",
        engine.digest(),
        engine.max_retained()
    );
    let _ = writeln!(out, "fleet_digest={:016x}", engine.digest());
    if let Some((stats, mux)) = &fused {
        report_mux(out, stats, mux);
    }
    // Only this line may vary between runs; the determinism tests strip
    // lines containing "thread(s)".
    let _ = writeln!(
        out,
        "throughput: {rate:.0} decisions/s on {threads} thread(s) ({wall:.3}s)"
    );
    Ok(0)
}

/// [`smooth_engine::TICKS_PER_SEC`], locally named so the fps-back
/// calculation (`600 / period_ticks`) reads as what it is.
const TICKS_PER_SEC_FPS: u64 = smooth_engine::TICKS_PER_SEC;

/// `churn`: replay a seeded arrival/departure process through the
/// event-driven [`smooth_engine::DynamicEngine`] — heterogeneous
/// picture clocks on the timing wheel, live slot recycling — and report
/// fleet stats plus the decision digest (`fleet_digest=`, identical for
/// every thread count, shard size, and `--batch` arrival-batch quantum).
/// With `--out`, the measurement is
/// upserted into the `churn_throughput[]` array of an existing
/// `BENCH_sweep.json` (dedup key: name + commit + threads), like
/// `scale` does for `scaling[]`.
fn cmd_churn(args: &[String], out: &mut dyn Write) -> Result<i32, CliError> {
    use smooth_engine::{churn_trace, ChurnSpec, DynamicEngine, SyntheticFleet, TICKS_PER_SEC};
    use smooth_sweep::bench::{ChurnThroughputRecord, SweepBenchReport};
    use smooth_sweep::ThreadSource;

    let mut opts = Options::parse(args)?;
    let sessions = opts.take_parsed::<usize>("sessions")?.unwrap_or(10_000);
    let seconds = opts.take_parsed::<u64>("seconds")?.unwrap_or(2);
    let churn_ppm = opts.take_parsed::<u64>("churn-ppm")?.unwrap_or(10_000);
    let threads = smooth_sweep::resolve_threads(opts.take_parsed::<usize>("threads")?);
    let seed = opts.take_parsed::<u64>("seed")?.unwrap_or(0xC_0041_7E57);
    let shard_size = opts.take_parsed::<usize>("shard-size")?.unwrap_or(4096);
    let repeats = opts.take_parsed::<usize>("repeats")?.unwrap_or(1);
    let batch = opts
        .take_parsed::<u64>("batch")?
        .unwrap_or(smooth_engine::ARRIVAL_BATCH);
    let out_path = opts.take("out");
    let classes_raw = opts
        .take("classes")
        .unwrap_or_else(|| "24:1,25:1,30:1,60:1".to_string());
    let mux_link = take_mux_link(&mut opts)?;
    opts.finish()?;
    if sessions == 0 {
        return Err(err("--sessions: must be at least 1"));
    }
    if seconds == 0 {
        return Err(err("--seconds: must be at least 1"));
    }
    if shard_size == 0 {
        return Err(err("--shard-size: must be at least 1"));
    }
    if repeats == 0 {
        return Err(err("--repeats: must be at least 1"));
    }
    if batch == 0 || batch > 1 << 20 {
        return Err(err("--batch: must be in 1..=1048576"));
    }

    let (classes, weights) = parse_classes(&classes_raw)?;
    let trace = churn_trace(&ChurnSpec {
        seed,
        initial: sessions,
        weights: weights.clone(),
        periods: classes.iter().map(|c| c.period_ticks).collect(),
        ticks_per_sec: TICKS_PER_SEC,
        horizon: TICKS_PER_SEC * seconds,
        churn_ppm_per_sec: churn_ppm,
    });
    let src = SyntheticFleet {
        seed,
        pattern: classes[0].class.pattern,
    };
    let desc: Vec<String> = classes
        .iter()
        .zip(&weights)
        .map(|(c, w)| format!("{}fps:{w}", TICKS_PER_SEC / c.period_ticks))
        .collect();
    let _ = writeln!(
        out,
        "churn: {sessions} initial x {seconds}s at {churn_ppm} ppm/s (seed {seed:#x})"
    );
    let _ = writeln!(
        out,
        "classes: {} | {} events, peak {} live",
        desc.join(","),
        trace.events.len(),
        trace.peak_live
    );

    // Fresh engine per repeat, same trace; only the event-driven replay
    // is timed. The last engine reports the (repeat-invariant) stats.
    let mut walls = Vec::with_capacity(repeats);
    let mut engine = None;
    let mut fused = None;
    for _ in 0..repeats {
        let mut e = DynamicEngine::new(classes.clone(), trace.peak_live, shard_size)
            .map_err(|e| err(e.to_string()))?;
        e.set_arrival_batch(batch);
        match mux_link {
            None => {
                let t0 = std::time::Instant::now();
                e.run_trace(&src, &trace, threads)
                    .map_err(|e| err(e.to_string()))?;
                walls.push(t0.elapsed().as_secs_f64());
            }
            Some((capacity_bps, buffer_bits)) => {
                // Fused churn-to-link: the wheel drain and the online
                // aggregation advance together; the window covers the
                // trace and ρ is the initial fleet's fair share.
                let cfg = smooth_engine::MuxConfig {
                    capacity_bps,
                    buffer_bits,
                    t_start: 0.0,
                    t_end: seconds as f64,
                    descriptor_rho_bps: capacity_bps / sessions as f64,
                };
                let mut mux =
                    smooth_engine::LiveMux::with_joins(trace.total_joins(), shard_size, cfg);
                let t0 = std::time::Instant::now();
                e.run_trace_fused(&src, &trace, threads, &mut mux)
                    .map_err(|e| err(e.to_string()))?;
                let stats = e.finish_fused(&src, threads, &mut mux);
                walls.push(t0.elapsed().as_secs_f64());
                fused = Some((stats, mux));
            }
        }
        engine = Some(e);
    }
    let engine = engine.expect("repeats >= 1");
    let wall = walls.iter().cloned().fold(f64::INFINITY, f64::min);
    let decisions = engine.decisions();
    let rate = if wall > 0.0 {
        decisions as f64 / wall
    } else {
        0.0
    };

    let _ = writeln!(
        out,
        "fleet: {} joined, {} live at horizon, {} slots resident ({} B/slot)",
        engine.joined(),
        engine.live_sessions(),
        engine.allocated_slots(),
        engine.state_bytes_per_slot()
    );
    let _ = writeln!(
        out,
        "decisions: {decisions} (digest {:016x})",
        engine.digest()
    );
    let _ = writeln!(out, "fleet_digest={:016x}", engine.digest());
    if let Some((stats, mux)) = &fused {
        report_mux(out, stats, mux);
    }
    // Only this line may vary between runs; the determinism tests strip
    // lines containing "thread(s)".
    let _ = writeln!(
        out,
        "throughput: {rate:.0} decisions/s on {threads} thread(s) ({wall:.3}s min of {repeats})"
    );

    if let Some(path) = out_path {
        let p = std::path::Path::new(&path);
        let mut report = if p.exists() {
            SweepBenchReport::load(p).map_err(|e| err(format!("loading {path}: {e}")))?
        } else {
            SweepBenchReport::with_thread_source(threads, ThreadSource::Flag)
        };
        // Fused runs time extra work (the online aggregation), so they
        // get their own record name rather than dedup-clobbering the
        // plain replay's measurement.
        let record_name = if fused.is_some() {
            format!("churn_fused_S{sessions}")
        } else {
            format!("churn_synthetic_S{sessions}")
        };
        report.record_churn_throughput(ChurnThroughputRecord::with_walls(
            &record_name,
            sessions,
            churn_ppm,
            engine.joined(),
            trace.horizon,
            decisions,
            &walls,
            threads,
        ));
        report
            .save(p)
            .map_err(|e| err(format!("writing {path}: {e}")))?;
        let _ = writeln!(out, "churn_throughput[] -> {path}");
    }
    Ok(0)
}

/// `scale`: regenerate the cores-vs-throughput curve standalone — the
/// megasession engine at a 1, 2, 4, … worker ladder with cache-aware
/// shard placement (first-touch construction by the advancing worker,
/// static shard→thread striping, best-effort CPU pinning). Points are
/// upserted into the `scaling[]` array of an existing `BENCH_sweep.json`
/// when `--out` names one (dedup key: name + commit + threads), or into
/// a fresh report otherwise.
fn cmd_scale(args: &[String], out: &mut dyn Write) -> Result<i32, CliError> {
    use smooth_engine::{SessionClass, SessionEngine, SyntheticFleet};
    use smooth_sweep::bench::{ScalingRecord, SweepBenchReport};
    use smooth_sweep::ThreadSource;

    let mut opts = Options::parse(args)?;
    let sessions = opts.take_parsed::<usize>("sessions")?.unwrap_or(1_000_000);
    let pictures = opts.take_parsed::<u64>("pictures")?.unwrap_or(32);
    let repeats = opts.take_parsed::<usize>("repeats")?.unwrap_or(3);
    let max_threads = opts
        .take_parsed::<usize>("max-threads")?
        .unwrap_or_else(smooth_sweep::logical_cores);
    let out_path = opts.take("out");
    opts.finish()?;
    if sessions == 0 {
        return Err(err("--sessions: must be at least 1"));
    }
    if pictures == 0 {
        return Err(err("--pictures: must be at least 1"));
    }
    if repeats == 0 {
        return Err(err("--repeats: must be at least 1"));
    }
    if max_threads == 0 {
        return Err(err("--max-threads: must be at least 1"));
    }

    // The worker ladder: powers of two up to the cap, cap included.
    let mut ladder = Vec::new();
    let mut t = 1;
    while t < max_threads {
        ladder.push(t);
        t *= 2;
    }
    ladder.push(max_threads);

    let pattern = smooth_mpeg::GopPattern::new(3, 9).expect("(3,9) is valid");
    let params = SmootherParams::at_30fps(0.2, 1, 9).expect("0.2 s is feasible");
    let class = SessionClass::new(params, pattern);
    let fleet = SyntheticFleet {
        seed: 0x5e55be7c,
        pattern,
    };
    let pinned = smooth_sweep::pinning_supported();
    let _ = writeln!(
        out,
        "scale: {sessions} sessions x {pictures} pictures, ladder {ladder:?} \
         ({} physical / {} logical cores, pinning {})",
        smooth_sweep::physical_cores(),
        smooth_sweep::logical_cores(),
        if pinned { "on" } else { "unavailable" }
    );

    let mut records = Vec::new();
    for &threads in &ladder {
        let mut walls = Vec::with_capacity(repeats);
        let mut decisions = 0u64;
        let mut digest = 0u64;
        for _ in 0..repeats {
            let mut engine = SessionEngine::new(vec![class.clone()]);
            engine.add_sessions_placed(0, sessions, threads);
            let t0 = std::time::Instant::now();
            engine.run_pinned(&fleet, pictures, true, threads);
            walls.push(t0.elapsed().as_secs_f64());
            decisions = engine.decisions();
            digest = engine.digest();
        }
        let record = ScalingRecord::with_walls(
            &format!("scale_synthetic_S{sessions}"),
            sessions,
            pictures,
            decisions,
            &walls,
            threads,
            pinned,
            true,
        );
        let _ = writeln!(
            out,
            "T={threads}: {:.0} decisions/s ({decisions} decisions, {:.3}s min, \
             {:.3}s median, digest {digest:016x})",
            record.decisions_per_second,
            record.wall_seconds,
            record.wall_seconds_median.unwrap_or(0.0),
        );
        records.push(record);
    }

    if let Some(path) = out_path {
        let p = std::path::Path::new(&path);
        let mut report = if p.exists() {
            SweepBenchReport::load(p).map_err(|e| err(format!("loading {path}: {e}")))?
        } else {
            SweepBenchReport::with_thread_source(max_threads, ThreadSource::Flag)
        };
        for record in records {
            report.record_scaling(record);
        }
        report
            .save(p)
            .map_err(|e| err(format!("writing {path}: {e}")))?;
        let _ = writeln!(out, "scaling[] -> {path}");
    }
    Ok(0)
}

fn cmd_verify(args: &[String], out: &mut dyn Write) -> Result<i32, CliError> {
    let mut opts = Options::parse(args)?;
    let trace = load_trace(&mut opts)?;
    let mut params = params_from(&mut opts, trace.tau())?;
    if params.h == 0 {
        params.h = trace.pattern.n();
    }
    opts.finish()?;

    let estimator = PatternEstimator::default();
    let result = smooth_with(&trace, params, &estimator, RateSelection::Basic);
    let report = check_theorem1(&result);
    let _ = writeln!(
        out,
        "Theorem 1 audit: {} pictures, max delay {:.4}s (bound {:.4}s)",
        report.pictures, report.max_delay, params.delay_bound
    );
    let _ =
        writeln!(
        out,
        "delay violations: {}  start-bound violations: {}  continuous service: {}  rate bounds: {}",
        report.delay_violations,
        report.start_bound_violations,
        report.continuous_service,
        if report.rate_bound_violations == 0 { "ok" } else { "VIOLATED" }
    );
    if report.holds() {
        let _ = writeln!(out, "PASS");
        Ok(0)
    } else {
        let _ = writeln!(out, "FAIL");
        Ok(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_cli(args: &[&str]) -> (i32, String) {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        let code = run(&args, &mut out).unwrap_or_else(|e| panic!("cli error: {e}"));
        (code, String::from_utf8(out).expect("utf8 output"))
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("mpeg_smooth_cli_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn help_and_empty() {
        let (code, text) = run_cli(&["help"]);
        assert_eq!(code, 0);
        assert!(text.contains("usage:"));
        let (code, _) = run_cli(&[]);
        assert_eq!(code, 2);
    }

    #[test]
    fn unknown_command_is_an_error() {
        let args = vec!["frobnicate".to_string()];
        let mut out = Vec::new();
        assert!(run(&args, &mut out).is_err());
    }

    #[test]
    fn generate_analyze_smooth_verify_roundtrip() {
        let trace_path = tmp("toolchain.csv");
        let (code, text) = run_cli(&[
            "generate",
            "--sequence",
            "driving1",
            "--pictures",
            "90",
            "--out",
            &trace_path,
        ]);
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("Driving1"));

        let (code, text) = run_cli(&["analyze", "--trace", &trace_path]);
        assert_eq!(code, 0);
        assert!(text.contains("peak"), "{text}");
        assert!(text.contains("acf"), "{text}");

        let sched = tmp("schedule.csv");
        let json = tmp("result.json");
        let (code, text) = run_cli(&[
            "smooth",
            "--trace",
            &trace_path,
            "--d",
            "0.2",
            "--schedule",
            &sched,
            "--json",
            &json,
        ]);
        assert_eq!(code, 0, "{text}");
        assert!(
            text.contains("0 violations") || text.contains("(0 violations)"),
            "{text}"
        );
        let csv = std::fs::read_to_string(&sched).expect("schedule file");
        assert_eq!(csv.lines().count(), 91);
        let loaded = smooth_metrics::load_result_json(&json).expect("json");
        assert_eq!(loaded.schedule.len(), 90);

        let (code, text) = run_cli(&["verify", "--trace", &trace_path, "--d", "0.2"]);
        assert_eq!(code, 0);
        assert!(text.contains("PASS"), "{text}");
    }

    #[test]
    fn smooth_rejects_infeasible_params() {
        let trace_path = tmp("infeasible.csv");
        run_cli(&[
            "generate",
            "--sequence",
            "backyard",
            "--pictures",
            "48",
            "--out",
            &trace_path,
        ]);
        let args: Vec<String> = ["smooth", "--trace", &trace_path, "--d", "0.01"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let mut out = Vec::new();
        let e = run(&args, &mut out).unwrap_err();
        assert!(e.0.contains("infeasible"), "{e}");
    }

    #[test]
    fn unknown_option_is_reported() {
        let args: Vec<String> = ["analyze", "--trace", "x.csv", "--wat", "1"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let mut out = Vec::new();
        let e = run(&args, &mut out).unwrap_err();
        // --trace fails first (missing file) or --wat is reported; both
        // are errors. Accept either but require an error message.
        assert!(!e.0.is_empty());
    }

    #[test]
    fn moving_average_policy_accepted() {
        let trace_path = tmp("ma.csv");
        run_cli(&[
            "generate",
            "--sequence",
            "tennis",
            "--pictures",
            "90",
            "--out",
            &trace_path,
        ]);
        let (code, text) = run_cli(&[
            "smooth",
            "--trace",
            &trace_path,
            "--d",
            "0.2",
            "--policy",
            "moving-average",
        ]);
        assert_eq!(code, 0);
        assert!(text.contains("MovingAverage"), "{text}");
    }

    #[test]
    fn grid_option_snaps_rates() {
        let trace_path = tmp("grid.csv");
        run_cli(&[
            "generate",
            "--sequence",
            "driving1",
            "--pictures",
            "90",
            "--out",
            &trace_path,
        ]);
        let json = tmp("grid_result.json");
        let (code, _) = run_cli(&[
            "smooth",
            "--trace",
            &trace_path,
            "--d",
            "0.2",
            "--grid",
            "64000",
            "--json",
            &json,
        ]);
        assert_eq!(code, 0);
        let result = smooth_metrics::load_result_json(&json).expect("json");
        let on_grid = result
            .schedule
            .iter()
            .filter(|p| (p.rate / 64_000.0 - (p.rate / 64_000.0).round()).abs() < 1e-9)
            .count();
        assert!(
            on_grid * 10 >= result.schedule.len() * 8,
            "{on_grid}/{}",
            result.schedule.len()
        );
    }

    #[test]
    fn sweep_runs_grid_and_writes_csv() {
        let trace_path = tmp("sweep.csv");
        run_cli(&[
            "generate",
            "--sequence",
            "driving1",
            "--pictures",
            "90",
            "--out",
            &trace_path,
        ]);
        let csv_path = tmp("sweep_out.csv");
        let (code, text) = run_cli(&[
            "sweep",
            "--trace",
            &trace_path,
            "--d",
            "0.1,0.2,0.3",
            "--k",
            "1,3",
            "--threads",
            "4",
            "--csv",
            &csv_path,
        ]);
        assert_eq!(code, 0, "{text}");
        // 3 x 2 combos, minus the infeasible (0.1, K=3): slack < 4τ.
        assert!(text.contains("5 configs"), "{text}");
        assert!(text.contains("1 infeasible skipped"), "{text}");
        let csv = std::fs::read_to_string(&csv_path).expect("sweep csv");
        assert_eq!(csv.lines().count(), 6, "{csv}");
    }

    #[test]
    fn sweep_output_is_thread_count_invariant() {
        let trace_path = tmp("sweep_det.csv");
        run_cli(&[
            "generate",
            "--sequence",
            "tennis",
            "--pictures",
            "120",
            "--out",
            &trace_path,
        ]);
        let base = ["sweep", "--trace", &trace_path, "--d", "0.15,0.2,0.3"];
        let run_with = |threads: &str| {
            let mut args: Vec<&str> = base.to_vec();
            args.extend(["--threads", threads]);
            run_cli(&args)
        };
        let (code, serial) = run_with("1");
        assert_eq!(code, 0);
        for threads in ["2", "8"] {
            let (code, parallel) = run_with(threads);
            assert_eq!(code, 0);
            // Byte-identical apart from the reported thread count line.
            let strip = |s: &str| {
                s.lines()
                    .filter(|l| !l.contains("thread(s)"))
                    .collect::<Vec<_>>()
                    .join("\n")
            };
            assert_eq!(strip(&serial), strip(&parallel), "threads={threads}");
        }
    }

    #[test]
    fn sweep_sources_knob_reports_mux_loss() {
        let trace_path = tmp("sweep_mux.csv");
        run_cli(&[
            "generate",
            "--sequence",
            "driving1",
            "--pictures",
            "90",
            "--out",
            &trace_path,
        ]);
        let (code, text) = run_cli(&[
            "sweep",
            "--trace",
            &trace_path,
            "--d",
            "0.1,0.3",
            "--sources",
            "12",
            "--buffer-kbit",
            "50",
        ]);
        assert_eq!(code, 0, "{text}");
        assert!(
            text.contains("12 phase-staggered copies"),
            "missing mux header: {text}"
        );
        assert!(text.contains("loss ratio,utilization"), "{text}");
        assert!(text.contains("events/s"), "{text}");
        // The looser delay bound smooths harder, so the mux block must
        // produce one row per feasible config.
        let mux_rows = text
            .lines()
            .skip_while(|l| !l.contains("phase-staggered"))
            .filter(|l| l.starts_with("0.1") || l.starts_with("0.3"))
            .count();
        assert_eq!(mux_rows, 2, "{text}");
    }

    #[test]
    fn sweep_sources_output_is_thread_count_invariant() {
        let trace_path = tmp("sweep_mux_det.csv");
        run_cli(&[
            "generate",
            "--sequence",
            "tennis",
            "--pictures",
            "90",
            "--out",
            &trace_path,
        ]);
        let base = [
            "sweep",
            "--trace",
            &trace_path,
            "--d",
            "0.2",
            "--sources",
            "150",
        ];
        let run_with = |threads: &str| {
            let mut args: Vec<&str> = base.to_vec();
            args.extend(["--threads", threads]);
            run_cli(&args)
        };
        let (code, serial) = run_with("1");
        assert_eq!(code, 0);
        for threads in ["3", "8"] {
            let (code, parallel) = run_with(threads);
            assert_eq!(code, 0);
            let strip = |s: &str| {
                s.lines()
                    .filter(|l| !l.contains("thread(s)"))
                    .collect::<Vec<_>>()
                    .join("\n")
            };
            assert_eq!(strip(&serial), strip(&parallel), "threads={threads}");
        }
    }

    #[test]
    fn sweep_mux_options_require_sources() {
        let trace_path = tmp("sweep_mux_req.csv");
        run_cli(&[
            "generate",
            "--sequence",
            "driving1",
            "--pictures",
            "48",
            "--out",
            &trace_path,
        ]);
        for extra in [
            vec!["--capacity-mbps", "20"],
            vec!["--buffer-kbit", "100"],
            vec!["--sources", "0"],
        ] {
            let mut args = vec!["sweep", "--trace", &trace_path, "--d", "0.2"];
            args.extend(extra.iter().copied());
            let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
            let mut out = Vec::new();
            assert!(run(&args, &mut out).is_err(), "{args:?}");
        }
    }

    #[test]
    fn sweep_rejects_bad_lists() {
        let trace_path = tmp("sweep_bad.csv");
        run_cli(&[
            "generate",
            "--sequence",
            "driving1",
            "--pictures",
            "48",
            "--out",
            &trace_path,
        ]);
        for args in [
            vec!["sweep", "--trace", trace_path.as_str()],
            vec!["sweep", "--trace", &trace_path, "--d", "abc"],
            vec!["sweep", "--trace", &trace_path, "--d", "0.001"],
        ] {
            let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
            let mut out = Vec::new();
            assert!(run(&args, &mut out).is_err(), "{args:?}");
        }
    }

    #[test]
    fn sessions_reports_fleet_and_digest() {
        let (code, text) = run_cli(&[
            "sessions",
            "--sessions",
            "500",
            "--pictures",
            "20",
            "--threads",
            "1",
        ]);
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("500 concurrent x 20 pictures"), "{text}");
        // Lockstep completeness: every session decides every picture.
        assert!(text.contains("decisions: 10000"), "{text}");
        assert!(text.contains("digest"), "{text}");
        assert!(text.contains("ring slot"), "{text}");
    }

    #[test]
    fn sessions_output_is_thread_count_invariant() {
        let base = ["sessions", "--sessions", "300", "--pictures", "25"];
        let run_with = |threads: &str| {
            let mut args: Vec<&str> = base.to_vec();
            args.extend(["--threads", threads]);
            run_cli(&args)
        };
        let (code, serial) = run_with("1");
        assert_eq!(code, 0);
        for threads in ["2", "8"] {
            let (code, parallel) = run_with(threads);
            assert_eq!(code, 0);
            let strip = |s: &str| {
                s.lines()
                    .filter(|l| !l.contains("thread(s)"))
                    .collect::<Vec<_>>()
                    .join("\n")
            };
            assert_eq!(strip(&serial), strip(&parallel), "threads={threads}");
        }
    }

    #[test]
    fn sessions_seed_changes_the_digest() {
        let digest_line = |seed: &str| {
            let (code, text) = run_cli(&[
                "sessions",
                "--sessions",
                "64",
                "--pictures",
                "15",
                "--seed",
                seed,
                "--threads",
                "1",
            ]);
            assert_eq!(code, 0, "{text}");
            text.lines()
                .find(|l| l.contains("digest"))
                .expect("digest line")
                .to_string()
        };
        assert_ne!(digest_line("1"), digest_line("2"));
        assert_eq!(digest_line("7"), digest_line("7"));
    }

    #[test]
    fn sessions_classes_mix_reports_split_and_fleet_digest() {
        let (code, text) = run_cli(&[
            "sessions",
            "--sessions",
            "100",
            "--pictures",
            "12",
            "--threads",
            "1",
            "--classes",
            "24:1,30:3",
        ]);
        assert_eq!(code, 0, "{text}");
        // Largest-remainder split of 100 over weights 1:3.
        assert!(text.contains("classes: 24fps x 25, 30fps x 75"), "{text}");
        let digest_line = text
            .lines()
            .find(|l| l.starts_with("fleet_digest="))
            .expect("fleet_digest line");
        let hex = digest_line.strip_prefix("fleet_digest=").unwrap();
        assert_eq!(hex.len(), 16, "{digest_line}");
        assert!(hex.chars().all(|c| c.is_ascii_hexdigit()), "{digest_line}");
    }

    #[test]
    fn churn_reports_fleet_and_digest() {
        let (code, text) = run_cli(&[
            "churn",
            "--sessions",
            "300",
            "--seconds",
            "1",
            "--churn-ppm",
            "100000",
            "--threads",
            "1",
        ]);
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("300 initial x 1s"), "{text}");
        assert!(
            text.contains("classes: 24fps:1,25fps:1,30fps:1,60fps:1"),
            "{text}"
        );
        assert!(text.contains("joined"), "{text}");
        let digest_line = text
            .lines()
            .find(|l| l.starts_with("fleet_digest="))
            .expect("fleet_digest line");
        let hex = digest_line.strip_prefix("fleet_digest=").unwrap();
        assert_eq!(hex.len(), 16, "{digest_line}");
        assert!(hex.chars().all(|c| c.is_ascii_hexdigit()), "{digest_line}");
    }

    #[test]
    fn churn_output_is_thread_count_invariant() {
        let base = [
            "churn",
            "--sessions",
            "200",
            "--seconds",
            "2",
            "--churn-ppm",
            "200000",
            "--shard-size",
            "32",
        ];
        let run_with = |threads: &str| {
            let mut args: Vec<&str> = base.to_vec();
            args.extend(["--threads", threads]);
            run_cli(&args)
        };
        let (code, serial) = run_with("1");
        assert_eq!(code, 0);
        for threads in ["2", "8"] {
            let (code, parallel) = run_with(threads);
            assert_eq!(code, 0);
            let strip = |s: &str| {
                s.lines()
                    .filter(|l| !l.contains("thread(s)"))
                    .collect::<Vec<_>>()
                    .join("\n")
            };
            assert_eq!(strip(&serial), strip(&parallel), "threads={threads}");
        }
    }

    #[test]
    fn churn_output_is_batch_invariant() {
        let base = [
            "churn",
            "--sessions",
            "200",
            "--seconds",
            "2",
            "--churn-ppm",
            "200000",
            "--shard-size",
            "32",
        ];
        let run_with = |batch: &str| {
            let mut args: Vec<&str> = base.to_vec();
            args.extend(["--batch", batch]);
            run_cli(&args)
        };
        let (code, reference) = run_with("1");
        assert_eq!(code, 0);
        let strip = |s: &str| {
            s.lines()
                .filter(|l| !l.contains("thread(s)"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        for batch in ["2", "7", "16", "64"] {
            let (code, batched) = run_with(batch);
            assert_eq!(code, 0);
            assert_eq!(strip(&reference), strip(&batched), "batch={batch}");
        }
    }

    #[test]
    fn churn_out_writes_and_upserts_churn_throughput_records() {
        let json_path = tmp("churn_report.json");
        let _ = std::fs::remove_file(&json_path);
        let args = [
            "churn",
            "--sessions",
            "150",
            "--seconds",
            "1",
            "--repeats",
            "2",
            "--threads",
            "1",
            "--out",
            &json_path,
        ];
        let (code, text) = run_cli(&args);
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("churn_throughput[] ->"), "{text}");
        let report = smooth_sweep::bench::SweepBenchReport::load(std::path::Path::new(&json_path))
            .expect("churn report");
        assert_eq!(report.churn_throughput.len(), 1);
        let rec = &report.churn_throughput[0];
        assert_eq!(rec.name, "churn_synthetic_S150");
        assert_eq!(rec.sessions, 150);
        assert_eq!(rec.churn_ppm_per_sec, 10_000);
        assert!(rec.joined >= 150);
        assert!(rec.wall_seconds_median.is_some());
        assert!(rec.wall_seconds_spread.is_some());

        // A second run upserts instead of appending a duplicate.
        let (code, _) = run_cli(&args);
        assert_eq!(code, 0);
        let report = smooth_sweep::bench::SweepBenchReport::load(std::path::Path::new(&json_path))
            .expect("churn report");
        assert_eq!(report.churn_throughput.len(), 1);
    }

    #[test]
    fn fused_sessions_prints_mux_digest_and_is_thread_invariant() {
        let base = [
            "sessions",
            "--sessions",
            "150",
            "--pictures",
            "12",
            "--mux-capacity-mbps",
            "200",
            "--mux-buffer-kbit",
            "700",
        ];
        let run_with = |threads: &str| {
            let mut args: Vec<&str> = base.to_vec();
            args.extend(["--threads", threads]);
            run_cli(&args)
        };
        let (code, serial) = run_with("1");
        assert_eq!(code, 0, "{serial}");
        assert!(serial.contains("fleet_digest="), "{serial}");
        let digest_line = serial
            .lines()
            .find(|l| l.starts_with("mux_digest="))
            .expect("mux_digest line");
        let hex = digest_line.strip_prefix("mux_digest=").unwrap();
        assert_eq!(hex.len(), 16, "{digest_line}");
        assert!(hex.chars().all(|c| c.is_ascii_hexdigit()), "{digest_line}");
        let strip = |s: &str| {
            s.lines()
                .filter(|l| !l.contains("thread(s)"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        for threads in ["2", "5"] {
            let (code, parallel) = run_with(threads);
            assert_eq!(code, 0);
            assert_eq!(strip(&serial), strip(&parallel), "threads={threads}");
        }
    }

    #[test]
    fn fused_churn_prints_mux_digest_and_is_thread_invariant() {
        let base = [
            "churn",
            "--sessions",
            "150",
            "--seconds",
            "2",
            "--churn-ppm",
            "200000",
            "--shard-size",
            "32",
            "--mux-capacity-mbps",
            "180",
        ];
        let run_with = |threads: &str| {
            let mut args: Vec<&str> = base.to_vec();
            args.extend(["--threads", threads]);
            run_cli(&args)
        };
        let (code, serial) = run_with("1");
        assert_eq!(code, 0, "{serial}");
        assert!(serial.contains("mux_digest="), "{serial}");
        assert!(serial.contains("fleet_digest="), "{serial}");
        let strip = |s: &str| {
            s.lines()
                .filter(|l| !l.contains("thread(s)"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        for threads in ["2", "8"] {
            let (code, parallel) = run_with(threads);
            assert_eq!(code, 0);
            assert_eq!(strip(&serial), strip(&parallel), "threads={threads}");
        }
    }

    #[test]
    fn fused_churn_out_gets_its_own_record_name() {
        let json_path = tmp("churn_fused_report.json");
        let _ = std::fs::remove_file(&json_path);
        let (code, text) = run_cli(&[
            "churn",
            "--sessions",
            "120",
            "--seconds",
            "1",
            "--threads",
            "1",
            "--mux-capacity-mbps",
            "150",
            "--out",
            &json_path,
        ]);
        assert_eq!(code, 0, "{text}");
        let report = smooth_sweep::bench::SweepBenchReport::load(std::path::Path::new(&json_path))
            .expect("fused churn report");
        assert_eq!(report.churn_throughput.len(), 1);
        assert_eq!(report.churn_throughput[0].name, "churn_fused_S120");
    }

    #[test]
    fn mux_link_flags_are_validated() {
        let fail = |args: &[&str], needle: &str| {
            let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
            let mut out = Vec::new();
            let e = run(&args, &mut out).unwrap_err();
            assert!(e.0.contains(needle), "{e}");
        };
        fail(
            &["sessions", "--sessions", "10", "--mux-buffer-kbit", "500"],
            "requires --mux-capacity-mbps",
        );
        fail(
            &["sessions", "--sessions", "10", "--mux-capacity-mbps", "0"],
            "must be positive",
        );
        fail(
            &[
                "churn",
                "--sessions",
                "10",
                "--mux-capacity-mbps",
                "100",
                "--mux-buffer-kbit",
                "-3",
            ],
            "must be non-negative",
        );
    }

    #[test]
    fn churn_rejects_degenerate_options() {
        for args in [
            vec!["churn", "--sessions", "0"],
            vec!["churn", "--seconds", "0"],
            vec!["churn", "--shard-size", "0"],
            vec!["churn", "--repeats", "0"],
            vec!["churn", "--batch", "0"],
            vec!["churn", "--batch", "1048577"],
            vec!["churn", "--classes", "17:1"],
            vec!["churn", "--classes", "30:0"],
            vec!["churn", "--classes", ""],
            vec!["churn", "--classes", "abc"],
            vec!["churn", "--wat", "1"],
        ] {
            let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
            let mut out = Vec::new();
            assert!(run(&args, &mut out).is_err(), "{args:?}");
        }
    }

    #[test]
    fn sessions_rejects_degenerate_counts() {
        for args in [
            vec!["sessions", "--sessions", "0"],
            vec!["sessions", "--pictures", "0"],
            vec!["sessions", "--sessions", "abc"],
            vec!["sessions", "--wat", "1"],
        ] {
            let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
            let mut out = Vec::new();
            assert!(run(&args, &mut out).is_err(), "{args:?}");
        }
    }

    #[test]
    fn scale_reports_the_ladder_and_writes_scaling_records() {
        let json_path = tmp("scale_report.json");
        let _ = std::fs::remove_file(&json_path);
        let (code, text) = run_cli(&[
            "scale",
            "--sessions",
            "400",
            "--pictures",
            "10",
            "--repeats",
            "1",
            "--max-threads",
            "3",
            "--out",
            &json_path,
        ]);
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("ladder [1, 2, 3]"), "{text}");
        assert!(text.contains("T=1:"), "{text}");
        assert!(text.contains("T=3:"), "{text}");
        assert!(text.contains("4000 decisions"), "{text}");
        let report = smooth_sweep::bench::SweepBenchReport::load(std::path::Path::new(&json_path))
            .expect("scale report");
        assert_eq!(report.scaling.len(), 3);
        assert!(report.scaling.iter().all(|r| r.sessions == 400));
        assert!(report.scaling.iter().all(|r| r.first_touch));

        // A second run upserts instead of appending duplicates.
        let (code, _) = run_cli(&[
            "scale",
            "--sessions",
            "400",
            "--pictures",
            "10",
            "--repeats",
            "1",
            "--max-threads",
            "3",
            "--out",
            &json_path,
        ]);
        assert_eq!(code, 0);
        let report = smooth_sweep::bench::SweepBenchReport::load(std::path::Path::new(&json_path))
            .expect("scale report");
        assert_eq!(report.scaling.len(), 3);
    }

    #[test]
    fn scale_digest_is_thread_count_invariant() {
        let digest_of = |max: &str| {
            let (code, text) = run_cli(&[
                "scale",
                "--sessions",
                "200",
                "--pictures",
                "8",
                "--repeats",
                "1",
                "--max-threads",
                max,
            ]);
            assert_eq!(code, 0, "{text}");
            text.lines()
                .filter_map(|l| l.split("digest ").nth(1))
                .map(|d| d.trim_end_matches(')').to_string())
                .collect::<Vec<_>>()
        };
        let serial = digest_of("1");
        assert_eq!(serial.len(), 1);
        let ladder = digest_of("4");
        assert_eq!(ladder.len(), 3); // T = 1, 2, 4
        for d in &ladder {
            assert_eq!(d, &serial[0]);
        }
    }

    #[test]
    fn scale_rejects_degenerate_options() {
        for args in [
            vec!["scale", "--sessions", "0"],
            vec!["scale", "--pictures", "0"],
            vec!["scale", "--repeats", "0"],
            vec!["scale", "--max-threads", "0"],
            vec!["scale", "--wat", "1"],
        ] {
            let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
            let mut out = Vec::new();
            assert!(run(&args, &mut out).is_err(), "{args:?}");
        }
    }

    #[test]
    fn generate_requires_sequence_and_out() {
        for args in [
            vec!["generate", "--out", "/tmp/x.csv"],
            vec!["generate", "--sequence", "tennis"],
        ] {
            let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
            let mut out = Vec::new();
            assert!(run(&args, &mut out).is_err());
        }
    }
}
