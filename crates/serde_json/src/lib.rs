//! Offline-vendored mini `serde_json`.
//!
//! Bridges JSON text and the vendored mini-serde [`serde::value::Value`]
//! model. Only the API surface this workspace uses is provided:
//! [`to_string`], [`to_string_pretty`], [`from_str`], and [`Error`].
//!
//! Floats round-trip exactly: the writer uses Rust's shortest-roundtrip
//! `Display` formatting and the parser uses Rust's correctly-rounded
//! `str::parse::<f64>`, which together guarantee `parse(format(x)) == x`
//! for every finite `f64` (the guarantee the real crate's
//! `float_roundtrip` feature provides). Non-finite floats serialize as
//! `null`, matching real serde_json.

use std::fmt;

use serde::de::DeserializeOwned;
use serde::value::{to_value, Value, ValueDeserializer};
use serde::Serialize;

/// JSON (de)serialization error.
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl fmt::Debug for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Error({:?})", self.msg)
    }
}

impl std::error::Error for Error {}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::new(msg.to_string())
    }
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &to_value(value));
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value_pretty(&mut out, &to_value(value), 0);
    Ok(out)
}

/// Deserializes a value from JSON text.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    T::deserialize(ValueDeserializer::<Error>::new(v))
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => {
            out.push_str(&i.to_string());
        }
        Value::UInt(u) => {
            out.push_str(&u.to_string());
        }
        Value::Float(f) => write_f64(out, *f),
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_value(out, item);
            }
            out.push('}');
        }
    }
}

fn write_value_pretty(out: &mut String, v: &Value, indent: usize) {
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_value_pretty(out, item, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Object(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_escaped(out, k);
                out.push_str(": ");
                write_value_pretty(out, item, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        other => write_value(out, other),
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_f64(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    let start = out.len();
    use fmt::Write;
    // `{}` on f64 is shortest-roundtrip: the unique shortest decimal that
    // parses back to the same bits.
    let _ = write!(out, "{f}");
    if !out[start..]
        .bytes()
        .any(|b| matches!(b, b'.' | b'e' | b'E'))
    {
        out.push_str(".0");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn err<T>(&self, msg: &str) -> Result<T, Error> {
        Err(Error::new(format!("{msg} at byte {}", self.pos)))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected `{}`", b as char))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_lit("null", Value::Null),
            Some(b't') => self.parse_lit("true", Value::Bool(true)),
            Some(b'f') => self.parse_lit("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(_) => self.err("unexpected character"),
            None => self.err("unexpected end of input"),
        }
    }

    fn parse_lit(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            self.err(&format!("expected `{lit}`"))
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return self.err("expected `,` or `]`"),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.parse_value()?;
            fields.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return self.err("expected `,` or `}`"),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.parse_hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                // Surrogate pair: expect \uXXXX low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.parse_hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            match ch {
                                Some(c) => out.push(c),
                                None => return self.err("invalid \\u escape"),
                            }
                            continue;
                        }
                        _ => return self.err("invalid escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // bytes are valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| Error::new("invalid utf-8"))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return self.err("unterminated string"),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return self.err("truncated \\u escape");
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_round_trip_is_exact() {
        for &x in &[
            0.1,
            1.0 / 3.0,
            f64::MAX,
            f64::MIN_POSITIVE,
            6.02214076e23,
            -123.456e-78,
            30.0,
        ] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(x.to_bits(), back.to_bits(), "{x} -> {s} -> {back}");
        }
    }

    #[test]
    fn integer_floats_keep_a_decimal_point() {
        assert_eq!(to_string(&30.0f64).unwrap(), "30.0");
        assert_eq!(to_string(&-2.0f64).unwrap(), "-2.0");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "a\"b\\c\nd\te\u{1}f\u{1F600}";
        let json = to_string(&s.to_string()).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn unicode_escapes_parse() {
        let back: String = from_str(r#""A😀""#).unwrap();
        assert_eq!(back, "A\u{1F600}");
    }

    #[test]
    fn vectors_and_options_round_trip() {
        let v: Vec<Option<f64>> = vec![Some(1.5), None, Some(-0.25)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1.5,null,-0.25]");
        let back: Vec<Option<f64>> = from_str(&json).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn pretty_output_is_indented() {
        let v: Vec<u64> = vec![1, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<f64>("1.0 x").is_err());
    }

    #[test]
    fn large_u64_round_trips() {
        let x = u64::MAX;
        let s = to_string(&x).unwrap();
        let back: u64 = from_str(&s).unwrap();
        assert_eq!(x, back);
    }
}
