//! The paper's four quantitative smoothness measures (§5.2) and the
//! plumbing to compute them for any smoothing run.
//!
//! 1. **Area difference** (eq. 16):
//!    `∫₀ᵀ [r(t) − R(t + (N−K)·τ)]₊ dt / ∫₀ᵀ R(t + (N−K)·τ) dt`
//!    — how much of `r(t)` pokes above the (time-aligned) ideal rate
//!    function. The ideal curve is shifted because the basic algorithm
//!    begins transmitting `(N−K)·τ` seconds earlier than ideal smoothing.
//! 2. **Number of rate changes** over `[0, T]`.
//! 3. **Maximum of `r(t)`** over `[0, T]`.
//! 4. **Standard deviation of `r(t)`** over `[0, T]` (time-weighted).

use crate::step::StepFunction;
use serde::{Deserialize, Serialize};
use smooth_core::{ideal_smooth, BaselineResult, SmoothingResult};
use smooth_trace::VideoTrace;

/// The four measures for one run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SmoothnessMeasures {
    /// Eq. (16): normalized positive-part area above the shifted ideal.
    pub area_difference: f64,
    /// Times `r(t)` changed value.
    pub rate_changes: usize,
    /// Max of `r(t)` in bits/s.
    pub max_rate_bps: f64,
    /// Time-weighted SD of `r(t)` in bits/s.
    pub std_dev_bps: f64,
}

/// Eq. (16) on explicit step functions: `r` against `ideal` shifted left
/// by `shift` seconds, over `[0, t_end]`.
pub fn area_difference(r: &StepFunction, ideal: &StepFunction, shift: f64, t_end: f64) -> f64 {
    let shifted = ideal.shifted_left(shift);
    let numerator = r.integrate_with(&shifted, 0.0, t_end, |a, b| (a - b).max(0.0));
    let denominator = shifted.integral(0.0, t_end);
    if denominator <= 0.0 {
        return 0.0;
    }
    numerator / denominator
}

/// The algorithm's rate function `r(t)` as a step function.
pub fn rate_function(result: &SmoothingResult) -> StepFunction {
    StepFunction::from_segments(&result.rate_segments())
}

/// A baseline's rate function as a step function.
pub fn baseline_rate_function(result: &BaselineResult) -> StepFunction {
    StepFunction::from_segments(&result.segments)
}

/// Computes all four measures for a smoothing run on `trace`.
///
/// `T` is the duration of the video (`n·τ`), per the paper; the ideal
/// rate function is regenerated from the trace and shifted by
/// `(N − K)·τ`.
pub fn measure(trace: &VideoTrace, result: &SmoothingResult) -> SmoothnessMeasures {
    let t_end = trace.duration();
    let r = rate_function(result);
    let ideal = baseline_rate_function(&ideal_smooth(trace));
    let shift = (trace.pattern.n() as f64 - result.params.k as f64) * trace.tau();
    SmoothnessMeasures {
        area_difference: area_difference(&r, &ideal, shift, t_end),
        rate_changes: result.rate_changes(),
        max_rate_bps: r.max_over(0.0, t_end),
        std_dev_bps: r.std_over(0.0, t_end),
    }
}

/// Summary statistics of a delay series (for Figure 5-style comparisons).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DelayStats {
    /// Number of pictures.
    pub count: usize,
    /// Smallest delay (seconds).
    pub min: f64,
    /// Largest delay (seconds).
    pub max: f64,
    /// Mean delay (seconds).
    pub mean: f64,
    /// Delays exceeding `bound`, if a bound was given.
    pub over_bound: usize,
}

/// Computes delay statistics, counting entries above `bound` when given.
///
/// Accepts any delay iterator — pass `result.delays()` directly (no
/// intermediate `Vec`), or a slice via `.iter().copied()` — and makes one
/// allocation-free pass.
pub fn delay_stats(delays: impl IntoIterator<Item = f64>, bound: Option<f64>) -> DelayStats {
    let mut count = 0usize;
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut sum = 0.0f64;
    let mut over_bound = 0usize;
    for d in delays {
        count += 1;
        min = min.min(d);
        max = max.max(d);
        sum += d;
        if let Some(b) = bound {
            if d > b + 1e-9 {
                over_bound += 1;
            }
        }
    }
    if count == 0 {
        return DelayStats {
            count: 0,
            min: 0.0,
            max: 0.0,
            mean: 0.0,
            over_bound: 0,
        };
    }
    DelayStats {
        count,
        min,
        max,
        mean: sum / count as f64,
        over_bound,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smooth_core::{smooth, SmootherParams};
    use smooth_mpeg::{GopPattern, PictureType, Resolution};

    fn toy_trace(n: usize) -> VideoTrace {
        let pattern = GopPattern::new(3, 9).unwrap();
        let sizes: Vec<u64> = (0..n)
            .map(|i| match pattern.type_at(i) {
                PictureType::I => 180_000,
                PictureType::P => 90_000,
                PictureType::B => 18_000,
            })
            .collect();
        VideoTrace::new("toy", pattern, Resolution::VGA, 30.0, sizes).unwrap()
    }

    #[test]
    fn area_difference_of_identical_functions_is_zero() {
        let f = StepFunction::new(vec![0.0, 1.0, 2.0], vec![3.0, 5.0]);
        assert_eq!(area_difference(&f, &f, 0.0, 2.0), 0.0);
    }

    #[test]
    fn area_difference_basic_case() {
        // r = 4 on [0,2); ideal = 2 on [0,2).
        let r = StepFunction::new(vec![0.0, 2.0], vec![4.0]);
        let ideal = StepFunction::new(vec![0.0, 2.0], vec![2.0]);
        // positive part: (4-2)*2 = 4; denominator 2*2 = 4 -> 1.0.
        assert!((area_difference(&r, &ideal, 0.0, 2.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn area_difference_shift_alignment() {
        // Ideal delayed by 1s relative to r; shifting by 1 aligns them.
        let r = StepFunction::new(vec![0.0, 2.0], vec![4.0]);
        let ideal = StepFunction::new(vec![1.0, 3.0], vec![4.0]);
        assert!(area_difference(&r, &ideal, 1.0, 2.0) < 1e-12);
        // Without the shift, half of r pokes above nothing.
        assert!(area_difference(&r, &ideal, 0.0, 2.0) > 0.4);
    }

    #[test]
    fn area_difference_degenerate_denominator() {
        let r = StepFunction::new(vec![0.0, 1.0], vec![2.0]);
        let ideal = StepFunction::zero();
        assert_eq!(area_difference(&r, &ideal, 0.0, 1.0), 0.0);
    }

    #[test]
    fn measures_on_periodic_trace_are_sane() {
        let trace = toy_trace(180);
        let result = smooth(&trace, SmootherParams::at_30fps(0.2, 1, 9).unwrap());
        let m = measure(&trace, &result);
        let pattern_rate = (180_000.0 + 2.0 * 90_000.0 + 6.0 * 18_000.0) / (9.0 / 30.0);
        // On a perfectly periodic trace the algorithm settles to roughly
        // the pattern rate, so the max is near it and the SD is small.
        assert!(
            m.max_rate_bps < 1.6 * pattern_rate,
            "max {}",
            m.max_rate_bps
        );
        assert!(m.std_dev_bps < 0.45 * pattern_rate, "std {}", m.std_dev_bps);
        assert!(m.area_difference < 0.3, "area {}", m.area_difference);
        assert!(m.rate_changes < 25, "changes {}", m.rate_changes);
    }

    #[test]
    fn larger_d_weakly_improves_every_measure_on_toy() {
        let trace = toy_trace(180);
        let m1 = measure(
            &trace,
            &smooth(&trace, SmootherParams::at_30fps(0.1, 1, 9).unwrap()),
        );
        let m3 = measure(
            &trace,
            &smooth(&trace, SmootherParams::at_30fps(0.3, 1, 9).unwrap()),
        );
        assert!(m3.max_rate_bps <= m1.max_rate_bps + 1.0);
        assert!(m3.std_dev_bps <= m1.std_dev_bps + 1.0);
    }

    #[test]
    fn delay_stats_basics() {
        let d = [0.05, 0.08, 0.12, 0.07];
        let s = delay_stats(d.iter().copied(), Some(0.1));
        assert_eq!(s.count, 4);
        assert!((s.min - 0.05).abs() < 1e-12);
        assert!((s.max - 0.12).abs() < 1e-12);
        assert!((s.mean - 0.08).abs() < 1e-12);
        assert_eq!(s.over_bound, 1);
        let s2 = delay_stats(d.iter().copied(), None);
        assert_eq!(s2.over_bound, 0);
    }

    #[test]
    fn delay_stats_empty() {
        let s = delay_stats(std::iter::empty(), Some(0.1));
        assert_eq!(s.count, 0);
        assert_eq!(s.max, 0.0);
    }
}
