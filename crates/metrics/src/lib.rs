//! # smooth-metrics
//!
//! Rate-function analytics for the `mpeg-smooth` workspace: a first-class
//! [`StepFunction`] type for piecewise-constant rate functions, the four
//! quantitative smoothness measures of the paper's §5.2 (area difference,
//! rate changes, maximum rate, standard deviation), and delay statistics
//! for Figure 5-style comparisons.
//!
//! ```
//! use smooth_metrics::{measure, rate_function};
//! use smooth_core::{smooth, SmootherParams};
//! use smooth_trace::sequences::driving1;
//!
//! let trace = driving1();
//! let result = smooth(&trace, SmootherParams::recommended(9));
//! let m = measure(&trace, &result);
//! assert!(m.max_rate_bps < trace.peak_picture_rate_bps()); // smoother than raw
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod export;
pub mod measures;
pub mod step;

pub use export::{load_result_json, save_result_json, schedule_to_csv, segments_to_csv, LoadError};
pub use measures::{
    area_difference, baseline_rate_function, delay_stats, measure, rate_function, DelayStats,
    SmoothnessMeasures,
};
pub use step::{RateCursor, StepCursor, StepFunction};
