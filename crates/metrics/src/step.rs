//! Piecewise-constant functions of time.
//!
//! Rate functions — the algorithm's `r(t)`, ideal smoothing's `R(t)`, the
//! encoder's `A(t)` — are all step functions. This module gives them a
//! first-class representation with exact integration, shifting, and
//! pairwise combination, which is what the paper's quantitative measures
//! (§5.2) are built from.

use serde::{Deserialize, Serialize};
use smooth_core::RateSegment;

/// A right-open piecewise-constant function: `values[i]` on
/// `[breaks[i], breaks[i+1])`. Outside `[breaks[0], breaks[last])` the
/// function is 0.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepFunction {
    /// Breakpoints, strictly increasing; `breaks.len() == values.len() + 1`.
    breaks: Vec<f64>,
    /// Value on each interval.
    values: Vec<f64>,
}

impl StepFunction {
    /// The zero function (empty domain).
    pub fn zero() -> Self {
        StepFunction {
            breaks: vec![0.0, 0.0],
            values: vec![0.0],
        }
    }

    /// Builds from breakpoints and values.
    ///
    /// # Panics
    ///
    /// Panics if lengths mismatch, breakpoints are not non-decreasing, or
    /// any value is non-finite.
    pub fn new(breaks: Vec<f64>, values: Vec<f64>) -> Self {
        assert_eq!(
            breaks.len(),
            values.len() + 1,
            "breaks must be one longer than values"
        );
        assert!(
            breaks.windows(2).all(|w| w[1] >= w[0]),
            "breakpoints must be non-decreasing"
        );
        assert!(
            values.iter().all(|v| v.is_finite()),
            "values must be finite"
        );
        StepFunction { breaks, values }
    }

    /// Builds from rate segments (as produced by the smoother and the
    /// baselines), inserting explicit zero-rate pieces in any gaps.
    pub fn from_segments(segments: &[RateSegment]) -> Self {
        if segments.is_empty() {
            return StepFunction::zero();
        }
        let mut breaks = Vec::with_capacity(segments.len() * 2 + 1);
        let mut values = Vec::with_capacity(segments.len() * 2);
        breaks.push(segments[0].start);
        for seg in segments {
            let last = *breaks.last().expect("non-empty");
            if seg.start > last + 1e-12 {
                values.push(0.0);
                breaks.push(seg.start);
            }
            if seg.end > *breaks.last().expect("non-empty") {
                values.push(seg.rate);
                breaks.push(seg.end);
            }
        }
        StepFunction { breaks, values }
    }

    /// The breakpoints (one more than the number of pieces).
    pub fn breakpoints(&self) -> &[f64] {
        &self.breaks
    }

    /// The pieces as `(start, end, value)` triples.
    pub fn pieces(&self) -> impl Iterator<Item = (f64, f64, f64)> + '_ {
        (0..self.values.len()).map(|i| (self.breaks[i], self.breaks[i + 1], self.values[i]))
    }

    /// Start of the non-zero domain.
    pub fn domain_start(&self) -> f64 {
        self.breaks[0]
    }

    /// End of the non-zero domain.
    pub fn domain_end(&self) -> f64 {
        *self.breaks.last().expect("at least two breaks")
    }

    /// Value at time `t` (0 outside the domain).
    ///
    /// Well-defined even when `breaks` contains duplicates (zero-length
    /// pieces): the piece *after* the last break `<= t` applies, matching
    /// the right-open convention.
    pub fn value_at(&self, t: f64) -> f64 {
        // Number of breaks <= t; the piece in effect is the one starting
        // at the last of them.
        let idx = self.breaks.partition_point(|&b| b <= t);
        if idx == 0 || idx > self.values.len() {
            0.0
        } else {
            self.values[idx - 1]
        }
    }

    /// A forward-only cursor positioned at time `t` — the O(1)-advance
    /// access path for k-way merges over many step functions (one
    /// `partition_point` to seat it, then each [`StepCursor::advance_past`]
    /// is amortized O(1) instead of a fresh binary search per lookup).
    pub fn cursor_at(&self, t: f64) -> StepCursor<'_> {
        StepCursor {
            f: self,
            idx: self.breaks.partition_point(|&b| b <= t),
        }
    }

    /// Exact integral over `[a, b]`.
    pub fn integral(&self, a: f64, b: f64) -> f64 {
        if b <= a {
            return 0.0;
        }
        let mut total = 0.0;
        for i in 0..self.values.len() {
            let lo = self.breaks[i].max(a);
            let hi = self.breaks[i + 1].min(b);
            if hi > lo {
                total += self.values[i] * (hi - lo);
            }
        }
        total
    }

    /// Number of value changes (ignoring zero-length pieces).
    pub fn changes(&self) -> usize {
        self.values
            .iter()
            .zip(self.values.iter().skip(1))
            .filter(|(a, b)| a != b)
            .count()
    }

    /// Maximum value attained on `[a, b]` (counting implicit zeros where
    /// the interval leaves the domain).
    pub fn max_over(&self, a: f64, b: f64) -> f64 {
        if b <= a {
            return 0.0;
        }
        let mut m = f64::NEG_INFINITY;
        // Implicit zero outside the domain.
        if a < self.domain_start() || b > self.domain_end() {
            m = 0.0;
        }
        for i in 0..self.values.len() {
            let lo = self.breaks[i].max(a);
            let hi = self.breaks[i + 1].min(b);
            if hi > lo {
                m = m.max(self.values[i]);
            }
        }
        if m == f64::NEG_INFINITY {
            0.0
        } else {
            m
        }
    }

    /// Time-weighted mean over `[a, b]`.
    pub fn mean_over(&self, a: f64, b: f64) -> f64 {
        if b <= a {
            return 0.0;
        }
        self.integral(a, b) / (b - a)
    }

    /// Time-weighted (population) standard deviation over `[a, b]`.
    pub fn std_over(&self, a: f64, b: f64) -> f64 {
        if b <= a {
            return 0.0;
        }
        let mean = self.mean_over(a, b);
        // Integrate (f - mean)^2, handling implicit zeros outside the
        // domain by accounting for uncovered length.
        let mut covered = 0.0;
        let mut acc = 0.0;
        for i in 0..self.values.len() {
            let lo = self.breaks[i].max(a);
            let hi = self.breaks[i + 1].min(b);
            if hi > lo {
                let d = self.values[i] - mean;
                acc += d * d * (hi - lo);
                covered += hi - lo;
            }
        }
        let uncovered = (b - a) - covered;
        if uncovered > 0.0 {
            acc += mean * mean * uncovered;
        }
        (acc / (b - a)).sqrt()
    }

    /// The function shifted left by `dt`: `g(t) = f(t + dt)`.
    pub fn shifted_left(&self, dt: f64) -> StepFunction {
        StepFunction {
            breaks: self.breaks.iter().map(|b| b - dt).collect(),
            values: self.values.clone(),
        }
    }

    /// Integrates `combine(self(t), other(t))` over `[a, b]` exactly, by
    /// merging the two breakpoint sets. `combine` must map constants to
    /// constants (no dependence on `t`).
    pub fn integrate_with(
        &self,
        other: &StepFunction,
        a: f64,
        b: f64,
        combine: impl Fn(f64, f64) -> f64,
    ) -> f64 {
        if b <= a {
            return 0.0;
        }
        let mut cuts: Vec<f64> = Vec::with_capacity(self.breaks.len() + other.breaks.len() + 2);
        cuts.push(a);
        cuts.push(b);
        cuts.extend(self.breaks.iter().copied().filter(|&t| t > a && t < b));
        cuts.extend(other.breaks.iter().copied().filter(|&t| t > a && t < b));
        cuts.sort_by(|x, y| x.partial_cmp(y).expect("finite"));
        cuts.dedup_by(|x, y| (*x - *y).abs() < 1e-15);

        let mut total = 0.0;
        for w in cuts.windows(2) {
            let (lo, hi) = (w[0], w[1]);
            if hi > lo {
                let mid = 0.5 * (lo + hi);
                total += combine(self.value_at(mid), other.value_at(mid)) * (hi - lo);
            }
        }
        total
    }
}

/// A forward-only position inside a [`StepFunction`].
///
/// The cursor tracks "how many breaks are `<= t`" for a monotonically
/// advancing time `t`, giving the value in effect and the next breakpoint
/// without re-searching. Invariant: [`StepCursor::value`] equals
/// [`StepFunction::value_at`] at the cursor's time — bit-for-bit — which
/// is what lets a streaming sweep replace per-interval `value_at` sampling
/// while remaining exactly equal to it.
#[derive(Debug, Clone, Copy)]
pub struct StepCursor<'a> {
    f: &'a StepFunction,
    /// Number of breaks `<= t` for the cursor's time `t`;
    /// `0 ..= breaks.len()`.
    idx: usize,
}

impl<'a> StepCursor<'a> {
    /// Value of the function at the cursor's current time (0 outside the
    /// domain).
    pub fn value(&self) -> f64 {
        if self.idx == 0 || self.idx > self.f.values.len() {
            0.0
        } else {
            self.f.values[self.idx - 1]
        }
    }

    /// The next breakpoint strictly after the cursor's time, if any.
    /// Duplicate breaks collapse: each distinct time is reported once.
    pub fn next_break(&self) -> Option<f64> {
        self.f.breaks.get(self.idx).copied()
    }

    /// Advances the cursor past every break `<= t`. Amortized O(1) over a
    /// forward scan (each break is stepped over once).
    pub fn advance_past(&mut self, t: f64) {
        while let Some(&b) = self.f.breaks.get(self.idx) {
            if b <= t {
                self.idx += 1;
            } else {
                break;
            }
        }
    }
}

/// A forward-only rate source for k-way merges — the [`StepCursor`]
/// interface abstracted over its backing store, so a sweep can consume
/// rates produced on the fly (e.g. by a live smoothing session) without
/// materializing a [`StepFunction`] per source.
///
/// Contract (what makes a sweep over these cursors exactly equal to one
/// over materialized step functions):
///
/// * the conceptual function is right-open piecewise-constant and 0
///   outside its domain;
/// * [`advance_past`](RateCursor::advance_past)`(t)` moves monotonically
///   forward past every breakpoint `<= t`, after which
///   [`value`](RateCursor::value) is the value in effect just after `t`;
/// * [`next_break`](RateCursor::next_break) is the first breakpoint
///   strictly after the cursor's position, with duplicates collapsed —
///   each distinct time reported once, in strictly increasing order,
///   `None` once the domain is exhausted.
pub trait RateCursor {
    /// Value of the function at the cursor's current position.
    fn value(&self) -> f64;
    /// The next breakpoint strictly after the current position, if any.
    ///
    /// Takes `&mut self` so lazily-produced sources may generate further
    /// pieces on demand; a materialized cursor just peeks.
    fn next_break(&mut self) -> Option<f64>;
    /// Advances past every break `<= t` (`t` non-decreasing across calls).
    fn advance_past(&mut self, t: f64);
}

impl RateCursor for StepCursor<'_> {
    fn value(&self) -> f64 {
        StepCursor::value(self)
    }

    fn next_break(&mut self) -> Option<f64> {
        StepCursor::next_break(self)
    }

    fn advance_past(&mut self, t: f64) {
        StepCursor::advance_past(self, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step() -> StepFunction {
        // 2 on [0,1), 5 on [1,3), 1 on [3,4).
        StepFunction::new(vec![0.0, 1.0, 3.0, 4.0], vec![2.0, 5.0, 1.0])
    }

    #[test]
    fn value_lookup() {
        let f = step();
        assert_eq!(f.value_at(-0.5), 0.0);
        assert_eq!(f.value_at(0.0), 2.0);
        assert_eq!(f.value_at(0.999), 2.0);
        assert_eq!(f.value_at(1.0), 5.0);
        assert_eq!(f.value_at(2.9), 5.0);
        assert_eq!(f.value_at(3.0), 1.0);
        assert_eq!(f.value_at(4.0), 0.0, "right-open at the domain end");
        assert_eq!(f.value_at(100.0), 0.0);
    }

    #[test]
    fn integral_exact() {
        let f = step();
        assert!((f.integral(0.0, 4.0) - (2.0 + 10.0 + 1.0)).abs() < 1e-12);
        assert!((f.integral(0.5, 1.5) - (1.0 + 2.5)).abs() < 1e-12);
        // Beyond the domain contributes zero.
        assert!((f.integral(-1.0, 5.0) - 13.0).abs() < 1e-12);
        assert_eq!(f.integral(2.0, 2.0), 0.0);
        assert_eq!(f.integral(3.0, 1.0), 0.0);
    }

    #[test]
    fn from_segments_with_gap() {
        let segs = vec![
            RateSegment {
                start: 0.0,
                end: 1.0,
                rate: 3.0,
            },
            RateSegment {
                start: 2.0,
                end: 3.0,
                rate: 4.0,
            },
        ];
        let f = StepFunction::from_segments(&segs);
        assert_eq!(f.value_at(0.5), 3.0);
        assert_eq!(f.value_at(1.5), 0.0, "gap filled with zero");
        assert_eq!(f.value_at(2.5), 4.0);
        assert!((f.integral(0.0, 3.0) - 7.0).abs() < 1e-12);
        assert_eq!(f.changes(), 2);
    }

    #[test]
    fn from_empty_segments() {
        let f = StepFunction::from_segments(&[]);
        assert_eq!(f.integral(0.0, 10.0), 0.0);
        assert_eq!(f.value_at(1.0), 0.0);
    }

    #[test]
    fn changes_ignores_equal_neighbors() {
        let f = StepFunction::new(vec![0.0, 1.0, 2.0, 3.0], vec![2.0, 2.0, 7.0]);
        assert_eq!(f.changes(), 1);
    }

    #[test]
    fn max_over_includes_implicit_zero() {
        let f = StepFunction::new(vec![1.0, 2.0], vec![-3.0]);
        // On [0, 3]: function is -3 on [1,2), 0 elsewhere -> max 0.
        assert_eq!(f.max_over(0.0, 3.0), 0.0);
        // Entirely within the domain: max is the (negative) value.
        assert_eq!(f.max_over(1.0, 2.0), -3.0);
        assert_eq!(step().max_over(0.0, 4.0), 5.0);
        assert_eq!(step().max_over(0.0, 0.5), 2.0);
    }

    #[test]
    fn mean_and_std() {
        // 0 on [0,1), 2 on [1,2): mean over [0,2) = 1; std = 1.
        let f = StepFunction::new(vec![0.0, 1.0, 2.0], vec![0.0, 2.0]);
        assert!((f.mean_over(0.0, 2.0) - 1.0).abs() < 1e-12);
        assert!((f.std_over(0.0, 2.0) - 1.0).abs() < 1e-12);
        // Constant function: std 0.
        let c = StepFunction::new(vec![0.0, 5.0], vec![3.0]);
        assert!((c.std_over(0.0, 5.0)).abs() < 1e-12);
    }

    #[test]
    fn std_accounts_for_uncovered_tail() {
        // 2 on [0,1); window [0,2): implicit 0 on [1,2).
        let f = StepFunction::new(vec![0.0, 1.0], vec![2.0]);
        assert!((f.mean_over(0.0, 2.0) - 1.0).abs() < 1e-12);
        assert!((f.std_over(0.0, 2.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn shifted_left() {
        let f = step();
        let g = f.shifted_left(1.0); // g(t) = f(t+1)
        assert_eq!(g.value_at(0.0), 5.0);
        assert_eq!(g.value_at(-1.0), 2.0);
        assert!((g.integral(-1.0, 3.0) - f.integral(0.0, 4.0)).abs() < 1e-12);
    }

    #[test]
    fn integrate_with_positive_part() {
        // f = 3 on [0,2); g = 1 on [0,1), 5 on [1,2).
        let f = StepFunction::new(vec![0.0, 2.0], vec![3.0]);
        let g = StepFunction::new(vec![0.0, 1.0, 2.0], vec![1.0, 5.0]);
        let pos = f.integrate_with(&g, 0.0, 2.0, |a, b| (a - b).max(0.0));
        // [0,1): (3-1)+ = 2; [1,2): (3-5)+ = 0 -> 2.
        assert!((pos - 2.0).abs() < 1e-12);
        // And the signed difference integrates to 3*2 - (1+5) = 0.
        let signed = f.integrate_with(&g, 0.0, 2.0, |a, b| a - b);
        assert!(signed.abs() < 1e-12);
    }

    #[test]
    fn integrate_with_handles_disjoint_domains() {
        let f = StepFunction::new(vec![0.0, 1.0], vec![4.0]);
        let g = StepFunction::new(vec![2.0, 3.0], vec![7.0]);
        let total = f.integrate_with(&g, 0.0, 3.0, |a, b| a + b);
        assert!((total - (4.0 + 7.0)).abs() < 1e-12);
    }

    #[test]
    fn value_at_is_well_defined_on_duplicate_breaks() {
        // Zero-length piece [1,1): the piece after the *last* break <= t
        // applies, so t = 1 must read the [1,2) value, never the empty
        // piece's.
        let f = StepFunction::new(vec![0.0, 1.0, 1.0, 2.0], vec![3.0, 9.0, 7.0]);
        assert_eq!(f.value_at(0.5), 3.0);
        assert_eq!(f.value_at(1.0), 7.0);
        assert_eq!(f.value_at(1.5), 7.0);
        assert_eq!(f.value_at(2.0), 0.0);
    }

    #[test]
    fn cursor_matches_value_at_everywhere() {
        let f = StepFunction::new(vec![0.0, 1.0, 1.0, 3.0, 4.0], vec![2.0, 8.0, 5.0, 1.0]);
        let mut cursor = f.cursor_at(-2.0);
        assert_eq!(cursor.value(), 0.0);
        assert_eq!(cursor.next_break(), Some(0.0));
        for t in [-1.0, 0.0, 0.5, 1.0, 2.0, 3.0, 3.5, 4.0, 9.0] {
            cursor.advance_past(t);
            assert_eq!(cursor.value(), f.value_at(t), "t={t}");
        }
        assert_eq!(cursor.next_break(), None);
    }

    #[test]
    fn cursor_reports_each_distinct_break_once() {
        let f = StepFunction::new(vec![0.0, 1.0, 1.0, 2.0], vec![3.0, 9.0, 7.0]);
        let mut cursor = f.cursor_at(0.0);
        let mut seen = Vec::new();
        while let Some(b) = cursor.next_break() {
            seen.push(b);
            cursor.advance_past(b);
        }
        assert_eq!(seen, vec![1.0, 2.0], "duplicate break collapses");
    }

    #[test]
    fn cursor_seated_mid_domain() {
        let f = step();
        let c = f.cursor_at(2.0);
        assert_eq!(c.value(), 5.0);
        assert_eq!(c.next_break(), Some(3.0));
        // Seating exactly on a break lands on the piece it opens.
        let c = f.cursor_at(3.0);
        assert_eq!(c.value(), 1.0);
        assert_eq!(c.next_break(), Some(4.0));
        let c = f.cursor_at(4.0);
        assert_eq!(c.value(), 0.0);
        assert_eq!(c.next_break(), None);
    }

    #[test]
    #[should_panic(expected = "one longer")]
    fn new_rejects_mismatched_lengths() {
        StepFunction::new(vec![0.0, 1.0], vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn new_rejects_unsorted_breaks() {
        StepFunction::new(vec![0.0, 2.0, 1.0], vec![1.0, 2.0]);
    }
}
