//! Result persistence: CSV exports for plotting and JSON round-trips for
//! archiving smoothing runs (so an evaluation can be re-analyzed without
//! re-running).

use smooth_core::{RateSegment, SmoothingResult};
use std::fmt::Write as _;
use std::path::Path;

/// Renders a per-picture schedule as CSV
/// (`index,start_s,rate_bps,depart_s,delay_s,lower0_bps,upper0_bps`).
pub fn schedule_to_csv(result: &SmoothingResult) -> String {
    let mut out = String::from("index,start_s,rate_bps,depart_s,delay_s,lower0_bps,upper0_bps\n");
    for p in &result.schedule {
        let _ = writeln!(
            out,
            "{},{:.9},{:.3},{:.9},{:.9},{:.3},{}",
            p.index,
            p.start,
            p.rate,
            p.depart,
            p.delay,
            p.lower0,
            if p.upper0.is_finite() {
                format!("{:.3}", p.upper0)
            } else {
                "inf".into()
            },
        );
    }
    out
}

/// Renders rate segments as CSV (`start_s,end_s,rate_bps`).
pub fn segments_to_csv(segments: &[RateSegment]) -> String {
    let mut out = String::from("start_s,end_s,rate_bps\n");
    for s in segments {
        let _ = writeln!(out, "{:.9},{:.9},{:.3}", s.start, s.end, s.rate);
    }
    out
}

/// Saves a full [`SmoothingResult`] (parameters + schedule) as JSON.
pub fn save_result_json(
    result: &SmoothingResult,
    path: impl AsRef<Path>,
) -> Result<(), std::io::Error> {
    let json = serde_json::to_string_pretty(result).expect("SmoothingResult serializes");
    std::fs::write(path, json)
}

/// Loads a [`SmoothingResult`] saved by [`save_result_json`].
pub fn load_result_json(path: impl AsRef<Path>) -> Result<SmoothingResult, LoadError> {
    let text = std::fs::read_to_string(path).map_err(LoadError::Io)?;
    serde_json::from_str(&text).map_err(LoadError::Json)
}

/// Errors from [`load_result_json`].
#[derive(Debug)]
pub enum LoadError {
    /// Filesystem error.
    Io(std::io::Error),
    /// Malformed JSON.
    Json(serde_json::Error),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "I/O error: {e}"),
            LoadError::Json(e) => write!(f, "JSON error: {e}"),
        }
    }
}

impl std::error::Error for LoadError {}

#[cfg(test)]
mod tests {
    use super::*;
    use smooth_core::{smooth, SmootherParams};
    use smooth_trace::driving1;

    fn sample() -> SmoothingResult {
        smooth(
            &driving1().truncated(27),
            SmootherParams::at_30fps(0.2, 1, 9).unwrap(),
        )
    }

    #[test]
    fn schedule_csv_has_one_row_per_picture() {
        let r = sample();
        let csv = schedule_to_csv(&r);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + 27);
        assert!(lines[0].starts_with("index,start_s"));
        // Row fields parse back as numbers (except possible "inf").
        let fields: Vec<&str> = lines[1].split(',').collect();
        assert_eq!(fields.len(), 7);
        assert_eq!(fields[0], "0");
        assert!(fields[2].parse::<f64>().unwrap() > 0.0);
    }

    #[test]
    fn segments_csv_roundtrips_structure() {
        let r = sample();
        let csv = segments_to_csv(&r.rate_segments());
        assert_eq!(csv.lines().count(), 1 + r.rate_segments().len());
    }

    #[test]
    fn json_roundtrip_is_exact() {
        let r = sample();
        let dir = std::env::temp_dir().join("smooth_metrics_export_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("result.json");
        save_result_json(&r, &path).unwrap();
        let back = load_result_json(&path).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn load_errors_are_typed() {
        assert!(matches!(
            load_result_json("/nonexistent/r.json"),
            Err(LoadError::Io(_))
        ));
        let dir = std::env::temp_dir().join("smooth_metrics_export_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        std::fs::write(&path, "not json").unwrap();
        assert!(matches!(load_result_json(&path), Err(LoadError::Json(_))));
    }

    #[test]
    fn infinite_upper_bound_serializes_as_inf() {
        // The very first picture of a K=0 run can have upper0 = inf...
        // easier: fabricate one.
        let mut r = sample();
        r.schedule[0].upper0 = f64::INFINITY;
        let csv = schedule_to_csv(&r);
        assert!(csv.lines().nth(1).unwrap().ends_with(",inf"));
    }
}
