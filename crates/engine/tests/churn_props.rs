//! The dynamic engine's load-bearing equalities, pinned property-style:
//!
//! 1. **Wheel vs. scan.** Replaying a churn trace through the
//!    timing-wheel [`DynamicEngine`] yields the same per-session
//!    digests, fleet digest, and decision count as the frozen
//!    brute-force scan-all reference ([`smooth_engine::scanref`]) —
//!    the wheel, the compact store, and slot recycling are invisible.
//! 2. **Determinism.** The digests are invariant under thread count and
//!    shard size, and under mid-run snapshot/restore migration,
//!    rebalancing, and checkpoint/recovery.
//! 3. **Slot recycling.** Interleaved add/remove/re-add over the shards
//!    leaves every *surviving* session with exactly the digest a fresh
//!    engine fed only the survivors' traces produces — a recycled slot
//!    carries nothing over from its previous occupant.

use proptest::prelude::*;
use smooth_core::SmootherParams;
use smooth_engine::{
    churn_trace, scanref::run_scan, ChurnEvent, ChurnSpec, ChurnTrace, DynamicClass, DynamicEngine,
    SessionClass, SyntheticFleet,
};
use smooth_mpeg::GopPattern;

const TAU: f64 = 1.0 / 30.0;

fn arb_pattern() -> impl Strategy<Value = GopPattern> {
    prop_oneof![Just((3usize, 9usize)), Just((2, 6)), Just((1, 5))]
        .prop_map(|(m, n)| GopPattern::new(m, n).expect("regular pattern"))
}

/// A dynamic class: smoother parameters plus a small period in ticks.
fn arb_dynamic_class() -> impl Strategy<Value = DynamicClass> {
    (
        arb_pattern(),
        1usize..=3,
        1usize..=12,
        0.0f64..0.2,
        1u64..=7,
    )
        .prop_map(|(pattern, k, h, extra_slack, period_ticks)| {
            let d = (k as f64 + 1.0) * TAU + extra_slack;
            let params = SmootherParams::new(d, k, h, TAU).expect("feasible by construction");
            DynamicClass {
                class: SessionClass::new(params, pattern),
                period_ticks,
            }
        })
}

/// A churn scenario: 1–3 classes with weights, a small initial fleet, a
/// short horizon, and a hot churn rate so joins *and* leaves actually
/// happen inside the horizon.
#[derive(Debug, Clone)]
struct Scenario {
    classes: Vec<DynamicClass>,
    trace: ChurnTrace,
    seed: u64,
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (
        proptest::collection::vec((arb_dynamic_class(), 1u32..=3), 1..=3),
        1usize..=12,
        20u64..200,
        any::<u64>(),
    )
        .prop_map(|(weighted, initial, horizon, seed)| {
            let (classes, weights): (Vec<_>, Vec<_>) = weighted.into_iter().unzip();
            let spec = ChurnSpec {
                seed,
                initial,
                weights,
                periods: classes.iter().map(|c| c.period_ticks).collect(),
                ticks_per_sec: 10,
                horizon,
                // Very hot churn (500 %/s of the initial fleet) so short
                // horizons still exercise leave + recycle + re-add.
                churn_ppm_per_sec: 5_000_000,
            };
            Scenario {
                trace: churn_trace(&spec),
                classes,
                seed,
            }
        })
}

fn source(s: &Scenario) -> SyntheticFleet {
    SyntheticFleet {
        seed: s.seed,
        pattern: s.classes[0].class.pattern,
    }
}

fn capacity(s: &Scenario) -> usize {
    s.trace.peak_live.max(1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Wheel vs. frozen scan-all reference, with and without the final
    /// end-of-run drain.
    #[test]
    fn wheel_matches_scan_reference(s in arb_scenario()) {
        let src = source(&s);
        for finish in [false, true] {
            let want = run_scan(&s.classes, &s.trace, &src, finish);
            let mut engine =
                DynamicEngine::new(s.classes.clone(), capacity(&s), 4).expect("valid config");
            engine.run_trace(&src, &s.trace, 1).expect("trace fits capacity");
            if finish {
                engine.finish(&src, 1);
            }
            prop_assert_eq!(
                engine.session_digests(),
                want.session_digests,
                "finish={} seed={}",
                finish,
                s.seed
            );
            prop_assert_eq!(engine.digest(), want.digest);
            prop_assert_eq!(engine.decisions(), want.decisions);
        }
    }

    /// Thread count and shard size never change a bit.
    #[test]
    fn churn_digests_invariant_across_threads_and_shards(s in arb_scenario()) {
        let src = source(&s);
        let cap = capacity(&s);
        let mut baseline = DynamicEngine::new(s.classes.clone(), cap, 64).expect("valid");
        baseline.run_trace(&src, &s.trace, 1).expect("fits");
        baseline.finish(&src, 1);
        let want_digest = baseline.digest();
        let want_sessions = baseline.session_digests();

        for shard_size in [1usize, 3, 7] {
            for threads in [1usize, 2, 4] {
                let mut engine =
                    DynamicEngine::new(s.classes.clone(), cap, shard_size).expect("valid");
                engine.run_trace(&src, &s.trace, threads).expect("fits");
                engine.finish(&src, threads);
                prop_assert_eq!(
                    engine.digest(),
                    want_digest,
                    "digest diverged at shard_size={} threads={}",
                    shard_size,
                    threads
                );
                prop_assert_eq!(&engine.session_digests(), &want_sessions);
                prop_assert_eq!(engine.decisions(), baseline.decisions());
            }
        }
    }

    /// The arrival-batch quantum is a pure throughput knob: replays at
    /// B ∈ {1, 2, 7, 16} all match the frozen scan-all reference bit
    /// for bit. B=1 is the unbatched wheel (one arrival per visit), so
    /// this pins batching itself, not just batch-vs-batch agreement.
    #[test]
    fn churn_digests_invariant_in_arrival_batch(s in arb_scenario()) {
        let src = source(&s);
        let cap = capacity(&s);
        let want = run_scan(&s.classes, &s.trace, &src, true);
        for batch in [1u64, 2, 7, 16] {
            let mut engine =
                DynamicEngine::new(s.classes.clone(), cap, 4).expect("valid");
            engine.set_arrival_batch(batch);
            engine.run_trace(&src, &s.trace, 1).expect("fits");
            engine.finish(&src, 1);
            prop_assert_eq!(
                engine.digest(),
                want.digest,
                "digest diverged at batch={} seed={}",
                batch,
                s.seed
            );
            prop_assert_eq!(&engine.session_digests(), &want.session_digests);
            prop_assert_eq!(engine.decisions(), want.decisions);
        }
    }

    /// Mid-trace rebalancing and checkpoint/recovery continue
    /// bit-identically: split the trace at a cut tick, disturb the
    /// engine there, replay the remainder.
    #[test]
    fn migration_and_recovery_preserve_digests(s in arb_scenario(), cut_frac in 0.1f64..0.9) {
        let src = source(&s);
        let cap = capacity(&s);
        let cut = ((s.trace.horizon as f64 * cut_frac) as u64).max(1);
        let head = ChurnTrace {
            events: s.trace.events.iter().filter(|(t, _)| *t < cut).cloned().collect(),
            horizon: cut - 1,
            peak_live: s.trace.peak_live,
        };
        let tail = ChurnTrace {
            events: s.trace.events.iter().filter(|(t, _)| *t >= cut).cloned().collect(),
            horizon: s.trace.horizon,
            peak_live: s.trace.peak_live,
        };

        let mut plain = DynamicEngine::new(s.classes.clone(), cap, 4).expect("valid");
        plain.run_trace(&src, &s.trace, 1).expect("fits");
        plain.finish(&src, 1);

        let mut disturbed = DynamicEngine::new(s.classes.clone(), cap, 4).expect("valid");
        disturbed.run_trace(&src, &head, 1).expect("fits");
        disturbed.rebalance();
        let cp = disturbed.checkpoint();
        let mut recovered =
            DynamicEngine::restore_checkpoint(s.classes.clone(), cap, 4, &cp).expect("valid");
        recovered.run_trace(&src, &tail, 1).expect("fits");
        recovered.finish(&src, 1);

        prop_assert_eq!(plain.digest(), recovered.digest());
        prop_assert_eq!(plain.session_digests(), recovered.session_digests());
        prop_assert_eq!(plain.decisions(), recovered.decisions());
    }

    /// Slot recycling: after interleaved add/remove/re-add, every
    /// surviving session's digest equals what a fresh engine fed *only
    /// the survivors' traces* (same streams, same join ticks and phases,
    /// no churn) produces — recycled slots carry nothing over.
    #[test]
    fn recycled_slots_match_fresh_engine_of_survivors(s in arb_scenario()) {
        let src = source(&s);
        let mut engine =
            DynamicEngine::new(s.classes.clone(), capacity(&s), 3).expect("valid");
        engine.run_trace(&src, &s.trace, 1).expect("fits");
        engine.finish(&src, 1);
        let churned = engine.session_digests();

        // Survivors: joins whose sid never appears in a Leave.
        let departed: std::collections::HashSet<u64> = s
            .trace
            .events
            .iter()
            .filter_map(|(_, e)| match e {
                ChurnEvent::Leave { sid } => Some(*sid),
                _ => None,
            })
            .collect();
        let mut surviving_joins = Vec::new();
        let mut sid = 0u64;
        for (t, e) in &s.trace.events {
            if let ChurnEvent::Join { .. } = e {
                if !departed.contains(&sid) {
                    surviving_joins.push((*t, *e));
                }
                sid += 1;
            }
        }
        prop_assume!(!surviving_joins.is_empty());
        let survivors_trace = ChurnTrace {
            events: surviving_joins.clone(),
            horizon: s.trace.horizon,
            peak_live: surviving_joins.len(),
        };
        let mut fresh =
            DynamicEngine::new(s.classes.clone(), surviving_joins.len(), 3).expect("valid");
        fresh.run_trace(&src, &survivors_trace, 1).expect("fits");
        fresh.finish(&src, 1);
        let fresh_digests = fresh.session_digests();

        // Fresh sid i is the i-th surviving join; map back to the
        // churned engine's sid via the stream id (streams are unique).
        let mut fresh_i = 0usize;
        let mut churned_sid = 0u64;
        let mut checked = 0usize;
        for (_, e) in &s.trace.events {
            if let ChurnEvent::Join { stream, .. } = e {
                if !departed.contains(&churned_sid) {
                    let fe = &survivors_trace.events[fresh_i].1;
                    if let ChurnEvent::Join { stream: fs, .. } = fe {
                        prop_assert_eq!(*fs, *stream, "survivor order preserved");
                    }
                    prop_assert_eq!(
                        churned[churned_sid as usize],
                        fresh_digests[fresh_i],
                        "survivor stream {} diverged after slot recycling",
                        stream
                    );
                    fresh_i += 1;
                    checked += 1;
                }
                churned_sid += 1;
            }
        }
        prop_assert!(checked > 0);
    }
}

/// Bounded memory under heavy churn: 100k+ churn events recycle slots
/// instead of growing the shards — resident slots never exceed the
/// engine capacity (peak concurrency), no matter how many sessions pass
/// through.
#[test]
fn hundred_k_churn_events_keep_memory_bounded() {
    let pattern = GopPattern::new(3, 9).unwrap();
    let class = DynamicClass {
        class: SessionClass::new(SmootherParams::new(0.1, 1, 4, TAU).unwrap(), pattern),
        period_ticks: 3,
    };
    let spec = ChurnSpec {
        seed: 0xC0FFEE,
        initial: 500,
        weights: vec![1],
        periods: vec![3],
        ticks_per_sec: 20,
        horizon: 2_100,
        // 100 %/s of the initial fleet: 25 joins + 25 leaves per tick-
        // second — over the 105 simulated seconds, 100k+ events.
        churn_ppm_per_sec: 1_000_000,
    };
    let trace = churn_trace(&spec);
    assert!(
        trace.events.len() >= 100_000,
        "trace has only {} events",
        trace.events.len()
    );
    let shard_size = 64usize;
    let cap = trace.peak_live;
    let mut engine = DynamicEngine::new(vec![class], cap, shard_size).unwrap();
    let src = SyntheticFleet {
        seed: 0xC0FFEE,
        pattern,
    };
    engine.run_trace(&src, &trace, 1).unwrap();
    // Far more sessions passed through than are ever resident…
    assert!(engine.joined() as usize > 50 * cap);
    // …yet resident slots are bounded by the peak-concurrency capacity
    // (rounded up to whole shards), not by the 50k+ sessions that ever
    // lived: churn recycles slots instead of growing the arrays.
    let slot_budget = cap.div_ceil(shard_size) * shard_size;
    assert!(
        engine.allocated_slots() <= slot_budget,
        "{} slots resident for peak {} live",
        engine.allocated_slots(),
        cap
    );
    let slot_bytes = engine.state_bytes_per_slot();
    assert!(
        slot_bytes < 1024,
        "slot bytes {slot_bytes} not a small constant"
    );
}
