//! The engine's two load-bearing equalities, pinned property-style:
//!
//! 1. **One decision function.** A fleet session's schedule is
//!    bit-identical to a dedicated [`OnlineSmoother`] fed the same sizes
//!    — the engine routes through the same `decide_live`, so batching,
//!    the shared ring storage, and history pruning must be invisible.
//! 2. **Determinism.** The per-session decision digests are invariant
//!    under shard size and thread count — shards are disjoint state
//!    machines collected in index order, so parallel == serial, bit for
//!    bit.
//!
//! Plus the lazy mux adapter: streaming schedules into the k-way merge
//! equals materializing every schedule and running the sweep.

use proptest::prelude::*;
use smooth_core::{OnlineSmoother, PictureSchedule, SmootherParams};
use smooth_engine::{
    mux::{materialize_schedules, mux_sessions},
    SessionClass, SessionEngine, SizeSource, SyntheticFleet,
};
use smooth_mpeg::GopPattern;
use smooth_netsim::RateSweep;

const TAU: f64 = 1.0 / 30.0;

fn arb_pattern() -> impl Strategy<Value = GopPattern> {
    prop_oneof![
        Just((3usize, 9usize)),
        Just((2, 6)),
        Just((3, 12)),
        Just((1, 5)),
        Just((1, 1)),
    ]
    .prop_map(|(m, n)| GopPattern::new(m, n).expect("regular pattern"))
}

fn arb_class() -> impl Strategy<Value = SessionClass> {
    (arb_pattern(), 1usize..=4, 1usize..=16, 0.0f64..0.3).prop_map(
        |(pattern, k, h, extra_slack)| {
            let d = (k as f64 + 1.0) * TAU + extra_slack;
            let params = SmootherParams::new(d, k, h, TAU).expect("feasible by construction");
            SessionClass::new(params, pattern)
        },
    )
}

/// A heterogeneous fleet: 1–3 classes, a few sessions each, plus the
/// tick count and the synthetic seed.
#[derive(Debug, Clone)]
struct FleetSpec {
    classes: Vec<SessionClass>,
    counts: Vec<usize>,
    ticks: u64,
    seed: u64,
}

fn arb_fleet() -> impl Strategy<Value = FleetSpec> {
    (
        proptest::collection::vec((arb_class(), 1usize..=6), 1..=3),
        1u64..60,
        any::<u64>(),
    )
        .prop_map(|(classed, ticks, seed)| {
            let (classes, counts) = classed.into_iter().unzip();
            FleetSpec {
                classes,
                counts,
                ticks,
                seed,
            }
        })
}

fn build(spec: &FleetSpec, shard_size: usize) -> SessionEngine {
    let mut engine = SessionEngine::with_shard_size(spec.classes.clone(), shard_size);
    for (class_id, &count) in spec.counts.iter().enumerate() {
        engine.add_sessions(class_id, count);
    }
    engine
}

/// The engine's size source uses the *first* class's pattern for the
/// type shape; decisions only care about the numbers, so that is fine
/// for heterogeneous fleets as long as both sides see the same stream.
fn fleet_source(spec: &FleetSpec) -> SyntheticFleet {
    SyntheticFleet {
        seed: spec.seed,
        pattern: spec.classes[0].pattern,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every session of the fleet decides exactly what a dedicated
    /// per-stream `OnlineSmoother` would, bit for bit.
    #[test]
    fn fleet_sessions_match_dedicated_smoothers(spec in arb_fleet()) {
        let source = fleet_source(&spec);
        let mut engine = build(&spec, 5);
        let sessions = engine.session_count();
        let mut got: Vec<Vec<PictureSchedule>> = vec![Vec::new(); sessions];
        for _ in 0..spec.ticks {
            engine.tick_serial_with(&source, &mut |sid, d| got[sid as usize].push(*d));
        }
        engine.finish_serial_with(&source, &mut |sid, d| got[sid as usize].push(*d));

        let mut sid = 0u64;
        for (class, &count) in spec.classes.iter().zip(&spec.counts) {
            for _ in 0..count {
                let mut online = OnlineSmoother::new(class.params, class.pattern);
                let mut want = Vec::new();
                for p in 0..spec.ticks {
                    want.extend(online.push(source.size(sid, p)));
                }
                want.extend(online.finish());
                prop_assert_eq!(
                    &got[sid as usize],
                    &want,
                    "session {} diverged from its dedicated smoother",
                    sid
                );
                sid += 1;
            }
        }
    }

    /// Shard size and thread count never change a bit: the digests (one
    /// per session, one global) are invariant across layouts.
    #[test]
    fn digests_invariant_across_shards_and_threads(spec in arb_fleet()) {
        let source = fleet_source(&spec);
        let mut baseline = build(&spec, 1024);
        for _ in 0..spec.ticks {
            baseline.tick(&source, 1);
        }
        baseline.finish(&source, 1);
        let want_digest = baseline.digest();
        let want_sessions = baseline.session_digests();
        prop_assert!(baseline.decisions() > 0);

        for shard_size in [1usize, 2, 3, 7] {
            for threads in [1usize, 2, 4, 9] {
                let mut engine = build(&spec, shard_size);
                for _ in 0..spec.ticks {
                    engine.tick(&source, threads);
                }
                engine.finish(&source, threads);
                prop_assert_eq!(
                    engine.digest(),
                    want_digest,
                    "digest diverged at shard_size={} threads={}",
                    shard_size,
                    threads
                );
                prop_assert_eq!(&engine.session_digests(), &want_sessions);
                prop_assert_eq!(engine.decisions(), baseline.decisions());
            }
        }

        // The session-major batched driver (the throughput path) lands
        // on the same bits as the lockstep tick loop.
        for (shard_size, threads) in [(1024usize, 1usize), (3, 1), (5, 4)] {
            let mut engine = build(&spec, shard_size);
            engine.run(&source, spec.ticks, true, threads);
            prop_assert_eq!(
                engine.digest(),
                want_digest,
                "batched run diverged at shard_size={} threads={}",
                shard_size,
                threads
            );
            prop_assert_eq!(&engine.session_digests(), &want_sessions);
            prop_assert_eq!(engine.decisions(), baseline.decisions());
            prop_assert_eq!(engine.ticks(), baseline.ticks());
        }
    }

    /// The lazy cursor mux equals materialize-then-sweep, bit for bit.
    #[test]
    fn lazy_mux_equals_materialized_sweep(spec in arb_fleet()) {
        let source = fleet_source(&spec);
        let inputs = materialize_schedules(build(&spec, 3), source, spec.ticks);
        let t_end = inputs.iter().map(|f| f.domain_end()).fold(0.0, f64::max);
        let sweep = RateSweep {
            capacity_bps: 2.0e6 * inputs.len() as f64,
            buffer_bits: 1.0e5,
        };
        let want = sweep.run(&inputs, 0.0, t_end);
        let got = mux_sessions(build(&spec, 3), source, spec.ticks, &sweep, 0.0, t_end)
            .expect("fresh engine");
        prop_assert_eq!(want.arrived_bits.to_bits(), got.arrived_bits.to_bits());
        prop_assert_eq!(want.lost_bits.to_bits(), got.lost_bits.to_bits());
        prop_assert_eq!(want.served_bits.to_bits(), got.served_bits.to_bits());
        prop_assert_eq!(want.final_queue_bits.to_bits(), got.final_queue_bits.to_bits());
        prop_assert_eq!(want.max_queue_bits.to_bits(), got.max_queue_bits.to_bits());
        prop_assert_eq!(want.utilization.to_bits(), got.utilization.to_bits());
    }

    /// Retained history per session stays inside the fixed per-class
    /// slot no matter how many ticks run.
    #[test]
    fn history_bounded_for_any_run_length(
        spec in arb_fleet(),
        extra_ticks in 0u64..400,
    ) {
        let source = fleet_source(&spec);
        let mut engine = build(&spec, 4);
        let cap = (0..spec.classes.len())
            .map(|c| engine.class_ring_cap(c))
            .max()
            .expect("non-empty");
        for _ in 0..(spec.ticks + extra_ticks) {
            engine.tick(&source, 2);
            prop_assert!(engine.max_retained() <= cap);
        }
        engine.finish(&source, 2);
        prop_assert!(engine.max_retained() <= cap);
    }
}
