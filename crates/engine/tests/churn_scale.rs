//! Churn scale smoke test: one million live sessions on heterogeneous
//! picture clocks with ~1 %/s of the fleet joining and leaving.
//!
//! The event-driven tentpole asserted end to end: a 24/25/30/60 fps mix
//! ramps to 1M live sessions, churns at 1 %/s, and decides two
//! simulated seconds of pictures inside the CI budget (release builds
//! only; debug builds run a 10k-session variant with no runtime
//! budget). A multi-thread replay of a 50k sub-fleet reproduces the
//! serial digests bit for bit.

use std::time::Instant;

use smooth_engine::{churn_trace, ChurnSpec, DynamicEngine, SyntheticFleet, TICKS_PER_SEC};

/// The standard heterogeneous mix: equal-weight 24/25/30/60 fps.
fn standard_mix() -> (Vec<smooth_engine::DynamicClass>, Vec<u32>) {
    let classes: Vec<_> = [24u64, 25, 30, 60]
        .iter()
        .map(|&fps| smooth_engine::fps_class(fps))
        .collect();
    let weights = vec![1u32; classes.len()];
    (classes, weights)
}

fn mixed_trace(initial: usize, seconds: u64, churn_ppm_per_sec: u64) -> smooth_engine::ChurnTrace {
    let (classes, weights) = standard_mix();
    churn_trace(&ChurnSpec {
        seed: 0xC_0041_7E57,
        initial,
        weights,
        periods: classes.iter().map(|c| c.period_ticks).collect(),
        ticks_per_sec: TICKS_PER_SEC,
        horizon: TICKS_PER_SEC * seconds,
        churn_ppm_per_sec,
    })
}

#[test]
fn million_session_churn_smoke() {
    let initial: usize = if cfg!(debug_assertions) {
        10_000
    } else {
        1_000_000
    };
    // Ramp second + one full churn second.
    let trace = mixed_trace(initial, 2, 10_000);
    let (classes, _) = standard_mix();
    let src = SyntheticFleet {
        seed: 0xC_0041_7E57,
        pattern: classes[0].class.pattern,
    };
    let mut engine = DynamicEngine::new(classes, trace.peak_live, 4096).unwrap();

    let t0 = Instant::now();
    engine.run_trace(&src, &trace, 1).unwrap();
    let wall = t0.elapsed().as_secs_f64();

    // The fleet is live at the horizon (joins ≈ leaves after the ramp).
    assert!(engine.live_sessions() > initial * 9 / 10);
    // Churn happened: more sessions ever existed than are live.
    assert!(engine.joined() as usize > initial);
    // The wheel fed everyone: ~31 pictures/session/s on the mixed
    // clocks over the post-ramp second, and decisions track arrivals.
    let decided = engine.decisions();
    assert!(
        decided as usize > initial * 30,
        "only {decided} decisions for {initial} sessions"
    );
    // Bounded memory: resident slots track peak concurrency, not the
    // sessions that ever existed.
    assert!(engine.allocated_slots() <= engine.capacity().div_ceil(4096) * 4096);
    std::hint::black_box(engine.digest());

    // Runtime budget, release only (the CI smoke bound).
    if !cfg!(debug_assertions) {
        assert!(
            wall < 60.0,
            "{initial} sessions x 2 s churn took {wall:.1} s — budget is 60 s"
        );
    }
}

#[test]
fn churn_digests_invariant_across_threads_at_scale() {
    let initial: usize = if cfg!(debug_assertions) {
        2_000
    } else {
        50_000
    };
    // Hot churn (20 %/s) so thousands of join/leave/recycle events hit
    // the shards while threads race over them.
    let trace = mixed_trace(initial, 2, 200_000);
    let (classes, _) = standard_mix();
    let src = SyntheticFleet {
        seed: 0xC_0041_7E57,
        pattern: classes[0].class.pattern,
    };

    let mut serial = DynamicEngine::new(classes.clone(), trace.peak_live, 512).unwrap();
    serial.run_trace(&src, &trace, 1).unwrap();
    serial.finish(&src, 1);

    let mut parallel = DynamicEngine::new(classes, trace.peak_live, 512).unwrap();
    parallel.run_trace(&src, &trace, 4).unwrap();
    parallel.finish(&src, 4);

    assert_eq!(serial.digest(), parallel.digest());
    assert_eq!(serial.session_digests(), parallel.session_digests());
    assert_eq!(serial.decisions(), parallel.decisions());
}
