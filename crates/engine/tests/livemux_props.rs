//! LiveMux's load-bearing equalities, pinned property-style:
//!
//! 1. **Frozen oracle.** A fused batch run's aggregate stats are
//!    bit-identical to materializing every schedule and running the
//!    [`RateSweep`] (equivalently [`mux_sessions`]), its peak to the
//!    sweep's interval maxima, and every session's descriptor σ to
//!    [`min_bucket_for`] over its materialized schedule — for arbitrary
//!    fleets, windows, and link parameters.
//! 2. **Layout invariance.** The fused digest is invariant under engine
//!    shard size (= mux block size) and thread count: shard routing is
//!    fixed by session count and ingestion orders globally by
//!    `(t, leaf)`, so parallel == serial, bit for bit.
//! 3. **Checkpoint/restore under churn.** A dynamic fused replay
//!    interrupted mid-trace by an engine + mux checkpoint pair
//!    continues bit-identically to the uninterrupted run — including
//!    across different thread counts on the two sides of the cut.

use proptest::prelude::*;
use smooth_core::SmootherParams;
use smooth_engine::{
    churn_trace, mux::materialize_schedules, mux_digest, ChurnSpec, ChurnTrace, DynamicClass,
    DynamicEngine, LiveMux, MuxConfig, SessionClass, SessionEngine, SyntheticFleet, TICKS_PER_SEC,
};
use smooth_mpeg::GopPattern;
use smooth_netsim::{min_bucket_for, sweep_cursors, RateSweep};

const TAU: f64 = 1.0 / 30.0;

fn arb_pattern() -> impl Strategy<Value = GopPattern> {
    prop_oneof![
        Just((3usize, 9usize)),
        Just((2, 6)),
        Just((3, 12)),
        Just((1, 5)),
        Just((1, 1)),
    ]
    .prop_map(|(m, n)| GopPattern::new(m, n).expect("regular pattern"))
}

fn arb_class() -> impl Strategy<Value = SessionClass> {
    (arb_pattern(), 1usize..=4, 1usize..=16, 0.0f64..0.3).prop_map(
        |(pattern, k, h, extra_slack)| {
            let d = (k as f64 + 1.0) * TAU + extra_slack;
            let params = SmootherParams::new(d, k, h, TAU).expect("feasible by construction");
            SessionClass::new(params, pattern)
        },
    )
}

/// A heterogeneous fleet plus the link and window the mux measures.
#[derive(Debug, Clone)]
struct MuxSpec {
    classes: Vec<SessionClass>,
    counts: Vec<usize>,
    ticks: u64,
    seed: u64,
    /// Link capacity per session, bits/s.
    cap_per_session: f64,
    buffer_bits: f64,
    rho_bps: f64,
    /// Window as fractions of the schedules' span (start may exceed
    /// end — inverted windows must behave like the oracle too).
    w0: f64,
    w1: f64,
}

fn arb_mux() -> impl Strategy<Value = MuxSpec> {
    (
        (
            proptest::collection::vec((arb_class(), 1usize..=5), 1..=3),
            1u64..50,
            any::<u64>(),
        ),
        (
            0.5e6f64..6.0e6,
            0.0f64..8.0e5,
            0.5e6f64..4.0e6,
            0.0f64..1.2,
            0.0f64..1.2,
        ),
    )
        .prop_map(
            |((classed, ticks, seed), (cap_per_session, buffer_bits, rho_bps, w0, w1))| {
                let (classes, counts) = classed.into_iter().unzip();
                MuxSpec {
                    classes,
                    counts,
                    ticks,
                    seed,
                    cap_per_session,
                    buffer_bits,
                    rho_bps,
                    w0,
                    w1,
                }
            },
        )
}

fn build(spec: &MuxSpec, shard_size: usize) -> (SessionEngine, SyntheticFleet) {
    let mut engine = SessionEngine::with_shard_size(spec.classes.clone(), shard_size);
    for (class_id, &count) in spec.counts.iter().enumerate() {
        engine.add_sessions(class_id, count);
    }
    let source = SyntheticFleet {
        seed: spec.seed,
        pattern: spec.classes[0].pattern,
    };
    (engine, source)
}

fn config(spec: &MuxSpec) -> MuxConfig {
    let (engine, source) = build(spec, 4);
    let sessions = engine.session_count();
    let inputs = materialize_schedules(engine, source, spec.ticks);
    let span = inputs.iter().map(|f| f.domain_end()).fold(0.0, f64::max);
    MuxConfig {
        capacity_bps: spec.cap_per_session * sessions as f64,
        buffer_bits: spec.buffer_bits,
        t_start: spec.w0 * span,
        t_end: spec.w1 * span,
        descriptor_rho_bps: spec.rho_bps,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Property 1: the fused run lands on the frozen oracle's bits —
    /// queue stats from the materialize-then-sweep path, peak from the
    /// sweep's interval aggregates, σ from `min_bucket_for`.
    #[test]
    fn fused_matches_materialized_oracle_bitwise(spec in arb_mux()) {
        let c = config(&spec);
        let (engine, source) = build(&spec, 4);
        let sessions = engine.session_count();
        let inputs = materialize_schedules(engine, source, spec.ticks);

        let sweep = RateSweep {
            capacity_bps: c.capacity_bps,
            buffer_bits: c.buffer_bits,
        };
        let want = sweep.run(&inputs, c.t_start, c.t_end);
        let mut want_peak = 0.0f64;
        let mut cursors: Vec<_> = inputs.iter().map(|f| f.cursor_at(c.t_start)).collect();
        sweep_cursors(&mut cursors, inputs.len(), c.t_start, c.t_end, |agg, _, _| {
            want_peak = want_peak.max(agg);
        });

        let (mut engine, source) = build(&spec, 4);
        let mut mux = LiveMux::new(sessions, 4, c);
        let got = engine
            .run_fused(&source, spec.ticks, 2, &mut mux)
            .expect("fresh engine");

        prop_assert_eq!(got.mux.arrived_bits.to_bits(), want.arrived_bits.to_bits());
        prop_assert_eq!(got.mux.lost_bits.to_bits(), want.lost_bits.to_bits());
        prop_assert_eq!(got.mux.served_bits.to_bits(), want.served_bits.to_bits());
        prop_assert_eq!(
            got.mux.final_queue_bits.to_bits(),
            want.final_queue_bits.to_bits()
        );
        prop_assert_eq!(
            got.mux.max_queue_bits.to_bits(),
            want.max_queue_bits.to_bits()
        );
        prop_assert_eq!(got.mux.utilization.to_bits(), want.utilization.to_bits());
        prop_assert_eq!(got.peak_rate_bps.to_bits(), want_peak.to_bits());

        for (sid, f) in inputs.iter().enumerate() {
            let want_sigma = min_bucket_for(f, c.descriptor_rho_bps, c.t_start, c.t_end);
            let d = mux.descriptor(sid as u64);
            prop_assert_eq!(
                d.sigma.to_bits(),
                want_sigma.to_bits(),
                "sid {} sigma {} vs oracle {}",
                sid,
                d.sigma,
                want_sigma
            );
            prop_assert_eq!(d.rho.to_bits(), c.descriptor_rho_bps.to_bits());
        }
    }

    /// Property 2: the fused digest never moves with the layout — any
    /// engine shard size (= mux block size) and thread count produce
    /// the same stats and descriptors, bit for bit.
    #[test]
    fn fused_digest_invariant_across_shards_and_threads(spec in arb_mux()) {
        let c = config(&spec);
        let mut baseline = None;
        for shard_size in [1usize, 3, 7, 1024] {
            for threads in [1usize, 2, 5] {
                let (mut engine, source) = build(&spec, shard_size);
                let sessions = engine.session_count();
                let mut mux = LiveMux::new(sessions, shard_size, c);
                let stats = engine
                    .run_fused(&source, spec.ticks, threads, &mut mux)
                    .expect("fresh engine");
                let digest = mux_digest(&stats, &mux.descriptors());
                match baseline {
                    None => baseline = Some(digest),
                    Some(d) => prop_assert_eq!(
                        d,
                        digest,
                        "diverged at shard_size={} threads={}",
                        shard_size,
                        threads
                    ),
                }
            }
        }
    }

    /// Property 3: a churny fused replay cut mid-trace by an engine +
    /// mux checkpoint pair continues bit-identically — across thread
    /// counts on both sides of the cut.
    #[test]
    fn churn_checkpoint_restore_is_bit_identical(
        initial in 1usize..=10,
        horizon in 600u64..2400,
        churn_ppm in 0u64..300_000,
        seed in any::<u64>(),
        cut_frac in 0.1f64..0.9,
        window_frac in 0.2f64..1.5,
        threads_a in 1usize..=3,
        threads_b in 1usize..=3,
    ) {
        let classes = vec![
            DynamicClass {
                class: SessionClass::new(
                    SmootherParams::new(0.2, 1, 9, 1.0 / 30.0).unwrap(),
                    GopPattern::new(3, 9).unwrap(),
                ),
                period_ticks: 20,
            },
            DynamicClass {
                class: SessionClass::new(
                    SmootherParams::new(0.25, 2, 12, 1.0 / 24.0).unwrap(),
                    GopPattern::new(3, 12).unwrap(),
                ),
                period_ticks: 25,
            },
        ];
        let trace = churn_trace(&ChurnSpec {
            seed,
            initial,
            weights: vec![3, 2],
            periods: vec![20, 25],
            ticks_per_sec: TICKS_PER_SEC,
            horizon,
            churn_ppm_per_sec: churn_ppm,
        });
        let total = trace.total_joins();
        let cfg = MuxConfig {
            capacity_bps: 1.2e6 * initial as f64,
            buffer_bits: 2.0e5,
            t_start: 0.0,
            t_end: window_frac * horizon as f64 / TICKS_PER_SEC as f64,
            descriptor_rho_bps: 1.5e6,
        };
        let source = SyntheticFleet {
            seed: seed ^ 0xD1CE,
            pattern: GopPattern::new(3, 9).unwrap(),
        };

        let run_whole = |threads: usize| {
            let mut engine =
                DynamicEngine::new(classes.clone(), trace.peak_live.max(1), 4).unwrap();
            let mut mux = LiveMux::with_joins(total, 4, cfg);
            engine
                .run_trace_fused(&source, &trace, threads, &mut mux)
                .unwrap();
            let stats = engine.finish_fused(&source, threads, &mut mux);
            (engine.digest(), mux_digest(&stats, &mux.descriptors()))
        };
        let (want_engine, want_mux) = run_whole(threads_a);

        // Interrupted: replay to the cut, checkpoint both sides, then
        // continue from the restored pair (possibly on another thread
        // count).
        let cut = ((horizon as f64 * cut_frac) as u64).max(1);
        let split = |keep: &dyn Fn(u64) -> bool, horizon| ChurnTrace {
            events: trace
                .events
                .iter()
                .filter(|&&(t, _)| keep(t))
                .copied()
                .collect(),
            horizon,
            peak_live: trace.peak_live,
        };
        let first = split(&|t| t <= cut, cut);
        let second = split(&|t| t > cut, horizon);

        let mut engine = DynamicEngine::new(classes.clone(), trace.peak_live.max(1), 4).unwrap();
        let mut mux = LiveMux::with_joins(total, 4, cfg);
        engine
            .run_trace_fused(&source, &first, threads_a, &mut mux)
            .unwrap();
        let ecp = engine.checkpoint();
        let mcp = mux.checkpoint();

        let mut engine =
            DynamicEngine::restore_checkpoint(classes, trace.peak_live.max(1), 4, &ecp).unwrap();
        let mut mux = LiveMux::restore(&mcp);
        engine
            .run_trace_fused(&source, &second, threads_b, &mut mux)
            .unwrap();
        let stats = engine.finish_fused(&source, threads_b, &mut mux);
        prop_assert_eq!(engine.digest(), want_engine);
        prop_assert_eq!(mux_digest(&stats, &mux.descriptors()), want_mux);
    }
}
