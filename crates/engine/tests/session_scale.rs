//! Scale smoke test: one million concurrent live sessions.
//!
//! The tentpole claim — a single process advancing a megasession fleet
//! in lockstep ticks with bounded per-session memory — asserted end to
//! end: 1M sessions × 32 pictures decide inside the CI budget (release
//! builds only; debug builds run a 10k-session variant with no runtime
//! budget), every session's history stays inside its fixed ring slot,
//! and a sharded multi-thread run of a 100k sub-fleet reproduces the
//! serial digests bit for bit.

use std::time::Instant;

use smooth_core::SmootherParams;
use smooth_engine::{SessionClass, SessionEngine, SyntheticFleet};
use smooth_mpeg::GopPattern;

fn paper_class() -> SessionClass {
    let pattern = GopPattern::new(3, 9).unwrap();
    SessionClass::new(SmootherParams::at_30fps(0.2, 1, 9).unwrap(), pattern)
}

#[test]
fn million_session_fleet_decides_within_budget() {
    let sessions: usize = if cfg!(debug_assertions) {
        10_000
    } else {
        1_000_000
    };
    let ticks = 32u64;
    let class = paper_class();
    let pattern = class.pattern;
    let mut engine = SessionEngine::new(vec![class]);
    engine.add_sessions(0, sessions);
    let fleet = SyntheticFleet {
        seed: 0x5e551045,
        pattern,
    };

    let cap = engine.class_ring_cap(0);
    let t0 = Instant::now();
    for _ in 0..ticks {
        engine.tick(&fleet, 1);
    }
    engine.finish(&fleet, 1);
    let wall = t0.elapsed().as_secs_f64();

    // Lockstep completeness: every session decided every picture.
    assert_eq!(engine.decisions(), sessions as u64 * ticks);

    // Bounded memory: the per-session slot is a small constant (O(H + N
    // + K + D/τ)), and no session ever outgrew it.
    assert!(cap < 128, "ring cap {cap} is not a small constant");
    assert!(engine.max_retained() <= cap);

    // Runtime budget, release only: 32M decisions well inside a minute.
    if !cfg!(debug_assertions) {
        assert!(
            wall < 60.0,
            "{sessions} sessions x {ticks} ticks took {wall:.1} s — budget is 60 s"
        );
    }
}

#[test]
fn sharded_parallel_subfleet_reproduces_serial_digests() {
    let sessions: usize = if cfg!(debug_assertions) {
        5_000
    } else {
        100_000
    };
    let ticks = 32u64;
    let class = paper_class();
    let pattern = class.pattern;
    let fleet = SyntheticFleet {
        seed: 0x5e551045,
        pattern,
    };

    let mut serial = SessionEngine::new(vec![class.clone()]);
    serial.add_sessions(0, sessions);
    for _ in 0..ticks {
        serial.tick(&fleet, 1);
    }
    serial.finish(&fleet, 1);

    let mut sharded = SessionEngine::new(vec![class]);
    sharded.add_sessions(0, sessions);
    for _ in 0..ticks {
        sharded.tick(&fleet, 4);
    }
    sharded.finish(&fleet, 4);

    assert_eq!(serial.digest(), sharded.digest());
    assert_eq!(serial.session_digests(), sharded.session_digests());
    assert_eq!(serial.decisions(), sharded.decisions());

    // The session-major batched driver (what the throughput harness
    // times) reproduces the lockstep bits too.
    let mut batched = SessionEngine::new(vec![paper_class()]);
    batched.add_sessions(0, sessions);
    batched.run(&fleet, ticks, true, 4);
    assert_eq!(serial.digest(), batched.digest());
    assert_eq!(serial.session_digests(), batched.session_digests());
    assert_eq!(serial.decisions(), batched.decisions());
}
