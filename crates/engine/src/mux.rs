//! Feeding a session fleet's rate schedules into the netsim multiplexer
//! **without materializing a [`StepFunction`] per source**.
//!
//! The offline pipeline builds, for every source, a
//! [`smooth_core::SmoothingResult`], turns it into maximal rate segments
//! ([`smooth_core::SmoothingResult::rate_segments`]) and then into a
//! [`StepFunction`] — O(pictures) memory *per source*, which defeats the
//! engine's bounded-memory story at a million sessions. This module
//! replaces the materialized functions with lazy [`RateCursor`]s:
//!
//! * a shared [`Driver`] owns the [`SessionEngine`] and, per session, a
//!   tiny streaming builder replicating the exact two-stage transform
//!   `rate_segments` ∘ `StepFunction::from_segments` (same `TIME_EPS`
//!   merge, same `1e-12` gap threshold, in the same order — so the
//!   emitted breakpoint/value stream is bit-identical to the offline
//!   pipeline's, pinned by tests);
//! * an [`EngineCursor`] per session exposes that stream through the
//!   [`RateCursor`] protocol, pumping the engine one lockstep tick at a
//!   time — only when the k-way merge actually needs a breakpoint that
//!   has not been decided yet.
//!
//! Because [`smooth_netsim::sweep_cursors`]'s pop order is deterministic
//! for any cursor backing, [`mux_sessions`] is bit-identical to
//! materializing every schedule and calling [`RateSweep::run`].

use std::cell::RefCell;
use std::rc::Rc;

use smooth_core::{PictureSchedule, RateSegment, TIME_EPS};
use smooth_metrics::{RateCursor, StepFunction};
use smooth_netsim::{sweep::RateSweep, FluidMuxStats};

use crate::{EngineError, SessionEngine, SizeSource};

/// Streaming replica of `rate_segments` ∘ `StepFunction::from_segments`
/// for one session: decisions go in, the step function's breakpoint and
/// value arrays come out, bit-identical to the offline pipeline.
#[derive(Debug, Clone, Default)]
struct SessionBuilder {
    /// End of the last *raw* (pre-merge) segment — the previous
    /// picture's departure, which gates zero-rate gap insertion.
    prev_end: Option<f64>,
    /// The pending merged segment (maximal so far, not yet emitted).
    cur: Option<RateSegment>,
    breaks: Vec<f64>,
    values: Vec<f64>,
}

impl SessionBuilder {
    /// One decision: replicate `rate_segments`' gap insertion, then its
    /// equal-rate merge, emitting only segments that can no longer grow.
    fn decision(&mut self, d: &PictureSchedule) {
        if let Some(prev_end) = self.prev_end {
            if d.start > prev_end + TIME_EPS {
                self.raw(RateSegment {
                    start: prev_end,
                    end: d.start,
                    rate: 0.0,
                });
            }
        }
        self.raw(RateSegment {
            start: d.start,
            end: d.depart,
            rate: d.rate,
        });
        self.prev_end = Some(d.depart);
    }

    fn raw(&mut self, seg: RateSegment) {
        if let Some(cur) = &mut self.cur {
            if cur.rate == seg.rate && (seg.start - cur.end).abs() <= TIME_EPS {
                cur.end = seg.end;
                return;
            }
            let done = *cur;
            self.cur = Some(seg);
            self.emit(done);
        } else {
            self.cur = Some(seg);
        }
    }

    /// Streaming `StepFunction::from_segments`: same `1e-12` gap pieces,
    /// same skip of non-advancing segments.
    fn emit(&mut self, seg: RateSegment) {
        if self.breaks.is_empty() {
            self.breaks.push(seg.start);
        }
        let last = *self.breaks.last().expect("non-empty");
        if seg.start > last + 1e-12 {
            self.values.push(0.0);
            self.breaks.push(seg.start);
        }
        if seg.end > *self.breaks.last().expect("non-empty") {
            self.values.push(seg.rate);
            self.breaks.push(seg.end);
        }
    }

    /// End of stream: flush the pending segment; a session that never
    /// decided anything becomes [`StepFunction::zero`]'s arrays.
    fn finish(&mut self) {
        if let Some(cur) = self.cur.take() {
            self.emit(cur);
        }
        if self.breaks.is_empty() {
            self.breaks.extend([0.0, 0.0]);
            self.values.push(0.0);
        }
    }
}

/// Shared pump: owns the engine and every session's builder; ticks the
/// fleet in lockstep (serially — the cursors are consumed by a serial
/// merge) whenever any cursor needs more of its stream.
struct Driver<S: SizeSource> {
    engine: SessionEngine,
    source: S,
    pictures_left: u64,
    builders: Vec<SessionBuilder>,
    done: bool,
}

impl<S: SizeSource> Driver<S> {
    /// Advances the whole fleet by one tick (or, once the pictures are
    /// exhausted, finishes it and flushes every builder).
    fn pump(&mut self) {
        if self.done {
            return;
        }
        let Driver {
            engine,
            source,
            pictures_left,
            builders,
            done,
        } = self;
        if *pictures_left > 0 {
            engine.tick_serial_with(source, &mut |sid, d| builders[sid as usize].decision(d));
            *pictures_left -= 1;
        } else {
            engine.finish_serial_with(source, &mut |sid, d| builders[sid as usize].decision(d));
            for b in builders.iter_mut() {
                b.finish();
            }
            *done = true;
        }
    }
}

/// A lazy [`RateCursor`] over one session's rate schedule. Replicates
/// [`smooth_metrics::StepCursor`]'s index semantics exactly over the
/// session's (growing) breakpoint array; whenever the index would run
/// off the known prefix it pumps the shared [`Driver`] until the stream
/// extends or ends — so every observable (`value`, `next_break`) is the
/// value a `StepCursor` over the fully materialized function would give.
pub struct EngineCursor<S: SizeSource> {
    driver: Rc<RefCell<Driver<S>>>,
    sid: usize,
    /// Number of known breaks `<=` the cursor's time (StepCursor's idx).
    idx: usize,
}

impl<S: SizeSource> EngineCursor<S> {
    /// Pumps until break `idx` exists or the stream is complete.
    fn ensure(&self, idx: usize) {
        loop {
            {
                let d = self.driver.borrow();
                if idx < d.builders[self.sid].breaks.len() || d.done {
                    return;
                }
            }
            self.driver.borrow_mut().pump();
        }
    }
}

impl<S: SizeSource> RateCursor for EngineCursor<S> {
    fn value(&self) -> f64 {
        let d = self.driver.borrow();
        let b = &d.builders[self.sid];
        if self.idx == 0 || self.idx > b.values.len() {
            0.0
        } else {
            b.values[self.idx - 1]
        }
    }

    fn next_break(&mut self) -> Option<f64> {
        self.ensure(self.idx);
        let d = self.driver.borrow();
        d.builders[self.sid].breaks.get(self.idx).copied()
    }

    fn advance_past(&mut self, t: f64) {
        loop {
            {
                let d = self.driver.borrow();
                let b = &d.builders[self.sid];
                while self.idx < b.breaks.len() && b.breaks[self.idx] <= t {
                    self.idx += 1;
                }
                // Unambiguous only once a break beyond `t` is known (or
                // the stream ended): otherwise `value()` could read a
                // piece that a later emit would extend.
                if self.idx < b.breaks.len() || d.done {
                    return;
                }
            }
            self.driver.borrow_mut().pump();
        }
    }
}

/// Multiplexes a whole session fleet through the k-way-merge sweep,
/// streaming every session's schedule out of the engine on demand —
/// per-source memory is the session's bounded engine state plus its
/// emitted breakpoints, never a materialized trace.
///
/// `engine` must be freshly built (no ticks yet); it is advanced
/// `pictures` lockstep ticks and then finished, exactly like
/// [`materialize_schedules`] — to whose
/// `RateSweep::run` result this is bit-identical.
///
/// # Errors
///
/// [`EngineError::StaleEngine`] when the engine has already been
/// ticked or finished — the cursors must replay every session from
/// picture 0, so a partially-run engine would silently multiplex a
/// truncated schedule.
///
/// # Panics
///
/// Panics on the sweep's own parameter checks.
pub fn mux_sessions<S: SizeSource>(
    engine: SessionEngine,
    source: S,
    pictures: u64,
    sweep: &RateSweep,
    t_start: f64,
    t_end: f64,
) -> Result<FluidMuxStats, EngineError> {
    if engine.ticks() != 0 || engine.is_finished() {
        return Err(EngineError::StaleEngine {
            ticks: engine.ticks(),
            finished: engine.is_finished(),
        });
    }
    let sessions = engine.session_count();
    let driver = Rc::new(RefCell::new(Driver {
        engine,
        source,
        pictures_left: pictures,
        builders: vec![SessionBuilder::default(); sessions],
        done: false,
    }));
    let mut cursors: Vec<EngineCursor<S>> = (0..sessions)
        .map(|sid| EngineCursor {
            driver: Rc::clone(&driver),
            sid,
            idx: 0,
        })
        .collect();
    for cursor in &mut cursors {
        cursor.advance_past(t_start);
    }
    Ok(sweep.run_cursors(&mut cursors, t_start, t_end))
}

/// The materializing reference path: runs the same fleet to completion
/// and returns each session's rate schedule as a [`StepFunction`] (built
/// by the same streaming transform). Costs O(pictures) memory per
/// session — the thing [`mux_sessions`] avoids — but is what the
/// equality tests multiplex through [`RateSweep::run`].
pub fn materialize_schedules<S: SizeSource>(
    mut engine: SessionEngine,
    source: S,
    pictures: u64,
) -> Vec<StepFunction> {
    assert!(
        engine.ticks() == 0 && !engine.is_finished(),
        "materialize_schedules needs a fresh engine"
    );
    let mut builders = vec![SessionBuilder::default(); engine.session_count()];
    for _ in 0..pictures {
        engine.tick_serial_with(&source, &mut |sid, d| builders[sid as usize].decision(d));
    }
    engine.finish_serial_with(&source, &mut |sid, d| builders[sid as usize].decision(d));
    builders
        .into_iter()
        .map(|mut b| {
            b.finish();
            StepFunction::new(b.breaks, b.values)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SessionClass, SyntheticFleet};
    use smooth_core::{OnlineSmoother, SmootherParams, SmoothingResult};
    use smooth_mpeg::GopPattern;

    fn fleet_setup(sessions: usize) -> (SessionEngine, SyntheticFleet) {
        let pattern = GopPattern::new(3, 9).unwrap();
        let class = SessionClass::new(SmootherParams::at_30fps(0.2, 1, 9).unwrap(), pattern);
        let mut engine = SessionEngine::with_shard_size(vec![class], 7);
        engine.add_sessions(0, sessions);
        (engine, SyntheticFleet { seed: 99, pattern })
    }

    /// The streaming builder must reproduce the offline
    /// `rate_segments` → `from_segments` pipeline bit-for-bit.
    #[test]
    fn builder_matches_offline_pipeline_bitwise() {
        let (_, fleet) = fleet_setup(1);
        let pattern = fleet.pattern;
        let params = SmootherParams::at_30fps(0.2, 1, 9).unwrap();
        for pictures in [1usize, 5, 27, 100] {
            let mut online = OnlineSmoother::new(params, pattern);
            let mut builder = SessionBuilder::default();
            let mut schedule = Vec::new();
            for p in 0..pictures {
                for d in online.push(fleet.size(0, p as u64)) {
                    builder.decision(&d);
                    schedule.push(d);
                }
            }
            for d in online.finish() {
                builder.decision(&d);
                schedule.push(d);
            }
            builder.finish();
            let offline_result = SmoothingResult { params, schedule };
            let offline = StepFunction::from_segments(&offline_result.rate_segments());
            let streamed = StepFunction::new(builder.breaks, builder.values);
            assert_eq!(
                offline.breakpoints().len(),
                streamed.breakpoints().len(),
                "pictures={pictures}"
            );
            for (a, b) in offline.breakpoints().iter().zip(streamed.breakpoints()) {
                assert_eq!(a.to_bits(), b.to_bits(), "pictures={pictures}");
            }
            for ((_, _, a), (_, _, b)) in offline.pieces().zip(streamed.pieces()) {
                assert_eq!(a.to_bits(), b.to_bits(), "pictures={pictures}");
            }
        }
    }

    #[test]
    fn lazy_mux_matches_materialized_run_bitwise() {
        let sweep = RateSweep {
            capacity_bps: 40.0e6,
            buffer_bits: 0.5e6,
        };
        for sessions in [1usize, 4, 23] {
            let (engine, fleet) = fleet_setup(sessions);
            let inputs = materialize_schedules(engine, fleet, 40);
            let t_end = inputs.iter().map(|f| f.domain_end()).fold(0.0, f64::max);
            let want = sweep.run(&inputs, 0.0, t_end);

            let (engine, fleet) = fleet_setup(sessions);
            let got = mux_sessions(engine, fleet, 40, &sweep, 0.0, t_end).expect("fresh engine");
            assert_eq!(want.arrived_bits.to_bits(), got.arrived_bits.to_bits());
            assert_eq!(want.lost_bits.to_bits(), got.lost_bits.to_bits());
            assert_eq!(want.served_bits.to_bits(), got.served_bits.to_bits());
            assert_eq!(want.max_queue_bits.to_bits(), got.max_queue_bits.to_bits());
            assert_eq!(want.utilization.to_bits(), got.utilization.to_bits());
        }
    }

    /// Satellite regression: a ticked or finished engine is rejected
    /// with the typed [`EngineError::StaleEngine`] — the PR 7
    /// validation style — instead of the old assert panic.
    #[test]
    fn stale_engine_yields_typed_error_not_panic() {
        let sweep = RateSweep {
            capacity_bps: 1.0e6,
            buffer_bits: 0.0,
        };
        let (mut engine, fleet) = fleet_setup(3);
        engine.tick(&fleet, 1);
        engine.tick(&fleet, 1);
        let err = mux_sessions(engine, fleet, 5, &sweep, 0.0, 1.0).unwrap_err();
        assert_eq!(
            err,
            EngineError::StaleEngine {
                ticks: 2,
                finished: false
            }
        );
        assert!(err.to_string().contains("fresh engine"), "{err}");

        let (mut engine, fleet) = fleet_setup(3);
        engine.finish(&fleet, 1);
        let err = mux_sessions(engine, fleet, 5, &sweep, 0.0, 1.0).unwrap_err();
        assert_eq!(
            err,
            EngineError::StaleEngine {
                ticks: 0,
                finished: true
            }
        );
    }

    #[test]
    fn partial_window_and_degenerate_window_agree() {
        let sweep = RateSweep {
            capacity_bps: 10.0e6,
            buffer_bits: 0.2e6,
        };
        let (engine, fleet) = fleet_setup(6);
        let inputs = materialize_schedules(engine, fleet, 30);
        for (a, b) in [(0.3, 0.9), (0.5, 0.5), (-1.0, 2.0)] {
            let want = sweep.run(&inputs, a, b);
            let (engine, fleet) = fleet_setup(6);
            let got = mux_sessions(engine, fleet, 30, &sweep, a, b).expect("fresh engine");
            assert_eq!(
                want.served_bits.to_bits(),
                got.served_bits.to_bits(),
                "window [{a}, {b}]"
            );
            assert_eq!(want.utilization.to_bits(), got.utilization.to_bits());
        }
    }
}
