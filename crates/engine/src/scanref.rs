//! Brute-force "scan all sessions" reference for the dynamic engine.
//!
//! **Frozen** — like `smooth_core::reference` and `mux::reference`,
//! this module is the trusted oracle the churn proptests compare the
//! timing-wheel [`DynamicEngine`](crate::DynamicEngine) against, and
//! must stay the obviously-correct transliteration of the event rules:
//!
//! * Time is walked **tick by tick** from 0 to the horizon — no wheel,
//!   no deadline index.
//! * At each tick, the trace's churn events apply first (in trace
//!   order), then **every live session is scanned** and the ones whose
//!   next arrival equals the tick are fed — O(sessions live) per tick,
//!   the cost the wheel exists to avoid.
//! * Each session is a plain [`smooth_core::OnlineSmoother`] — the
//!   heap-per-session representation the engines replaced — so the
//!   comparison also pins the dynamic engine's compact store against
//!   the original wide state machine.
//!
//! A session's first picture arrives `1 + phase mod τ` ticks after its
//! join; a leave ends the stream (tail drain) at the event tick, before
//! that tick's arrivals.

use smooth_core::{OnlineSmoother, PatternEstimator, PictureSchedule};

use crate::synthetic::{ChurnEvent, ChurnTrace};
use crate::{fnv, DynamicClass, SizeSource, FNV_OFFSET};

/// The reference run's observable outcome, shaped like the engine's:
/// per-session digests by session id, the fleet digest folded over them
/// in id order, and the total decision count.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanRun {
    /// Per-session decision digests, by session id.
    pub session_digests: Vec<u64>,
    /// Fleet digest (FNV fold of `session_digests` in order).
    pub digest: u64,
    /// Total decisions across all sessions.
    pub decisions: u64,
}

struct ScanSession {
    online: OnlineSmoother<PatternEstimator>,
    stream: u64,
    period: u64,
    next_arrival: u64,
    pushed: u64,
    digest: u64,
    live: bool,
}

fn fold(digest: &mut u64, d: &PictureSchedule) {
    *digest = fnv(*digest, d.index as u64);
    *digest = fnv(*digest, d.start.to_bits());
    *digest = fnv(*digest, d.rate.to_bits());
    *digest = fnv(*digest, d.depart.to_bits());
}

/// Replays `trace` by brute force (see the module docs) and, when
/// `finish` is set, ends every still-live session at the horizon — the
/// analogue of [`DynamicEngine::finish`](crate::DynamicEngine::finish).
pub fn run_scan<S: SizeSource>(
    classes: &[DynamicClass],
    trace: &ChurnTrace,
    source: &S,
    finish: bool,
) -> ScanRun {
    let mut sessions: Vec<ScanSession> = Vec::new();
    let mut decisions = 0u64;
    let mut i = 0;
    for t in 0..=trace.horizon {
        // Churn first: joins and leaves at this tick, in trace order.
        while i < trace.events.len() && trace.events[i].0 == t {
            match trace.events[i].1 {
                ChurnEvent::Join {
                    class,
                    stream,
                    phase,
                } => {
                    let c = &classes[class as usize];
                    sessions.push(ScanSession {
                        online: OnlineSmoother::with_estimator(
                            c.class.params,
                            c.class.pattern,
                            c.class.estimator,
                            c.class.selection,
                            None,
                        ),
                        stream,
                        period: c.period_ticks,
                        next_arrival: t + 1 + (phase % c.period_ticks),
                        pushed: 0,
                        digest: FNV_OFFSET,
                        live: true,
                    });
                }
                ChurnEvent::Leave { sid } => {
                    let s = &mut sessions[sid as usize];
                    assert!(s.live, "leave of a departed session in the trace");
                    for d in s.online.finish() {
                        fold(&mut s.digest, &d);
                        decisions += 1;
                    }
                    s.live = false;
                }
            }
            i += 1;
        }
        // Then scan every session for an arrival at this tick.
        for s in sessions.iter_mut() {
            if s.live && s.next_arrival == t {
                let size = source.size(s.stream, s.pushed);
                for d in s.online.push(size) {
                    fold(&mut s.digest, &d);
                    decisions += 1;
                }
                s.pushed += 1;
                s.next_arrival += s.period;
            }
        }
    }
    if finish {
        for s in sessions.iter_mut() {
            if s.live {
                for d in s.online.finish() {
                    fold(&mut s.digest, &d);
                    decisions += 1;
                }
                s.live = false;
            }
        }
    }
    let session_digests: Vec<u64> = sessions.iter().map(|s| s.digest).collect();
    let mut digest = FNV_OFFSET;
    for &x in &session_digests {
        digest = fnv(digest, x);
    }
    ScanRun {
        session_digests,
        digest,
        decisions,
    }
}
