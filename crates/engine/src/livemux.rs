//! **LiveMux**: online incremental link aggregation, fused with the
//! session engines.
//!
//! [`crate::mux::mux_sessions`] multiplexes a fleet by pumping the
//! engine through an `Rc<RefCell<_>>` cursor layer into
//! [`smooth_netsim::RateSweep`]'s k-way merge: every rate change of
//! every session becomes an entry in a million-source breakpoint heap,
//! popped one at a time with a cold random walk over the per-session
//! builders. That is exact, but serial and allocation-heavy — the heap
//! alone is tens of megabytes of pointer-chased state, and the engine
//! must run in one-tick lockstep so the cursors can lazily pull.
//!
//! `LiveMux` inverts the flow. As each session's `decide_live` emits a
//! rate change during a (batched, shard-parallel) engine pass, the
//! change is recorded as a tiny *delta event* `(t, leaf, new_rate)`.
//! Ingestion then applies events in global time order to the canonical
//! [`SumTree`] pairwise-summation tree — an O(log S) leaf update per
//! event instead of a heap pop — advancing the exact fluid queue
//! ([`smooth_netsim::QueueState`], the *same* stepper the sweep uses)
//! across each interval between distinct event times. Nothing is ever
//! materialized: no [`smooth_metrics::StepFunction`] per source, no
//! per-source heap entry; resident state is O(S) lanes plus the tree.
//!
//! ### Why the bits still match the sweep oracle
//!
//! [`smooth_netsim::sweep_cursors`] closes an interval only when the
//! popped event time strictly exceeds the current time, and its
//! aggregate is the root of a [`SumTree`] whose value is a pure
//! function of the current leaves. So any schedule that (a) applies the
//! same set of `(t, leaf, value)` updates, (b) in globally
//! non-decreasing time order, (c) closing each interval *before*
//! applying the updates at its right endpoint, reads the same roots and
//! feeds the same `(agg, dt)` pairs to the same [`QueueState`] — bit
//! for bit. LiveMux guarantees (a) by replicating the exact streaming
//! builder `rate_segments ∘ StepFunction::from_segments` from
//! [`crate::mux`] (same `TIME_EPS` merge, same `1e-12` gap threshold),
//! (b) by only flushing events strictly below a **fence** no future
//! event can undercut (the minimum over per-session frontiers, capped
//! by the caller's clock), and (c) by sorting each flush on
//! `(t.to_bits(), leaf)` and applying equal-time groups atomically.
//!
//! ### Shard-parallel, thread-invariant
//!
//! Leaves are partitioned by a [`ShardPlan`] (fixed by session count,
//! never by worker count), one subtree per shard. Workers apply their
//! shard's events to the shard subtree and record a time-ordered run of
//! `(t, subtree_root)` pairs; a serial k-way merge then replays the
//! runs through the top levels of the tree. Because shard boundaries
//! coincide with subtree boundaries, the composed root is *the same
//! tree* the serial engine reads — the identical discipline (and
//! identity argument) as [`smooth_netsim::RateSweep::run_threaded`].
//!
//! ### Live (σ, ρ) descriptors
//!
//! Alongside the aggregate, each session's lane maintains the tightest
//! leaky-bucket envelope of its smoothed schedule over the measurement
//! window — [`TrafficDescriptor`]`{ sigma, rho }` for the configured
//! drain rate ρ — by running [`smooth_netsim::min_bucket_for`]'s exact
//! recurrence incrementally on its own breakpoints (same `1e-12` cut
//! dedup, same update order). A future admission controller reads
//! descriptors for free; the proptests pin them bit-identical to the
//! offline oracle.

use std::sync::Mutex;

use smooth_core::{PictureSchedule, RateSegment, TIME_EPS};
use smooth_netsim::{FluidMuxStats, QueueState, MUX_MAX_SHARDS};
use smooth_sweep::{par_map, ShardPlan, SumTree};

/// Whether `SMOOTH_MUX_PROF=1` hot-path profiling is on (checked once;
/// when off, the probe points cost nothing — not even a clock read).
pub(crate) fn prof_enabled() -> bool {
    static PROF: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *PROF.get_or_init(|| std::env::var_os("SMOOTH_MUX_PROF").is_some())
}

/// Configuration of a fused link-aggregation run: the link, the
/// measurement window, and the descriptor drain rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MuxConfig {
    /// Output link capacity, bits/second.
    pub capacity_bps: f64,
    /// Link buffer size, bits.
    pub buffer_bits: f64,
    /// Start of the measurement window, seconds.
    pub t_start: f64,
    /// End of the measurement window, seconds.
    pub t_end: f64,
    /// Drain rate ρ for the per-session leaky-bucket descriptors,
    /// bits/second.
    pub descriptor_rho_bps: f64,
}

impl MuxConfig {
    /// Mirrors [`smooth_netsim::RateSweep`]'s and
    /// [`smooth_netsim::min_bucket_for`]'s parameter checks so the
    /// fused path rejects exactly what the oracle would.
    fn check(&self) {
        assert!(self.capacity_bps > 0.0, "capacity must be positive");
        assert!(self.buffer_bits >= 0.0, "buffer must be non-negative");
        assert!(self.descriptor_rho_bps > 0.0, "token rate must be positive");
        assert!(
            self.t_start.is_finite() && self.t_end.is_finite(),
            "window bounds must be finite"
        );
    }
}

/// The tightest leaky-bucket envelope of one session's smoothed
/// schedule over the measurement window: the schedule is (σ, ρ)-smooth,
/// i.e. a token bucket of depth σ draining at ρ never drops a bit of
/// it. σ is maintained incrementally, bit-identical to
/// [`smooth_netsim::min_bucket_for`] over the materialized schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficDescriptor {
    /// Bucket depth σ, bits.
    pub sigma: f64,
    /// Drain rate ρ, bits/second (the configured
    /// [`MuxConfig::descriptor_rho_bps`]).
    pub rho: f64,
}

/// Aggregate outcome of a fused fleet-to-link run: the exact fluid
/// queue stats (bit-identical to the [`smooth_netsim::RateSweep`]
/// oracle) plus the running peak of the link aggregate rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LiveMuxStats {
    /// The fluid finite-buffer FIFO stats over the window.
    pub mux: FluidMuxStats,
    /// Peak aggregate input rate observed on any interval of the
    /// window, bits/second (0 over an empty window).
    pub peak_rate_bps: f64,
}

/// FNV-1a fingerprint of a fused run: the six queue stats, the peak,
/// then every session's (σ, ρ) bits in session-id order. The
/// machine-parsable determinism witness the CLI prints as
/// `mux_digest=`.
pub fn mux_digest(stats: &LiveMuxStats, descriptors: &[TrafficDescriptor]) -> u64 {
    let mut d = crate::FNV_OFFSET;
    for w in [
        stats.mux.arrived_bits,
        stats.mux.lost_bits,
        stats.mux.served_bits,
        stats.mux.final_queue_bits,
        stats.mux.max_queue_bits,
        stats.mux.utilization,
        stats.peak_rate_bps,
    ] {
        d = crate::fnv(d, w.to_bits());
    }
    for td in descriptors {
        d = crate::fnv(d, td.sigma.to_bits());
        d = crate::fnv(d, td.rho.to_bits());
    }
    d
}

/// One rate-change delta: session `leaf`'s rate becomes `v` at absolute
/// time `t`. 24 bytes; the only thing the fused path buffers.
#[derive(Debug, Clone, Copy)]
struct Event {
    t: f64,
    v: f64,
    leaf: u32,
}

/// Per-session streaming state: the exact builder replica (events out
/// instead of arrays), the join bookkeeping, and the incremental (σ, ρ)
/// recurrence.
#[derive(Debug, Clone)]
struct SessionLane {
    /// Whether the session has joined the mux (batch fleets join at
    /// construction; churn fleets via [`LiveMux::begin_session`]).
    joined: bool,
    /// Whether the stream has ended (builder flushed, final zero-rate
    /// event emitted, descriptor window closed).
    finished: bool,
    /// Absolute time of the session's local t = 0 (its join time).
    offset: f64,
    // --- builder: rate_segments ∘ from_segments, streaming ---
    has_prev: bool,
    /// End of the last raw (pre-merge) segment, local time.
    prev_end: f64,
    has_cur: bool,
    cur_start: f64,
    cur_end: f64,
    cur_rate: f64,
    /// Whether any breakpoint has been placed yet.
    started: bool,
    /// The dangling breakpoint: placed, but the value taking effect at
    /// it is not yet known (local time). The session's next event is at
    /// exactly `offset + last_break`.
    last_break: f64,
    // --- descriptor: min_bucket_for's recurrence, incremental ---
    /// Last retained cut (absolute time; starts at the window start).
    last_cut: f64,
    /// Rate in effect since `last_cut`.
    value: f64,
    /// Cumulative arrivals since the window start.
    cum: f64,
    g_min: f64,
    sigma: f64,
}

impl SessionLane {
    fn new(joined: bool, t_start: f64) -> Self {
        SessionLane {
            joined,
            finished: false,
            offset: 0.0,
            has_prev: false,
            prev_end: 0.0,
            has_cur: false,
            cur_start: 0.0,
            cur_end: 0.0,
            cur_rate: 0.0,
            started: false,
            last_break: 0.0,
            last_cut: t_start,
            value: 0.0,
            cum: 0.0,
            g_min: 0.0,
            sigma: 0.0,
        }
    }

    /// Earliest absolute time at which this lane can still emit an
    /// event; the ingestion fence is the fleet-wide minimum. Unjoined
    /// lanes don't bound the fence (the caller's clock cap covers
    /// future joins); finished lanes never emit again.
    fn frontier(&self) -> f64 {
        if !self.joined || self.finished {
            f64::INFINITY
        } else {
            self.offset + self.last_break
        }
    }

    /// One decision: `rate_segments`' zero-rate gap insertion, then its
    /// equal-rate merge — identical to the builder in [`crate::mux`].
    #[inline]
    fn decision(&mut self, cfg: &MuxConfig, d: &PictureSchedule, leaf: u32, out: &mut Vec<Event>) {
        // Hot path: a gapless decision at the current rate extends the
        // open merged segment (most decisions of a smoothed schedule
        // keep the rate) — one branch instead of the gap check plus the
        // merge check below, with identical state updates.
        if self.has_prev
            && self.has_cur
            && d.start <= self.prev_end + TIME_EPS
            && self.cur_rate == d.rate
            && (d.start - self.cur_end).abs() <= TIME_EPS
        {
            self.cur_end = d.depart;
            self.prev_end = d.depart;
            return;
        }
        if self.has_prev && d.start > self.prev_end + TIME_EPS {
            let gap = RateSegment {
                start: self.prev_end,
                end: d.start,
                rate: 0.0,
            };
            self.raw(cfg, gap, leaf, out);
        }
        self.raw(
            cfg,
            RateSegment {
                start: d.start,
                end: d.depart,
                rate: d.rate,
            },
            leaf,
            out,
        );
        self.has_prev = true;
        self.prev_end = d.depart;
    }

    fn raw(&mut self, cfg: &MuxConfig, seg: RateSegment, leaf: u32, out: &mut Vec<Event>) {
        if self.has_cur {
            if self.cur_rate == seg.rate && (seg.start - self.cur_end).abs() <= TIME_EPS {
                self.cur_end = seg.end;
                return;
            }
            let done = RateSegment {
                start: self.cur_start,
                end: self.cur_end,
                rate: self.cur_rate,
            };
            self.cur_start = seg.start;
            self.cur_end = seg.end;
            self.cur_rate = seg.rate;
            self.emit_seg(cfg, done, leaf, out);
        } else {
            self.has_cur = true;
            self.cur_start = seg.start;
            self.cur_end = seg.end;
            self.cur_rate = seg.rate;
        }
    }

    /// Streaming `StepFunction::from_segments`, emitting the stream's
    /// breakpoints as delta events with one-breakpoint deferral: a
    /// breakpoint is announced only once the value taking effect *at*
    /// it is known (the next segment's rate, a gap's zero, or the final
    /// zero at end of stream).
    fn emit_seg(&mut self, cfg: &MuxConfig, seg: RateSegment, leaf: u32, out: &mut Vec<Event>) {
        if !self.started {
            self.started = true;
            self.last_break = seg.start;
        }
        if seg.start > self.last_break + 1e-12 {
            let at = self.last_break;
            self.push_event(cfg, at, 0.0, leaf, out);
            self.last_break = seg.start;
        }
        if seg.end > self.last_break {
            let at = self.last_break;
            self.push_event(cfg, at, seg.rate, leaf, out);
            self.last_break = seg.end;
        }
    }

    /// End of stream: flush the pending merged segment, resolve the
    /// dangling breakpoint to zero (after the last piece the rate is
    /// 0), and close the descriptor window at `t_end`. A session that
    /// never decided anything contributes `StepFunction::zero`'s single
    /// `t = 0` event.
    fn finish(&mut self, cfg: &MuxConfig, leaf: u32, out: &mut Vec<Event>) {
        debug_assert!(self.joined && !self.finished);
        if self.has_cur {
            self.has_cur = false;
            let done = RateSegment {
                start: self.cur_start,
                end: self.cur_end,
                rate: self.cur_rate,
            };
            self.emit_seg(cfg, done, leaf, out);
        }
        if !self.started {
            self.started = true;
            self.last_break = 0.0;
        }
        let at = self.last_break;
        self.push_event(cfg, at, 0.0, leaf, out);
        // min_bucket_for's final cut is the window end itself, dropped
        // by the same 1e-12 dedup when the last kept cut crowds it.
        let t1 = cfg.t_end;
        if t1 - self.last_cut >= 1e-12 {
            self.cum += self.value * (t1 - self.last_cut);
            let g = self.cum - cfg.descriptor_rho_bps * (t1 - cfg.t_start);
            self.sigma = self.sigma.max(g - self.g_min);
            self.g_min = self.g_min.min(g);
            self.last_cut = t1;
        }
        self.finished = true;
    }

    /// Records one breakpoint: feed the descriptor recurrence, then
    /// buffer the delta event (the sweep oracle's heap only ever holds
    /// breakpoints below the window end, so later ones are dropped —
    /// their leaf value would never be observed).
    fn push_event(
        &mut self,
        cfg: &MuxConfig,
        t_local: f64,
        v: f64,
        leaf: u32,
        out: &mut Vec<Event>,
    ) {
        let t = self.offset + t_local;
        debug_assert!(t >= 0.0, "breakpoints are non-negative");
        self.descriptor_cut(cfg, t, v);
        if t < cfg.t_end {
            out.push(Event { t, v, leaf });
        }
    }

    /// [`smooth_netsim::min_bucket_for`]'s loop body, one cut at a
    /// time. Cuts outside the open window `(t_start, t_end)` are not
    /// cuts (they only set the rate in effect); a cut within `1e-12` of
    /// the last kept one is deduplicated exactly like the oracle's
    /// chained `dedup_by`.
    fn descriptor_cut(&mut self, cfg: &MuxConfig, t: f64, v: f64) {
        if t >= cfg.t_end {
            return;
        }
        if t <= cfg.t_start {
            self.value = v;
            return;
        }
        if t - self.last_cut < 1e-12 {
            self.value = v;
            return;
        }
        self.cum += self.value * (t - self.last_cut);
        let g = self.cum - cfg.descriptor_rho_bps * (t - cfg.t_start);
        self.sigma = self.sigma.max(g - self.g_min);
        self.g_min = self.g_min.min(g);
        self.last_cut = t;
        self.value = v;
    }
}

/// A contiguous run of session lanes plus their shared event buffer —
/// one block per engine shard, so the fused batch path writes events
/// with zero cross-thread contention.
#[derive(Debug)]
pub(crate) struct LaneBlock {
    cfg: MuxConfig,
    first_leaf: u32,
    lanes: Vec<SessionLane>,
    events: Vec<Event>,
}

impl LaneBlock {
    /// Feeds one decision of session `sid` (a global id) to its lane.
    #[inline]
    pub(crate) fn decision(&mut self, sid: u64, d: &PictureSchedule) {
        let leaf = u32::try_from(sid).expect("session id fits u32");
        let j = (leaf - self.first_leaf) as usize;
        self.lanes[j].decision(&self.cfg, d, leaf, &mut self.events);
    }

    /// Ends every still-open joined lane of the block (the batch path's
    /// end-of-stream, reached once per fused run).
    pub(crate) fn finish_lanes(&mut self) {
        for j in 0..self.lanes.len() {
            if self.lanes[j].joined && !self.lanes[j].finished {
                let leaf = self.first_leaf + j as u32;
                self.lanes[j].finish(&self.cfg, leaf, &mut self.events);
            }
        }
    }
}

/// One aggregation shard: the [`SumTree`] subtree over its leaf range,
/// events routed to it but still above the fence, and the time-ordered
/// `(t, subtree_root)` run of the current ingest pass.
#[derive(Debug)]
struct MuxShard {
    tree: SumTree,
    pending: Vec<Event>,
    /// Smallest and largest event times in `pending` (`INFINITY` /
    /// `NEG_INFINITY` when empty). A pass whose fence doesn't clear the
    /// minimum has nothing to flush and skips the partition/sort/apply
    /// work entirely — the common case mid-run, when one slow lane pins
    /// the fleet fence. A fence past the maximum flushes the buffer
    /// whole, without a partition pass.
    pending_min: f64,
    pending_max: f64,
    run: Vec<(f64, f64)>,
}

/// Opaque snapshot of a [`LiveMux`]'s full aggregation state — lanes,
/// shard subtrees, pending events, queue, clock — for mid-trace
/// checkpoint/restore alongside [`crate::EngineCheckpoint`].
#[derive(Debug, Clone)]
pub struct MuxCheckpoint {
    cfg: MuxConfig,
    sessions: usize,
    block_size: usize,
    lanes: Vec<SessionLane>,
    shards: Vec<(SumTree, Vec<Event>)>,
    top: SumTree,
    queue: QueueState,
    cur_t: f64,
    peak: f64,
}

/// The online link aggregator. See the module docs for the
/// architecture; see [`crate::SessionEngine::run_fused`] and
/// [`crate::DynamicEngine::run_trace_fused`] for the engine hookups.
pub struct LiveMux {
    cfg: MuxConfig,
    sessions: usize,
    block_size: usize,
    plan: ShardPlan,
    blocks: Vec<Mutex<LaneBlock>>,
    shards: Vec<Mutex<MuxShard>>,
    top: SumTree,
    queue: QueueState,
    /// Left edge of the next interval to close (starts at `t_start`).
    cur_t: f64,
    peak: f64,
    finalized: bool,
}

impl LiveMux {
    /// An aggregator for a fixed fleet of `sessions` sessions, all
    /// present from time 0 (the [`crate::SessionEngine`] batch case).
    /// `block_size` must match the engine's shard size so each engine
    /// shard owns exactly one lane block.
    pub fn new(sessions: usize, block_size: usize, cfg: MuxConfig) -> Self {
        Self::build(sessions, block_size, cfg, true)
    }

    /// An aggregator whose sessions join over time (the
    /// [`crate::DynamicEngine`] churn case): size it to the total
    /// number of session ids the trace will ever issue and announce
    /// each via [`begin_session`](Self::begin_session).
    pub fn with_joins(capacity: usize, block_size: usize, cfg: MuxConfig) -> Self {
        Self::build(capacity, block_size, cfg, false)
    }

    fn build(sessions: usize, block_size: usize, cfg: MuxConfig, joined: bool) -> Self {
        cfg.check();
        assert!(block_size > 0, "block size must be positive");
        assert!(
            u32::try_from(sessions).is_ok(),
            "session count must fit u32"
        );
        let plan = ShardPlan::new(sessions, MUX_MAX_SHARDS);
        let blocks = (0..sessions.div_ceil(block_size))
            .map(|b| {
                let lo = b * block_size;
                let hi = ((b + 1) * block_size).min(sessions);
                Mutex::new(LaneBlock {
                    cfg,
                    first_leaf: lo as u32,
                    lanes: (lo..hi)
                        .map(|_| SessionLane::new(joined, cfg.t_start))
                        .collect(),
                    events: Vec::new(),
                })
            })
            .collect();
        let shards = (0..plan.count)
            .map(|_| {
                Mutex::new(MuxShard {
                    tree: SumTree::new(plan.width),
                    pending: Vec::new(),
                    pending_min: f64::INFINITY,
                    pending_max: f64::NEG_INFINITY,
                    run: Vec::new(),
                })
            })
            .collect();
        LiveMux {
            cfg,
            sessions,
            block_size,
            plan,
            blocks,
            shards,
            top: SumTree::new(plan.count),
            queue: QueueState::new(),
            cur_t: cfg.t_start,
            peak: 0.0,
            finalized: false,
        }
    }

    /// Number of session lanes.
    pub fn session_count(&self) -> usize {
        self.sessions
    }

    /// Lanes per block (must equal the batch engine's shard size).
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// The configuration the aggregator was built with.
    pub fn config(&self) -> MuxConfig {
        self.cfg
    }

    /// The current link aggregate rate (bits/second) as of the last
    /// ingested event — the live queryable an admission controller
    /// polls.
    pub fn aggregate_bps(&self) -> f64 {
        self.top.total()
    }

    /// Running peak of the aggregate rate over closed intervals so far.
    pub fn peak_bps(&self) -> f64 {
        self.peak
    }

    /// The lane block of engine shard `s` (the fused batch path locks
    /// engine shard and lane block pairwise).
    pub(crate) fn block(&self, s: usize) -> &Mutex<LaneBlock> {
        &self.blocks[s]
    }

    /// Marks session `sid` as joined at absolute time `offset_sec`
    /// (its decisions' local times are offset by this much).
    ///
    /// # Panics
    ///
    /// Panics if the session already joined.
    pub fn begin_session(&mut self, sid: u64, offset_sec: f64) {
        let lane = self.lane_mut(sid);
        assert!(!lane.joined, "session {sid} already joined");
        lane.joined = true;
        lane.offset = offset_sec;
    }

    /// Ends session `sid`'s stream: flushes its builder, emits its
    /// final zero-rate event, and closes its descriptor window.
    pub fn finish_session(&mut self, sid: u64) {
        let leaf = u32::try_from(sid).expect("session id fits u32");
        let b = leaf as usize / self.block_size;
        let block = self.blocks[b].get_mut().expect("unshared");
        let j = (leaf - block.first_leaf) as usize;
        let cfg = block.cfg;
        block.lanes[j].finish(&cfg, leaf, &mut block.events);
    }

    /// Feeds one decision of session `sid` directly (the churn path,
    /// where decisions are gathered per dynamic shard and applied in
    /// session order).
    pub fn push_decision(&mut self, sid: u64, d: &PictureSchedule) {
        let b = sid as usize / self.block_size;
        self.blocks[b].get_mut().expect("unshared").decision(sid, d);
    }

    /// Shared-reference [`push_decision`](Self::push_decision) through
    /// the block mutex — the dynamic fused path, where round-robin
    /// placement means any engine shard's worker may hold any session.
    /// Per-session decision order is preserved (a session lives in
    /// exactly one shard, which emits its decisions sequentially);
    /// cross-session interleaving in the buffer is irrelevant because
    /// [`ingest`](Self::ingest) orders by `(t, leaf)`.
    pub(crate) fn decision_shared(&self, sid: u64, d: &PictureSchedule) {
        let b = sid as usize / self.block_size;
        self.blocks[b]
            .lock()
            .expect("block poisoned")
            .decision(sid, d);
    }

    fn lane_mut(&mut self, sid: u64) -> &mut SessionLane {
        let b = sid as usize / self.block_size;
        let block = self.blocks[b].get_mut().expect("unshared");
        let j = sid as usize - block.first_leaf as usize;
        &mut block.lanes[j]
    }

    /// Applies every buffered event whose time is strictly below the
    /// fence — `clock_cap` (an upper bound on any *future* session's
    /// join-derived event times; `INFINITY` for fixed fleets) min'd
    /// with every live lane's frontier — to the summation tree in
    /// global `(t, leaf)` order, closing queue intervals as time
    /// advances. Thread-invariant: shard routing is fixed by the
    /// [`ShardPlan`], runs merge in shard order. Returns the number of
    /// events applied; zero means the fence didn't move past any
    /// buffered event, and the caller may relax its ingest cadence
    /// (see [`crate::SessionEngine::run_fused`]).
    pub fn ingest(&mut self, threads: usize, clock_cap: f64) -> u64 {
        let prof = prof_enabled();
        let t_all = prof.then(std::time::Instant::now);
        let mut fence = clock_cap;
        for blk in &self.blocks {
            let blk = blk.lock().expect("block poisoned");
            for lane in &blk.lanes {
                fence = fence.min(lane.frontier());
            }
        }

        let plan = self.plan;
        let block_size = self.block_size;
        let blocks = &self.blocks;
        let shards = &self.shards;
        let flushed = std::sync::atomic::AtomicU64::new(0);
        let fence_ns = t_all.map_or(0, |t| t.elapsed().as_nanos() as u64);
        let route_ns = std::sync::atomic::AtomicU64::new(0);
        let part_ns = std::sync::atomic::AtomicU64::new(0);
        let sort_ns = std::sync::atomic::AtomicU64::new(0);
        let apply_ns = std::sync::atomic::AtomicU64::new(0);
        // One closure per probe point: a no-op (no clock read at all)
        // unless profiling is on.
        let lap = |acc: &std::sync::atomic::AtomicU64, t0: &mut Option<std::time::Instant>| {
            if let Some(t) = t0 {
                acc.fetch_add(
                    t.elapsed().as_nanos() as u64,
                    std::sync::atomic::Ordering::Relaxed,
                );
                *t0 = prof.then(std::time::Instant::now);
            }
        };
        let idx: Vec<usize> = (0..plan.count).collect();
        par_map(threads, &idx, |_, &m| {
            let mut tp = prof.then(std::time::Instant::now);
            let mut shard = shards[m].lock().expect("shard poisoned");
            let lo = m * plan.width;
            let hi = lo + plan.width;
            // Route: pull this shard's events out of every overlapping
            // block buffer (wholly-contained blocks copy unfiltered),
            // tracking the pending time bounds as we go.
            let b0 = lo / block_size;
            let b1 = (hi - 1) / block_size;
            for (b, blk) in blocks.iter().enumerate().take(b1 + 1).skip(b0) {
                let blk = blk.lock().expect("block poisoned");
                if b * block_size >= lo && (b + 1) * block_size <= hi {
                    for e in &blk.events {
                        shard.pending_min = shard.pending_min.min(e.t);
                        shard.pending_max = shard.pending_max.max(e.t);
                    }
                    shard.pending.extend_from_slice(&blk.events);
                } else {
                    let (mut min, mut max) = (shard.pending_min, shard.pending_max);
                    shard.pending.extend(
                        blk.events
                            .iter()
                            .filter(|e| (e.leaf as usize) >= lo && (e.leaf as usize) < hi)
                            .inspect(|e| {
                                min = min.min(e.t);
                                max = max.max(e.t);
                            }),
                    );
                    shard.pending_min = min;
                    shard.pending_max = max;
                }
            }
            lap(&route_ns, &mut tp);
            shard.run.clear();
            // Nothing below the fence (an empty buffer's minimum is
            // +inf): the whole pass is a no-op for this shard — its
            // buffer just grows until the fence moves.
            if shard.pending_min >= fence {
                return;
            }
            // Flush below the fence: no event at or past it can be
            // undercut by anything a session emits later, so the
            // global time order across ingest passes is total. A fence
            // past everything (the usual end-of-run shape) takes the
            // buffer whole instead of partitioning it.
            let mut flush = if shard.pending_max < fence {
                shard.pending_min = f64::INFINITY;
                shard.pending_max = f64::NEG_INFINITY;
                std::mem::take(&mut shard.pending)
            } else {
                let mut kept_min = f64::INFINITY;
                let (flush, keep): (Vec<Event>, Vec<Event>) =
                    shard.pending.drain(..).partition(|e| {
                        if e.t < fence {
                            true
                        } else {
                            kept_min = kept_min.min(e.t);
                            false
                        }
                    });
                shard.pending = keep;
                shard.pending_min = kept_min;
                flush
            };
            flushed.fetch_add(flush.len() as u64, std::sync::atomic::Ordering::Relaxed);
            lap(&part_ns, &mut tp);
            // `(t.to_bits(), leaf)` packed into one integer: a single
            // branchless compare per sort step on the hottest loop of
            // the pass. `to_bits` order is `<` order here because event
            // times are non-negative.
            flush.sort_unstable_by_key(|e| ((e.t.to_bits() as u128) << 32) | e.leaf as u128);
            lap(&sort_ns, &mut tp);
            shard.run.reserve(flush.len());
            let mut i = 0;
            while i < flush.len() {
                let t = flush[i].t;
                while i < flush.len() && flush[i].t.to_bits() == t.to_bits() {
                    let e = flush[i];
                    shard.tree.set(e.leaf as usize - lo, e.v);
                    i += 1;
                }
                let root = shard.tree.total();
                shard.run.push((t, root));
            }
            lap(&apply_ns, &mut tp);
        });
        // Buffers may have been read by several shards; clear serially.
        for blk in &self.blocks {
            blk.lock().expect("block poisoned").events.clear();
        }
        let t_merge = prof.then(std::time::Instant::now);

        // Serial top merge: replay the shard runs in global time order
        // through the top of the tree, advancing the queue across each
        // interval exactly like the sweep's merge loop. The k-way merge
        // is a flat winner tree over the (at most [`MUX_MAX_SHARDS`])
        // runs — each step is log₂(shards) sequential min() nodes, a
        // fraction of a binary heap's pop-push churn on this hot loop.
        // Keys pack `(t.to_bits(), shard)` into a u128, so equal times
        // resolve in shard order, exactly like the old heap's tuples.
        let runs: Vec<Vec<(f64, f64)>> = self
            .shards
            .iter()
            .map(|s| std::mem::take(&mut s.lock().expect("shard poisoned").run))
            .collect();
        debug_assert!(runs.len() <= 128, "winner-tree keys pack a 7-bit shard");
        const DONE: u128 = u128::MAX;
        let key = |t: f64, m: usize| ((t.to_bits() as u128) << 7) | m as u128;
        let k2 = runs.len().next_power_of_two();
        let mut nodes_buf = vec![DONE; 2 * k2];
        // Length pinned symbolically to `2 * k2` so the level walks
        // below (`i / 2 < k2` implies `2 * (i / 2) + 1 < 2 * k2`) index
        // without per-level bounds checks.
        let nodes = &mut nodes_buf[..2 * k2];
        // Per-run tails advanced by `split_first` — the replay loop
        // below touches each entry exactly once, with no positional
        // re-indexing. Queue state lives in locals for the duration.
        let mut rem: Vec<&[(f64, f64)]> = runs.iter().map(|r| r.as_slice()).collect();
        for (m, run) in rem.iter().enumerate() {
            if let Some(&(t, _)) = run.first() {
                nodes[k2 + m] = key(t, m);
            }
        }
        for i in (1..k2).rev() {
            nodes[i] = nodes[2 * i].min(nodes[2 * i + 1]);
        }
        let mut cur_t = self.cur_t;
        let mut peak = self.peak;
        while nodes[1] != DONE {
            let m = (nodes[1] & 0x7F) as usize;
            let (&(t, root), tail) = rem[m].split_first().expect("non-empty keyed run");
            rem[m] = tail;
            if t > cur_t {
                let agg = self.top.total();
                self.queue
                    .advance(agg, t - cur_t, self.cfg.capacity_bps, self.cfg.buffer_bits);
                peak = peak.max(agg);
                cur_t = t;
            }
            self.top.set(m, root);
            let mut i = k2 + m;
            nodes[i] = match tail.first() {
                Some(&(next, _)) => key(next, m),
                None => DONE,
            };
            while i > 1 {
                i /= 2;
                nodes[i] = nodes[2 * i].min(nodes[2 * i + 1]);
            }
        }
        self.cur_t = cur_t;
        self.peak = peak;
        drop(rem);
        // Hand the (now empty) run vectors' capacity back to the shards.
        for (m, run) in runs.into_iter().enumerate() {
            let mut shard = self.shards[m].lock().expect("shard poisoned");
            shard.run = run;
            shard.run.clear();
        }
        if let (Some(t0), Some(tm)) = (t_all, t_merge) {
            eprintln!(
                "mux_prof: flushed={} fence={:.3}ms route={:.3}ms part={:.3}ms sort={:.3}ms apply={:.3}ms merge={:.3}ms total={:.3}ms",
                flushed.load(std::sync::atomic::Ordering::Relaxed),
                fence_ns as f64 / 1e6,
                route_ns.into_inner() as f64 / 1e6,
                part_ns.into_inner() as f64 / 1e6,
                sort_ns.into_inner() as f64 / 1e6,
                apply_ns.into_inner() as f64 / 1e6,
                tm.elapsed().as_secs_f64() * 1e3,
                t0.elapsed().as_secs_f64() * 1e3,
            );
        }
        flushed.into_inner()
    }

    /// Closes the final interval up to the window end and returns the
    /// run's stats. Every lane must be finished and every event
    /// ingested (call [`ingest`](Self::ingest) with an `INFINITY` cap
    /// after the engine finishes).
    pub fn finalize(&mut self) -> LiveMuxStats {
        assert!(!self.finalized, "finalize called twice");
        self.finalized = true;
        debug_assert!(
            self.shards
                .iter()
                .all(|s| s.lock().expect("shard poisoned").pending.is_empty()),
            "finalize with unflushed events"
        );
        if self.cfg.t_end > self.cur_t {
            let agg = self.top.total();
            self.queue.advance(
                agg,
                self.cfg.t_end - self.cur_t,
                self.cfg.capacity_bps,
                self.cfg.buffer_bits,
            );
            self.peak = self.peak.max(agg);
            self.cur_t = self.cfg.t_end;
        }
        LiveMuxStats {
            mux: self
                .queue
                .into_stats(self.cfg.capacity_bps, self.cfg.t_start, self.cfg.t_end),
            peak_rate_bps: self.peak,
        }
    }

    /// Session `sid`'s descriptor. σ is final once the lane finished;
    /// mid-run it covers the schedule ingested so far.
    pub fn descriptor(&self, sid: u64) -> TrafficDescriptor {
        let b = sid as usize / self.block_size;
        let block = self.blocks[b].lock().expect("block poisoned");
        let j = sid as usize - block.first_leaf as usize;
        TrafficDescriptor {
            sigma: block.lanes[j].sigma,
            rho: self.cfg.descriptor_rho_bps,
        }
    }

    /// Every session's descriptor, in session-id order.
    pub fn descriptors(&self) -> Vec<TrafficDescriptor> {
        let mut out = Vec::with_capacity(self.sessions);
        for blk in &self.blocks {
            let blk = blk.lock().expect("block poisoned");
            out.extend(blk.lanes.iter().map(|l| TrafficDescriptor {
                sigma: l.sigma,
                rho: self.cfg.descriptor_rho_bps,
            }));
        }
        out
    }

    /// Snapshots the full aggregation state. The lane blocks' event
    /// buffers must be drained first (any [`ingest`](Self::ingest)
    /// does that, whatever its fence — undrained *pending* events are
    /// captured).
    ///
    /// # Panics
    ///
    /// Panics if a lane block still buffers unrouted events.
    pub fn checkpoint(&self) -> MuxCheckpoint {
        for blk in &self.blocks {
            assert!(
                blk.lock().expect("block poisoned").events.is_empty(),
                "checkpoint with unrouted events; call ingest first"
            );
        }
        MuxCheckpoint {
            cfg: self.cfg,
            sessions: self.sessions,
            block_size: self.block_size,
            lanes: self
                .blocks
                .iter()
                .flat_map(|b| b.lock().expect("block poisoned").lanes.clone())
                .collect(),
            shards: self
                .shards
                .iter()
                .map(|s| {
                    let s = s.lock().expect("shard poisoned");
                    (s.tree.clone(), s.pending.clone())
                })
                .collect(),
            top: self.top.clone(),
            queue: self.queue,
            cur_t: self.cur_t,
            peak: self.peak,
        }
    }

    /// Rebuilds an aggregator from a [`checkpoint`](Self::checkpoint),
    /// bit-identical to the one that was snapshotted.
    pub fn restore(cp: &MuxCheckpoint) -> Self {
        let mut mux = Self::build(cp.sessions, cp.block_size, cp.cfg, false);
        for (lane, from) in mux
            .blocks
            .iter_mut()
            .flat_map(|b| b.get_mut().expect("unshared").lanes.iter_mut())
            .zip(&cp.lanes)
        {
            *lane = from.clone();
        }
        for (shard, (tree, pending)) in mux.shards.iter_mut().zip(&cp.shards) {
            let shard = shard.get_mut().expect("unshared");
            shard.tree = tree.clone();
            shard.pending = pending.clone();
            shard.pending_min = pending.iter().map(|e| e.t).fold(f64::INFINITY, f64::min);
            shard.pending_max = pending
                .iter()
                .map(|e| e.t)
                .fold(f64::NEG_INFINITY, f64::max);
        }
        mux.top = cp.top.clone();
        mux.queue = cp.queue;
        mux.cur_t = cp.cur_t;
        mux.peak = cp.peak;
        mux
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mux::{materialize_schedules, mux_sessions};
    use crate::{SessionClass, SessionEngine, SyntheticFleet};
    use smooth_core::SmootherParams;
    use smooth_metrics::StepFunction;
    use smooth_mpeg::GopPattern;
    use smooth_netsim::{min_bucket_for, sweep_cursors, RateSweep};

    fn fleet_setup(sessions: usize) -> (SessionEngine, SyntheticFleet) {
        let pattern = GopPattern::new(3, 9).unwrap();
        let class = SessionClass::new(SmootherParams::at_30fps(0.2, 1, 9).unwrap(), pattern);
        let mut engine = SessionEngine::with_shard_size(vec![class], 7);
        engine.add_sessions(0, sessions);
        (engine, SyntheticFleet { seed: 99, pattern })
    }

    fn cfg(capacity: f64, buffer: f64, a: f64, b: f64) -> MuxConfig {
        MuxConfig {
            capacity_bps: capacity,
            buffer_bits: buffer,
            t_start: a,
            t_end: b,
            descriptor_rho_bps: 1.5e6,
        }
    }

    fn assert_stats_bits_eq(got: &FluidMuxStats, want: &FluidMuxStats, what: &str) {
        for (name, x, y) in [
            ("arrived_bits", got.arrived_bits, want.arrived_bits),
            ("lost_bits", got.lost_bits, want.lost_bits),
            ("served_bits", got.served_bits, want.served_bits),
            (
                "final_queue_bits",
                got.final_queue_bits,
                want.final_queue_bits,
            ),
            ("max_queue_bits", got.max_queue_bits, want.max_queue_bits),
            ("utilization", got.utilization, want.utilization),
        ] {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: {name}: {x} vs {y}");
        }
    }

    /// The oracle triple for a window: sweep stats, interval-max peak,
    /// and per-session min_bucket_for sigmas over the materialized
    /// schedules.
    fn oracle(inputs: &[StepFunction], c: &MuxConfig) -> (FluidMuxStats, f64, Vec<f64>) {
        let sweep = RateSweep {
            capacity_bps: c.capacity_bps,
            buffer_bits: c.buffer_bits,
        };
        let stats = sweep.run(inputs, c.t_start, c.t_end);
        let mut peak = 0.0f64;
        let mut cursors: Vec<_> = inputs.iter().map(|f| f.cursor_at(c.t_start)).collect();
        sweep_cursors(
            &mut cursors,
            inputs.len(),
            c.t_start,
            c.t_end,
            |agg, _, _| {
                peak = peak.max(agg);
            },
        );
        let sigmas = inputs
            .iter()
            .map(|f| min_bucket_for(f, c.descriptor_rho_bps, c.t_start, c.t_end))
            .collect();
        (stats, peak, sigmas)
    }

    #[test]
    fn fused_batch_matches_sweep_oracle_bitwise() {
        for sessions in [1usize, 4, 23] {
            let (engine, fleet) = fleet_setup(sessions);
            let inputs = materialize_schedules(engine, fleet, 40);
            let t_end = inputs.iter().map(|f| f.domain_end()).fold(0.0, f64::max);
            for (a, b) in [(0.0, t_end), (0.3, 0.9), (-1.0, t_end + 1.0), (0.5, 0.5)] {
                let c = cfg(4.0e6 * sessions as f64, 0.5e6, a, b);
                let (want, want_peak, want_sigmas) = oracle(&inputs, &c);

                let (mut engine, fleet) = fleet_setup(sessions);
                let mut mux = LiveMux::new(sessions, 7, c);
                let got = engine.run_fused(&fleet, 40, 1, &mut mux).expect("fresh");
                assert_stats_bits_eq(&got.mux, &want, &format!("S={sessions} window [{a}, {b}]"));
                assert_eq!(got.peak_rate_bps.to_bits(), want_peak.to_bits());
                for (sid, want_sigma) in want_sigmas.iter().enumerate() {
                    let d = mux.descriptor(sid as u64);
                    assert_eq!(
                        d.sigma.to_bits(),
                        want_sigma.to_bits(),
                        "S={sessions} sid={sid} window [{a}, {b}]"
                    );
                    assert_eq!(d.rho, c.descriptor_rho_bps);
                }
            }
        }
    }

    #[test]
    fn fused_batch_matches_lazy_mux_sessions() {
        let c = cfg(40.0e6, 0.5e6, 0.0, 2.0);
        let sweep = RateSweep {
            capacity_bps: c.capacity_bps,
            buffer_bits: c.buffer_bits,
        };
        let (engine, fleet) = fleet_setup(23);
        let want = mux_sessions(engine, fleet, 40, &sweep, c.t_start, c.t_end).expect("fresh");
        let (mut engine, fleet) = fleet_setup(23);
        let mut mux = LiveMux::new(23, 7, c);
        let got = engine.run_fused(&fleet, 40, 1, &mut mux).expect("fresh");
        assert_stats_bits_eq(&got.mux, &want, "vs mux_sessions");
    }

    #[test]
    fn fused_run_is_thread_invariant() {
        let (engine, fleet) = fleet_setup(23);
        let inputs = materialize_schedules(engine, fleet, 30);
        let t_end = inputs.iter().map(|f| f.domain_end()).fold(0.0, f64::max);
        let c = cfg(30.0e6, 0.3e6, 0.0, t_end);
        let mut baseline = None;
        for threads in [1usize, 2, 5, 8] {
            let (mut engine, fleet) = fleet_setup(23);
            let mut mux = LiveMux::new(23, 7, c);
            let got = engine
                .run_fused(&fleet, 30, threads, &mut mux)
                .expect("fresh");
            let digest = mux_digest(&got, &mux.descriptors());
            match baseline {
                None => baseline = Some(digest),
                Some(d) => assert_eq!(d, digest, "threads={threads}"),
            }
        }
    }

    #[test]
    fn stale_engine_is_a_typed_error() {
        let (mut engine, fleet) = fleet_setup(3);
        engine.run(&fleet, 5, false, 1);
        let c = cfg(1.0e6, 0.0, 0.0, 1.0);
        let mut mux = LiveMux::new(3, 7, c);
        let err = engine.run_fused(&fleet, 5, 1, &mut mux).unwrap_err();
        assert_eq!(
            err,
            crate::EngineError::StaleEngine {
                ticks: 5,
                finished: false
            }
        );
    }

    #[test]
    fn checkpoint_restore_is_bit_identical() {
        let c = cfg(30.0e6, 0.3e6, 0.0, 2.0);
        // Uninterrupted run.
        let (mut engine, fleet) = fleet_setup(23);
        let mut mux = LiveMux::new(23, 7, c);
        let want = engine.run_fused(&fleet, 30, 1, &mut mux).expect("fresh");
        let want_digest = mux_digest(&want, &mux.descriptors());

        // Same run driven tick-by-tick with a checkpoint in the middle.
        let (mut engine, fleet) = fleet_setup(23);
        let mut mux = LiveMux::new(23, 7, c);
        for _ in 0..17 {
            engine.tick_serial_with(&fleet, &mut |sid, d| mux.push_decision(sid, d));
        }
        mux.ingest(1, f64::INFINITY);
        let cp = mux.checkpoint();
        let mut mux = LiveMux::restore(&cp);
        for _ in 17..30 {
            engine.tick_serial_with(&fleet, &mut |sid, d| mux.push_decision(sid, d));
        }
        engine.finish_serial_with(&fleet, &mut |sid, d| mux.push_decision(sid, d));
        for sid in 0..23 {
            mux.finish_session(sid);
        }
        mux.ingest(1, f64::INFINITY);
        let got = mux.finalize();
        assert_eq!(mux_digest(&got, &mux.descriptors()), want_digest);
    }

    #[test]
    fn zero_and_inverted_windows_give_zero_stats() {
        for (a, b) in [(1.0, 1.0), (2.0, 1.0)] {
            let (mut engine, fleet) = fleet_setup(4);
            let mut mux = LiveMux::new(4, 7, cfg(1.0e6, 0.1e6, a, b));
            let got = engine.run_fused(&fleet, 10, 1, &mut mux).expect("fresh");
            assert_eq!(got.mux.arrived_bits, 0.0);
            assert_eq!(got.mux.utilization, 0.0);
            assert!(!got.mux.utilization.is_nan());
            assert_eq!(got.peak_rate_bps, 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        LiveMux::new(1, 1, cfg(0.0, 0.0, 0.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "token rate must be positive")]
    fn zero_rho_rejected() {
        let mut c = cfg(1.0, 0.0, 0.0, 1.0);
        c.descriptor_rho_bps = 0.0;
        LiveMux::new(1, 1, c);
    }
}
