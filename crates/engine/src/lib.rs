//! # smooth-engine
//!
//! A **session engine**: up to a million concurrent live smoothing
//! sessions — one per active viewer, the production setting the paper's
//! transport-protocol smoother (Figure 1) implies — advanced in lockstep
//! picture ticks through one process.
//!
//! One [`smooth_core::OnlineSmoother`] per stream does not scale to that
//! count: each carries its own heap-scattered state and (before PR 5) an
//! arrival history that grew without bound. The engine replaces the
//! per-stream objects with:
//!
//! * **Cache-compact struct-of-arrays session store.** Per-session
//!   scalars (`decided`, `depart`, `prev_rate`, `watermark`, history
//!   `base`/`len`) live in parallel arrays inside a [`Shard`], narrowed
//!   to the smallest width their invariants allow (u32 picture indices,
//!   u16 lengths and class ids; the authoritative times and rates stay
//!   f64) with hot per-tick scalars split from cold configuration;
//!   arrival history is a bounded per-session slot of **u32 size words**
//!   in one flat ring buffer (picture sizes are bits-per-picture, far
//!   below 2³²; widening back is exact, so no decision bit changes),
//!   pruned in whole GOP periods under the estimator's
//!   [`history_window`](smooth_core::SizeEstimator::history_window)
//!   contract — so resident memory per session is O(H + N + K + D/τ),
//!   not O(pictures pushed), at roughly half the pre-compaction bytes
//!   (see [`SessionEngine::state_bytes_per_session`]). Sliding
//!   [`smooth_core::LookaheadWindow`]s are kept per session (the
//!   O(1)-per-picture fast path needs them); decision scratch
//!   ([`smooth_core::BlockLanes`]) and the widened staging tail are per
//!   shard.
//! * **Tick scheduler.** [`SessionEngine::tick`] feeds every session its
//!   next picture and drains all decisions whose paper preconditions are
//!   now met, via [`smooth_core::decide_live`] — the *same* decision
//!   function `OnlineSmoother` uses, so a session's schedule is
//!   bit-identical to a dedicated smoother fed the same sizes (pinned by
//!   proptests). Per-class configuration (params, pattern, estimator,
//!   selection) is shared across all sessions of a
//!   [`SessionClass`]. For throughput, [`SessionEngine::run`] executes a
//!   whole batch of ticks **session-major** — each session's state
//!   streams from memory once per batch instead of once per tick — and
//!   is bit-identical to the lockstep loop (sessions are independent).
//! * **Shard-parallel execution.** Sessions are assigned to fixed-size
//!   shards by session id (never by worker count); ticks fan shards out
//!   over [`smooth_sweep::par_map`] with index-ordered collection.
//!   Shards are disjoint state machines, so the result — every decision,
//!   and the per-session [`digest`](SessionEngine::digest) that
//!   fingerprints them — is bit-identical to serial for any thread
//!   count, the same discipline as the netsim mux's `ShardPlan`.
//! * **Mux adapter.** [`mux::mux_sessions`] streams every session's rate
//!   schedule into the [`smooth_netsim::RateSweep`] k-way merge as lazy
//!   [`smooth_metrics::RateCursor`]s, without materializing a
//!   [`smooth_metrics::StepFunction`] per source.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::sync::Mutex;

use smooth_core::{
    decide_live, prunable_prefix, BlockLanes, LiveCursor, LiveParams, LookaheadWindow,
    PatternEstimator, PictureSchedule, RateSelection, SizeEstimator, SizeHistory, SmootherParams,
};
use smooth_mpeg::GopPattern;
use smooth_sweep::{par_map, par_map_pinned};

pub mod dynamic;
pub mod livemux;
pub mod mux;
pub mod scanref;
pub mod synthetic;

pub use livemux::{mux_digest, LiveMux, LiveMuxStats, MuxCheckpoint, MuxConfig, TrafficDescriptor};

pub use dynamic::{
    fps_class, DynamicClass, DynamicEngine, EngineCheckpoint, SessionSnapshot, ARRIVAL_BATCH,
    MUX_INGEST_SPAN_TICKS, TICKS_PER_SEC,
};
pub use synthetic::{churn_trace, ChurnEvent, ChurnSpec, ChurnTrace, SyntheticFleet};

/// Errors constructing or operating a session engine: every narrowed
/// width the compact store relies on (u16 retained-length words, u32
/// ring offsets, u16 class ids) is guarded here with a typed error
/// instead of a debug-only panic, so extreme-but-valid smoother
/// parameters (huge `D/τ`, huge `N`) are rejected loudly at
/// configuration time in every build profile.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// An engine needs at least one session class.
    NoClasses,
    /// Shard size must be positive.
    ZeroShardSize,
    /// Class ids are stored as `u16`.
    TooManyClasses {
        /// Classes requested (limit is 65 536).
        classes: usize,
    },
    /// The class estimator declares no bounded history window, so the
    /// fixed-slot ring cannot hold its history.
    UnboundedEstimator,
    /// The per-session history slot (`ring_cap`, a function of `D/τ`,
    /// `K`, `H`, and `N`) exceeds the compact store's `u16` retained
    /// -length word.
    RingCapExceedsLenWord {
        /// Required slot size in sizes.
        ring_cap: usize,
        /// The `u16` limit.
        max: usize,
    },
    /// A shard's flat history ring (`shard_size · ring_cap` sizes)
    /// exceeds the compact store's `u32` ring-offset word.
    ShardRingExceedsOffsetWord {
        /// Required ring length in sizes.
        ring_slots: u128,
        /// The `u32` limit.
        max: u64,
    },
    /// The dynamic engine needs room for at least one session.
    ZeroCapacity,
    /// A class picture period must be at least one scheduler tick.
    ZeroPeriod {
        /// Offending class id.
        class: usize,
    },
    /// Unknown class id.
    UnknownClass {
        /// Offending class id.
        class: usize,
    },
    /// A join arrived with every slot of every shard occupied.
    CapacityExhausted {
        /// The engine's fixed session capacity.
        capacity: usize,
    },
    /// Unknown or departed session id.
    UnknownSession {
        /// Offending session id.
        sid: u64,
    },
    /// A snapshot's retained history does not fit its class's slot.
    SnapshotHistoryTooLong {
        /// Retained sizes in the snapshot.
        len: usize,
        /// The class's slot size.
        ring_cap: usize,
    },
    /// A mux adapter was handed an engine that already advanced: the
    /// fused and lazy paths replay the fleet from picture 0, so a
    /// partially-run engine would silently multiplex a truncated
    /// schedule.
    StaleEngine {
        /// Ticks the engine has already been fed.
        ticks: u64,
        /// Whether the engine was already finished.
        finished: bool,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::NoClasses => write!(f, "at least one session class is required"),
            EngineError::ZeroShardSize => write!(f, "shard size must be positive"),
            EngineError::TooManyClasses { classes } => {
                write!(f, "at most 65536 session classes ({classes} given)")
            }
            EngineError::UnboundedEstimator => {
                write!(f, "engine estimator must declare a bounded history window")
            }
            EngineError::RingCapExceedsLenWord { ring_cap, max } => write!(
                f,
                "per-session history slot ({ring_cap} sizes) exceeds the u16 length word \
                 (max {max}); lower D/τ, K, H, or N"
            ),
            EngineError::ShardRingExceedsOffsetWord { ring_slots, max } => write!(
                f,
                "shard history ring ({ring_slots} sizes) exceeds the u32 offset word \
                 (max {max}); lower the shard size or the class ring slot"
            ),
            EngineError::ZeroCapacity => write!(f, "session capacity must be positive"),
            EngineError::ZeroPeriod { class } => {
                write!(f, "class {class}: picture period must be at least one tick")
            }
            EngineError::UnknownClass { class } => write!(f, "unknown class {class}"),
            EngineError::CapacityExhausted { capacity } => {
                write!(f, "all {capacity} session slots are occupied")
            }
            EngineError::UnknownSession { sid } => {
                write!(f, "unknown or departed session {sid}")
            }
            EngineError::SnapshotHistoryTooLong { len, ring_cap } => write!(
                f,
                "snapshot retains {len} sizes but the class slot holds {ring_cap}"
            ),
            EngineError::StaleEngine { ticks, finished } => write!(
                f,
                "mux adapters need a fresh engine (this one has {ticks} ticks, \
                 finished: {finished})"
            ),
        }
    }
}

impl std::error::Error for EngineError {}

/// Default sessions per shard. Fixed by session id — never by worker
/// count — so the shard layout, and with it every output bit, is
/// independent of how many threads advance a tick.
pub const SESSIONS_PER_SHARD: usize = 4096;

/// Ticks per fused engine+mux chunk ([`SessionEngine::run_fused`]):
/// large enough to keep the session-major batch's cache economy, small
/// enough to bound the transient delta-event buffers between ingests.
/// Purely a batching knob — every output bit is chunk-size-invariant
/// (the mux applies events in global time order regardless).
pub const FUSED_CHUNK: u64 = 8;

/// Produces each session's picture sizes on demand: `size(s, p)` is the
/// coded size (bits) of session `s`'s picture `p` (display order). A
/// pure function of its arguments, so ticks can re-derive sizes instead
/// of storing a megasession's worth of traces.
///
/// The engine's compact history ring stores sizes as `u32` words;
/// feeding a picture of 2³² bits (≈ 0.5 GB) or more panics with a clear
/// message. Real MPEG pictures are orders of magnitude below this.
pub trait SizeSource: Sync {
    /// Coded size of picture `picture` of session `session`, in bits.
    fn size(&self, session: u64, picture: u64) -> u64;
}

/// A configuration class shared by many sessions: the paper's `(D, K,
/// H)`, the GOP pattern, the estimator, and the rate-selection policy.
#[derive(Debug, Clone)]
pub struct SessionClass {
    /// Smoother parameters.
    pub params: SmootherParams,
    /// GOP pattern of the class's streams.
    pub pattern: GopPattern,
    /// Rate-selection policy.
    pub selection: RateSelection,
    /// Size estimator (shared by every session of the class).
    pub estimator: PatternEstimator,
}

impl SessionClass {
    /// A class with the paper's default estimator and basic selection.
    pub fn new(params: SmootherParams, pattern: GopPattern) -> Self {
        SessionClass {
            params,
            pattern,
            selection: RateSelection::Basic,
            estimator: PatternEstimator::default(),
        }
    }
}

/// Per-class derived constants, computed once at engine construction.
#[derive(Debug, Clone)]
pub(crate) struct ClassInfo {
    pub(crate) class: SessionClass,
    /// The estimator's declared history window (`2N` for the pattern
    /// estimator).
    pub(crate) hist: usize,
    /// Fixed per-session history slot size. Sized from Theorem 1: the
    /// undecided backlog never exceeds ⌈D/τ⌉ + K (+1 for the picture
    /// pushed this tick); on top of that live tail the prune cut lags by
    /// at most the watermark lead (another backlog), the estimator
    /// window, and pattern alignment. Doubled so compaction is amortized
    /// (each memmove frees at least half the slot), plus slack.
    pub(crate) ring_cap: usize,
}

impl ClassInfo {
    /// Derives the class constants, guarding every width the compact
    /// store narrows to: the `u16` retained-length word bounds
    /// `ring_cap`, which grows with `D/τ`, `K`, `H`, and `N` — extreme
    /// but feasible parameters (say `D = 3000 s`, `τ = 1/30 s`) push it
    /// past 65 535, and a fleet configured that way must be rejected at
    /// construction in every build profile, not caught by a debug-only
    /// index panic deep in the push path.
    pub(crate) fn try_new(class: SessionClass) -> Result<Self, EngineError> {
        let Some(hist) = class.estimator.history_window(&class.pattern) else {
            return Err(EngineError::UnboundedEstimator);
        };
        let n = class.pattern.n();
        let backlog =
            (class.params.delay_bound / class.params.tau).ceil() as usize + class.params.k + 1;
        let ring_cap = 2 * (backlog + hist + n + 2) + 16;
        // The compact layout stores retained lengths as `u16`.
        if ring_cap > u16::MAX as usize {
            return Err(EngineError::RingCapExceedsLenWord {
                ring_cap,
                max: u16::MAX as usize,
            });
        }
        Ok(ClassInfo {
            class,
            hist,
            ring_cap,
        })
    }
}

/// Checks that a shard's flat history ring — `shard_size` slots of the
/// largest class's `ring_cap` — stays addressable by the compact
/// store's `u32` ring-offset word.
pub(crate) fn check_shard_ring(
    classes: &[ClassInfo],
    shard_size: usize,
) -> Result<(), EngineError> {
    let widest = classes.iter().map(|c| c.ring_cap).max().unwrap_or(0);
    let ring_slots = shard_size as u128 * widest as u128;
    if ring_slots > u64::from(u32::MAX) as u128 {
        return Err(EngineError::ShardRingExceedsOffsetWord {
            ring_slots,
            max: u64::from(u32::MAX),
        });
    }
    Ok(())
}

pub(crate) const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

#[inline(always)]
pub(crate) fn fnv(digest: u64, word: u64) -> u64 {
    (digest ^ word).wrapping_mul(FNV_PRIME)
}

/// One shard's struct-of-arrays session store. Index `j` is the
/// shard-local session slot; all vectors run in lockstep.
///
/// The layout is **cache-compact**: hot per-tick scalars are narrowed
/// to the smallest width their invariants allow and kept apart from
/// cold, rarely-written configuration; the session id is derived from
/// the slot (`first_sid + j`) instead of stored; and the history ring
/// packs each size into a `u32` fixed-point word (picture sizes are
/// bits-per-picture, far below 2³² — the push path checks). Every
/// narrowed field widens *exactly* (`u32 → u64`/`usize`/`f64` are all
/// value-preserving), so schedules are bit-identical to the wide
/// layout — pinned by the engine-vs-[`smooth_core::OnlineSmoother`]
/// proptests.
struct Shard {
    /// Session id of slot 0; slot `j` holds session `first_sid + j`
    /// ([`SessionEngine::add_sessions`] hands out consecutive ids).
    first_sid: u64,
    // --- hot scalars: read and written every tick ---
    /// Decisions already emitted (the next undecided picture index).
    decided: Vec<u32>,
    /// Retained history length in sizes; bounded by the class
    /// `ring_cap`, which [`ClassInfo::new`] asserts fits `u16`.
    len: Vec<u16>,
    /// High-water mark of the visible prefix length consulted so far.
    watermark: Vec<u32>,
    /// Departure time of the last decided picture (authoritative `f64`).
    depart: Vec<f64>,
    /// Rate of the last decided picture (meaningful when `decided > 0`).
    prev_rate: Vec<f64>,
    /// FNV-1a fingerprint of every decision emitted by session `j`
    /// (index, start, rate, depart bits) — the determinism witness.
    digest: Vec<u64>,
    // --- cold: written only at creation or on (rare) compaction ---
    /// Logical index of the first retained size (whole-pattern cut).
    base: Vec<u32>,
    class_of: Vec<u16>,
    /// Start of session `j`'s history slot in `ring`.
    ring_off: Vec<u32>,
    /// Flat history storage, one fixed slot per session: session `j`
    /// retains logical pictures `base[j] .. base[j] + len[j]` at
    /// `ring[ring_off[j] ..]`, each size a checked-narrowed `u32`.
    ring: Vec<u32>,
    windows: Vec<LookaheadWindow>,
    /// Widened `u64` mirror of the *active* session's retained tail:
    /// refilled when a session is entered (once per batch), kept in
    /// sync by push/prune, and always L1-hot — [`decide_live`] reads
    /// sizes from here, so only the halved `u32` ring streams from
    /// DRAM. The widening is exact, so this changes no bits.
    stage: Vec<u64>,
    /// Decision scratch, shared by every session of the shard.
    lanes: BlockLanes,
    decisions: u64,
}

impl Shard {
    fn new(first_sid: u64) -> Self {
        Shard {
            first_sid,
            decided: Vec::new(),
            len: Vec::new(),
            watermark: Vec::new(),
            depart: Vec::new(),
            prev_rate: Vec::new(),
            digest: Vec::new(),
            base: Vec::new(),
            class_of: Vec::new(),
            ring_off: Vec::new(),
            ring: Vec::new(),
            windows: Vec::new(),
            stage: Vec::new(),
            lanes: BlockLanes::default(),
            decisions: 0,
        }
    }

    fn count(&self) -> usize {
        self.class_of.len()
    }

    fn push_session(&mut self, class_id: u16, info: &ClassInfo) {
        self.class_of.push(class_id);
        let off = u32::try_from(self.ring.len()).expect("shard ring offset fits u32");
        self.ring_off.push(off);
        self.ring.resize(self.ring.len() + info.ring_cap, 0);
        self.base.push(0);
        self.len.push(0);
        self.decided.push(0);
        self.depart.push(0.0);
        self.prev_rate.push(0.0);
        self.watermark.push(0);
        self.digest.push(FNV_OFFSET);
        self.windows.push(LookaheadWindow::new());
    }

    /// Advances every session of the shard by one tick: optionally push
    /// the next picture (live tick) and drain every decision now
    /// decidable. Returns the number of decisions made.
    fn advance<S: SizeSource, F: FnMut(u64, &PictureSchedule)>(
        &mut self,
        classes: &[ClassInfo],
        source: &S,
        push: bool,
        ended: bool,
        sink: &mut F,
    ) -> u64 {
        let mut made = 0u64;
        for j in 0..self.count() {
            self.prefetch(j + 1);
            made += self.run_session(j, classes, source, u64::from(push), ended, sink);
        }
        self.decisions += made;
        made
    }

    /// Advances every session of the shard by `ticks` live ticks (plus,
    /// when `finish` is set, the end-of-stream drain), **session-major**:
    /// each session runs through the whole batch before the next is
    /// touched, so its ring slot, window, and scalars are streamed from
    /// memory once per batch instead of once per tick. Sessions are
    /// independent state machines, so every decision and digest is
    /// bit-identical to `ticks` calls of [`advance`] (pinned by
    /// proptests); only the interleaving a sink would observe differs,
    /// which is why this path takes none — lockstep consumers (the mux
    /// adapter) use [`advance`].
    fn advance_batch<S: SizeSource>(
        &mut self,
        classes: &[ClassInfo],
        source: &S,
        ticks: u64,
        finish: bool,
    ) -> u64 {
        self.advance_batch_with(classes, source, ticks, finish, &mut |_, _| {})
    }

    /// [`advance_batch`](Self::advance_batch) with a decision sink. The
    /// sink observes the **session-major** interleaving (each session's
    /// whole batch before the next session), but within a session the
    /// decisions come in schedule order — all a per-session consumer
    /// (the fused mux's lanes) needs.
    fn advance_batch_with<S: SizeSource, F: FnMut(u64, &PictureSchedule)>(
        &mut self,
        classes: &[ClassInfo],
        source: &S,
        ticks: u64,
        finish: bool,
        sink: &mut F,
    ) -> u64 {
        let mut made = 0u64;
        for j in 0..self.count() {
            self.prefetch(j + 1);
            made += self.run_session(j, classes, source, ticks, finish, sink);
        }
        self.decisions += made;
        made
    }

    /// Hide session `j`'s demand misses behind its predecessor's work:
    /// its window buffer is a per-session heap block (the one pointer
    /// chase here), and its ring slot sits a long stride away.
    #[inline(always)]
    fn prefetch(&self, j: usize) {
        if let Some(next) = self.windows.get(j) {
            next.prewarm();
            std::hint::black_box(self.ring.get(self.ring_off[j] as usize).copied());
        }
    }

    /// Runs session `j` through `live_ticks` pushes plus, when `finish`
    /// is set, the end-of-stream drain. Every per-session scalar is
    /// loaded into a local once, carried through the whole batch, and
    /// stored back once — the arrays see one load and one store per
    /// batch, not per tick. Returns the decisions made.
    fn run_session<S: SizeSource, F: FnMut(u64, &PictureSchedule)>(
        &mut self,
        j: usize,
        classes: &[ClassInfo],
        source: &S,
        live_ticks: u64,
        finish: bool,
        sink: &mut F,
    ) -> u64 {
        let info = &classes[self.class_of[j] as usize];
        let off = self.ring_off[j] as usize;
        let cap = info.ring_cap;
        let n = info.class.pattern.n();
        let sid = self.first_sid + j as u64;

        let mut cursor = LiveCursor {
            decided: self.decided[j] as usize,
            depart: self.depart[j],
            prev_rate: if self.decided[j] > 0 {
                Some(self.prev_rate[j])
            } else {
                None
            },
            watermark: self.watermark[j] as usize,
        };
        let mut base = self.base[j] as usize;
        let mut len = self.len[j] as usize;
        let mut digest = self.digest[j];
        let mut made = 0u64;

        // Stage the retained tail as `u64` once per batch (exact
        // widening); decisions read the L1-hot stage, not the ring.
        self.stage.clear();
        self.stage
            .extend(self.ring[off..off + len].iter().map(|&s| u64::from(s)));

        let cfg = LiveParams {
            params: &info.class.params,
            pattern: info.class.pattern,
            estimator: &info.class.estimator,
            selection: info.class.selection,
            total: None,
        };

        let steps = live_ticks + u64::from(finish);
        for t in 0..steps {
            let live = t < live_ticks;
            if live {
                if len == cap {
                    // The push path found the slot full: prune now or
                    // die. Theorem 1 bounds the live tail well below
                    // `ring_cap`, so an empty prune here means the slot
                    // was mis-sized — a bug, not a load condition.
                    let cut = prunable_prefix(&cursor, Some(info.hist), n);
                    let drop = cut.saturating_sub(base);
                    assert!(
                        drop > 0,
                        "session {sid} history slot full ({cap} sizes) with nothing prunable"
                    );
                    self.ring.copy_within(off + drop..off + len, off);
                    self.stage.copy_within(drop..len, 0);
                    len -= drop;
                    self.stage.truncate(len);
                    base = cut;
                    // The window caches base-shifted coordinates; force
                    // a refill (bit-identical to sliding — pinned by
                    // the lookahead proptests).
                    self.windows[j].reset();
                }
                let size = source.size(sid, (base + len) as u64);
                self.ring[off + len] = u32::try_from(size).unwrap_or_else(|_| {
                    panic!("picture size {size} bits exceeds the engine's u32 size word")
                });
                self.stage.push(size);
                len += 1;
            }
            let ended = !live;
            loop {
                let history = SizeHistory {
                    base,
                    tail: &self.stage[..len],
                };
                let Some(decision) = decide_live(
                    &cfg,
                    history,
                    ended,
                    &mut cursor,
                    &mut self.windows[j],
                    &mut self.lanes,
                ) else {
                    break;
                };
                digest = fnv(digest, decision.index as u64);
                digest = fnv(digest, decision.start.to_bits());
                digest = fnv(digest, decision.rate.to_bits());
                digest = fnv(digest, decision.depart.to_bits());
                made += 1;
                sink(sid, &decision);
            }

            // Lazy prune: drop the decided-and-unneeded prefix once it
            // covers at least half the retained slice (amortized O(1)
            // per push).
            let cut = prunable_prefix(&cursor, Some(info.hist), n);
            let drop = cut.saturating_sub(base);
            if drop > 0 && drop >= len / 2 {
                self.ring.copy_within(off + drop..off + len, off);
                self.stage.copy_within(drop..len, 0);
                len -= drop;
                self.stage.truncate(len);
                base = cut;
                self.windows[j].reset();
            }
        }

        self.decided[j] = u32::try_from(cursor.decided).expect("picture index fits u32");
        self.watermark[j] = u32::try_from(cursor.watermark).expect("watermark fits u32");
        self.base[j] = u32::try_from(base).expect("history base fits u32");
        // len <= ring_cap, asserted to fit u16 at class construction.
        self.len[j] = len as u16;
        self.depart[j] = cursor.depart;
        if let Some(r) = cursor.prev_rate {
            self.prev_rate[j] = r;
        }
        self.digest[j] = digest;
        made
    }
}

/// The engine: a fleet of live smoothing sessions advanced in lockstep
/// picture ticks. See the crate docs for the architecture.
///
/// ```
/// use smooth_core::SmootherParams;
/// use smooth_engine::{SessionClass, SessionEngine, SyntheticFleet};
/// use smooth_mpeg::GopPattern;
///
/// let pattern = GopPattern::new(3, 9).unwrap();
/// let class = SessionClass::new(SmootherParams::recommended(9), pattern);
/// let mut engine = SessionEngine::new(vec![class]);
/// engine.add_sessions(0, 1000);
/// let fleet = SyntheticFleet { seed: 7, pattern };
/// for _ in 0..30 {
///     engine.tick(&fleet, 1);
/// }
/// engine.finish(&fleet, 1);
/// assert_eq!(engine.decisions(), 30 * 1000);
/// ```
pub struct SessionEngine {
    classes: Vec<ClassInfo>,
    shards: Vec<Mutex<Shard>>,
    shard_size: usize,
    sessions: usize,
    ticks: u64,
    ended: bool,
}

impl SessionEngine {
    /// An engine over the given session classes, with the default shard
    /// size ([`SESSIONS_PER_SHARD`]).
    pub fn new(classes: Vec<SessionClass>) -> Self {
        Self::with_shard_size(classes, SESSIONS_PER_SHARD)
    }

    /// An engine with an explicit shard size (tests use small shards to
    /// exercise many-shard layouts with few sessions). The shard layout
    /// is a pure function of session ids and this size — results do not
    /// depend on it (pinned by proptests), only batching does.
    ///
    /// # Panics
    ///
    /// Panics on any configuration [`try_with_shard_size`]
    /// (Self::try_with_shard_size) rejects.
    pub fn with_shard_size(classes: Vec<SessionClass>, shard_size: usize) -> Self {
        Self::try_with_shard_size(classes, shard_size).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`with_shard_size`](Self::with_shard_size): rejects an
    /// empty class list, a zero shard size, more classes than the `u16`
    /// class word holds, and — the compact-store width guards — a class
    /// whose history slot overflows the `u16` length word or a shard
    /// ring that overflows the `u32` offset word, with a typed
    /// [`EngineError`] instead of a debug-only panic.
    pub fn try_with_shard_size(
        classes: Vec<SessionClass>,
        shard_size: usize,
    ) -> Result<Self, EngineError> {
        if classes.is_empty() {
            return Err(EngineError::NoClasses);
        }
        if shard_size == 0 {
            return Err(EngineError::ZeroShardSize);
        }
        // The compact layout stores class ids as `u16`.
        if classes.len() > 1 << 16 {
            return Err(EngineError::TooManyClasses {
                classes: classes.len(),
            });
        }
        let classes = classes
            .into_iter()
            .map(ClassInfo::try_new)
            .collect::<Result<Vec<_>, _>>()?;
        check_shard_ring(&classes, shard_size)?;
        Ok(SessionEngine {
            classes,
            shards: Vec::new(),
            shard_size,
            sessions: 0,
            ticks: 0,
            ended: false,
        })
    }

    /// Adds `count` sessions of class `class_id`. Sessions receive
    /// consecutive ids in creation order.
    ///
    /// # Panics
    ///
    /// Panics after the first tick (the lockstep schedule admits no
    /// stragglers), or on an unknown class.
    pub fn add_sessions(&mut self, class_id: usize, count: usize) {
        assert!(
            self.ticks == 0 && !self.ended,
            "add sessions before ticking"
        );
        assert!(class_id < self.classes.len(), "unknown class {class_id}");
        let info = &self.classes[class_id];
        for _ in 0..count {
            if self.sessions % self.shard_size == 0 {
                self.shards
                    .push(Mutex::new(Shard::new(self.sessions as u64)));
            }
            let shard = self
                .shards
                .last_mut()
                .expect("just ensured")
                .get_mut()
                .expect("unshared");
            shard.push_session(class_id as u16, info);
            self.sessions += 1;
        }
    }

    /// Like [`add_sessions`](Self::add_sessions), but constructs the new
    /// shards **in parallel with first-touch placement**: worker `w`
    /// (pinned to logical CPU `w`, best-effort) allocates and fills
    /// shards `w, w + threads, …` of the new range — the same static
    /// shard→thread striping [`run_pinned`](Self::run_pinned) uses — so
    /// each shard's memory is first touched by the thread that will
    /// advance it (on NUMA machines, in that thread's local node).
    /// Shard contents are a pure function of the session ids, so the
    /// resulting engine is indistinguishable from one built by
    /// [`add_sessions`](Self::add_sessions) (pinned by tests).
    ///
    /// # Panics
    ///
    /// As [`add_sessions`](Self::add_sessions); additionally, placed
    /// growth must start on a shard boundary (the current session count
    /// a multiple of the shard size).
    pub fn add_sessions_placed(&mut self, class_id: usize, count: usize, threads: usize) {
        assert!(
            self.ticks == 0 && !self.ended,
            "add sessions before ticking"
        );
        assert!(class_id < self.classes.len(), "unknown class {class_id}");
        assert!(
            self.sessions % self.shard_size == 0,
            "placed growth must start on a shard boundary"
        );
        let info = &self.classes[class_id];
        let shard_size = self.shard_size;
        let first = self.sessions as u64;
        let shard_count = count.div_ceil(shard_size);
        let idx: Vec<usize> = (0..shard_count).collect();
        let built = par_map_pinned(threads, &idx, |_, &s| {
            let first_sid = first + (s * shard_size) as u64;
            let in_shard = shard_size.min(count - s * shard_size);
            let mut shard = Shard::new(first_sid);
            for _ in 0..in_shard {
                shard.push_session(class_id as u16, info);
            }
            Mutex::new(shard)
        });
        self.shards.extend(built);
        self.sessions += count;
    }

    /// Number of sessions in the fleet.
    pub fn session_count(&self) -> usize {
        self.sessions
    }

    /// Sessions per shard — the lane-block width a fused
    /// [`LiveMux`] must be built with so each engine shard owns
    /// exactly one block (see [`run_fused`](Self::run_fused)).
    pub fn shard_size(&self) -> usize {
        self.shard_size
    }

    /// Number of ticks (pictures per session) fed so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Total picture decisions made across all sessions.
    pub fn decisions(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard poisoned").decisions)
            .sum()
    }

    /// The per-session history slot size (in sizes) of a class — the
    /// engine's O(H + N + K + D/τ) memory bound, independent of how many
    /// pictures a session is fed.
    pub fn class_ring_cap(&self, class_id: usize) -> usize {
        self.classes[class_id].ring_cap
    }

    /// Resident array bytes per session of a class under the compact
    /// layout: the narrowed hot and cold scalars plus the `u32` history
    /// slot. This is what a batch streams from memory per session (the
    /// per-session [`LookaheadWindow`] heap block, ~`H + N` f64 slots,
    /// is reported by [`window_bytes_per_session`]
    /// (Self::window_bytes_per_session)) — the numerator of the
    /// roofline's bytes-per-decision in DESIGN.md §6.
    pub fn state_bytes_per_session(&self, class_id: usize) -> usize {
        use std::mem::size_of;
        // Hot: decided u32, len u16, watermark u32, depart f64,
        // prev_rate f64, digest u64.
        let hot = size_of::<u32>() * 2 + size_of::<u16>() + size_of::<f64>() * 2 + size_of::<u64>();
        // Cold: base u32, class_of u16, ring_off u32.
        let cold = size_of::<u32>() * 2 + size_of::<u16>();
        hot + cold + size_of::<u32>() * self.classes[class_id].ring_cap
    }

    /// Approximate per-session lookahead-window heap bytes of a class:
    /// the window retains `H` lookahead slots plus up to `N` estimate
    /// slots between slides.
    pub fn window_bytes_per_session(&self, class_id: usize) -> usize {
        let info = &self.classes[class_id];
        std::mem::size_of::<f64>() * (info.class.params.h + info.class.pattern.n())
    }

    /// Feeds every session its next picture from `source` and drains all
    /// decisions now decidable, fanning shards over `threads` workers.
    /// Bit-identical to `threads == 1` for any thread count. Returns the
    /// number of decisions made this tick.
    ///
    /// # Panics
    ///
    /// Panics after [`finish`](Self::finish).
    pub fn tick<S: SizeSource>(&mut self, source: &S, threads: usize) -> u64 {
        assert!(!self.ended, "tick after finish");
        let classes = &self.classes;
        let shards = &self.shards;
        let idx: Vec<usize> = (0..shards.len()).collect();
        let made = par_map(threads, &idx, |_, &s| {
            let mut shard = shards[s].lock().expect("shard poisoned");
            shard.advance(classes, source, true, false, &mut |_, _| {})
        });
        self.ticks += 1;
        made.into_iter().sum()
    }

    /// Signals end-of-stream to every session and drains the remaining
    /// tail decisions. Returns the number of decisions made.
    pub fn finish<S: SizeSource>(&mut self, source: &S, threads: usize) -> u64 {
        let classes = &self.classes;
        let shards = &self.shards;
        let idx: Vec<usize> = (0..shards.len()).collect();
        let made = par_map(threads, &idx, |_, &s| {
            let mut shard = shards[s].lock().expect("shard poisoned");
            shard.advance(classes, source, false, true, &mut |_, _| {})
        });
        self.ended = true;
        made.into_iter().sum()
    }

    /// Runs `ticks` live ticks — plus, when `finish` is set, the
    /// end-of-stream drain — as one **session-major batch**: within each
    /// shard every session is advanced through the whole batch before
    /// the next session is touched, so fleet state streams from memory
    /// once per batch instead of once per tick. Sessions are independent,
    /// so the result (every decision, [`decisions`](Self::decisions),
    /// [`digest`](Self::digest)) is bit-identical to calling
    /// [`tick`](Self::tick) `ticks` times then [`finish`](Self::finish)
    /// — pinned by proptests — for any thread count. This is the
    /// throughput path; lockstep consumers (the mux adapter) need the
    /// per-tick barrier and use [`tick`](Self::tick). Returns the number
    /// of decisions made.
    ///
    /// # Panics
    ///
    /// Panics after [`finish`](Self::finish).
    pub fn run<S: SizeSource>(
        &mut self,
        source: &S,
        ticks: u64,
        finish: bool,
        threads: usize,
    ) -> u64 {
        assert!(!self.ended, "tick after finish");
        let classes = &self.classes;
        let shards = &self.shards;
        let idx: Vec<usize> = (0..shards.len()).collect();
        let made = par_map(threads, &idx, |_, &s| {
            let mut shard = shards[s].lock().expect("shard poisoned");
            shard.advance_batch(classes, source, ticks, finish)
        });
        self.ticks += ticks;
        self.ended = finish;
        made.into_iter().sum()
    }

    /// Runs the whole fleet through `ticks` live ticks plus the
    /// end-of-stream drain, **fused with online link aggregation**:
    /// each chunk of up to [`FUSED_CHUNK`] ticks is batched
    /// session-major (same cache behaviour as [`run`](Self::run)),
    /// every decision streams straight into its [`LiveMux`] lane, and
    /// the mux ingests the accumulated rate-change deltas between
    /// chunks — no materialized schedules, no breakpoint heap, no
    /// lockstep pumping. Returns the window's aggregate stats; the
    /// per-session (σ, ρ) descriptors stay readable on `mux`.
    ///
    /// Bit-identical to running the engine and then multiplexing with
    /// [`mux::mux_sessions`] over [`smooth_netsim::RateSweep`], for any
    /// thread count (pinned by the `livemux_props` proptests).
    ///
    /// # Errors
    ///
    /// [`EngineError::StaleEngine`] when the engine already advanced —
    /// the fused pass must see every decision from picture 0.
    ///
    /// # Panics
    ///
    /// Panics if `mux` was not built for this fleet (session count and
    /// block size must match the engine's layout).
    pub fn run_fused<S: SizeSource>(
        &mut self,
        source: &S,
        ticks: u64,
        threads: usize,
        mux: &mut LiveMux,
    ) -> Result<LiveMuxStats, EngineError> {
        if self.ticks != 0 || self.ended {
            return Err(EngineError::StaleEngine {
                ticks: self.ticks,
                finished: self.ended,
            });
        }
        assert_eq!(
            mux.session_count(),
            self.sessions,
            "mux sized for a different fleet"
        );
        assert_eq!(
            mux.block_size(),
            self.shard_size,
            "mux block size must match the engine shard size"
        );
        let classes = &self.classes;
        let shards = &self.shards;
        let idx: Vec<usize> = (0..shards.len()).collect();
        let mut remaining = ticks;
        let mut cadence = FUSED_CHUNK;
        loop {
            let chunk = remaining.min(cadence);
            remaining -= chunk;
            let fin = remaining == 0;
            let mux_ref = &*mux;
            // `SMOOTH_MUX_PROF=1` prints per-chunk advance walls and
            // per-pass ingest phase timings — the knob behind the
            // hot-path numbers in EXPERIMENTS.md.
            let t_chunk = livemux::prof_enabled().then(std::time::Instant::now);
            par_map(threads, &idx, |_, &s| {
                let mut shard = shards[s].lock().expect("shard poisoned");
                let mut block = mux_ref.block(s).lock().expect("block poisoned");
                shard.advance_batch_with(classes, source, chunk, fin, &mut |sid, d| {
                    block.decision(sid, d)
                });
                if fin {
                    block.finish_lanes();
                }
            });
            if let Some(t0) = t_chunk {
                eprintln!(
                    "fused_prof: chunk={chunk} fin={fin} advance={:.3}ms",
                    t0.elapsed().as_secs_f64() * 1e3
                );
            }
            let flushed = mux.ingest(threads, f64::INFINITY);
            if fin {
                break;
            }
            // A pass that applied nothing means the fence is pinned by
            // a lane still on its first merged segment — re-scanning at
            // the same cadence would be pure overhead, and each extra
            // pass re-streams every lane's state. Back off aggressively
            // (x4): a pinned fence tends to stay pinned until that
            // lane's segment breaks, and every output bit is
            // cadence-invariant (events apply in global time order
            // regardless of when they're ingested).
            if flushed == 0 {
                cadence = cadence.saturating_mul(4);
            } else {
                cadence = FUSED_CHUNK;
            }
        }
        self.ticks = ticks;
        self.ended = true;
        Ok(mux.finalize())
    }

    /// [`run`](Self::run) with **static shard→thread striping and
    /// pinned workers** ([`smooth_sweep::par_map_pinned`]): worker `w`
    /// advances shards `w, w + threads, …`, so across repeated calls
    /// with the same `threads` every shard stays with one thread — and,
    /// when the shards were built by
    /// [`add_sessions_placed`](Self::add_sessions_placed) at the same
    /// worker count, with the thread that first touched its memory.
    /// Bit-identical to [`run`](Self::run) for any thread count (shards
    /// are disjoint; only placement differs) — pinned by tests.
    ///
    /// # Panics
    ///
    /// Panics after [`finish`](Self::finish).
    pub fn run_pinned<S: SizeSource>(
        &mut self,
        source: &S,
        ticks: u64,
        finish: bool,
        threads: usize,
    ) -> u64 {
        assert!(!self.ended, "tick after finish");
        let classes = &self.classes;
        let shards = &self.shards;
        let idx: Vec<usize> = (0..shards.len()).collect();
        let made = par_map_pinned(threads, &idx, |_, &s| {
            let mut shard = shards[s].lock().expect("shard poisoned");
            shard.advance_batch(classes, source, ticks, finish)
        });
        self.ticks += ticks;
        self.ended = finish;
        made.into_iter().sum()
    }

    /// Serial [`tick`](Self::tick) that also hands every decision to
    /// `sink(session_id, schedule)` — the adapter path (see [`mux`]).
    pub fn tick_serial_with<S: SizeSource>(
        &mut self,
        source: &S,
        sink: &mut impl FnMut(u64, &PictureSchedule),
    ) -> u64 {
        assert!(!self.ended, "tick after finish");
        let classes = &self.classes;
        let mut made = 0;
        for shard in &mut self.shards {
            let shard = shard.get_mut().expect("unshared");
            made += shard.advance(classes, source, true, false, sink);
        }
        self.ticks += 1;
        made
    }

    /// Serial [`finish`](Self::finish) with a decision sink.
    pub fn finish_serial_with<S: SizeSource>(
        &mut self,
        source: &S,
        sink: &mut impl FnMut(u64, &PictureSchedule),
    ) -> u64 {
        let classes = &self.classes;
        let mut made = 0;
        for shard in &mut self.shards {
            let shard = shard.get_mut().expect("unshared");
            made += shard.advance(classes, source, false, true, sink);
        }
        self.ended = true;
        made
    }

    /// Whether [`finish`](Self::finish) has run.
    pub fn is_finished(&self) -> bool {
        self.ended
    }

    /// One FNV-1a fingerprint over every session's decision digest, in
    /// session-id order — equal iff every decision of every session is
    /// bit-identical. The determinism witness the proptests compare
    /// across thread counts and shard sizes.
    pub fn digest(&self) -> u64 {
        let mut d = FNV_OFFSET;
        for shard in &self.shards {
            let shard = shard.lock().expect("shard poisoned");
            for &x in &shard.digest {
                d = fnv(d, x);
            }
        }
        d
    }

    /// Per-session decision digests, in session-id order.
    pub fn session_digests(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.sessions);
        for shard in &self.shards {
            let shard = shard.lock().expect("shard poisoned");
            out.extend_from_slice(&shard.digest);
        }
        out
    }

    /// Peak retained history length across all sessions (diagnostics for
    /// the memory-bound tests).
    pub fn max_retained(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                let shard = s.lock().expect("shard poisoned");
                shard.len.iter().map(|&l| l as usize).max().unwrap_or(0)
            })
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_engine(shard_size: usize) -> (SessionEngine, SyntheticFleet) {
        let pattern = GopPattern::new(3, 9).unwrap();
        let class = SessionClass::new(SmootherParams::at_30fps(0.2, 1, 9).unwrap(), pattern);
        let mut engine = SessionEngine::with_shard_size(vec![class], shard_size);
        engine.add_sessions(0, 50);
        (
            engine,
            SyntheticFleet {
                seed: 0xfeed,
                pattern,
            },
        )
    }

    /// Satellite regression: the `u16` retained-length guard trips at
    /// exactly the boundary. For pattern (3, 9) with `K = 1` the slot
    /// is `2·⌈D/τ⌉ + 78` sizes, so `⌈D/τ⌉ = 32728` is the largest
    /// admissible backlog (65 534 ≤ 65 535) and 32 729 must be rejected
    /// with the typed error — not a debug-only panic downstream.
    #[test]
    fn ring_cap_u16_guard_trips_at_the_boundary() {
        let pattern = GopPattern::new(3, 9).unwrap();
        let class = |backlog: f64| {
            SessionClass::new(
                SmootherParams::new(backlog, 1, 9, 1.0).expect("feasible"),
                pattern,
            )
        };
        let ok = SessionEngine::try_with_shard_size(vec![class(32728.0)], 4).expect("at the limit");
        assert_eq!(ok.class_ring_cap(0), 65534);
        assert_eq!(
            SessionEngine::try_with_shard_size(vec![class(32729.0)], 4).err(),
            Some(EngineError::RingCapExceedsLenWord {
                ring_cap: 65536,
                max: 65535,
            })
        );
        // The dynamic engine rejects the same class the same way.
        let dyn_class = DynamicClass {
            class: class(32729.0),
            period_ticks: 20,
        };
        assert_eq!(
            DynamicEngine::new(vec![dyn_class], 10, 4).err(),
            Some(EngineError::RingCapExceedsLenWord {
                ring_cap: 65536,
                max: 65535,
            })
        );
    }

    /// Satellite regression: the `u32` shard-ring-offset guard trips at
    /// exactly the boundary. The paper class's slot is 90 sizes, so
    /// `⌊u32::MAX / 90⌋ = 47 721 858` sessions per shard still address
    /// the flat ring and one more must be rejected.
    #[test]
    fn shard_ring_u32_guard_trips_at_the_boundary() {
        let pattern = GopPattern::new(3, 9).unwrap();
        let class = || SessionClass::new(SmootherParams::at_30fps(0.2, 1, 9).unwrap(), pattern);
        let cap = SessionEngine::try_with_shard_size(vec![class()], 1)
            .expect("valid")
            .class_ring_cap(0);
        assert_eq!(cap, 90);
        let limit = u32::MAX as usize / cap;
        assert!(SessionEngine::try_with_shard_size(vec![class()], limit).is_ok());
        assert_eq!(
            SessionEngine::try_with_shard_size(vec![class()], limit + 1).err(),
            Some(EngineError::ShardRingExceedsOffsetWord {
                ring_slots: (limit as u128 + 1) * cap as u128,
                max: u64::from(u32::MAX),
            })
        );
    }

    /// The panicking constructor surfaces the typed error's message.
    #[test]
    #[should_panic(expected = "at least one session class")]
    fn empty_class_list_panics_with_the_typed_message() {
        let _ = SessionEngine::with_shard_size(vec![], 4);
    }

    #[test]
    fn every_session_decides_every_picture() {
        let (mut engine, fleet) = small_engine(16);
        for _ in 0..40 {
            engine.tick(&fleet, 1);
        }
        engine.finish(&fleet, 1);
        assert_eq!(engine.decisions(), 40 * 50);
        assert_eq!(engine.ticks(), 40);
    }

    #[test]
    fn digest_is_shard_and_thread_invariant() {
        let (mut a, fleet) = small_engine(SESSIONS_PER_SHARD);
        for _ in 0..25 {
            a.tick(&fleet, 1);
        }
        a.finish(&fleet, 1);
        for shard_size in [1, 3, 7, 64] {
            for threads in [1, 2, 5] {
                let (mut b, fleet) = small_engine(shard_size);
                for _ in 0..25 {
                    b.tick(&fleet, threads);
                }
                b.finish(&fleet, threads);
                assert_eq!(
                    a.digest(),
                    b.digest(),
                    "shard_size={shard_size} threads={threads}"
                );
                assert_eq!(a.session_digests(), b.session_digests());
            }
        }
    }

    #[test]
    fn batched_run_matches_tick_loop() {
        let (mut a, fleet) = small_engine(16);
        for _ in 0..33 {
            a.tick(&fleet, 1);
        }
        a.finish(&fleet, 1);
        for threads in [1, 4] {
            let (mut b, fleet) = small_engine(16);
            b.run(&fleet, 33, true, threads);
            assert_eq!(a.digest(), b.digest(), "threads={threads}");
            assert_eq!(a.decisions(), b.decisions());
            assert_eq!(a.ticks(), b.ticks());
            assert!(b.is_finished());
        }
    }

    #[test]
    fn placed_build_and_pinned_run_match_serial() {
        let (mut a, fleet) = small_engine(16);
        for _ in 0..33 {
            a.tick(&fleet, 1);
        }
        a.finish(&fleet, 1);
        let pattern = GopPattern::new(3, 9).unwrap();
        let class = SessionClass::new(SmootherParams::at_30fps(0.2, 1, 9).unwrap(), pattern);
        for threads in [1, 2, 5] {
            let mut b = SessionEngine::with_shard_size(vec![class.clone()], 16);
            b.add_sessions_placed(0, 50, threads);
            assert_eq!(b.session_count(), 50);
            b.run_pinned(&fleet, 33, true, threads);
            assert_eq!(a.digest(), b.digest(), "threads={threads}");
            assert_eq!(a.session_digests(), b.session_digests());
            assert_eq!(a.decisions(), b.decisions());
        }
    }

    #[test]
    fn compact_layout_reports_session_bytes() {
        let (engine, _) = small_engine(8);
        let cap = engine.class_ring_cap(0);
        let bytes = engine.state_bytes_per_session(0);
        // 34 hot + 10 cold scalar bytes plus the u32 ring slot.
        assert_eq!(bytes, 44 + 4 * cap);
        assert!(engine.window_bytes_per_session(0) > 0);
    }

    #[test]
    fn history_stays_inside_the_fixed_slot() {
        let (mut engine, fleet) = small_engine(8);
        let cap = engine.class_ring_cap(0);
        for _ in 0..500 {
            engine.tick(&fleet, 1);
            assert!(engine.max_retained() <= cap);
        }
        // The slot is O(H + N + K + D/τ) — nowhere near 500 pictures.
        assert!(cap < 128, "ring cap {cap}");
    }

    #[test]
    #[should_panic(expected = "tick after finish")]
    fn tick_after_finish_panics() {
        let (mut engine, fleet) = small_engine(8);
        engine.finish(&fleet, 1);
        engine.tick(&fleet, 1);
    }

    #[test]
    #[should_panic(expected = "before ticking")]
    fn late_add_panics() {
        let (mut engine, fleet) = small_engine(8);
        engine.tick(&fleet, 1);
        engine.add_sessions(0, 1);
    }
}
