//! Event-driven dynamic session engine: timing-wheel ticks,
//! heterogeneous clocks, and live churn.
//!
//! The lockstep [`SessionEngine`](crate::SessionEngine) advances every
//! session on one shared picture clock — each tick costs O(sessions
//! live) even when most sessions have no picture due, and the fleet is
//! fixed at start. This module adds the event-driven path alongside it:
//!
//! * **Per-session clocks.** Time is an integer *scheduler tick* (a
//!   [`ChurnSpec::ticks_per_sec`](crate::synthetic::ChurnSpec) base
//!   clock — 600 ticks/s divides evenly by 24/25/30/60 fps). Each
//!   [`DynamicClass`] carries its picture period τ in ticks; each
//!   session carries its own next-deadline and re-arms a period after
//!   every arrival.
//! * **Timing-wheel scheduling.** Every shard owns a
//!   [`smooth_core::TimingWheel`] holding its sessions' next arrivals,
//!   so advancing the fleet to tick `t` costs O(sessions *due*), not
//!   O(sessions *live*): [`DynamicEngine::advance_to`] drains each
//!   shard's due slots in deadline order (the wheel's non-decreasing
//!   deadline contract) and decided sessions re-arm into the wheel.
//! * **Arrival batching.** Sessions re-arm every
//!   [`ARRIVAL_BATCH`]-th picture (configurable down to strict
//!   per-arrival cadence via [`DynamicEngine::set_arrival_batch`]) and
//!   a popped session is fed every arrival due in one visit — the
//!   lockstep engine's session-major amortization carried over to the
//!   wheel, which is what holds the per-decision cost near the lockstep
//!   path's instead of paying the full random-access toll per picture.
//!   Decisions and digests are invariant in the batch setting (a
//!   decision consults at most its own `need`-length prefix however
//!   many arrivals are in hand — the same property the lockstep batch
//!   path pins), and every API boundary still observes tick-exact
//!   state: `advance_to` flushes sub-batch tails before returning, and
//!   a leave catches its own session up first.
//! * **Live churn.** [`DynamicEngine::join`] and
//!   [`DynamicEngine::leave`] add and remove sessions mid-run. Shards
//!   keep the PR 6 compact struct-of-arrays store and recycle freed
//!   slots through a LIFO free list — the history ring slot is zeroed
//!   on reuse and the lookahead window reset, so a recycled slot is
//!   indistinguishable from a fresh one (pinned by proptests). Wheel
//!   entries of departed sessions die lazily via a per-slot generation
//!   counter.
//! * **Snapshot / restore.** [`DynamicEngine::snapshot`] captures one
//!   session's hot+cold state as a self-contained [`SessionSnapshot`];
//!   [`DynamicEngine::restore`] installs it into any engine with the
//!   same classes. [`DynamicEngine::rebalance`] migrates sessions
//!   between shards with it, and [`DynamicEngine::checkpoint`] /
//!   [`DynamicEngine::restore_checkpoint`] capture the whole fleet for
//!   crash recovery — all bit-identical to the uninterrupted run
//!   (the lookahead window rebuilds from retained history exactly;
//!   pinned by the churn proptests).
//!
//! **Determinism.** Sessions are independent state machines; shards are
//! advanced sequentially within [`drain`](DynShard) and fanned out with
//! index-ordered [`smooth_sweep::par_map`], and the fleet digest folds
//! per-session digests in session-id order — so a churn trace replays
//! bit-identically for any thread count, and against the brute-force
//! scan-all reference ([`crate::scanref`]), which is frozen as the
//! proptest oracle.

use std::collections::VecDeque;
use std::sync::Mutex;

use smooth_core::{
    decide_live, prunable_prefix, BlockLanes, LiveCursor, LiveParams, LookaheadWindow,
    PictureSchedule, SizeHistory, TimingWheel,
};
use smooth_sweep::par_map;

use crate::livemux::{LiveMux, LiveMuxStats};
use crate::synthetic::{ChurnEvent, ChurnTrace};
use crate::{fnv, ClassInfo, EngineError, SessionClass, SizeSource, FNV_OFFSET};

/// A session class bound to a picture period on the scheduler clock:
/// the event-driven analogue of handing a [`SessionClass`] to the
/// lockstep engine, plus the class's own τ in integer ticks (e.g. 25
/// ticks at 600 ticks/s for a 24 fps stream).
#[derive(Debug, Clone)]
pub struct DynamicClass {
    /// Smoother configuration shared by the class's sessions.
    pub class: SessionClass,
    /// Picture period τ in scheduler ticks (≥ 1).
    pub period_ticks: u64,
}

/// Scheduler ticks per simulated second used by the standard mixes and
/// the churn bench: 600 divides evenly by 24, 25, 30, and 60 fps, so
/// every broadcast picture clock lands on integer ticks.
pub const TICKS_PER_SEC: u64 = 600;

/// The standard class for an `fps` picture clock on the
/// [`TICKS_PER_SEC`] scheduler: the paper-recommended `D = 0.2 s`,
/// `K = 1`, `H = N` at `τ = 1/fps` on the (3, 12) GOP pattern.
///
/// # Panics
///
/// Panics if `fps` does not divide [`TICKS_PER_SEC`] (the mix helpers
/// exist for the broadcast clocks 24/25/30/60).
pub fn fps_class(fps: u64) -> DynamicClass {
    assert!(
        fps > 0 && TICKS_PER_SEC % fps == 0,
        "{fps} fps does not land on integer ticks at {TICKS_PER_SEC} ticks/s"
    );
    let pattern = smooth_mpeg::GopPattern::new(3, 12).expect("(3,12) is valid");
    let params = smooth_core::SmootherParams::new(0.2, 1, 12, 1.0 / fps as f64)
        .expect("0.2 s is feasible at every broadcast clock");
    DynamicClass {
        class: SessionClass::new(params, pattern),
        period_ticks: TICKS_PER_SEC / fps,
    }
}

/// Where a live session sits: shard index and shard-local slot.
/// `shard == u32::MAX` marks a departed (or migrating) session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Locator {
    shard: u32,
    slot: u32,
}

const GONE: Locator = Locator {
    shard: u32::MAX,
    slot: u32::MAX,
};

/// Free-slot sentinel in `class_of`.
const FREE: u16 = u16::MAX;

/// How many due-list entries ahead of the one being processed
/// [`drain_until`](DynShard::drain_until) pulls toward cache. Deep
/// enough to cover a line fill behind one arrival's work; past ~8 the
/// prefetched lines start aging out before use.
const PREFETCH_DUE: usize = 4;

/// Default arrival batch: sessions are armed on the wheel every
/// `ARRIVAL_BATCH`-th picture and fed the accumulated arrivals in one
/// visit (see [`DynamicEngine::set_arrival_batch`]). 16 keeps the
/// scheduling quantum sub-second on the broadcast clocks (0.27 s at
/// 60 fps to 0.67 s at 24 fps on the 600 tick/s grid)
/// while amortizing the per-visit slot walk far enough to clear the
/// churn throughput bar; digests are invariant in this knob (pinned by
/// the churn proptests), so it trades only *when* within a span a
/// decision is computed, never what is decided.
pub const ARRIVAL_BATCH: u64 = 16;

/// How much trace time [`DynamicEngine::run_trace_fused`] lets rate
/// events buffer in the mux lanes between [`LiveMux::ingest`] passes:
/// half a simulated second. Each ingest pays an O(live sessions) fence
/// scan, so ingesting at every event tick would swamp a churny trace;
/// half a second keeps the buffered-event footprint modest while
/// holding the scan cost to a few passes per simulated second. The
/// cadence is driven by trace time, never by wall time or thread
/// count, so fused digests stay deterministic.
pub const MUX_INGEST_SPAN_TICKS: u64 = TICKS_PER_SEC / 2;

/// One session's complete smoother state, self-contained: everything
/// needed to continue its schedule bit-identically in another slot,
/// shard, or engine (same classes). The lookahead window is *not*
/// captured — it is a cache over the retained history and rebuilds
/// exactly (the same reset the compaction path relies on).
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSnapshot {
    /// Engine-assigned session id.
    pub sid: u64,
    /// Size-source stream id (decoupled from `sid` so a replay engine
    /// can feed the same stream to a different session id).
    pub stream: u64,
    /// Class id.
    pub class: u16,
    /// Decisions already emitted (next undecided picture index).
    pub decided: u32,
    /// High-water mark of the visible prefix consulted so far.
    pub watermark: u32,
    /// Logical index of the first retained size.
    pub base: u32,
    /// Departure time of the last decided picture.
    pub depart: f64,
    /// Rate of the last decided picture (meaningful when `decided > 0`).
    pub prev_rate: f64,
    /// FNV-1a decision digest so far.
    pub digest: u64,
    /// Next not-yet-fed picture arrival, in scheduler ticks (snapshots
    /// are taken at tick-exact boundaries, so this is always past the
    /// capturing engine's position).
    pub next_arrival: u64,
    /// Retained history sizes (logical pictures `base ..`).
    pub history: Vec<u32>,
}

/// A whole-fleet checkpoint: the scheduler position, every live
/// session's [`SessionSnapshot`], and the digests of already-departed
/// sessions — enough to rebuild an engine that continues bit-identically
/// ([`DynamicEngine::restore_checkpoint`]).
#[derive(Debug, Clone, PartialEq)]
pub struct EngineCheckpoint {
    /// Scheduler position (ticks) at capture.
    pub now: u64,
    /// Session ids handed out so far.
    pub joined: u64,
    /// Total decisions made so far (so a recovered engine's
    /// [`decisions`](DynamicEngine::decisions) keeps counting from the
    /// interrupted run's total).
    pub decisions: u64,
    /// Live sessions, in session-id order.
    pub sessions: Vec<SessionSnapshot>,
    /// `(sid, digest)` of departed sessions, in session-id order.
    pub retired: Vec<(u64, u64)>,
}

/// One slot's complete per-event scalar state, packed into exactly one
/// cache line. The lockstep shard keeps these as parallel arrays and
/// streams them session-major, so the prefetcher hides the walks; the
/// wheel path visits slots in *deadline* order — effectively random
/// within the shard — and with parallel arrays every arrival paid ~9
/// scattered demand misses before any smoothing work started. One
/// 64-byte header turns those into a single line fill.
#[repr(C, align(64))]
struct SlotHot {
    decided: u32,
    watermark: u32,
    /// Logical index of the first retained size.
    base: u32,
    /// Bumped every time the slot is freed; a wheel item whose
    /// generation does not match is a departed session's stale entry
    /// (lazy delete).
    gen: u32,
    /// Retained history length.
    len: u16,
    /// Class id, or [`FREE`] for a recycled slot.
    class_of: u16,
    depart: f64,
    prev_rate: f64,
    digest: u64,
    /// Size-source stream id fed to [`SizeSource::size`].
    stream: u64,
    /// Next picture arrival of the slot's occupant, in ticks.
    next_arrival: u64,
}

/// The header must stay exactly one cache line — adding a field here
/// silently doubles the stride via the alignment, so fail loudly.
const _: () = assert!(std::mem::size_of::<SlotHot>() == 64);

impl SlotHot {
    fn fresh() -> Self {
        SlotHot {
            decided: 0,
            watermark: 0,
            base: 0,
            gen: 0,
            len: 0,
            class_of: FREE,
            depart: 0.0,
            prev_rate: 0.0,
            digest: FNV_OFFSET,
            stream: 0,
            next_arrival: 0,
        }
    }
}

/// One dynamic shard: the PR 6 compact store (one fixed `u32` ring slot
/// per session) with the per-slot scalars packed into a one-line
/// [`SlotHot`] header, extended with slot recycling and a per-shard
/// timing wheel. Slot `j`'s ring lives at `j * slot_cap` — every slot is
/// `slot_cap` (the widest class's `ring_cap`) so a freed slot can be
/// recycled by *any* class.
struct DynShard {
    /// Per-slot scalar headers, one cache line each.
    hot: Vec<SlotHot>,
    /// Engine session id of the slot's occupant (slots are recycled, so
    /// unlike the lockstep shard the id cannot be derived from `j`).
    /// Cold: only snapshots and diagnostics read it.
    sid: Vec<u64>,
    /// Flat history ring, one `slot_cap` slot per session.
    ring: Vec<u32>,
    windows: Vec<LookaheadWindow>,
    /// Recycled slots, LIFO.
    free: Vec<u32>,
    /// Per-shard arrival wheel; items pack `(gen << 32) | slot`.
    wheel: TimingWheel,
    /// `pop_due` scratch.
    due: Vec<u64>,
    /// Widened staging tail (see the lockstep `Shard`).
    stage: Vec<u64>,
    lanes: BlockLanes,
    decisions: u64,
    live: usize,
    slot_cap: usize,
}

impl DynShard {
    fn new(slot_cap: usize) -> Self {
        DynShard {
            hot: Vec::new(),
            sid: Vec::new(),
            ring: Vec::new(),
            windows: Vec::new(),
            free: Vec::new(),
            wheel: TimingWheel::new(),
            due: Vec::new(),
            stage: Vec::new(),
            lanes: BlockLanes::default(),
            decisions: 0,
            live: 0,
            slot_cap,
        }
    }

    /// Slots ever allocated (live + free) — the shard's resident
    /// footprint, which recycling keeps bounded by its peak occupancy.
    fn allocated(&self) -> usize {
        self.hot.len()
    }

    /// Grabs a slot: recycles from the free list (zeroing the history
    /// ring slot, so a recycled slot starts from the same bytes as a
    /// fresh one) or appends new arrays.
    fn alloc(&mut self) -> u32 {
        if let Some(slot) = self.free.pop() {
            let j = slot as usize;
            let off = j * self.slot_cap;
            self.ring[off..off + self.slot_cap].fill(0);
            slot
        } else {
            let j = self.allocated();
            self.hot.push(SlotHot::fresh());
            self.sid.push(0);
            self.ring.resize(self.ring.len() + self.slot_cap, 0);
            self.windows.push(LookaheadWindow::new());
            u32::try_from(j).expect("shard slot fits u32")
        }
    }

    /// Installs a fresh session into an allocated slot, with its first
    /// arrival at `first_arrival` and its wheel entry armed at `arm`
    /// (the batch boundary `first_arrival + (batch − 1) · τ`).
    fn install(
        &mut self,
        slot: u32,
        sid: u64,
        stream: u64,
        class_id: u16,
        first_arrival: u64,
        arm: u64,
    ) {
        let j = slot as usize;
        let h = &mut self.hot[j];
        debug_assert_eq!(h.class_of, FREE, "installing into an occupied slot");
        // The generation survives the reset — it is the lazy-delete
        // witness for wheel items armed by previous occupants.
        let gen = h.gen;
        *h = SlotHot::fresh();
        h.gen = gen;
        h.class_of = class_id;
        h.stream = stream;
        h.next_arrival = first_arrival;
        self.sid[j] = sid;
        self.windows[j].reset();
        self.live += 1;
        self.wheel
            .schedule(arm, (u64::from(gen) << 32) | u64::from(slot));
    }

    /// Installs a snapshot into an allocated slot: scalars and retained
    /// history are copied back verbatim; the lookahead window rebuilds
    /// from that history (exactly — the compaction-reset property), so
    /// the continued schedule is bit-identical.
    fn install_snapshot(&mut self, slot: u32, snap: &SessionSnapshot, arm: u64) {
        let j = slot as usize;
        let off = j * self.slot_cap;
        let h = &mut self.hot[j];
        debug_assert_eq!(h.class_of, FREE, "installing into an occupied slot");
        h.class_of = snap.class;
        h.stream = snap.stream;
        h.decided = snap.decided;
        h.len = snap.history.len() as u16;
        h.watermark = snap.watermark;
        h.depart = snap.depart;
        h.prev_rate = snap.prev_rate;
        h.digest = snap.digest;
        h.base = snap.base;
        h.next_arrival = snap.next_arrival;
        let gen = h.gen;
        self.sid[j] = snap.sid;
        self.ring[off..off + snap.history.len()].copy_from_slice(&snap.history);
        self.windows[j].reset();
        self.live += 1;
        self.wheel
            .schedule(arm, (u64::from(gen) << 32) | u64::from(slot));
    }

    /// Captures slot `j` as a [`SessionSnapshot`].
    fn snapshot_slot(&self, j: usize) -> SessionSnapshot {
        let h = &self.hot[j];
        debug_assert_ne!(h.class_of, FREE, "snapshot of a free slot");
        let off = j * self.slot_cap;
        let len = h.len as usize;
        SessionSnapshot {
            sid: self.sid[j],
            stream: h.stream,
            class: h.class_of,
            decided: h.decided,
            watermark: h.watermark,
            base: h.base,
            depart: h.depart,
            prev_rate: h.prev_rate,
            digest: h.digest,
            next_arrival: h.next_arrival,
            history: self.ring[off..off + len].to_vec(),
        }
    }

    /// Frees slot `j`: bumps the generation (the slot's pending wheel
    /// item dies lazily) and pushes it onto the free list.
    fn free_slot(&mut self, j: usize) {
        let h = &mut self.hot[j];
        debug_assert_ne!(h.class_of, FREE, "double free");
        h.class_of = FREE;
        h.gen = h.gen.wrapping_add(1);
        self.live -= 1;
        self.free.push(j as u32);
    }

    /// Runs slot `j` through `pushes` picture arrivals plus, when
    /// `ended` is set, the end-of-stream drain — mirroring the lockstep
    /// `Shard::run_session` body exactly (same staging, same push/decide
    /// interleave, same forced and lazy prune, same digest fold), so a
    /// dynamic session's schedule is bit-identical to a lockstep session
    /// fed the same sizes — for *any* split of its arrivals into visits:
    /// `decide_live` caps what a decision may consult at the decision's
    /// own `need`, never at everything pushed, so feeding a batch of
    /// arrivals decides exactly what feeding them one visit apiece would
    /// (the property the lockstep engine's batch path already pins).
    /// Every decision is also offered to `sink` (the lockstep shard's
    /// fused-mux hook; pass a no-op closure when nothing listens).
    /// Returns the decisions made.
    fn step_slot<S: SizeSource>(
        &mut self,
        j: usize,
        classes: &[ClassInfo],
        source: &S,
        pushes: u64,
        ended: bool,
        sink: &mut impl FnMut(u64, &PictureSchedule),
    ) -> u64 {
        let h = &self.hot[j];
        let info = &classes[h.class_of as usize];
        let off = j * self.slot_cap;
        let cap = info.ring_cap;
        let n = info.class.pattern.n();
        let stream = h.stream;
        let sid = self.sid[j];

        let mut cursor = LiveCursor {
            decided: h.decided as usize,
            depart: h.depart,
            prev_rate: if h.decided > 0 {
                Some(h.prev_rate)
            } else {
                None
            },
            watermark: h.watermark as usize,
        };
        let mut base = h.base as usize;
        let mut len = h.len as usize;
        let mut digest = h.digest;
        let mut made = 0u64;

        self.stage.clear();
        self.stage
            .extend(self.ring[off..off + len].iter().map(|&s| u64::from(s)));

        let cfg = LiveParams {
            params: &info.class.params,
            pattern: info.class.pattern,
            estimator: &info.class.estimator,
            selection: info.class.selection,
            total: None,
        };

        let steps = pushes + u64::from(ended);
        for t in 0..steps {
            let live = t < pushes;
            if live {
                if len == cap {
                    let cut = prunable_prefix(&cursor, Some(info.hist), n);
                    let drop = cut.saturating_sub(base);
                    assert!(
                        drop > 0,
                        "session {} history slot full ({cap} sizes) with nothing prunable",
                        self.sid[j]
                    );
                    self.ring.copy_within(off + drop..off + len, off);
                    self.stage.copy_within(drop..len, 0);
                    len -= drop;
                    self.stage.truncate(len);
                    base = cut;
                    self.windows[j].reset();
                }
                let size = source.size(stream, (base + len) as u64);
                self.ring[off + len] = u32::try_from(size).unwrap_or_else(|_| {
                    panic!("picture size {size} bits exceeds the engine's u32 size word")
                });
                self.stage.push(size);
                len += 1;
            }
            let tail_drain = !live;
            loop {
                let history = SizeHistory {
                    base,
                    tail: &self.stage[..len],
                };
                let Some(decision) = decide_live(
                    &cfg,
                    history,
                    tail_drain,
                    &mut cursor,
                    &mut self.windows[j],
                    &mut self.lanes,
                ) else {
                    break;
                };
                digest = fnv(digest, decision.index as u64);
                digest = fnv(digest, decision.start.to_bits());
                digest = fnv(digest, decision.rate.to_bits());
                digest = fnv(digest, decision.depart.to_bits());
                sink(sid, &decision);
                made += 1;
            }

            // Lazy prune, as in the lockstep path.
            let cut = prunable_prefix(&cursor, Some(info.hist), n);
            let drop = cut.saturating_sub(base);
            if drop > 0 && drop >= len / 2 {
                self.ring.copy_within(off + drop..off + len, off);
                self.stage.copy_within(drop..len, 0);
                len -= drop;
                self.stage.truncate(len);
                base = cut;
                self.windows[j].reset();
            }
        }

        let h = &mut self.hot[j];
        h.decided = u32::try_from(cursor.decided).expect("picture index fits u32");
        h.watermark = u32::try_from(cursor.watermark).expect("watermark fits u32");
        h.base = u32::try_from(base).expect("history base fits u32");
        h.len = len as u16;
        h.depart = cursor.depart;
        if let Some(r) = cursor.prev_rate {
            h.prev_rate = r;
        }
        h.digest = digest;
        made
    }

    /// Ends slot `j`'s stream: feeds its not-yet-fed arrivals up to and
    /// including tick `until` (batched visits leave up to `batch − 1`
    /// outstanding), drains the tail decisions, records the final
    /// digest, and frees the slot. Returns the digest.
    fn retire<S: SizeSource>(
        &mut self,
        j: usize,
        classes: &[ClassInfo],
        periods: &[u64],
        source: &S,
        until: u64,
        sink: &mut impl FnMut(u64, &PictureSchedule),
    ) -> u64 {
        let h = &self.hot[j];
        let na = h.next_arrival;
        let period = periods[h.class_of as usize];
        let pushes = if na <= until {
            (until - na) / period + 1
        } else {
            0
        };
        let made = self.step_slot(j, classes, source, pushes, true, sink);
        self.decisions += made;
        let digest = self.hot[j].digest;
        self.free_slot(j);
        digest
    }

    /// Pulls slot `j`'s working set toward cache while an earlier due
    /// slot is still being processed: the one-line scalar header, the
    /// head of its history ring, and the window's heap buffer (the
    /// lockstep shard's `prefetch` counterpart, but keyed by the due
    /// list — deadline order is effectively random slot order, so
    /// without this every arrival stalls on serial demand misses).
    #[inline(always)]
    fn prefetch_slot(&self, j: usize) {
        if let Some(h) = self.hot.get(j) {
            std::hint::black_box(h.decided);
            std::hint::black_box(self.ring.get(j * self.slot_cap).copied());
            self.windows[j].prewarm();
        }
    }

    /// Drains every wheel entry with deadline ≤ `until` in deadline
    /// order: a popped session is fed all of its arrivals up to the
    /// entry's deadline in one visit (up to `batch` of them — see
    /// [`DynamicEngine::set_arrival_batch`]) and re-armed `batch`
    /// arrivals out. The wheel yields deadlines non-decreasing; within a
    /// deadline, due slots are sorted ascending — sessions are
    /// independent, so this order changes no digest bit, but consecutive
    /// slots keep the store's streaming locality (churn bursts place
    /// whole runs of slots on one phase).
    fn drain_until<S: SizeSource>(
        &mut self,
        classes: &[ClassInfo],
        periods: &[u64],
        source: &S,
        until: u64,
        batch: u64,
        sink: &mut impl FnMut(u64, &PictureSchedule),
    ) {
        let mut due = std::mem::take(&mut self.due);
        loop {
            due.clear();
            let Some(deadline) = self.wheel.pop_due(until, &mut due) else {
                break;
            };
            due.sort_unstable_by_key(|&item| item & 0xffff_ffff);
            for (k, &item) in due.iter().enumerate() {
                if let Some(&ahead) = due.get(k + PREFETCH_DUE) {
                    self.prefetch_slot((ahead & 0xffff_ffff) as usize);
                }
                let j = (item & 0xffff_ffff) as usize;
                let g = (item >> 32) as u32;
                if self.hot[j].class_of == FREE || self.hot[j].gen != g {
                    continue; // stale entry of a departed session
                }
                let period = periods[self.hot[j].class_of as usize];
                let na = self.hot[j].next_arrival;
                if na > deadline {
                    // A flush already fed past this entry's deadline;
                    // fall back onto the session's batch cadence.
                    self.wheel.schedule(na + (batch - 1) * period, item);
                    continue;
                }
                debug_assert_eq!(
                    (deadline - na) % period,
                    0,
                    "wheel deadline off the session's arrival grid"
                );
                let pushes = (deadline - na) / period + 1;
                let made = self.step_slot(j, classes, source, pushes, false, sink);
                self.decisions += made;
                self.hot[j].next_arrival = deadline + period;
                self.wheel.schedule(deadline + batch * period, item);
            }
        }
        self.due = due;
    }

    /// Feeds every live slot's outstanding arrivals up to and including
    /// tick `until`, in slot order (streaming — the lockstep access
    /// pattern). Wheel entries are left armed; a later pop whose
    /// deadline this flush overtook re-arms without feeding. Together
    /// with [`drain_until`](Self::drain_until) this makes a span exact:
    /// drain feeds whole batches as they come due, flush feeds each
    /// session's sub-batch tail.
    fn flush_until<S: SizeSource>(
        &mut self,
        classes: &[ClassInfo],
        periods: &[u64],
        source: &S,
        until: u64,
        sink: &mut impl FnMut(u64, &PictureSchedule),
    ) {
        for j in 0..self.allocated() {
            self.prefetch_slot(j + 1);
            let h = &self.hot[j];
            if h.class_of == FREE {
                continue;
            }
            let na = h.next_arrival;
            if na > until {
                continue;
            }
            let period = periods[h.class_of as usize];
            let pushes = (until - na) / period + 1;
            let made = self.step_slot(j, classes, source, pushes, false, sink);
            self.decisions += made;
            self.hot[j].next_arrival = na + pushes * period;
        }
    }

    /// End-of-run drain of every live slot, in slot order (sessions are
    /// independent; digests fold by session id at the engine).
    fn finish_all<S: SizeSource>(
        &mut self,
        classes: &[ClassInfo],
        source: &S,
        sink: &mut impl FnMut(u64, &PictureSchedule),
    ) {
        for j in 0..self.allocated() {
            if self.hot[j].class_of != FREE {
                self.prefetch_slot(j + 1);
                let made = self.step_slot(j, classes, source, 0, true, sink);
                self.decisions += made;
            }
        }
    }
}

/// The event-driven session engine: heterogeneous per-class picture
/// clocks, timing-wheel scheduling (per-tick work O(sessions due)), and
/// live join/leave with slot recycling. Lives alongside the lockstep
/// [`SessionEngine`](crate::SessionEngine); both drive the same
/// [`smooth_core::decide_live`] core, so a session's schedule depends
/// only on its stream and class, never on which engine ran it.
///
/// ```
/// use smooth_core::SmootherParams;
/// use smooth_engine::{DynamicClass, DynamicEngine, SessionClass, SyntheticFleet};
/// use smooth_mpeg::GopPattern;
///
/// let pattern = GopPattern::new(3, 9).unwrap();
/// let class = DynamicClass {
///     class: SessionClass::new(SmootherParams::recommended(9), pattern),
///     period_ticks: 20, // 30 fps on the 600 ticks/s clock
/// };
/// let fleet = SyntheticFleet { seed: 7, pattern };
/// let mut engine = DynamicEngine::new(vec![class], 100, 16).unwrap();
/// let a = engine.join(0, 42, 0).unwrap(); // stream 42, phase 0
/// engine.advance_to(&fleet, 1200, 1); // two seconds
/// engine.leave(a, &fleet).unwrap(); // final digest recorded
/// assert!(engine.decisions() >= 60);
/// ```
pub struct DynamicEngine {
    classes: Vec<ClassInfo>,
    periods: Vec<u64>,
    shards: Vec<Mutex<DynShard>>,
    shard_size: usize,
    capacity: usize,
    slot_cap: usize,
    now: u64,
    live: usize,
    /// Arrivals fed per wheel visit ([`set_arrival_batch`]
    /// (Self::set_arrival_batch)).
    batch: u64,
    /// Slot of each session ever joined, by sid ([`GONE`] once departed).
    locator: Vec<Locator>,
    /// Final digest of each departed session, by sid (live sessions'
    /// digests are read from their slots).
    digests: Vec<u64>,
    /// Decisions counted by the engine this one was recovered from.
    recovered_decisions: u64,
    /// Round-robin placement cursor (deterministic).
    rr: usize,
    ended: bool,
}

impl DynamicEngine {
    /// An engine over `classes` with room for `capacity` concurrent
    /// sessions in shards of `shard_size`. Validates every compact-store
    /// width ([`EngineError`]) plus the per-class periods.
    pub fn new(
        classes: Vec<DynamicClass>,
        capacity: usize,
        shard_size: usize,
    ) -> Result<Self, EngineError> {
        if classes.is_empty() {
            return Err(EngineError::NoClasses);
        }
        if shard_size == 0 {
            return Err(EngineError::ZeroShardSize);
        }
        if capacity == 0 {
            return Err(EngineError::ZeroCapacity);
        }
        if classes.len() > 1 << 16 {
            return Err(EngineError::TooManyClasses {
                classes: classes.len(),
            });
        }
        let mut infos = Vec::with_capacity(classes.len());
        let mut periods = Vec::with_capacity(classes.len());
        for (i, c) in classes.into_iter().enumerate() {
            if c.period_ticks == 0 {
                return Err(EngineError::ZeroPeriod { class: i });
            }
            periods.push(c.period_ticks);
            infos.push(ClassInfo::try_new(c.class)?);
        }
        // Every slot is the widest class's ring_cap so recycling works
        // across classes.
        let slot_cap = infos.iter().map(|c| c.ring_cap).max().expect("non-empty");
        let shard_count = capacity.div_ceil(shard_size);
        let shards = (0..shard_count)
            .map(|_| Mutex::new(DynShard::new(slot_cap)))
            .collect();
        Ok(DynamicEngine {
            classes: infos,
            periods,
            shards,
            shard_size,
            capacity,
            slot_cap,
            now: 0,
            live: 0,
            batch: ARRIVAL_BATCH,
            locator: Vec::new(),
            digests: Vec::new(),
            recovered_decisions: 0,
            rr: 0,
            ended: false,
        })
    }

    /// Scheduler position, in ticks.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Arrivals fed per wheel visit (the scheduling quantum).
    pub fn arrival_batch(&self) -> u64 {
        self.batch
    }

    /// Sets how many arrivals a session accumulates between wheel
    /// visits: sessions re-arm every `batch`-th picture, a popped
    /// session is fed everything due in one visit, and every API
    /// boundary ([`advance_to`](Self::advance_to) return, [`leave`]
    /// (Self::leave), snapshots, digests) still observes tick-exact
    /// state. Decisions and digests are invariant in this knob
    /// ([`decide_live`] caps each decision at its own `need`, so batch
    /// splits cannot change what is decided — the churn proptests pin
    /// this); it only sets how much per-slot work each visit amortizes.
    /// `1` recovers the strict one-arrival-per-visit cadence.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is 0 or over 2²⁰ (keeping batch-deadline
    /// arithmetic far from `u64` wraparound).
    pub fn set_arrival_batch(&mut self, batch: u64) {
        assert!(
            batch > 0 && batch <= 1 << 20,
            "arrival batch must be in 1 ..= 2^20"
        );
        self.batch = batch;
    }

    /// Live session count.
    pub fn live_sessions(&self) -> usize {
        self.live
    }

    /// Session ids handed out so far (live + departed).
    pub fn joined(&self) -> u64 {
        self.locator.len() as u64
    }

    /// Concurrent-session capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether [`finish`](Self::finish) has run.
    pub fn is_finished(&self) -> bool {
        self.ended
    }

    /// Total picture decisions made across all sessions ever —
    /// including, after a [`restore_checkpoint`]
    /// (Self::restore_checkpoint), the interrupted run's count.
    pub fn decisions(&self) -> u64 {
        self.recovered_decisions
            + self
                .shards
                .iter()
                .map(|s| s.lock().expect("shard poisoned").decisions)
                .sum::<u64>()
    }

    /// Session slots resident across all shards (live + recycled). The
    /// free list bounds this by each shard's *peak* occupancy — churn
    /// reuses slots instead of growing the arrays, the bounded-memory
    /// property the churn proptests assert.
    pub fn allocated_slots(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard poisoned").allocated())
            .sum()
    }

    /// Resident array bytes per session slot under the dynamic compact
    /// layout: the one-cache-line scalar header, the cold session id,
    /// and the uniform `u32` history slot (`slot_cap` — the widest
    /// class's `ring_cap`, so any class can recycle any slot).
    pub fn state_bytes_per_slot(&self) -> usize {
        use std::mem::size_of;
        size_of::<SlotHot>() + size_of::<u64>() + size_of::<u32>() * self.slot_cap
    }

    /// Peak retained history length across live sessions (diagnostics).
    pub fn max_retained(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                let sh = s.lock().expect("shard poisoned");
                sh.hot
                    .iter()
                    .filter(|h| h.class_of != FREE)
                    .map(|h| h.len as usize)
                    .max()
                    .unwrap_or(0)
            })
            .max()
            .unwrap_or(0)
    }

    /// Live sessions per shard (diagnostics / rebalance tests).
    pub fn shard_loads(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard poisoned").live)
            .collect()
    }

    /// Deterministic round-robin placement: the next shard (from the
    /// cursor) with a free slot. Placement is a pure function of the
    /// join/leave history, never of thread count.
    fn place(&mut self) -> Result<(usize, u32), EngineError> {
        if self.live >= self.capacity {
            return Err(EngineError::CapacityExhausted {
                capacity: self.capacity,
            });
        }
        let n = self.shards.len();
        for k in 0..n {
            let s = (self.rr + k) % n;
            let shard = self.shards[s].get_mut().expect("shard poisoned");
            if shard.live < self.shard_size {
                self.rr = (s + 1) % n;
                let slot = shard.alloc();
                return Ok((s, slot));
            }
        }
        unreachable!("live < capacity implies a shard has room");
    }

    /// Joins a new session of `class_id` reading stream `stream`, at the
    /// current scheduler position. Its first picture arrives `1 + phase
    /// mod τ` ticks from now and every τ ticks after. Returns the
    /// engine-assigned session id.
    pub fn join(&mut self, class_id: usize, stream: u64, phase: u64) -> Result<u64, EngineError> {
        assert!(!self.ended, "join after finish");
        if class_id >= self.classes.len() {
            return Err(EngineError::UnknownClass { class: class_id });
        }
        let (s, slot) = self.place()?;
        let sid = self.locator.len() as u64;
        let period = self.periods[class_id];
        let first = self.now + 1 + (phase % period);
        self.shards[s].get_mut().expect("shard poisoned").install(
            slot,
            sid,
            stream,
            class_id as u16,
            first,
            first + (self.batch - 1) * period,
        );
        self.locator.push(Locator {
            shard: s as u32,
            slot,
        });
        self.digests.push(FNV_OFFSET);
        self.live += 1;
        Ok(sid)
    }

    /// Departs session `sid` at the current scheduler position: feeds
    /// its arrivals up to the position (batched visits may have left a
    /// sub-batch tail outstanding), drains its tail decisions
    /// (end-of-stream), records its final digest, and recycles its slot.
    pub fn leave<S: SizeSource>(&mut self, sid: u64, source: &S) -> Result<(), EngineError> {
        self.leave_mux(sid, source, None)
    }

    /// [`leave`](Self::leave) with an optional fused aggregator: the
    /// departing session's catch-up and tail decisions stream into the
    /// mux lane before the caller closes it.
    fn leave_mux<S: SizeSource>(
        &mut self,
        sid: u64,
        source: &S,
        mux: Option<&LiveMux>,
    ) -> Result<(), EngineError> {
        assert!(!self.ended, "leave after finish");
        let loc = *self
            .locator
            .get(sid as usize)
            .ok_or(EngineError::UnknownSession { sid })?;
        if loc == GONE {
            return Err(EngineError::UnknownSession { sid });
        }
        let classes = &self.classes;
        let periods = &self.periods;
        let now = self.now;
        let digest = self.shards[loc.shard as usize]
            .get_mut()
            .expect("shard poisoned")
            .retire(
                loc.slot as usize,
                classes,
                periods,
                source,
                now,
                &mut |s, d| {
                    if let Some(m) = mux {
                        m.decision_shared(s, d);
                    }
                },
            );
        self.digests[sid as usize] = digest;
        self.locator[sid as usize] = GONE;
        self.live -= 1;
        Ok(())
    }

    /// Advances the fleet to tick `until`: every shard drains its due
    /// wheel entries in deadline order (whole arrival batches) and then
    /// feeds each session's sub-batch tail, fanned over `threads`
    /// workers (bit-identical for any thread count — shards are disjoint
    /// and collected in index order). On return every arrival ≤ `until`
    /// is decided, whatever the batch setting.
    pub fn advance_to<S: SizeSource>(&mut self, source: &S, until: u64, threads: usize) {
        self.advance_mux(source, until, threads, None);
    }

    /// [`advance_to`](Self::advance_to) with an optional fused
    /// aggregator receiving every decision as it is made.
    fn advance_mux<S: SizeSource>(
        &mut self,
        source: &S,
        until: u64,
        threads: usize,
        mux: Option<&LiveMux>,
    ) {
        self.drain_mux(source, until, threads, mux);
        let classes = &self.classes;
        let periods = &self.periods;
        let shards = &self.shards;
        let idx: Vec<usize> = (0..shards.len()).collect();
        par_map(threads, &idx, |_, &s| {
            let mut shard = shards[s].lock().expect("shard poisoned");
            shard.flush_until(classes, periods, source, until, &mut |sid, d| {
                if let Some(m) = mux {
                    m.decision_shared(sid, d);
                }
            });
        });
    }

    /// The wheel-only half of [`advance_to`](Self::advance_to): arrivals
    /// are fed as whole batches come due, but a session's sub-batch tail
    /// stays outstanding (its `next_arrival` tracks exactly what has
    /// been fed). [`run_trace`](Self::run_trace) interleaves this with
    /// churn — a leave catches its own session up, and sessions never
    /// interact, so deferring other sessions' tails changes no digest
    /// bit — and settles everything with one streaming flush at the
    /// horizon.
    fn drain_mux<S: SizeSource>(
        &mut self,
        source: &S,
        until: u64,
        threads: usize,
        mux: Option<&LiveMux>,
    ) {
        assert!(!self.ended, "advance after finish");
        assert!(until >= self.now, "scheduler time runs forward");
        let classes = &self.classes;
        let periods = &self.periods;
        let batch = self.batch;
        let shards = &self.shards;
        let idx: Vec<usize> = (0..shards.len()).collect();
        par_map(threads, &idx, |_, &s| {
            let mut shard = shards[s].lock().expect("shard poisoned");
            shard.drain_until(classes, periods, source, until, batch, &mut |sid, d| {
                if let Some(m) = mux {
                    m.decision_shared(sid, d);
                }
            });
        });
        self.now = until;
    }

    /// Ends every live session's stream and drains the tail decisions.
    /// Slots are kept (digests stay readable); the engine only reports
    /// afterwards.
    pub fn finish<S: SizeSource>(&mut self, source: &S, threads: usize) {
        self.finish_mux(source, threads, None);
    }

    fn finish_mux<S: SizeSource>(&mut self, source: &S, threads: usize, mux: Option<&LiveMux>) {
        assert!(!self.ended, "finish twice");
        // Public boundaries leave nothing outstanding, but settle any
        // sub-batch tails before ending streams all the same.
        self.advance_mux(source, self.now, threads, mux);
        let classes = &self.classes;
        let shards = &self.shards;
        let idx: Vec<usize> = (0..shards.len()).collect();
        par_map(threads, &idx, |_, &s| {
            let mut shard = shards[s].lock().expect("shard poisoned");
            shard.finish_all(classes, source, &mut |sid, d| {
                if let Some(m) = mux {
                    m.decision_shared(sid, d);
                }
            });
        });
        self.ended = true;
    }

    /// Replays a [`ChurnTrace`]: between event ticks the wheel advances
    /// the fleet; at each event tick, joins and leaves apply in trace
    /// order *before* that tick's arrivals (the scan reference follows
    /// the same rule). Finally advances to the trace horizon. Returns
    /// the decisions made.
    pub fn run_trace<S: SizeSource>(
        &mut self,
        source: &S,
        trace: &ChurnTrace,
        threads: usize,
    ) -> Result<u64, EngineError> {
        let before = self.decisions();
        let mut i = 0;
        while i < trace.events.len() {
            let t = trace.events[i].0;
            if t > self.now {
                // Wheel-only: sub-batch tails stay outstanding across
                // event ticks (leaves catch their own session up); the
                // closing advance_to settles the fleet at the horizon.
                self.drain_mux(source, t - 1, threads, None);
            }
            while i < trace.events.len() && trace.events[i].0 == t {
                match trace.events[i].1 {
                    ChurnEvent::Join {
                        class,
                        stream,
                        phase,
                    } => {
                        // Arm relative to the event tick, not the drain
                        // position (now may be t - 1).
                        let sid = self.join_at(t, class as usize, stream, phase)?;
                        let _ = sid;
                    }
                    ChurnEvent::Leave { sid } => self.leave(sid, source)?,
                }
                i += 1;
            }
        }
        self.advance_to(source, trace.horizon, threads);
        Ok(self.decisions() - before)
    }

    /// [`run_trace`](Self::run_trace) fused with a [`LiveMux`]: every
    /// decision streams into its session's mux lane as it is made, a
    /// join opens its lane at the session's first-arrival time on the
    /// scheduler clock, a leave closes it, and buffered rate events are
    /// ingested into the summation tree every
    /// [`MUX_INGEST_SPAN_TICKS`] of trace time — the wheel drain and
    /// the link aggregation advance together, with no materialized
    /// schedules and no end-of-run mux pass over the fleet.
    ///
    /// The engine and `mux` must agree on the fleet: a fresh engine
    /// with a [`LiveMux::with_joins`] aggregator sized to every session
    /// id the trace will issue, or an engine/mux pair restored from
    /// matching checkpoints ([`checkpoint`](Self::checkpoint) /
    /// [`LiveMux::checkpoint`]) taken at the same trace position.
    /// Call [`finish_fused`](Self::finish_fused) after the final trace
    /// to end still-live sessions and read the stats. Digests and mux
    /// bits are invariant in `threads`.
    ///
    /// Returns the decisions made, like [`run_trace`](Self::run_trace).
    pub fn run_trace_fused<S: SizeSource>(
        &mut self,
        source: &S,
        trace: &ChurnTrace,
        threads: usize,
        mux: &mut LiveMux,
    ) -> Result<u64, EngineError> {
        let before = self.decisions();
        let mut last_ingest = self.now;
        let mut i = 0;
        while i < trace.events.len() {
            let t = trace.events[i].0;
            if t > self.now {
                self.drain_mux(source, t - 1, threads, Some(mux));
                if self.now - last_ingest >= MUX_INGEST_SPAN_TICKS {
                    mux.ingest(threads, self.mux_clock_cap());
                    last_ingest = self.now;
                }
            }
            while i < trace.events.len() && trace.events[i].0 == t {
                match trace.events[i].1 {
                    ChurnEvent::Join {
                        class,
                        stream,
                        phase,
                    } => {
                        let sid = self.join_at(t, class as usize, stream, phase)?;
                        // The lane's local t = 0 is the session's first
                        // picture arrival on the scheduler clock.
                        let period = self.periods[class as usize];
                        let first = t + 1 + (phase % period);
                        mux.begin_session(sid, first as f64 / TICKS_PER_SEC as f64);
                    }
                    ChurnEvent::Leave { sid } => {
                        self.leave_mux(sid, source, Some(mux))?;
                        mux.finish_session(sid);
                    }
                }
                i += 1;
            }
        }
        self.advance_mux(source, trace.horizon, threads, Some(mux));
        mux.ingest(threads, self.mux_clock_cap());
        Ok(self.decisions() - before)
    }

    /// Ends the fused run: settles sub-batch tails, drains every live
    /// session's end-of-stream decisions into the mux, closes their
    /// lanes, ingests everything, and finalizes the aggregate — the
    /// fused counterpart of [`finish`](Self::finish) +
    /// [`LiveMux::finalize`].
    pub fn finish_fused<S: SizeSource>(
        &mut self,
        source: &S,
        threads: usize,
        mux: &mut LiveMux,
    ) -> LiveMuxStats {
        self.finish_mux(source, threads, Some(mux));
        for (sid, loc) in self.locator.iter().enumerate() {
            if *loc != GONE {
                mux.finish_session(sid as u64);
            }
        }
        mux.ingest(threads, f64::INFINITY);
        mux.finalize()
    }

    /// An upper bound on the event times any *future* join can emit: a
    /// join at tick `t > now` has its first arrival at `t + 1 > now +
    /// 1`, so its lane's events sit strictly past `(now + 1)` ticks —
    /// safe as the [`LiveMux::ingest`] clock cap (events *at* the cap
    /// are not flushed).
    fn mux_clock_cap(&self) -> f64 {
        (self.now + 1) as f64 / TICKS_PER_SEC as f64
    }

    /// [`join`](Self::join) anchored at event tick `t` (≥ the current
    /// position): the trace replay drains to `t - 1` first, so arrivals
    /// must be armed relative to `t`.
    fn join_at(
        &mut self,
        t: u64,
        class_id: usize,
        stream: u64,
        phase: u64,
    ) -> Result<u64, EngineError> {
        assert!(!self.ended, "join after finish");
        if class_id >= self.classes.len() {
            return Err(EngineError::UnknownClass { class: class_id });
        }
        let (s, slot) = self.place()?;
        let sid = self.locator.len() as u64;
        let period = self.periods[class_id];
        let first = t + 1 + (phase % period);
        self.shards[s].get_mut().expect("shard poisoned").install(
            slot,
            sid,
            stream,
            class_id as u16,
            first,
            first + (self.batch - 1) * period,
        );
        self.locator.push(Locator {
            shard: s as u32,
            slot,
        });
        self.digests.push(FNV_OFFSET);
        self.live += 1;
        Ok(sid)
    }

    /// Per-session decision digests by session id — departed sessions
    /// report their final digest, live sessions their digest so far.
    pub fn session_digests(&self) -> Vec<u64> {
        let mut out = self.digests.clone();
        for shard in &self.shards {
            let sh = shard.lock().expect("shard poisoned");
            for (j, h) in sh.hot.iter().enumerate() {
                if h.class_of != FREE {
                    out[sh.sid[j] as usize] = h.digest;
                }
            }
        }
        out
    }

    /// One FNV-1a fingerprint over every session's digest in session-id
    /// order — the determinism witness the churn proptests compare
    /// across thread counts and against the scan reference.
    pub fn digest(&self) -> u64 {
        let mut d = FNV_OFFSET;
        for x in self.session_digests() {
            d = fnv(d, x);
        }
        d
    }

    /// Captures session `sid`'s complete state.
    pub fn snapshot(&self, sid: u64) -> Result<SessionSnapshot, EngineError> {
        let loc = *self
            .locator
            .get(sid as usize)
            .ok_or(EngineError::UnknownSession { sid })?;
        if loc == GONE {
            return Err(EngineError::UnknownSession { sid });
        }
        let sh = self.shards[loc.shard as usize]
            .lock()
            .expect("shard poisoned");
        Ok(sh.snapshot_slot(loc.slot as usize))
    }

    /// Removes session `sid` *without* ending its stream (migration,
    /// not departure) and returns its state; [`restore`](Self::restore)
    /// re-installs it here or in another engine with the same classes.
    pub fn take(&mut self, sid: u64) -> Result<SessionSnapshot, EngineError> {
        let loc = *self
            .locator
            .get(sid as usize)
            .ok_or(EngineError::UnknownSession { sid })?;
        if loc == GONE {
            return Err(EngineError::UnknownSession { sid });
        }
        let sh = self.shards[loc.shard as usize]
            .get_mut()
            .expect("shard poisoned");
        let snap = sh.snapshot_slot(loc.slot as usize);
        sh.free_slot(loc.slot as usize);
        self.locator[sid as usize] = GONE;
        self.live -= 1;
        Ok(snap)
    }

    /// Re-installs a snapshot (from [`take`](Self::take) or a
    /// checkpoint). The continued schedule is bit-identical to never
    /// having moved the session.
    pub fn restore(&mut self, snap: SessionSnapshot) -> Result<(), EngineError> {
        assert!(!self.ended, "restore after finish");
        let class = snap.class as usize;
        if class >= self.classes.len() {
            return Err(EngineError::UnknownClass { class });
        }
        let ring_cap = self.classes[class].ring_cap;
        if snap.history.len() > ring_cap {
            return Err(EngineError::SnapshotHistoryTooLong {
                len: snap.history.len(),
                ring_cap,
            });
        }
        let sid = snap.sid as usize;
        if self.locator.len() <= sid {
            self.locator.resize(sid + 1, GONE);
            self.digests.resize(sid + 1, FNV_OFFSET);
        }
        if self.locator[sid] != GONE {
            return Err(EngineError::UnknownSession { sid: snap.sid });
        }
        let (s, slot) = self.place()?;
        let arm = snap.next_arrival + (self.batch - 1) * self.periods[class];
        self.shards[s]
            .get_mut()
            .expect("shard poisoned")
            .install_snapshot(slot, &snap, arm);
        self.locator[sid] = Locator {
            shard: s as u32,
            slot,
        };
        self.live += 1;
        Ok(())
    }

    /// Evens the shard loads by migrating sessions (snapshot out of
    /// overloaded shards in slot order, re-install into underloaded ones
    /// in shard order — deterministic). Returns the sessions moved.
    /// Digests are unchanged: migration is [`take`](Self::take) +
    /// [`restore`](Self::restore), which is bit-identical.
    pub fn rebalance(&mut self) -> usize {
        let n = self.shards.len();
        if n == 0 || self.live == 0 {
            return 0;
        }
        let q = self.live / n;
        let r = self.live % n;
        let mut moved: VecDeque<SessionSnapshot> = VecDeque::new();
        for i in 0..n {
            let target = q + usize::from(i < r);
            let sh = self.shards[i].get_mut().expect("shard poisoned");
            let mut excess = sh.live.saturating_sub(target);
            let mut j = 0;
            while excess > 0 {
                if sh.hot[j].class_of != FREE {
                    let snap = sh.snapshot_slot(j);
                    sh.free_slot(j);
                    self.locator[snap.sid as usize] = GONE;
                    moved.push_back(snap);
                    excess -= 1;
                }
                j += 1;
            }
        }
        let count = moved.len();
        self.live -= count;
        for i in 0..n {
            let target = q + usize::from(i < r);
            while {
                let sh = self.shards[i].get_mut().expect("shard poisoned");
                sh.live < target && !moved.is_empty()
            } {
                let snap = moved.pop_front().expect("checked non-empty");
                let arm = snap.next_arrival + (self.batch - 1) * self.periods[snap.class as usize];
                let sh = self.shards[i].get_mut().expect("shard poisoned");
                let slot = sh.alloc();
                sh.install_snapshot(slot, &snap, arm);
                self.locator[snap.sid as usize] = Locator {
                    shard: i as u32,
                    slot,
                };
                self.live += 1;
            }
        }
        debug_assert!(moved.is_empty(), "every migrated session re-installed");
        count
    }

    /// Captures the whole fleet: scheduler position, every live
    /// session, and departed sessions' digests —
    /// [`restore_checkpoint`](Self::restore_checkpoint) rebuilds an
    /// engine that continues bit-identically (crash recovery).
    pub fn checkpoint(&self) -> EngineCheckpoint {
        let mut sessions = Vec::with_capacity(self.live);
        let mut retired = Vec::new();
        for (sid, loc) in self.locator.iter().enumerate() {
            if *loc == GONE {
                retired.push((sid as u64, self.digests[sid]));
            } else {
                let sh = self.shards[loc.shard as usize]
                    .lock()
                    .expect("shard poisoned");
                sessions.push(sh.snapshot_slot(loc.slot as usize));
            }
        }
        EngineCheckpoint {
            now: self.now,
            joined: self.joined(),
            decisions: self.decisions(),
            sessions,
            retired,
        }
    }

    /// Rebuilds an engine from a checkpoint. `classes`, `capacity`, and
    /// `shard_size` must match the captured engine's configuration;
    /// continuing the same trace from here yields the same digests as
    /// the uninterrupted run (pinned by the churn tests).
    pub fn restore_checkpoint(
        classes: Vec<DynamicClass>,
        capacity: usize,
        shard_size: usize,
        cp: &EngineCheckpoint,
    ) -> Result<Self, EngineError> {
        let mut engine = Self::new(classes, capacity, shard_size)?;
        engine.now = cp.now;
        engine.recovered_decisions = cp.decisions;
        // Fast-forward every (empty) shard wheel to the checkpoint
        // position — O(1) while empty.
        let mut scratch = Vec::new();
        for s in &mut engine.shards {
            let sh = s.get_mut().expect("shard poisoned");
            let _ = sh.wheel.pop_due(cp.now, &mut scratch);
        }
        engine.locator = vec![GONE; cp.joined as usize];
        engine.digests = vec![FNV_OFFSET; cp.joined as usize];
        for &(sid, digest) in &cp.retired {
            engine.digests[sid as usize] = digest;
        }
        for snap in &cp.sessions {
            engine.restore(snap.clone())?;
        }
        Ok(engine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SyntheticFleet;
    use smooth_core::{OnlineSmoother, SmootherParams};
    use smooth_mpeg::GopPattern;

    fn test_class(period_ticks: u64) -> DynamicClass {
        let pattern = GopPattern::new(3, 9).unwrap();
        DynamicClass {
            class: SessionClass::new(SmootherParams::recommended(9), pattern),
            period_ticks,
        }
    }

    fn fleet() -> SyntheticFleet {
        SyntheticFleet {
            seed: 7,
            pattern: GopPattern::new(3, 9).unwrap(),
        }
    }

    /// A dynamic session's decisions match a dedicated OnlineSmoother
    /// fed the same sizes — same digest fold as the engine.
    #[test]
    fn matches_online_smoother() {
        let src = fleet();
        let mut engine = DynamicEngine::new(vec![test_class(20)], 10, 4).unwrap();
        let sid = engine.join(0, 3, 5).unwrap();
        engine.advance_to(&src, 2000, 1);
        engine.leave(sid, &src).unwrap();
        // Pictures fed: arrivals at 6, 26, 46, … ≤ 2000 → 100 pictures.
        let pushed = (2000 - 6) / 20 + 1;
        let class = test_class(20);
        let mut online = OnlineSmoother::new(class.class.params, class.class.pattern);
        let mut digest = FNV_OFFSET;
        let mut fold = |d: &smooth_core::PictureSchedule| {
            digest = fnv(digest, d.index as u64);
            digest = fnv(digest, d.start.to_bits());
            digest = fnv(digest, d.rate.to_bits());
            digest = fnv(digest, d.depart.to_bits());
        };
        for p in 0..pushed {
            for d in online.push(src.size(3, p)) {
                fold(&d);
            }
        }
        for d in online.finish() {
            fold(&d);
        }
        assert_eq!(engine.session_digests()[sid as usize], digest);
    }

    /// Two sessions with different periods interleave correctly and
    /// each matches its own single-session run.
    #[test]
    fn heterogeneous_periods_are_independent() {
        let src = fleet();
        let classes = vec![test_class(20), test_class(25)];
        let mut both = DynamicEngine::new(classes.clone(), 10, 4).unwrap();
        let a = both.join(0, 1, 0).unwrap();
        let b = both.join(1, 2, 7).unwrap();
        both.advance_to(&src, 3000, 1);
        both.finish(&src, 1);

        for (class_id, stream, sid) in [(0usize, 1u64, a), (1, 2, b)] {
            let mut solo = DynamicEngine::new(classes.clone(), 10, 4).unwrap();
            let s = solo
                .join(class_id, stream, if class_id == 0 { 0 } else { 7 })
                .unwrap();
            solo.advance_to(&src, 3000, 1);
            solo.finish(&src, 1);
            assert_eq!(
                solo.session_digests()[s as usize],
                both.session_digests()[sid as usize],
                "class {class_id}"
            );
        }
    }

    /// Slot recycling: leave then join reuses the freed slot and the
    /// newcomer's schedule is untouched by the previous occupant.
    #[test]
    fn recycled_slot_is_fresh() {
        let src = fleet();
        let mut engine = DynamicEngine::new(vec![test_class(20)], 1, 1).unwrap();
        let a = engine.join(0, 10, 0).unwrap();
        engine.advance_to(&src, 1000, 1);
        engine.leave(a, &src).unwrap();
        let b = engine.join(0, 11, 0).unwrap();
        assert_eq!(engine.allocated_slots(), 1, "slot was recycled, not grown");
        engine.advance_to(&src, 2000, 1);
        engine.leave(b, &src).unwrap();

        // A fresh engine running only stream 11 joined at the same tick.
        let mut fresh = DynamicEngine::new(vec![test_class(20)], 1, 1).unwrap();
        fresh.advance_to(&src, 1000, 1);
        let c = fresh.join(0, 11, 0).unwrap();
        fresh.advance_to(&src, 2000, 1);
        fresh.leave(c, &src).unwrap();
        assert_eq!(
            engine.session_digests()[b as usize],
            fresh.session_digests()[c as usize]
        );
    }

    /// take + restore (same or rebalanced shard) changes no digest bit.
    #[test]
    fn migration_is_bit_identical() {
        let src = fleet();
        let classes = vec![test_class(20), test_class(25)];
        let mut plain = DynamicEngine::new(classes.clone(), 64, 8).unwrap();
        let mut moved = DynamicEngine::new(classes.clone(), 64, 8).unwrap();
        for i in 0..20u64 {
            plain.join((i % 2) as usize, i, i % 13).unwrap();
            moved.join((i % 2) as usize, i, i % 13).unwrap();
        }
        plain.advance_to(&src, 1500, 1);
        moved.advance_to(&src, 1500, 1);
        // Migrate a few sessions and rebalance mid-run.
        for sid in [0u64, 7, 13] {
            let snap = moved.take(sid).unwrap();
            moved.restore(snap).unwrap();
        }
        moved.rebalance();
        let loads = moved.shard_loads();
        let (min, max) = (*loads.iter().min().unwrap(), *loads.iter().max().unwrap());
        assert!(max - min <= 1, "rebalanced loads {loads:?}");
        plain.advance_to(&src, 4000, 1);
        moved.advance_to(&src, 4000, 1);
        plain.finish(&src, 1);
        moved.finish(&src, 1);
        assert_eq!(plain.digest(), moved.digest());
    }

    /// checkpoint + restore_checkpoint continues bit-identically.
    #[test]
    fn checkpoint_restore_is_bit_identical() {
        let src = fleet();
        let classes = vec![test_class(20), test_class(25)];
        let mut a = DynamicEngine::new(classes.clone(), 32, 8).unwrap();
        for i in 0..12u64 {
            a.join((i % 2) as usize, i, i % 9).unwrap();
        }
        a.advance_to(&src, 1000, 1);
        a.leave(3, &src).unwrap();
        a.advance_to(&src, 1700, 1);
        let cp = a.checkpoint();
        let mut b = DynamicEngine::restore_checkpoint(classes, 32, 8, &cp).unwrap();
        for e in [&mut a, &mut b] {
            e.advance_to(&src, 4000, 1);
            e.finish(&src, 1);
        }
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.session_digests(), b.session_digests());
    }

    /// A small deterministic churn trace for the fused tests.
    fn small_trace() -> ChurnTrace {
        crate::synthetic::churn_trace(&crate::synthetic::ChurnSpec {
            seed: 0xFACE,
            initial: 9,
            weights: vec![2, 1],
            periods: vec![20, 25],
            ticks_per_sec: TICKS_PER_SEC,
            horizon: 2400,
            churn_ppm_per_sec: 200_000,
        })
    }

    /// Splits a trace at tick `cut`: the first half replays events up
    /// to and including `cut` (horizon `cut`), the second the rest.
    fn split_trace(trace: &ChurnTrace, cut: u64) -> (ChurnTrace, ChurnTrace) {
        let half = |keep: &dyn Fn(u64) -> bool, horizon| ChurnTrace {
            events: trace
                .events
                .iter()
                .filter(|&&(t, _)| keep(t))
                .copied()
                .collect(),
            horizon,
            peak_live: trace.peak_live,
        };
        (half(&|t| t <= cut, cut), half(&|t| t > cut, trace.horizon))
    }

    fn small_cfg() -> crate::livemux::MuxConfig {
        crate::livemux::MuxConfig {
            capacity_bps: 12.0e6,
            buffer_bits: 0.4e6,
            t_start: 0.0,
            t_end: 4.5,
            descriptor_rho_bps: 1.5e6,
        }
    }

    /// The fused trace replay leaves the engine bit-identical to the
    /// plain replay (same digests, same decision count), and the mux
    /// outcome is invariant in thread count.
    #[test]
    fn fused_trace_matches_plain_replay_and_threads() {
        let src = fleet();
        let classes = vec![test_class(20), test_class(25)];
        let trace = small_trace();

        let mut plain = DynamicEngine::new(classes.clone(), trace.peak_live, 4).unwrap();
        let made_plain = plain.run_trace(&src, &trace, 1).unwrap();
        plain.finish(&src, 1);

        let mut baseline = None;
        for threads in [1usize, 2, 5] {
            let mut engine = DynamicEngine::new(classes.clone(), trace.peak_live, 4).unwrap();
            let mut mux = LiveMux::with_joins(trace.total_joins(), 4, small_cfg());
            let made = engine
                .run_trace_fused(&src, &trace, threads, &mut mux)
                .unwrap();
            let stats = engine.finish_fused(&src, threads, &mut mux);
            assert_eq!(made, made_plain, "threads={threads}");
            assert_eq!(engine.digest(), plain.digest(), "threads={threads}");
            let digest = crate::livemux::mux_digest(&stats, &mux.descriptors());
            match baseline {
                None => baseline = Some(digest),
                Some(d) => assert_eq!(d, digest, "mux digest diverged at threads={threads}"),
            }
        }
    }

    /// Engine + mux checkpoints taken mid-trace continue bit-identical
    /// to the uninterrupted fused run.
    #[test]
    fn fused_trace_checkpoint_restore_is_bit_identical() {
        let src = fleet();
        let classes = vec![test_class(20), test_class(25)];
        let trace = small_trace();
        let cut = 1300u64;
        let (first, second) = split_trace(&trace, cut);

        let mut whole = DynamicEngine::new(classes.clone(), trace.peak_live, 4).unwrap();
        let total = trace.total_joins();
        let mut whole_mux = LiveMux::with_joins(total, 4, small_cfg());
        whole
            .run_trace_fused(&src, &trace, 1, &mut whole_mux)
            .unwrap();
        let want = whole.finish_fused(&src, 1, &mut whole_mux);
        let want_digest = crate::livemux::mux_digest(&want, &whole_mux.descriptors());
        let want_engine = whole.digest();

        let mut engine = DynamicEngine::new(classes.clone(), trace.peak_live, 4).unwrap();
        let mut mux = LiveMux::with_joins(total, 4, small_cfg());
        engine.run_trace_fused(&src, &first, 1, &mut mux).unwrap();
        // ingest drains the lane-block buffers, making the mux
        // checkpointable at the same trace position as the engine.
        mux.ingest(1, engine.mux_clock_cap());
        let ecp = engine.checkpoint();
        let mcp = mux.checkpoint();

        let mut engine =
            DynamicEngine::restore_checkpoint(classes, trace.peak_live, 4, &ecp).unwrap();
        let mut mux = LiveMux::restore(&mcp);
        engine.run_trace_fused(&src, &second, 1, &mut mux).unwrap();
        let got = engine.finish_fused(&src, 1, &mut mux);
        assert_eq!(engine.digest(), want_engine);
        assert_eq!(
            crate::livemux::mux_digest(&got, &mux.descriptors()),
            want_digest
        );
    }

    #[test]
    fn config_errors_are_typed() {
        assert_eq!(
            DynamicEngine::new(vec![], 10, 4).err(),
            Some(EngineError::NoClasses)
        );
        assert_eq!(
            DynamicEngine::new(vec![test_class(0)], 10, 4).err(),
            Some(EngineError::ZeroPeriod { class: 0 })
        );
        assert_eq!(
            DynamicEngine::new(vec![test_class(20)], 0, 4).err(),
            Some(EngineError::ZeroCapacity)
        );
        let mut engine = DynamicEngine::new(vec![test_class(20)], 1, 1).unwrap();
        engine.join(0, 0, 0).unwrap();
        assert_eq!(
            engine.join(0, 1, 0).unwrap_err(),
            EngineError::CapacityExhausted { capacity: 1 }
        );
        assert_eq!(
            engine.leave(99, &fleet()).unwrap_err(),
            EngineError::UnknownSession { sid: 99 }
        );
    }
}
