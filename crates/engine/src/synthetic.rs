//! Deterministic synthetic picture sizes for session fleets.

use crate::SizeSource;
use smooth_mpeg::{GopPattern, PictureType};

/// A fleet of synthetic VBR sources: picture sizes are a pure splitmix64
/// hash of `(seed, session, picture)` shaped to the bench suite's I/P/B
/// levels (~180k/80k/16k bits plus jitter), so any tick of any session
/// can re-derive its size with no stored trace — and any two runs with
/// the same seed see identical streams, which is what the determinism
/// proptests and the BENCH provenance need.
#[derive(Debug, Clone, Copy)]
pub struct SyntheticFleet {
    /// Fleet seed; every session derives its stream from it.
    pub seed: u64,
    /// GOP pattern shared by the fleet (picture type schedule).
    pub pattern: GopPattern,
}

impl SizeSource for SyntheticFleet {
    fn size(&self, session: u64, picture: u64) -> u64 {
        let mut z = self
            .seed
            .wrapping_add(session.wrapping_mul(0x9E3779B97F4A7C15))
            .wrapping_add(picture.wrapping_mul(0xD1B54A32D192ED03));
        // splitmix64 finalizer.
        z ^= z >> 30;
        z = z.wrapping_mul(0xBF58476D1CE4E5B9);
        z ^= z >> 27;
        z = z.wrapping_mul(0x94D049BB133111EB);
        z ^= z >> 31;
        let jitter = z >> 48;
        match self.pattern.type_at(picture as usize) {
            PictureType::I => 180_000 + jitter,
            PictureType::P => 80_000 + jitter / 2,
            PictureType::B => 16_000 + jitter / 8,
        }
    }
}

/// splitmix64: the fleet's counter-based generator — every draw is a
/// pure function of `(seed, counter)`, so a trace is reproducible from
/// its spec alone.
fn splitmix(seed: u64, counter: u64) -> u64 {
    let mut z = seed
        .wrapping_add(counter.wrapping_mul(0x9E3779B97F4A7C15))
        .wrapping_add(0x2545F4914F6CDD1D);
    z ^= z >> 30;
    z = z.wrapping_mul(0xBF58476D1CE4E5B9);
    z ^= z >> 27;
    z = z.wrapping_mul(0x94D049BB133111EB);
    z ^= z >> 31;
    z
}

/// One churn event, anchored to a scheduler tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnEvent {
    /// A session joins: class, size-source stream id, and arrival phase
    /// (its first picture arrives `1 + phase mod τ` ticks later).
    Join {
        /// Class id of the joining session.
        class: u16,
        /// Size-source stream id (decoupled from the session id).
        stream: u64,
        /// Arrival phase within the class period.
        phase: u64,
    },
    /// Session `sid` departs (engine-assigned id: the `n`-th join in
    /// trace order gets sid `n`).
    Leave {
        /// Departing session id.
        sid: u64,
    },
}

/// A pre-resolved, fully deterministic arrival/departure process: the
/// same spec always yields the same events, and replaying the events
/// yields the same fleet — the determinism witness for the dynamic
/// engine's churn tests and benches.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnTrace {
    /// Events sorted by tick (ties in emission order: joins before
    /// leaves within a tick).
    pub events: Vec<(u64, ChurnEvent)>,
    /// Last scheduler tick of the run.
    pub horizon: u64,
    /// Peak concurrent live sessions — the capacity the replaying
    /// engine needs.
    pub peak_live: usize,
}

impl ChurnTrace {
    /// Total sessions the trace ever joins — session ids are issued
    /// densely in join order, so this is the lane capacity a
    /// [`crate::LiveMux::with_joins`] aggregator needs to cover every
    /// id the fused replay will touch.
    pub fn total_joins(&self) -> usize {
        self.events
            .iter()
            .filter(|(_, e)| matches!(e, ChurnEvent::Join { .. }))
            .count()
    }
}

/// Parameters of a [`churn_trace`]: a fleet ramped in over the first
/// second, then symmetric join/leave churn at a fixed rate until the
/// horizon.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnSpec {
    /// Trace seed.
    pub seed: u64,
    /// Initial fleet size, ramped in over the first simulated second.
    pub initial: usize,
    /// Per-class weights for the class of each joining session.
    pub weights: Vec<u32>,
    /// Per-class picture periods in ticks (for phase draws); same
    /// length and order as the engine's class list.
    pub periods: Vec<u64>,
    /// Scheduler ticks per simulated second.
    pub ticks_per_sec: u64,
    /// Last tick of the trace.
    pub horizon: u64,
    /// Join rate — and, symmetrically, leave rate — in parts-per-
    /// million of `initial` per second; `10_000` is 1 %/s churn.
    pub churn_ppm_per_sec: u64,
}

/// Generates the deterministic churn trace for `spec`: `initial` joins
/// staggered over the first second (classes weighted, phases hashed),
/// then, from the second second on, joins and leaves accumulated by
/// exact integer arithmetic at `churn_ppm_per_sec` — no floats, so the
/// event list is a pure function of the spec on every platform. Within
/// a tick joins precede leaves; leave victims are drawn uniformly from
/// the live fleet.
pub fn churn_trace(spec: &ChurnSpec) -> ChurnTrace {
    assert!(!spec.weights.is_empty(), "at least one class weight");
    assert_eq!(
        spec.weights.len(),
        spec.periods.len(),
        "one period per class weight"
    );
    assert!(spec.ticks_per_sec > 0, "positive tick rate");
    let total_weight: u64 = spec.weights.iter().map(|&w| u64::from(w)).sum();
    assert!(total_weight > 0, "class weights must not all be zero");

    let mut gen = ChurnGen {
        spec,
        total_weight,
        events: Vec::new(),
        live: Vec::new(),
        next_sid: 0,
        draws: 0,
    };

    // Ramp the initial fleet in over the first second.
    let ramp = spec.ticks_per_sec.min(spec.horizon + 1);
    for i in 0..spec.initial {
        let tick = (i as u64 * ramp) / (spec.initial as u64).max(1);
        gen.join(tick);
    }
    let mut peak = gen.live.len();

    // Steady churn from the second second on: exact integer
    // accumulators, `num/denom` events per tick.
    let num = spec.initial as u64 * spec.churn_ppm_per_sec;
    let denom = 1_000_000 * spec.ticks_per_sec;
    let mut acc_join = 0u64;
    let mut acc_leave = 0u64;
    for t in spec.ticks_per_sec..=spec.horizon {
        acc_join += num;
        while acc_join >= denom {
            acc_join -= denom;
            gen.join(t);
        }
        peak = peak.max(gen.live.len());
        acc_leave += num;
        while acc_leave >= denom && !gen.live.is_empty() {
            acc_leave -= denom;
            let victim = (gen.draw() % gen.live.len() as u64) as usize;
            let sid = gen.live.swap_remove(victim);
            gen.events.push((t, ChurnEvent::Leave { sid }));
        }
    }
    ChurnTrace {
        events: gen.events,
        horizon: spec.horizon,
        peak_live: peak,
    }
}

/// Generator state of [`churn_trace`].
struct ChurnGen<'a> {
    spec: &'a ChurnSpec,
    total_weight: u64,
    events: Vec<(u64, ChurnEvent)>,
    live: Vec<u64>,
    next_sid: u64,
    draws: u64,
}

impl ChurnGen<'_> {
    fn draw(&mut self) -> u64 {
        let v = splitmix(self.spec.seed, self.draws);
        self.draws += 1;
        v
    }

    fn join(&mut self, tick: u64) {
        let mut pick = self.draw() % self.total_weight;
        let mut class = 0usize;
        for (c, &w) in self.spec.weights.iter().enumerate() {
            if pick < u64::from(w) {
                class = c;
                break;
            }
            pick -= u64::from(w);
        }
        let phase = self.draw() % self.spec.periods[class];
        self.events.push((
            tick,
            ChurnEvent::Join {
                class: class as u16,
                stream: self.next_sid,
                phase,
            },
        ));
        self.live.push(self.next_sid);
        self.next_sid += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_are_deterministic_and_type_shaped() {
        let pattern = GopPattern::new(3, 9).unwrap();
        let fleet = SyntheticFleet { seed: 42, pattern };
        for s in 0..10u64 {
            for p in 0..30u64 {
                let a = fleet.size(s, p);
                assert_eq!(a, fleet.size(s, p));
                match pattern.type_at(p as usize) {
                    PictureType::I => assert!((180_000..246_000).contains(&a)),
                    PictureType::P => assert!((80_000..113_000).contains(&a)),
                    PictureType::B => assert!((16_000..25_000).contains(&a)),
                }
            }
        }
        // Different sessions see different streams.
        let distinct = (0..50u64)
            .map(|s| fleet.size(s, 0))
            .collect::<std::collections::HashSet<_>>();
        assert!(distinct.len() > 40);
    }
}
