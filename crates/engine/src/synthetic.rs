//! Deterministic synthetic picture sizes for session fleets.

use crate::SizeSource;
use smooth_mpeg::{GopPattern, PictureType};

/// A fleet of synthetic VBR sources: picture sizes are a pure splitmix64
/// hash of `(seed, session, picture)` shaped to the bench suite's I/P/B
/// levels (~180k/80k/16k bits plus jitter), so any tick of any session
/// can re-derive its size with no stored trace — and any two runs with
/// the same seed see identical streams, which is what the determinism
/// proptests and the BENCH provenance need.
#[derive(Debug, Clone, Copy)]
pub struct SyntheticFleet {
    /// Fleet seed; every session derives its stream from it.
    pub seed: u64,
    /// GOP pattern shared by the fleet (picture type schedule).
    pub pattern: GopPattern,
}

impl SizeSource for SyntheticFleet {
    fn size(&self, session: u64, picture: u64) -> u64 {
        let mut z = self
            .seed
            .wrapping_add(session.wrapping_mul(0x9E3779B97F4A7C15))
            .wrapping_add(picture.wrapping_mul(0xD1B54A32D192ED03));
        // splitmix64 finalizer.
        z ^= z >> 30;
        z = z.wrapping_mul(0xBF58476D1CE4E5B9);
        z ^= z >> 27;
        z = z.wrapping_mul(0x94D049BB133111EB);
        z ^= z >> 31;
        let jitter = z >> 48;
        match self.pattern.type_at(picture as usize) {
            PictureType::I => 180_000 + jitter,
            PictureType::P => 80_000 + jitter / 2,
            PictureType::B => 16_000 + jitter / 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_are_deterministic_and_type_shaped() {
        let pattern = GopPattern::new(3, 9).unwrap();
        let fleet = SyntheticFleet { seed: 42, pattern };
        for s in 0..10u64 {
            for p in 0..30u64 {
                let a = fleet.size(s, p);
                assert_eq!(a, fleet.size(s, p));
                match pattern.type_at(p as usize) {
                    PictureType::I => assert!((180_000..246_000).contains(&a)),
                    PictureType::P => assert!((80_000..113_000).contains(&a)),
                    PictureType::B => assert!((16_000..25_000).contains(&a)),
                }
            }
        }
        // Different sessions see different streams.
        let distinct = (0..50u64)
            .map(|s| fleet.size(s, 0))
            .collect::<std::collections::HashSet<_>>();
        assert!(distinct.len() > 40);
    }
}
