//! `Vec` strategies.

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Inclusive bounds on a generated collection's length.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            lo: exact,
            hi: exact,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Generates a `Vec` whose length is drawn from `size` and whose elements
/// come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo
            + if span == 0 {
                0
            } else {
                rng.below(span + 1) as usize
            };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
