//! Offline-vendored mini `proptest`.
//!
//! Deterministic property-based testing with the subset of the real
//! proptest API this workspace uses: the [`proptest!`] macro family,
//! [`strategy::Strategy`] with `prop_map`/`prop_flat_map`/`boxed`,
//! range/tuple/`Just`/`prop_oneof!` strategies, [`collection::vec`],
//! [`option::of`], [`arbitrary::any`], and
//! [`test_runner::Config`]`::with_cases`.
//!
//! Differences from real proptest, by design:
//! - cases are generated from a fixed per-test seed (hash of the test
//!   name), so failures reproduce exactly on every run and machine;
//! - no shrinking: a failing case reports its inputs verbatim.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `Config::cases` generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            // The `#[test]` comes from the caller's attributes (real
            // proptest's convention); adding one here would register
            // every property twice.
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                let mut __rng = $crate::test_runner::TestRng::for_test(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let mut __ran: u32 = 0;
                let mut __rejected: u32 = 0;
                while __ran < __config.cases {
                    assert!(
                        __rejected < __config.cases.saturating_mul(16) + 1024,
                        "proptest {}: too many rejected cases ({} accepted, {} rejected)",
                        stringify!($name), __ran, __rejected
                    );
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    let __inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || { $body ::std::result::Result::Ok(()) })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => __ran += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {
                            __rejected += 1;
                        }
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest {} failed: {}\n    inputs: {}",
                                stringify!($name), msg, __inputs
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property body; failure reports the
/// generated inputs instead of unwinding from an arbitrary point.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l == *__r,
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), __l, __r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l == *__r,
                    "{}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)+), __l, __r
                );
            }
        }
    };
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l != *__r,
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    __l
                );
            }
        }
    };
}

/// Discards the current case (not counted against `cases`) when its
/// precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
