//! The [`Strategy`] trait and the combinators/sources the workspace uses.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Object-safe core (`generate`) plus `Sized`-gated combinators, so
/// `Box<dyn Strategy<Value = T>>` works as [`BoxedStrategy`].
pub trait Strategy {
    type Value: Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Generates a value, then a dependent strategy from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// Uniform choice between alternatives (built by `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T: Debug> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty)*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + rng.below(span as u64) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128;
                let off = if span >= u64::MAX as u128 {
                    rng.next_u64()
                } else {
                    rng.below(span as u64 + 1)
                };
                (start as i128 + off as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8 u16 u32 u64 usize i8 i16 i32 i64 isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(
            self.start.is_finite() && self.end.is_finite() && self.start < self.end,
            "bad f64 range strategy [{}, {})",
            self.start,
            self.end
        );
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        // The endpoint has measure zero; reuse the half-open recipe.
        (*self.start()..*self.end()).generate(rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}
