//! The `any::<T>()` entry point for canonical whole-type strategies.

use std::fmt::Debug;
use std::ops::RangeInclusive;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized + Debug {
    type Strategy: Strategy<Value = Self>;

    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T` (real proptest's `any`).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

macro_rules! arbitrary_int {
    ($($t:ty)*) => {$(
        impl Arbitrary for $t {
            type Strategy = RangeInclusive<$t>;

            fn arbitrary() -> Self::Strategy {
                <$t>::MIN..=<$t>::MAX
            }
        }
    )*};
}
arbitrary_int!(u8 u16 u32 u64 usize i8 i16 i32 i64 isize);

#[derive(Debug, Clone, Copy)]
pub struct BoolStrategy;

impl Strategy for BoolStrategy {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.below(2) == 1
    }
}

impl Arbitrary for bool {
    type Strategy = BoolStrategy;

    fn arbitrary() -> Self::Strategy {
        BoolStrategy
    }
}
