//! Test configuration, case outcomes, and the deterministic generator.

/// Per-test configuration (subset of real proptest's `Config`).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of accepted cases each property must pass.
    pub cases: u32,
}

impl Config {
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The property failed; the message describes the assertion.
    Fail(String),
    /// A `prop_assume!` precondition was not met; try another case.
    Reject,
}

/// Deterministic xoshiro256** generator seeded from the test's name, so
/// every run of a given test sees the identical case sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// Seeds from an arbitrary label (FNV-1a over the bytes, expanded with
    /// SplitMix64).
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in name.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut sm = h;
        TestRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)` (Lemire multiply-shift rejection).
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_stream() {
        let mut a = TestRng::for_test("x::y");
        let mut b = TestRng::for_test("x::y");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_names_differ() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("y");
        assert!((0..32).any(|_| a.next_u64() != b.next_u64()));
    }

    #[test]
    fn below_in_bounds() {
        let mut r = TestRng::for_test("below");
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }
}
