//! `#[derive(Serialize, Deserialize)]` for the vendored mini-serde.
//!
//! Implemented directly on `proc_macro` token trees (no `syn`/`quote`,
//! which cannot be fetched in this hermetic build environment). Supports
//! exactly the shapes this workspace uses: non-generic named-field
//! structs, and enums with unit / named-field / tuple variants, plus the
//! field attributes `#[serde(default)]` and `#[serde(with = "path")]`.
//! Anything else panics at derive time so unsupported shapes surface as
//! compile errors rather than silent misbehavior.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

type TokenIter = Peekable<proc_macro::token_stream::IntoIter>;

struct Field {
    name: String,
    ty: String,
    default: bool,
    with: Option<String>,
}

enum VariantKind {
    Unit,
    Named(Vec<Field>),
    Tuple(usize),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Body {
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    body: Body,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let src = gen_serialize(&item);
    src.parse()
        .unwrap_or_else(|e| panic!("serde_derive generated invalid Serialize impl: {e}"))
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let src = gen_deserialize(&item);
    src.parse()
        .unwrap_or_else(|e| panic!("serde_derive generated invalid Deserialize impl: {e}"))
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let mut it: TokenIter = input.into_iter().peekable();
    loop {
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // Outer attribute (doc comment, cfg, ...): skip the group.
                it.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                if let Some(TokenTree::Group(g)) = it.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        it.next(); // pub(crate) etc.
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {
                let name = expect_ident(&mut it, "struct name");
                match it.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        return Item {
                            name,
                            body: Body::Struct(parse_fields(g.stream())),
                        };
                    }
                    other => panic!(
                        "serde_derive: only non-generic named-field structs are supported \
                         (struct {name}, found {other:?})"
                    ),
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                let name = expect_ident(&mut it, "enum name");
                match it.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        return Item {
                            name,
                            body: Body::Enum(parse_variants(g.stream())),
                        };
                    }
                    other => panic!(
                        "serde_derive: only non-generic enums are supported \
                         (enum {name}, found {other:?})"
                    ),
                }
            }
            Some(other) => panic!("serde_derive: unexpected token {other}"),
            None => panic!("serde_derive: no struct or enum found in input"),
        }
    }
}

fn expect_ident(it: &mut TokenIter, what: &str) -> String {
    match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected {what}, found {other:?}"),
    }
}

/// Parses `#[serde(...)]` options out of one attribute group's content.
fn scan_serde_attr(stream: TokenStream, default: &mut bool, with: &mut Option<String>) {
    let mut it: TokenIter = stream.into_iter().peekable();
    match it.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return, // #[doc = ...], #[cfg(...)], ...: not ours
    }
    let Some(TokenTree::Group(g)) = it.next() else {
        panic!("serde_derive: malformed #[serde] attribute");
    };
    let mut inner: TokenIter = g.stream().into_iter().peekable();
    while let Some(tok) = inner.next() {
        match tok {
            TokenTree::Ident(id) if id.to_string() == "default" => *default = true,
            TokenTree::Ident(id) if id.to_string() == "with" => {
                match (inner.next(), inner.next()) {
                    (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit)))
                        if eq.as_char() == '=' =>
                    {
                        let s = lit.to_string();
                        *with = Some(s.trim_matches('"').to_string());
                    }
                    other => panic!("serde_derive: malformed #[serde(with = ...)]: {other:?}"),
                }
            }
            TokenTree::Punct(p) if p.as_char() == ',' => {}
            other => panic!("serde_derive: unsupported #[serde({other})] option"),
        }
    }
}

fn parse_fields(stream: TokenStream) -> Vec<Field> {
    let mut it: TokenIter = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let mut default = false;
        let mut with = None;
        while matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            it.next();
            match it.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    scan_serde_attr(g.stream(), &mut default, &mut with);
                }
                other => panic!("serde_derive: malformed attribute: {other:?}"),
            }
        }
        let Some(mut tok) = it.next() else { break };
        if matches!(&tok, TokenTree::Ident(i) if i.to_string() == "pub") {
            tok = it.next().expect("serde_derive: field after `pub`");
            if matches!(&tok, TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis) {
                tok = it.next().expect("serde_derive: field after `pub(...)`");
            }
        }
        let TokenTree::Ident(name) = tok else {
            panic!("serde_derive: expected field name, found {tok}");
        };
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field name, found {other:?}"),
        }
        let mut depth: i64 = 0;
        let mut ty = TokenStream::new();
        while let Some(peeked) = it.peek() {
            if depth == 0 {
                if let TokenTree::Punct(p) = peeked {
                    if p.as_char() == ',' {
                        break;
                    }
                }
            }
            let t = it.next().expect("peeked");
            if let TokenTree::Punct(p) = &t {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    _ => {}
                }
            }
            ty.extend([t]);
        }
        if matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            it.next();
        }
        fields.push(Field {
            name: name.to_string(),
            ty: ty.to_string(),
            default,
            with,
        });
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut it: TokenIter = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        while matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            it.next();
            it.next(); // attribute group
        }
        let Some(tok) = it.next() else { break };
        let TokenTree::Ident(name) = tok else {
            panic!("serde_derive: expected variant name, found {tok}");
        };
        let kind = if let Some(TokenTree::Group(g)) = it.peek() {
            let delim = g.delimiter();
            let inner = g.stream();
            match delim {
                Delimiter::Brace => {
                    it.next();
                    VariantKind::Named(parse_fields(inner))
                }
                Delimiter::Parenthesis => {
                    it.next();
                    VariantKind::Tuple(count_top_level_items(inner))
                }
                _ => VariantKind::Unit,
            }
        } else {
            VariantKind::Unit
        };
        if matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            it.next();
        }
        variants.push(Variant {
            name: name.to_string(),
            kind,
        });
    }
    variants
}

/// Number of comma-separated items at angle-bracket depth zero.
fn count_top_level_items(stream: TokenStream) -> usize {
    let mut depth: i64 = 0;
    let mut items = 0usize;
    let mut in_item = false;
    for t in stream {
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    in_item = false;
                    continue;
                }
                _ => {}
            }
        }
        if !in_item {
            items += 1;
            in_item = true;
        }
    }
    items
}

// ---------------------------------------------------------------------------
// Code generation (string-built, then reparsed)
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let mut out = String::new();
    out.push_str(&format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize<__S: ::serde::Serializer>(&self, __s: __S) \
         -> ::core::result::Result<__S::Ok, __S::Error> {{\n"
    ));
    match &item.body {
        Body::Struct(fields) => {
            out.push_str(&ser_object_body(fields, "self.", "__s"));
        }
        Body::Enum(variants) => {
            out.push_str("match self {\n");
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => out.push_str(&format!(
                        "{name}::{vname} => ::serde::Serializer::serialize_value(__s, \
                         ::serde::value::Value::Str(::std::string::String::from(\"{vname}\"))),\n"
                    )),
                    VariantKind::Named(fields) => {
                        let binders: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        out.push_str(&format!(
                            "{name}::{vname} {{ {} }} => {{\n",
                            binders.join(", ")
                        ));
                        out.push_str(
                            "let mut __fields: ::std::vec::Vec<(::std::string::String, \
                             ::serde::value::Value)> = ::std::vec::Vec::new();\n",
                        );
                        for f in fields {
                            assert!(
                                f.with.is_none() && !f.default,
                                "serde_derive: field attributes inside enum variants \
                                 are not supported"
                            );
                            out.push_str(&format!(
                                "__fields.push((::std::string::String::from(\"{0}\"), \
                                 ::serde::value::to_value({0})));\n",
                                f.name
                            ));
                        }
                        out.push_str(&format!(
                            "::serde::Serializer::serialize_value(__s, \
                             ::serde::value::Value::Object(::std::vec![\
                             (::std::string::String::from(\"{vname}\"), \
                             ::serde::value::Value::Object(__fields))]))\n}}\n"
                        ));
                    }
                    VariantKind::Tuple(arity) => {
                        let binders: Vec<String> = (0..*arity).map(|i| format!("__f{i}")).collect();
                        out.push_str(&format!("{name}::{vname}({}) => {{\n", binders.join(", ")));
                        let payload = if *arity == 1 {
                            "::serde::value::to_value(__f0)".to_string()
                        } else {
                            format!(
                                "::serde::value::Value::Array(::std::vec![{}])",
                                binders
                                    .iter()
                                    .map(|b| format!("::serde::value::to_value({b})"))
                                    .collect::<Vec<_>>()
                                    .join(", ")
                            )
                        };
                        out.push_str(&format!(
                            "::serde::Serializer::serialize_value(__s, \
                             ::serde::value::Value::Object(::std::vec![\
                             (::std::string::String::from(\"{vname}\"), {payload})]))\n}}\n"
                        ));
                    }
                }
            }
            out.push_str("}\n");
        }
    }
    out.push_str("}\n}\n");
    out
}

/// Shared struct-shaped serialization: push each field, emit the object.
fn ser_object_body(fields: &[Field], access_prefix: &str, ser: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::value::Value)> = \
         ::std::vec::Vec::with_capacity({});\n",
        fields.len()
    ));
    for f in fields {
        let fname = &f.name;
        match &f.with {
            Some(path) => out.push_str(&format!(
                "__fields.push((::std::string::String::from(\"{fname}\"), \
                 match {path}::serialize(&{access_prefix}{fname}, \
                 ::serde::value::ValueSerializer) {{ \
                 ::core::result::Result::Ok(__v) => __v, \
                 ::core::result::Result::Err(__e) => match __e {{}} }}));\n"
            )),
            None => out.push_str(&format!(
                "__fields.push((::std::string::String::from(\"{fname}\"), \
                 ::serde::value::to_value(&{access_prefix}{fname})));\n"
            )),
        }
    }
    out.push_str(&format!(
        "::serde::Serializer::serialize_value({ser}, ::serde::value::Value::Object(__fields))\n"
    ));
    out
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let mut out = String::new();
    out.push_str(&format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
         fn deserialize<__D: ::serde::Deserializer<'de>>(__d: __D) \
         -> ::core::result::Result<Self, __D::Error> {{\n\
         let __value = ::serde::Deserializer::take_value(__d)?;\n"
    ));
    match &item.body {
        Body::Struct(fields) => {
            out.push_str(&format!(
                "let __obj = ::serde::value::into_object::<__D::Error>(__value, \"{name}\")?;\n\
                 ::core::result::Result::Ok({name} {{\n"
            ));
            for f in fields {
                out.push_str(&de_field(f, "__obj"));
            }
            out.push_str("})\n");
        }
        Body::Enum(variants) => {
            let units: Vec<&Variant> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .collect();
            let payloads: Vec<&Variant> = variants
                .iter()
                .filter(|v| !matches!(v.kind, VariantKind::Unit))
                .collect();
            out.push_str("match __value {\n");
            if !units.is_empty() {
                out.push_str("::serde::value::Value::Str(__s) => match __s.as_str() {\n");
                for v in &units {
                    out.push_str(&format!(
                        "\"{0}\" => ::core::result::Result::Ok({name}::{0}),\n",
                        v.name
                    ));
                }
                out.push_str(&format!(
                    "__other => ::serde::value::unknown_variant::<Self, __D::Error>(\
                     \"{name}\", __other),\n}},\n"
                ));
            }
            if !payloads.is_empty() {
                out.push_str(
                    "::serde::value::Value::Object(__entries) if __entries.len() == 1 => {\n\
                     let (__tag, __inner) = __entries.into_iter().next().expect(\"len checked\");\n\
                     match __tag.as_str() {\n",
                );
                for v in &payloads {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => unreachable!(),
                        VariantKind::Named(fields) => {
                            out.push_str(&format!(
                                "\"{vname}\" => {{\n\
                                 let __obj = ::serde::value::into_object::<__D::Error>(\
                                 __inner, \"{name}::{vname}\")?;\n\
                                 ::core::result::Result::Ok({name}::{vname} {{\n"
                            ));
                            for f in fields {
                                out.push_str(&de_field(f, "__obj"));
                            }
                            out.push_str("})\n}\n");
                        }
                        VariantKind::Tuple(arity) => {
                            if *arity == 1 {
                                out.push_str(&format!(
                                    "\"{vname}\" => ::core::result::Result::Ok({name}::{vname}(\
                                     ::serde::Deserialize::deserialize(\
                                     ::serde::value::ValueDeserializer::<__D::Error>::new(\
                                     __inner))?)),\n"
                                ));
                            } else {
                                let elems: Vec<String> = (0..*arity)
                                    .map(|_| {
                                        "::serde::Deserialize::deserialize(\
                                         ::serde::value::ValueDeserializer::<__D::Error>::new(\
                                         __items.next().expect(\"len checked\")))?"
                                            .to_string()
                                    })
                                    .collect();
                                out.push_str(&format!(
                                    "\"{vname}\" => match __inner {{\n\
                                     ::serde::value::Value::Array(__a) if __a.len() == {arity} \
                                     => {{\n\
                                     let mut __items = __a.into_iter();\n\
                                     ::core::result::Result::Ok({name}::{vname}({}))\n}}\n\
                                     __bad => ::core::result::Result::Err(\
                                     <__D::Error as ::serde::de::Error>::custom(::std::format!(\
                                     \"expected an array for {name}::{vname}, found {{}}\", \
                                     __bad.kind()))),\n}},\n",
                                    elems.join(", ")
                                ));
                            }
                        }
                    }
                }
                out.push_str(&format!(
                    "__other => ::serde::value::unknown_variant::<Self, __D::Error>(\
                     \"{name}\", __other),\n}}\n}},\n"
                ));
            }
            out.push_str(&format!(
                "__other => ::core::result::Result::Err(\
                 <__D::Error as ::serde::de::Error>::custom(::std::format!(\
                 \"invalid value for enum {name}: {{}}\", __other.kind()))),\n}}\n"
            ));
        }
    }
    out.push_str("}\n}\n");
    out
}

fn de_field(f: &Field, obj: &str) -> String {
    let fname = &f.name;
    let ty = &f.ty;
    match (&f.with, f.default) {
        (Some(path), _) => format!(
            "{fname}: {path}::deserialize(\
             ::serde::value::ValueDeserializer::<__D::Error>::new(\
             ::serde::value::field_or_null(&{obj}, \"{fname}\")))?,\n"
        ),
        (None, true) => format!(
            "{fname}: ::serde::value::get_field_default::<{ty}, __D::Error>(\
             &{obj}, \"{fname}\")?,\n"
        ),
        (None, false) => format!(
            "{fname}: ::serde::value::get_field::<{ty}, __D::Error>(&{obj}, \"{fname}\")?,\n"
        ),
    }
}
