//! Offline-vendored mini `criterion`.
//!
//! A wall-clock micro-benchmark harness exposing the subset of the real
//! criterion API this workspace's benches use: `Criterion`,
//! `benchmark_group` (with `sample_size`, `throughput`, `bench_function`,
//! `bench_with_input`, `finish`), `Bencher::iter`, `BenchmarkId`,
//! `Throughput`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! No statistics engine, HTML reports, or regression detection — each
//! benchmark is calibrated to a target sample duration, timed over a
//! bounded number of samples, and summarized on stdout (median, min,
//! throughput when configured).

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // Ignore criterion CLI arguments (e.g. `--bench`, filters) passed
        // by `cargo bench`; this mini-harness always runs everything.
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size,
            throughput: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, None, f);
        self
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares how much work one iteration performs, enabling a
    /// work-per-second summary line.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks a closure under `id` within this group.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&full, self.sample_size, self.throughput, f);
        self
    }

    /// Benchmarks a closure that receives a borrowed input.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        T: ?Sized,
        F: FnMut(&mut Bencher, &T),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&full, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Times the closure passed to [`Bencher::iter`].
pub struct Bencher {
    iters_per_sample: u64,
    samples: usize,
    /// Measured per-iteration durations (seconds), one per sample.
    results: Vec<f64>,
}

impl Bencher {
    /// Runs `f` repeatedly and records per-iteration wall time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Calibration: one untimed run, then size samples so each lasts
        // long enough for the clock to resolve (~5 ms target), capped so a
        // slow benchmark still finishes promptly.
        let warm = Instant::now();
        black_box(f());
        let once = warm.elapsed().max(Duration::from_nanos(1));

        let target = Duration::from_millis(5);
        let iters = (target.as_secs_f64() / once.as_secs_f64()).ceil() as u64;
        self.iters_per_sample = iters.clamp(1, 10_000_000);

        // Keep total time per benchmark bounded (~2 s budget).
        let per_sample = once.as_secs_f64() * self.iters_per_sample as f64;
        let max_samples = (2.0 / per_sample.max(1e-9)) as usize;
        let samples = self.samples.min(max_samples.max(2));

        self.results.clear();
        for _ in 0..samples {
            let t0 = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            let dt = t0.elapsed().as_secs_f64() / self.iters_per_sample as f64;
            self.results.push(dt);
        }
    }
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion into a benchmark identifier (`&str` or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Quantity of work one iteration represents.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    samples: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher {
        iters_per_sample: 1,
        samples,
        results: Vec::new(),
    };
    f(&mut bencher);
    if bencher.results.is_empty() {
        println!("{name:<50} (no measurement: Bencher::iter was not called)");
        return;
    }
    let mut sorted = bencher.results.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    let median = sorted[sorted.len() / 2];
    let min = sorted[0];
    let mut line = format!(
        "{name:<50} time: [median {} | min {}] ({} samples x {} iters)",
        fmt_duration(median),
        fmt_duration(min),
        sorted.len(),
        bencher.iters_per_sample,
    );
    if let Some(t) = throughput {
        let (amount, unit) = match t {
            Throughput::Elements(n) => (n as f64, "elem/s"),
            Throughput::Bytes(n) => (n as f64, "B/s"),
        };
        line.push_str(&format!(" thrpt: {:.3e} {unit}", amount / median));
    }
    println!("{line}");
}

fn fmt_duration(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Collects benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` from one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("test");
        group.sample_size(3);
        group.throughput(Throughput::Elements(10));
        let mut calls = 0u64;
        group.bench_function(BenchmarkId::from_parameter(1), |b| {
            b.iter(|| {
                calls += 1;
                std::hint::black_box(calls)
            })
        });
        group.finish();
        assert!(calls > 0);
    }
}
