//! Sweep-engine throughput: pictures smoothed per second through a
//! Fig 7-style grid (lookahead sweep at D = 0.2, K = 1 over all four
//! paper sequences), serial vs parallel.
//!
//! The `Throughput::Elements` line reports pictures/second; comparing the
//! `threads/1` and `threads/<cores>` rows gives the sweep-layer speedup
//! on this machine. Output is deterministic, so the rows only differ in
//! time, never in result.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use smooth_core::{PatternEstimator, RateSelection, SmootherParams};
use smooth_sweep::smooth_grid;
use smooth_trace::{paper_sequences, VideoTrace};

fn sweep_throughput(c: &mut Criterion) {
    let traces = paper_sequences();
    let trace_refs: Vec<&VideoTrace> = traces.iter().collect();
    let params: Vec<SmootherParams> = [1usize, 2, 5, 9, 12, 18]
        .iter()
        .map(|&h| SmootherParams::at_30fps(0.2, 1, h).expect("feasible"))
        .collect();
    let estimator = PatternEstimator::default();

    let pictures_per_sweep: u64 =
        trace_refs.iter().map(|t| t.len() as u64).sum::<u64>() * params.len() as u64;

    let mut group = c.benchmark_group("sweep");
    group.sample_size(10);
    group.throughput(Throughput::Elements(pictures_per_sweep));

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut thread_counts = vec![1];
    if cores > 1 {
        thread_counts.push(cores);
    }
    for threads in thread_counts {
        group.bench_function(BenchmarkId::new("threads", threads), |b| {
            b.iter(|| {
                smooth_grid(
                    threads,
                    &trace_refs,
                    &params,
                    &estimator,
                    RateSelection::Basic,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, sweep_throughput);
criterion_main!(benches);
