//! Multiplexer throughput: breakpoint events per second through the
//! streaming k-way-merge engine vs the frozen quadratic
//! `mux::reference`, over the synthetic scale ladder.
//!
//! The streaming engine is benched at S ∈ {16, 256, 1 000, 10 000}; the
//! reference only up to S = 256 here (its S² cost would make a Criterion
//! run at 1k+ take minutes per sample). The `Throughput::Elements` line
//! reports events/second, so rows are comparable across S.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use smooth_bench::muxbench::synthetic_ensemble;
use smooth_metrics::StepFunction;
use smooth_netsim::{mux, FluidMux, RateSweep};

fn events(inputs: &[StepFunction]) -> u64 {
    inputs.iter().map(|f| f.breakpoints().len() as u64).sum()
}

fn mux_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("mux");
    group.sample_size(10);

    for sources in [16usize, 256, 1_000, 10_000] {
        let inputs = synthetic_ensemble(sources);
        let horizon = inputs.iter().map(|f| f.domain_end()).fold(0.0, f64::max);
        let capacity_bps = 2.35e6 * sources as f64;
        let buffer_bits = 2.0e3 * sources as f64;
        group.throughput(Throughput::Elements(events(&inputs)));

        let sweep = RateSweep {
            capacity_bps,
            buffer_bits,
        };
        group.bench_function(BenchmarkId::new("engine", sources), |b| {
            b.iter(|| sweep.run(&inputs, 0.0, horizon))
        });

        if sources <= 256 {
            let fluid = FluidMux {
                capacity_bps,
                buffer_bits,
            };
            group.bench_function(BenchmarkId::new("reference", sources), |b| {
                b.iter(|| mux::reference::run(&fluid, &inputs, 0.0, horizon))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, mux_throughput);
criterion_main!(benches);
