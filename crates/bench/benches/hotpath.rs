//! Hot-path cost per picture: incremental lookahead engine vs the naive
//! reference it replaced, on the synthetic throughput trace at `H = 32`.
//!
//! The `engine` row is `smooth_with_scratch` (sliding `LookaheadWindow`,
//! closed-form pattern estimate, zero per-picture allocations after
//! warm-up); `reference` is the pre-PR per-picture refill with the
//! walk-back estimator. Both compute bit-identical schedules (pinned by
//! `crates/core/tests/incremental_props.rs`), so the ratio of the two
//! rows is pure hot-path speedup. `Throughput::Elements` reports
//! pictures/second directly.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use smooth_bench::throughput::{synthetic_trace, throughput_params};
use smooth_core::reference::{smooth_reference_with, ReferencePatternEstimator};
use smooth_core::{smooth_with_scratch, RateSelection, SmoothScratch};

/// Benchmark on a 100k-picture slice of the synthetic trace: long enough
/// to dominate warm-up, short enough for Criterion's repeated sampling.
const BENCH_PICTURES: usize = 100_000;

fn hotpath(c: &mut Criterion) {
    let trace = synthetic_trace(BENCH_PICTURES);
    let params = throughput_params();

    let mut group = c.benchmark_group("hotpath");
    group.sample_size(10);
    group.throughput(Throughput::Elements(trace.len() as u64));

    let mut scratch = SmoothScratch::new();
    group.bench_function("engine", |b| {
        b.iter(|| smooth_with_scratch(&trace, params, &mut scratch))
    });

    let estimator = ReferencePatternEstimator::default();
    group.bench_function("reference", |b| {
        b.iter(|| smooth_reference_with(&trace, params, &estimator, RateSelection::Basic))
    });

    group.finish();
}

criterion_group!(benches, hotpath);
criterion_main!(benches);
