//! One bench per reproduced table/figure: times the full regeneration of
//! each experiment in DESIGN.md's per-experiment index (Fig 3–8, the
//! Theorem 1 grid, X-mux, X-mod, X-quant).

use criterion::{criterion_group, criterion_main, Criterion};
use smooth_bench::experiments;
use std::hint::black_box;

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    // Whole-evaluation regenerations are heavyweight; fewer samples.
    group.sample_size(10);
    for (name, gen) in experiments::all() {
        group.bench_function(name, |b| {
            b.iter(|| black_box(gen()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
