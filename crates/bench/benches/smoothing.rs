//! Core algorithm benchmarks: the smoother itself, the streaming
//! interface, and the reference schedulers, on the paper's main sequence.
//!
//! The algorithm runs per picture with an O(H) inner loop, so a 300-
//! picture trace at H = 9 is ~2,700 bound evaluations — these benches
//! keep that honest (a transport protocol runs this 30 times per second
//! per stream).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smooth_core::{
    ideal_smooth, ott_smooth, smooth, smooth_with, OnlineSmoother, PatternEstimator, RateSelection,
    SmootherParams,
};
use smooth_trace::driving1;
use std::hint::black_box;

fn bench_basic_algorithm(c: &mut Criterion) {
    let trace = driving1();
    let mut group = c.benchmark_group("smooth_basic");
    for d in [0.1, 0.2, 0.3] {
        let params = SmootherParams::at_30fps(d, 1, 9).expect("feasible");
        group.bench_with_input(
            BenchmarkId::new("driving1_300", format!("D={d}")),
            &params,
            |b, &p| {
                b.iter(|| smooth(black_box(&trace), p));
            },
        );
    }
    group.finish();
}

fn bench_lookahead_cost(c: &mut Criterion) {
    let trace = driving1();
    let mut group = c.benchmark_group("smooth_lookahead");
    for h in [1usize, 9, 27] {
        let params = SmootherParams::at_30fps(0.2, 1, h).expect("feasible");
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("H={h}")),
            &params,
            |b, &p| {
                b.iter(|| smooth(black_box(&trace), p));
            },
        );
    }
    group.finish();
}

fn bench_moving_average(c: &mut Criterion) {
    let trace = driving1();
    let params = SmootherParams::at_30fps(0.2, 1, 9).expect("feasible");
    let est = PatternEstimator::default();
    c.bench_function("smooth_moving_average_driving1_300", |b| {
        b.iter(|| {
            smooth_with(
                black_box(&trace),
                params,
                &est,
                RateSelection::MovingAverage,
            )
        });
    });
}

fn bench_online_push(c: &mut Criterion) {
    let trace = driving1();
    let params = SmootherParams::at_30fps(0.2, 1, 9).expect("feasible");
    c.bench_function("online_push_300_pictures", |b| {
        b.iter(|| {
            let mut s = OnlineSmoother::for_stored(params, trace.pattern, trace.len());
            let mut n = 0;
            for &bits in &trace.sizes {
                n += s.push(black_box(bits)).len();
            }
            n += s.finish().len();
            n
        });
    });
}

fn bench_baselines(c: &mut Criterion) {
    let trace = driving1();
    c.bench_function("ideal_smooth_driving1_300", |b| {
        b.iter(|| ideal_smooth(black_box(&trace)));
    });
    c.bench_function("ott_taut_string_driving1_300", |b| {
        b.iter(|| ott_smooth(black_box(&trace), 0.2).expect("feasible"));
    });
}

criterion_group!(
    benches,
    bench_basic_algorithm,
    bench_lookahead_cost,
    bench_moving_average,
    bench_online_push,
    bench_baselines
);
criterion_main!(benches);
