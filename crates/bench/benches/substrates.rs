//! Substrate benchmarks: the synthetic encoder, the MPEG-1 bitstream
//! writer/parser, step-function analytics, the ATM packetizer, and the
//! multiplexer models.

use criterion::{criterion_group, criterion_main, Criterion};
use smooth_core::{smooth, unsmoothed, SmootherParams};
use smooth_metrics::{measure, StepFunction};
use smooth_mpeg::bitstream::{parse_stream, write_stream, SequenceHeader, StreamSpec};
use smooth_mpeg::synth::{EncoderModel, SceneScript};
use smooth_mpeg::{GopPattern, Resolution};
use smooth_netsim::{cell_times, CellMux, FluidMux};
use smooth_rng::Rng;
use smooth_trace::{driving1, generate, SequenceId};
use std::hint::black_box;

fn bench_synth_encoder(c: &mut Criterion) {
    let model = EncoderModel::new(Resolution::VGA, GopPattern::new(3, 9).expect("static"));
    let script = SceneScript::steady(300, 1.0, 0.8);
    c.bench_function("synth_encode_300_pictures", |b| {
        b.iter(|| model.encode_sizes(black_box(&script), &mut Rng::seed_from_u64(1)));
    });
    c.bench_function("trace_generate_driving1_300", |b| {
        b.iter(|| generate(SequenceId::Driving1, 300, black_box(7)));
    });
}

fn bench_bitstream(c: &mut Criterion) {
    let trace = driving1().truncated(27);
    let spec = StreamSpec::new(SequenceHeader::vbr(trace.resolution), trace.pattern);
    c.bench_function("bitstream_write_27_pictures", |b| {
        b.iter(|| write_stream(black_box(&spec), black_box(&trace.sizes), 1));
    });
    let written = write_stream(&spec, &trace.sizes, 1);
    c.bench_function("bitstream_parse_27_pictures", |b| {
        b.iter(|| parse_stream(black_box(&written.bytes)));
    });
}

fn bench_metrics(c: &mut Criterion) {
    let trace = driving1();
    let result = smooth(
        &trace,
        SmootherParams::at_30fps(0.2, 1, 9).expect("feasible"),
    );
    c.bench_function("measures_driving1", |b| {
        b.iter(|| measure(black_box(&trace), black_box(&result)));
    });
    let f = StepFunction::from_segments(&result.rate_segments());
    c.bench_function("step_integral_driving1", |b| {
        b.iter(|| f.integral(black_box(0.0), black_box(10.0)));
    });
}

fn bench_netsim(c: &mut Criterion) {
    let trace = driving1();
    let raw = unsmoothed(&trace);
    let inputs: Vec<StepFunction> = (0..8)
        .map(|_| StepFunction::from_segments(&raw.segments))
        .collect();
    let mux = FluidMux {
        capacity_bps: 20.0e6,
        buffer_bits: 0.25e6,
    };
    c.bench_function("fluid_mux_8x300_pictures", |b| {
        b.iter(|| mux.run(black_box(&inputs), 0.0, 10.0));
    });

    let cells = cell_times(&raw.segments);
    let cmux = CellMux {
        capacity_bps: 20.0e6,
        buffer_cells: 128,
    };
    c.bench_function("packetize_driving1", |b| {
        b.iter(|| cell_times(black_box(&raw.segments)));
    });
    c.bench_function("cell_mux_driving1", |b| {
        b.iter(|| cmux.run(black_box(&cells)));
    });
}

criterion_group!(
    benches,
    bench_synth_encoder,
    bench_bitstream,
    bench_metrics,
    bench_netsim
);
criterion_main!(benches);
