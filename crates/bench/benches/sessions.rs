//! Session-engine throughput: aggregate picture decisions per second
//! when a fleet of concurrent live sessions advances in lockstep ticks.
//!
//! The fleet is rebuilt per iteration (an engine is consumed by
//! `finish`), so the timed region includes construction — a small,
//! ladder-constant fraction of the tick work. The `Throughput::Elements`
//! line reports decisions/second, comparable across the session ladder.
//! The construction-excluded 1M point lives in the experiments binary's
//! `session_throughput[]` records instead — one Criterion sample at that
//! scale would take minutes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use smooth_bench::sessionbench::{session_class, SESSION_TICKS};
use smooth_engine::{SessionEngine, SyntheticFleet};

fn session_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("sessions");
    group.sample_size(10);

    let class = session_class();
    let pattern = class.pattern;
    let fleet = SyntheticFleet {
        seed: 0x5e55be7c,
        pattern,
    };

    for sessions in [1_000usize, 10_000, 100_000] {
        group.throughput(Throughput::Elements(sessions as u64 * SESSION_TICKS));
        // The lockstep tick loop (what the mux adapter drives): one
        // sweep over fleet state per tick.
        group.bench_function(BenchmarkId::new("lockstep", sessions), |b| {
            b.iter(|| {
                let mut engine = SessionEngine::new(vec![class.clone()]);
                engine.add_sessions(0, sessions);
                for _ in 0..SESSION_TICKS {
                    engine.tick(&fleet, 1);
                }
                engine.finish(&fleet, 1);
                engine.decisions()
            })
        });
        // The session-major batched driver (what the experiments binary
        // gates): bit-identical, one sweep per batch.
        group.bench_function(BenchmarkId::new("batched", sessions), |b| {
            b.iter(|| {
                let mut engine = SessionEngine::new(vec![class.clone()]);
                engine.add_sessions(0, sessions);
                engine.run(&fleet, SESSION_TICKS, true, 1);
                engine.decisions()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, session_throughput);
criterion_main!(benches);
