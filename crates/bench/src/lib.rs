//! # smooth-bench
//!
//! Experiment harness for the `mpeg-smooth` workspace: one generator per
//! paper figure/table ([`experiments`]), a tiny terminal/CSV [`table`]
//! layer, and the `experiments` binary that regenerates the whole
//! evaluation:
//!
//! ```sh
//! cargo run --release -p smooth-bench --bin experiments          # everything
//! cargo run --release -p smooth-bench --bin experiments fig6     # one figure
//! ```
//!
//! Criterion benches (`benches/`) time the same generators plus the
//! underlying substrates.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod churnbench;
pub mod experiments;
pub mod fleetmuxbench;
pub mod muxbench;
pub mod scalebench;
pub mod sessionbench;
pub mod table;
pub mod throughput;

pub use table::Table;
