//! Multiplexer-sweep throughput: breakpoint events per second through
//! the streaming k-way-merge engine ([`smooth_netsim::RateSweep`]),
//! against the frozen quadratic oracle (`smooth_netsim::mux::reference`)
//! where the latter is still affordable.
//!
//! Two source families, each swept over a scale ladder:
//!
//! * `synthetic` — bursty piecewise-constant sources with
//!   [`SYNTHETIC_BREAKS`] breakpoints each (mean ~2 Mbps), at
//!   S ∈ {16, 256, 1 000, 10 000};
//! * `driving1` — the X-mux experiment's trace-derived ensemble
//!   (seed variants of Driving1, phase-staggered and cyclically
//!   wrapped), at S ∈ {16, 256}.
//!
//! Each measurement is a min-of-[`crate::throughput::MEASURE_REPEATS`]
//! wall time; the reference is timed only up to [`REFERENCE_CEILING`]
//! sources — it is O(S²·B·log B), so at 10k sources it would run for
//! hours while the streaming engine finishes in milliseconds. Records
//! land in `BENCH_sweep.json` as `mux_throughput[]`.

use smooth_core::RateSegment;
use smooth_metrics::StepFunction;
use smooth_netsim::{mux, FluidMux, MultiplexConfig, RateSweep, SourceMode};
use smooth_rng::Rng;
use smooth_sweep::bench::MuxThroughputRecord;
use smooth_trace::SequenceId;

use crate::throughput::{best_of, sample_of};

/// Breakpoints per synthetic source.
pub const SYNTHETIC_BREAKS: usize = 64;

/// Largest source count at which the quadratic reference is timed; past
/// this it would dominate the whole suite's wall time.
pub const REFERENCE_CEILING: usize = 1_000;

/// The standard scale ladder for the synthetic family.
pub const STANDARD_SOURCES: [usize; 4] = [16, 256, 1_000, 10_000];

/// The scale ladder for the trace-derived family (each point pays for
/// `S` full smoothing-pipeline runs up front, so it stays modest).
pub const DRIVING1_SOURCES: [usize; 2] = [16, 256];

/// One bursty synthetic source: [`SYNTHETIC_BREAKS`] pieces with random
/// durations in [20 ms, 200 ms] and rates uniform in [0, 4 Mbps].
fn synthetic_source(seed: u64) -> StepFunction {
    let mut rng = Rng::seed_from_u64(seed);
    let mut segs = Vec::with_capacity(SYNTHETIC_BREAKS);
    let mut t = 0.0;
    for _ in 0..SYNTHETIC_BREAKS {
        let dur = rng.range_f64(0.02, 0.2);
        segs.push(RateSegment {
            start: t,
            end: t + dur,
            rate: rng.range_f64(0.0, 4.0e6),
        });
        t += dur;
    }
    StepFunction::from_segments(&segs)
}

/// A deterministic ensemble of `sources` synthetic sources.
pub fn synthetic_ensemble(sources: usize) -> Vec<StepFunction> {
    (0..sources)
        .map(|s| synthetic_source(0xbe7c ^ s as u64))
        .collect()
}

/// The sweep's `T`: total breakpoints across the ensemble.
fn total_events(inputs: &[StepFunction]) -> u64 {
    inputs.iter().map(|f| f.breakpoints().len() as u64).sum()
}

fn measure(
    name: &str,
    inputs: &[StepFunction],
    t_end: f64,
    capacity_bps: f64,
    buffer_bits: f64,
    threads: usize,
) -> MuxThroughputRecord {
    let sweep = RateSweep {
        capacity_bps,
        buffer_bits,
    };
    let walls = sample_of(|| sweep.run_threaded(inputs, 0.0, t_end, threads));
    let reference_seconds = (inputs.len() <= REFERENCE_CEILING).then(|| {
        let fluid = FluidMux {
            capacity_bps,
            buffer_bits,
        };
        best_of(|| mux::reference::run(&fluid, inputs, 0.0, t_end))
    });
    MuxThroughputRecord::with_walls(
        name,
        inputs.len(),
        total_events(inputs),
        &walls,
        reference_seconds,
        threads,
    )
}

/// Times the synthetic family at `sources`, capacity and buffer scaled
/// linearly with the ensemble (~0.85 nominal load, ~2 kbit buffer per
/// source) so every ladder point stresses the same regime.
pub fn measure_synthetic(sources: usize, threads: usize) -> MuxThroughputRecord {
    let inputs = synthetic_ensemble(sources);
    let horizon = inputs.iter().map(|f| f.domain_end()).fold(0.0, f64::max);
    measure(
        &format!("mux_synthetic_S{sources}"),
        &inputs,
        horizon,
        2.35e6 * sources as f64,
        2.0e3 * sources as f64,
        threads,
    )
}

/// Times the X-mux trace-derived family at `sources`: seed variants of
/// Driving1, phase-staggered and cyclically wrapped, with the X-mux
/// experiment's per-source capacity (2.5 Mbps) and buffer (~31 kbit).
pub fn measure_driving1(sources: usize, threads: usize) -> MuxThroughputRecord {
    let cfg = MultiplexConfig {
        sequence: SequenceId::Driving1,
        pictures: 120,
        sources,
        mode: SourceMode::Unsmoothed,
        capacity_bps: 2.5e6 * sources as f64,
        buffer_bits: 31.25e3 * sources as f64,
        seed: 2024,
    };
    let (inputs, _, period) = smooth_netsim::multiplex_inputs_threaded(&cfg, threads);
    measure(
        &format!("mux_driving1_S{sources}"),
        &inputs,
        period,
        cfg.capacity_bps,
        cfg.buffer_bits,
        threads,
    )
}

/// The records `BENCH_sweep.json` carries by default: the full synthetic
/// ladder plus the trace-derived points.
pub fn standard_mux_suite(threads: usize) -> Vec<MuxThroughputRecord> {
    let mut out = Vec::new();
    for &s in &STANDARD_SOURCES {
        out.push(measure_synthetic(s, threads));
    }
    for &s in &DRIVING1_SOURCES {
        out.push(measure_driving1(s, threads));
    }
    out
}

/// A single-point suite at an explicit source count (the `--sources N`
/// scale knob): one synthetic and one trace-derived measurement.
pub fn scaled_mux_suite(threads: usize, sources: usize) -> Vec<MuxThroughputRecord> {
    vec![
        measure_synthetic(sources, threads),
        measure_driving1(sources, threads),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_ensemble_is_deterministic() {
        let a = synthetic_ensemble(4);
        let b = synthetic_ensemble(4);
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
        for f in &a {
            assert_eq!(f.breakpoints().len(), SYNTHETIC_BREAKS + 1);
        }
    }

    #[test]
    fn small_synthetic_point_reports_reference_and_speedup() {
        let rec = measure_synthetic(16, 1);
        assert_eq!(rec.sources, 16);
        assert_eq!(rec.events, 16 * (SYNTHETIC_BREAKS as u64 + 1));
        assert!(rec.events_per_sec > 0.0);
        assert!(rec.reference_seconds.is_some());
        assert!(rec.speedup.is_some());
    }

    #[test]
    fn above_the_ceiling_no_reference_is_timed() {
        // 1 001 sources: just over the ceiling, cheap for the streaming
        // engine, and the quadratic oracle must not be touched.
        let rec = measure_synthetic(REFERENCE_CEILING + 1, 1);
        assert_eq!(rec.reference_seconds, None);
        assert_eq!(rec.speedup, None);
        assert!(rec.events_per_sec > 0.0);
    }

    #[test]
    fn driving1_point_measures_the_xmux_ensemble() {
        let rec = measure_driving1(4, 1);
        assert_eq!(rec.sources, 4);
        assert!(rec.events > 0);
        assert!(rec.reference_seconds.is_some());
    }
}
