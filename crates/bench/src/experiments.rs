//! One function per paper figure/table: each regenerates the series the
//! paper plots and returns it as [`Table`]s (printed by the `experiments`
//! binary, persisted as CSV under `results/`, and timed by the Criterion
//! benches).
//!
//! The per-experiment index in DESIGN.md §4 maps each function here to
//! the paper figure it reproduces; EXPERIMENTS.md records the
//! paper-vs-measured comparison.

use crate::table::{f, Table};
use smooth_core::{
    check_theorem1, ideal_smooth, ott_smooth, smooth, smooth_with, PatternEstimator, RateSelection,
    SmootherParams, SmoothingResult,
};
use smooth_metrics::{delay_stats, measure, SmoothnessMeasures};
use smooth_mpeg::synth::{size_factor, size_ratio, PAPER_I_BITS_Q30, PAPER_I_BITS_Q4};
use smooth_netsim::{buffer_sweep, MultiplexConfig, SourceMode};
use smooth_trace::{analyze, driving1, paper_sequences, SequenceId, VideoTrace};

const TAU: f64 = 1.0 / 30.0;

fn measures(trace: &VideoTrace, result: &SmoothingResult) -> SmoothnessMeasures {
    measure(trace, result)
}

/// **Figure 3** — the picture-size traces of the four sequences (the
/// paper prints Driving1 and Tennis; we emit all four), plus the §5.1
/// per-type statistics.
pub fn fig3() -> Vec<Table> {
    let mut tables = Vec::new();

    let mut summary = Table::new(
        "Fig 3 summary: per-type picture sizes (bits)",
        &[
            "sequence",
            "pattern",
            "res",
            "I mean",
            "I max",
            "P mean",
            "B mean",
            "I/B ratio",
            "mean Mbps",
        ],
    );
    for trace in paper_sequences() {
        let st = analyze(&trace);
        summary.push(vec![
            trace.name.clone(),
            trace.pattern.to_string(),
            trace.resolution.to_string(),
            f(st.i.mean, 0),
            st.i.max.to_string(),
            f(st.p.mean, 0),
            f(st.b.mean, 0),
            f(st.i.mean / st.b.mean, 1),
            f(st.mean_rate_bps / 1e6, 2),
        ]);

        let mut series = Table::new(
            format!("Fig 3 series: {} picture sizes", trace.name),
            &["picture", "type", "bits"],
        );
        for (i, &bits) in trace.sizes.iter().enumerate() {
            series.push(vec![
                i.to_string(),
                trace.type_of(i).to_string(),
                bits.to_string(),
            ]);
        }
        tables.push(series);
    }
    tables.insert(0, summary);
    tables
}

/// **Figure 4** — `r(t)` vs ideal `R(t)` for Driving1, K = 1, H = 9, at
/// four delay bounds. Emits both the per-D summary the text discusses and
/// the full step series for plotting.
pub fn fig4() -> Vec<Table> {
    let trace = driving1();
    let ds = [0.10, 0.1333, 0.20, 0.30];
    let mut tables = Vec::new();

    let mut summary = Table::new(
        "Fig 4 summary: Driving1 r(t) vs D (K=1, H=9)",
        &[
            "D (s)",
            "max r Mbps",
            "SD kbps",
            "rate changes",
            "area diff",
            "max delay ms",
        ],
    );
    let results = smooth_sweep::par_map(smooth_sweep::default_threads(), &ds, |_, &d| {
        smooth(&trace, SmootherParams::at_30fps(d, 1, 9).expect("feasible"))
    });
    for (&d, result) in ds.iter().zip(&results) {
        let m = measures(&trace, result);
        summary.push(vec![
            f(d, 4),
            f(m.max_rate_bps / 1e6, 3),
            f(m.std_dev_bps / 1e3, 1),
            m.rate_changes.to_string(),
            f(m.area_difference, 4),
            f(result.max_delay() * 1e3, 1),
        ]);

        let mut series = Table::new(
            format!("Fig 4 series: Driving1 rate function D={d}"),
            &["t (s)", "rate (Mbps)"],
        );
        for seg in result.rate_segments() {
            series.push(vec![f(seg.start, 5), f(seg.rate / 1e6, 4)]);
        }
        tables.push(series);
    }

    // The ideal R(t) reference curve.
    let ideal = ideal_smooth(&trace);
    let mut ideal_series = Table::new(
        "Fig 4 series: Driving1 ideal R(t)",
        &["t (s)", "rate (Mbps)"],
    );
    for seg in &ideal.segments {
        ideal_series.push(vec![f(seg.start, 5), f(seg.rate / 1e6, 4)]);
    }
    tables.push(ideal_series);
    tables.insert(0, summary);
    tables
}

/// **Figure 5** — per-picture delays: (left) D = 0.1 and D = 0.3 vs ideal
/// smoothing; (right) K = 1 vs K = 9 at constant slack vs ideal.
pub fn fig5() -> Vec<Table> {
    let trace = driving1();
    let d01 = smooth(
        &trace,
        SmootherParams::at_30fps(0.1, 1, 9).expect("feasible"),
    );
    let d03 = smooth(
        &trace,
        SmootherParams::at_30fps(0.3, 1, 9).expect("feasible"),
    );
    let k1 = smooth(&trace, SmootherParams::constant_slack(1, 9, TAU));
    let k9 = smooth(&trace, SmootherParams::constant_slack(9, 9, TAU));
    let ideal = ideal_smooth(&trace);

    let mut series = Table::new(
        "Fig 5 series: Driving1 per-picture delays (s)",
        &[
            "picture",
            "D=0.1 K=1",
            "D=0.3 K=1",
            "slack K=1",
            "slack K=9",
            "ideal",
        ],
    );
    for i in 0..trace.len() {
        series.push(vec![
            i.to_string(),
            f(d01.schedule[i].delay, 5),
            f(d03.schedule[i].delay, 5),
            f(k1.schedule[i].delay, 5),
            f(k9.schedule[i].delay, 5),
            f(ideal.schedule[i].delay, 5),
        ]);
    }

    let mut summary = Table::new(
        "Fig 5 summary: delay statistics (s)",
        &["case", "min", "mean", "max", "bound", "violations"],
    );
    let mut push = |name: &str, st: smooth_metrics::DelayStats, bound: Option<f64>| {
        summary.push(vec![
            name.to_string(),
            f(st.min, 4),
            f(st.mean, 4),
            f(st.max, 4),
            bound.map(|b| f(b, 4)).unwrap_or_else(|| "-".into()),
            st.over_bound.to_string(),
        ]);
    };
    push(
        "basic D=0.1 K=1 H=9",
        delay_stats(d01.delays(), Some(0.1)),
        Some(0.1),
    );
    push(
        "basic D=0.3 K=1 H=9",
        delay_stats(d03.delays(), Some(0.3)),
        Some(0.3),
    );
    push(
        "basic slack K=1 H=9",
        delay_stats(k1.delays(), Some(k1.params.delay_bound)),
        Some(k1.params.delay_bound),
    );
    push(
        "basic slack K=9 H=9",
        delay_stats(k9.delays(), Some(k9.params.delay_bound)),
        Some(k9.params.delay_bound),
    );
    push("ideal smoothing", delay_stats(ideal.delays(), None), None);

    vec![summary, series]
}

/// Shared sweep driver for Figures 6–8: each grid point is smoothed and
/// measured in parallel ([`smooth_sweep::par_map`] with the process
/// default worker count), with rows collected back in grid order — the
/// table is byte-identical to the old serial loop for any thread count.
fn sweep_table(
    title: &str,
    param_name: &str,
    configs: impl Iterator<Item = (String, VideoTrace, SmootherParams)>,
) -> Table {
    let configs: Vec<(String, VideoTrace, SmootherParams)> = configs.collect();
    let threads = smooth_sweep::default_threads();
    let rows = smooth_sweep::par_map(threads, &configs, |_, (value, trace, params)| {
        let result = smooth(trace, *params);
        debug_assert_eq!(result.delay_violations(), 0);
        let m = measures(trace, &result);
        vec![
            trace.name.clone(),
            value.clone(),
            f(m.area_difference, 4),
            m.rate_changes.to_string(),
            f(m.max_rate_bps / 1e6, 3),
            f(m.std_dev_bps / 1e3, 1),
        ]
    });
    let mut table = Table::new(
        title,
        &[
            "sequence",
            param_name,
            "area diff",
            "rate changes",
            "max r Mbps",
            "SD kbps",
        ],
    );
    for row in rows {
        table.push(row);
    }
    table
}

/// **Figure 6** — the four measures as a function of the delay bound `D`
/// (K = 1, H = N) for all four sequences.
pub fn fig6() -> Vec<Table> {
    let ds = [0.0667, 0.0833, 0.10, 0.1333, 0.1667, 0.20, 0.25, 0.30];
    let configs = paper_sequences().into_iter().flat_map(move |trace| {
        ds.into_iter().map(move |d| {
            let n = trace.pattern.n();
            (
                f(d, 4),
                trace.clone(),
                SmootherParams::at_30fps(d, 1, n).expect("feasible"),
            )
        })
    });
    vec![sweep_table(
        "Fig 6: measures vs delay bound D (K=1, H=N)",
        "D (s)",
        configs,
    )]
}

/// **Figure 7** — the four measures as a function of the lookahead `H`
/// (D = 0.2, K = 1) for all four sequences.
pub fn fig7() -> Vec<Table> {
    let configs = paper_sequences().into_iter().flat_map(|trace| {
        let n = trace.pattern.n();
        let hs = [1, 2, n / 2, n - 1, n, n + 3, 2 * n - 3, 2 * n];
        hs.into_iter().map(move |h| {
            let h = h.max(1);
            (
                h.to_string(),
                trace.clone(),
                SmootherParams::at_30fps(0.2, 1, h).expect("feasible"),
            )
        })
    });
    vec![sweep_table(
        "Fig 7: measures vs lookahead H (D=0.2, K=1)",
        "H",
        configs,
    )]
}

/// **Figure 8** — the four measures as a function of `K` at constant
/// slack `D = 0.1333 + (K+1)/30`, H = N, for all four sequences.
pub fn fig8() -> Vec<Table> {
    let mut tables = vec![sweep_table(
        "Fig 8: measures vs K (D = 0.1333 + (K+1)/30, H=N)",
        "K",
        paper_sequences().into_iter().flat_map(|trace| {
            let n = trace.pattern.n();
            (1..=12usize).map(move |k| {
                (
                    k.to_string(),
                    trace.clone(),
                    SmootherParams::constant_slack(k, n, TAU),
                )
            })
        }),
    )];

    // Companion: the delay cost of K (why the paper recommends K = 1).
    let mut delays = Table::new(
        "Fig 8 companion: mean delay vs K (Driving1)",
        &["K", "D (s)", "mean delay (s)", "max delay (s)"],
    );
    let trace = driving1();
    let ks: Vec<usize> = (1..=12).collect();
    let companion = smooth_sweep::par_map(smooth_sweep::default_threads(), &ks, |_, &k| {
        let params = SmootherParams::constant_slack(k, 9, TAU);
        let result = smooth(&trace, params);
        (params, delay_stats(result.delays(), None))
    });
    for (&k, (params, st)) in ks.iter().zip(&companion) {
        delays.push(vec![
            k.to_string(),
            f(params.delay_bound, 4),
            f(st.mean, 4),
            f(st.max, 4),
        ]);
    }
    tables.push(delays);
    tables
}

/// **T-thm** — the §5.2 claim: zero delay-bound violations anywhere in
/// the paper's parameter grid for K ≥ 1, and constructible violations at
/// K = 0 with tiny slack.
pub fn theorem() -> Vec<Table> {
    let mut grid = Table::new(
        "Theorem 1 grid: violations across the full parameter sweep",
        &[
            "sequence",
            "configs",
            "pictures checked",
            "delay violations",
            "service gaps",
        ],
    );
    for trace in paper_sequences() {
        let n = trace.pattern.n();
        let mut param_grid: Vec<SmootherParams> = Vec::new();
        for d in [0.0667, 0.10, 0.1333, 0.20, 0.30] {
            for k in 1..=3usize {
                if d + 1e-12 < (k as f64 + 1.0) * TAU {
                    continue;
                }
                for h in [1usize, n, 2 * n] {
                    param_grid.push(SmootherParams::at_30fps(d, k, h).expect("ok"));
                }
            }
        }
        let reports = smooth_sweep::par_map(
            smooth_sweep::default_threads(),
            &param_grid,
            |_, &params| check_theorem1(&smooth(&trace, params)),
        );
        let configs = reports.len();
        let mut pictures = 0usize;
        let mut violations = 0usize;
        let mut gaps = 0usize;
        for report in &reports {
            pictures += report.pictures;
            violations += report.delay_violations;
            if !report.continuous_service {
                gaps += 1;
            }
        }
        grid.push(vec![
            trace.name.clone(),
            configs.to_string(),
            pictures.to_string(),
            violations.to_string(),
            gaps.to_string(),
        ]);
    }

    let mut k0 = Table::new(
        "Theorem 1 boundary: K = 0 with shrinking slack (Driving1)",
        &["slack (ms)", "violations", "max delay (ms)", "bound (ms)"],
    );
    let trace = driving1();
    for slack_ms in [1.0f64, 5.0, 20.0, 50.0, 150.0] {
        let d = TAU + slack_ms / 1e3;
        let params = SmootherParams::new_unchecked(d, 0, 9, TAU);
        let result = smooth(&trace, params);
        k0.push(vec![
            f(slack_ms, 0),
            result.delay_violations().to_string(),
            f(result.max_delay() * 1e3, 1),
            f(d * 1e3, 1),
        ]);
    }
    vec![grid, k0]
}

/// **X-mux** — statistical multiplexing: loss ratio of a finite-buffer
/// switch fed by 8 sources, raw vs smoothed, across buffer sizes and
/// capacities.
pub fn mux() -> Vec<Table> {
    let params = SmootherParams::at_30fps(0.2, 1, 9).expect("feasible");
    let base = MultiplexConfig {
        sequence: SequenceId::Driving1,
        pictures: 150,
        sources: 8,
        mode: SourceMode::Unsmoothed,
        capacity_bps: 19.0e6,
        buffer_bits: 0.0,
        seed: 2024,
    };

    let cell = 424.0;
    let mut by_buffer = Table::new(
        "X-mux: loss vs buffer (8 x Driving1, 19 Mbps link)",
        &["buffer (cells)", "raw loss", "smoothed loss", "gain"],
    );
    let buffers: Vec<f64> = [64.0, 128.0, 256.0, 512.0, 1024.0]
        .iter()
        .map(|c| c * cell)
        .collect();
    for (buf, raw, smoothed) in buffer_sweep(&base, params, &buffers) {
        let gain = if smoothed > 0.0 {
            format!("{:.1}x", raw / smoothed)
        } else {
            "inf".into()
        };
        by_buffer.push(vec![f(buf / cell, 0), f(raw, 6), f(smoothed, 6), gain]);
    }

    let mut by_capacity = Table::new(
        "X-mux: loss vs capacity (8 x Driving1, 256-cell buffer)",
        &[
            "capacity (Mbps)",
            "nominal load",
            "raw loss",
            "smoothed loss",
        ],
    );
    let caps = [17.0e6, 18.0e6, 19.0e6, 20.0e6, 21.0e6, 22.0e6];
    let outcomes = smooth_sweep::par_map(smooth_sweep::default_threads(), &caps, |_, &cap| {
        let raw = smooth_netsim::run_multiplex_threaded(
            &MultiplexConfig {
                capacity_bps: cap,
                buffer_bits: 256.0 * cell,
                ..base
            },
            1,
        );
        let smoothed = smooth_netsim::run_multiplex_threaded(
            &MultiplexConfig {
                capacity_bps: cap,
                buffer_bits: 256.0 * cell,
                mode: SourceMode::Smoothed { params },
                ..base
            },
            1,
        );
        (raw, smoothed)
    });
    for (&cap, (raw, smoothed)) in caps.iter().zip(&outcomes) {
        by_capacity.push(vec![
            f(cap / 1e6, 0),
            f(raw.nominal_load, 2),
            f(raw.loss_ratio(), 6),
            f(smoothed.loss_ratio(), 6),
        ]);
    }
    vec![by_buffer, by_capacity]
}

/// **X-mod** — the §4.4 moving-average modification, and the a-priori
/// taut-string reference, against the basic algorithm.
pub fn ablation() -> Vec<Table> {
    let est = PatternEstimator::default();
    let mut table = Table::new(
        "X-mod: basic vs moving-average vs a-priori (D=0.2, K=1, H=N)",
        &[
            "sequence",
            "policy",
            "area diff",
            "rate changes",
            "max r Mbps",
            "SD kbps",
        ],
    );
    for trace in paper_sequences() {
        let n = trace.pattern.n();
        let params = SmootherParams::at_30fps(0.2, 1, n).expect("feasible");
        for (policy, selection) in [
            ("basic", RateSelection::Basic),
            ("moving-average", RateSelection::MovingAverage),
        ] {
            let result = smooth_with(&trace, params, &est, selection);
            let m = measures(&trace, &result);
            table.push(vec![
                trace.name.clone(),
                policy.to_string(),
                f(m.area_difference, 4),
                m.rate_changes.to_string(),
                f(m.max_rate_bps / 1e6, 3),
                f(m.std_dev_bps / 1e3, 1),
            ]);
        }
        // Channel rate grid (p x 64 kbit/s): the practical-deployment
        // variant; smoothness cost of discretizing the rate.
        let gridded = smooth(&trace, params.with_rate_grid(64_000.0));
        let mg = measures(&trace, &gridded);
        table.push(vec![
            trace.name.clone(),
            "basic + 64k grid".to_string(),
            f(mg.area_difference, 4),
            mg.rate_changes.to_string(),
            f(mg.max_rate_bps / 1e6, 3),
            f(mg.std_dev_bps / 1e3, 1),
        ]);
        // The all-sizes-known optimum at the same bound (Ott et al.).
        let opt = ott_smooth(&trace, 0.2).expect("feasible");
        let r = smooth_metrics::StepFunction::from_segments(&opt.segments);
        let t_end = trace.duration();
        table.push(vec![
            trace.name.clone(),
            "a-priori optimal".to_string(),
            "-".into(),
            (opt.segments.len() - 1).to_string(),
            f(opt.max_rate() / 1e6, 3),
            f(r.std_over(r.domain_start(), t_end) / 1e3, 1),
        ]);
    }
    vec![table]
}

/// **X-quant** — the §3.1 lossy-alternative reference point: quantizer
/// scale vs coded size, anchored at the paper's measured 282,976 →
/// 75,960 bits for 4 → 30.
pub fn quantizer() -> Vec<Table> {
    let mut table = Table::new(
        "X-quant: I-picture size vs quantizer scale (model anchored to paper)",
        &["q", "relative size", "predicted bits", "note"],
    );
    for q in [1u8, 2, 4, 6, 8, 15, 22, 30, 31] {
        let rel = size_factor(q);
        let bits = PAPER_I_BITS_Q4 as f64 * size_ratio(4, q);
        let note = match q {
            4 => format!("paper: {} bits measured", PAPER_I_BITS_Q4),
            30 => format!("paper: {} bits measured", PAPER_I_BITS_Q30),
            _ => String::new(),
        };
        table.push(vec![q.to_string(), f(rel, 4), f(bits, 0), note]);
    }
    vec![table]
}

/// **X-rx** — receiver-side dual of the delay bound: minimal playback
/// offset and client buffer requirement as functions of `D`.
pub fn receiver() -> Vec<Table> {
    let mut table = Table::new(
        "X-rx: client buffer and playback offset vs D (K=1, H=N)",
        &[
            "sequence",
            "D (s)",
            "min offset (s)",
            "client buffer (kbit)",
            "underflows at P=D",
        ],
    );
    for trace in paper_sequences() {
        let n = trace.pattern.n();
        for d in [0.1, 0.2, 0.3, 0.5] {
            let result = smooth(&trace, SmootherParams::at_30fps(d, 1, n).expect("feasible"));
            let report = smooth_core::simulate_receiver(&result, d);
            table.push(vec![
                trace.name.clone(),
                f(d, 2),
                f(smooth_core::min_playback_offset(&result), 4),
                f(report.max_buffer_bits / 1e3, 0),
                report.underflows.to_string(),
            ]);
        }
    }
    vec![table]
}

/// **X-upc** — the ATM traffic-contract dual: minimal token-bucket burst
/// tolerance σ each sender needs at ρ = 1.1 × mean rate.
pub fn upc() -> Vec<Table> {
    use smooth_metrics::{baseline_rate_function, rate_function, StepFunction};
    use smooth_netsim::min_bucket_for;

    // Dual views of the same contract: (a) σ needed at a fixed ρ; (b) the
    // ρ a connection must buy when the network only grants a small σ
    // (50 kbit ≈ 118 ATM cells) — the picture-timescale number smoothing
    // actually improves.
    let mut sigma_table = Table::new(
        "X-upc: min burst tolerance at rho = 1.1 x mean (kbit)",
        &[
            "sequence",
            "unsmoothed",
            "smoothed D=0.1",
            "smoothed D=0.2",
            "ideal",
        ],
    );
    let mut rho_table = Table::new(
        "X-upc: min sustained rate for sigma <= 50 kbit (Mbps)",
        &[
            "sequence",
            "unsmoothed",
            "smoothed D=0.2",
            "ideal",
            "raw/smoothed",
        ],
    );
    for trace in paper_sequences() {
        let n = trace.pattern.n();
        let t_end = trace.duration() + 1.0;
        let raw_f = baseline_rate_function(&smooth_core::unsmoothed(&trace));
        let s01_f = rate_function(&smooth(
            &trace,
            SmootherParams::at_30fps(0.1, 1, n).expect("feasible"),
        ));
        let s02_f = rate_function(&smooth(
            &trace,
            SmootherParams::at_30fps(0.2, 1, n).expect("feasible"),
        ));
        let ideal_f = baseline_rate_function(&ideal_smooth(&trace));

        let rho = 1.1 * trace.mean_rate_bps();
        let sigma = |fun: &StepFunction| min_bucket_for(fun, rho, 0.0, t_end);
        sigma_table.push(vec![
            trace.name.clone(),
            f(sigma(&raw_f) / 1e3, 0),
            f(sigma(&s01_f) / 1e3, 0),
            f(sigma(&s02_f) / 1e3, 0),
            f(sigma(&ideal_f) / 1e3, 0),
        ]);

        // Bisect for the smallest rho whose sigma_min fits 50 kbit.
        let min_rho = |fun: &StepFunction| -> f64 {
            let (mut lo, mut hi) = (trace.mean_rate_bps() * 0.5, trace.peak_picture_rate_bps());
            for _ in 0..60 {
                let mid = 0.5 * (lo + hi);
                if min_bucket_for(fun, mid, 0.0, t_end) <= 50_000.0 {
                    hi = mid;
                } else {
                    lo = mid;
                }
            }
            hi
        };
        let raw_rho = min_rho(&raw_f);
        let s02_rho = min_rho(&s02_f);
        rho_table.push(vec![
            trace.name.clone(),
            f(raw_rho / 1e6, 2),
            f(s02_rho / 1e6, 2),
            f(min_rho(&ideal_f) / 1e6, 2),
            format!("{:.1}x", raw_rho / s02_rho),
        ]);
    }
    vec![sigma_table, rho_table]
}

/// **X-lossy** — the §3.1 lossy alternatives, quantified against lossless
/// smoothing at the same peak rate.
pub fn lossy() -> Vec<Table> {
    use smooth_core::{cap_peak_with_quantizer, drop_b_pictures};
    use smooth_mpeg::{PictureType, QuantizerSet};

    let mut quant = Table::new(
        "X-lossy: quantizer control at the lossless smoother's peak",
        &[
            "sequence",
            "peak cap Mbps",
            "degraded pics",
            "mean I quant",
            "worst I quant",
            "truncated",
        ],
    );
    for trace in paper_sequences() {
        let n = trace.pattern.n();
        let result = smooth(
            &trace,
            SmootherParams::at_30fps(0.2, 1, n).expect("feasible"),
        );
        let m = measures(&trace, &result);
        let cap = m.max_rate_bps;
        let r = cap_peak_with_quantizer(&trace, QuantizerSet::PAPER, cap);
        quant.push(vec![
            trace.name.clone(),
            f(cap / 1e6, 2),
            format!("{}/{}", r.degraded, trace.len()),
            f(r.mean_quantizer(&trace, PictureType::I), 1),
            r.worst_i_quantizer(&trace).to_string(),
            r.truncated.to_string(),
        ]);
    }

    let mut bdrop = Table::new(
        "X-lossy: dropping all B pictures (paper: does not fix fluctuations)",
        &[
            "sequence",
            "mean before Mbps",
            "mean after Mbps",
            "peak after Mbps",
            "display fps",
        ],
    );
    for trace in paper_sequences() {
        let r = drop_b_pictures(&trace, usize::MAX);
        bdrop.push(vec![
            trace.name.clone(),
            f(r.mean_before_bps / 1e6, 2),
            f(r.mean_after_bps / 1e6, 2),
            f(r.peak_after_bps / 1e6, 2),
            f(r.effective_fps, 1),
        ]);
    }
    vec![quant, bdrop]
}

/// **X-adapt** — smoothing under an adaptive (pattern-switching) encoder:
/// schedule-aware estimation vs naively assuming a fixed pattern.
pub fn adaptive() -> Vec<Table> {
    use smooth_core::{check_theorem1 as audit, smooth_adaptive};
    use smooth_mpeg::GopPattern;
    use smooth_trace::adaptive_driving;

    let video = adaptive_driving();
    let params = SmootherParams::at_30fps(0.2, 1, 9).expect("feasible");

    let aware = smooth_adaptive(&video, params, RateSelection::Basic);
    let naive_trace = smooth_trace::VideoTrace::new(
        "naive",
        GopPattern::new(2, 6).expect("static"),
        video.resolution,
        video.fps,
        video.sizes.clone(),
    )
    .expect("valid");
    let naive = smooth(&naive_trace, params);

    let mut table = Table::new(
        "X-adapt: adaptive encoder (2,6)->(3,9)->(2,6), D=0.2 K=1",
        &[
            "estimation",
            "delay violations",
            "rate changes",
            "max r Mbps",
            "SD kbps",
        ],
    );
    let sd = |r: &SmoothingResult| {
        let rates: Vec<f64> = r.rates().collect();
        let m = rates.iter().sum::<f64>() / rates.len() as f64;
        (rates.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / rates.len() as f64).sqrt()
    };
    for (name, r) in [("schedule-aware", &aware), ("fixed-(2,6) naive", &naive)] {
        let report = audit(r);
        let peak = r.rates().fold(0.0f64, f64::max);
        table.push(vec![
            name.to_string(),
            report.delay_violations.to_string(),
            r.rate_changes().to_string(),
            f(peak / 1e6, 3),
            f(sd(r) / 1e3, 1),
        ]);
    }
    vec![table]
}

/// **X-damage** — network loss translated into decoder damage: packetize
/// a real coded stream, drop packets, reassemble, and let the
/// resynchronizing parser count what a decoder loses (paper §2's error
/// behaviour, end to end).
pub fn damage() -> Vec<Table> {
    use smooth_mpeg::bitstream::{parse_stream, write_stream, SequenceHeader, StreamSpec};
    use smooth_netsim::lossy_session;
    use smooth_rng::Rng;

    let video = driving1().truncated(54);
    let spec = StreamSpec::new(SequenceHeader::vbr(video.resolution), video.pattern);
    let written = write_stream(&spec, &video.sizes, 17);
    let clean = parse_stream(&written.bytes);
    let total_slices: usize = clean.pictures.iter().map(|p| p.slices.len()).sum();

    let mut table = Table::new(
        "X-damage: packet loss -> decoder damage (Driving1, 54 pictures, 188-byte packets)",
        &[
            "packet loss",
            "pictures recovered",
            "slices recovered",
            "pictures content-damaged",
            "parse issues",
        ],
    );
    for loss in [0.0, 0.001, 0.005, 0.02, 0.05, 0.20] {
        let mut rng = Rng::seed_from_u64(1994);
        let session = lossy_session(&written.bytes, 188, loss, &mut rng);
        let parsed = parse_stream(&session.received);
        let slices: usize = parsed.pictures.iter().map(|p| p.slices.len()).sum();
        // Content damage: a picture whose bytes intersect any lost packet
        // shows corrupt macroblocks even where the structure parses.
        let damaged = smooth_netsim::units_damaged(&written.picture_ranges, &session.lost_ranges);
        table.push(vec![
            f(loss, 3),
            format!("{}/{}", parsed.pictures.len(), video.len()),
            format!("{slices}/{total_slices}"),
            format!("{damaged}/{}", video.len()),
            parsed.issues.len().to_string(),
        ]);
    }
    vec![table]
}

/// **X-model** — the §4.1 modeling remark, validated: re-simulate each
/// schedule against randomized true arrival instants and measure how far
/// real delays can deviate from the model's.
pub fn model() -> Vec<Table> {
    use smooth_core::validate_against_events;

    let mut table = Table::new(
        "X-model: event-sim vs analytical model (D=0.2, K=1, H=N)",
        &[
            "sequence",
            "max excess (ms)",
            "mean slack (ms)",
            "starvations",
        ],
    );
    for trace in paper_sequences() {
        let n = trace.pattern.n();
        let result = smooth(
            &trace,
            SmootherParams::at_30fps(0.2, 1, n).expect("feasible"),
        );
        let report = validate_against_events(&result, 1994);
        table.push(vec![
            trace.name.clone(),
            f(report.max_excess * 1e3, 6),
            f(report.mean_slack * 1e3, 2),
            report.starvation_events.to_string(),
        ]);
    }
    vec![table]
}

/// A named experiment: its CLI name paired with its table generator.
pub type Experiment = (&'static str, fn() -> Vec<Table>);

/// Every experiment, in order. `("name", generator)` pairs drive both the
/// CLI and the smoke tests.
pub fn all() -> Vec<Experiment> {
    vec![
        ("fig3", fig3),
        ("fig4", fig4),
        ("fig5", fig5),
        ("fig6", fig6),
        ("fig7", fig7),
        ("fig8", fig8),
        ("theorem", theorem),
        ("mux", mux),
        ("ablation", ablation),
        ("quantizer", quantizer),
        ("receiver", receiver),
        ("upc", upc),
        ("lossy", lossy),
        ("adaptive", adaptive),
        ("damage", damage),
        ("model", model),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_experiment_produces_rows() {
        for (name, gen) in all() {
            let tables = gen();
            assert!(!tables.is_empty(), "{name}: no tables");
            for t in &tables {
                assert!(!t.rows.is_empty(), "{name}/{}: empty table", t.title);
                for row in &t.rows {
                    assert_eq!(row.len(), t.columns.len(), "{name}/{}", t.title);
                }
            }
        }
    }

    #[test]
    fn fig4_summary_shows_monotone_max_rate() {
        let tables = fig4();
        let summary = &tables[0];
        let max_rates: Vec<f64> = summary
            .rows
            .iter()
            .map(|r| r[1].parse::<f64>().expect("numeric"))
            .collect();
        for w in max_rates.windows(2) {
            assert!(
                w[1] <= w[0] * 1.005,
                "max rate should fall with D: {max_rates:?}"
            );
        }
    }

    #[test]
    fn theorem_grid_reports_zero_violations() {
        let tables = theorem();
        for row in &tables[0].rows {
            assert_eq!(row[3], "0", "{}: delay violations", row[0]);
            assert_eq!(row[4], "0", "{}: service gaps", row[0]);
        }
        // And the K=0 boundary: the tightest slack shows violations.
        assert!(tables[1].rows[0][1].parse::<usize>().expect("count") > 0);
    }

    #[test]
    fn quantizer_table_hits_paper_anchors() {
        let t = &quantizer()[0];
        let q30 = t.rows.iter().find(|r| r[0] == "30").expect("q=30 row");
        let bits: f64 = q30[2].parse().expect("numeric");
        assert!((bits - PAPER_I_BITS_Q30 as f64).abs() < 1.0);
    }
}
