//! Hot-path throughput measurement: pictures scheduled per second.
//!
//! The ROADMAP's north star is serving smoothing decisions for millions
//! of concurrent streams, so the number that matters is raw per-picture
//! cost. This module builds a synthetic 1,000,000-picture trace and times
//! three configurations at `H = 32`:
//!
//! * `engine` — the incremental [`smooth_core::LookaheadWindow`] hot path
//!   ([`smooth_core::smooth_with_scratch`]), serial;
//! * `reference` — the pre-PR naive hot path
//!   ([`smooth_core::reference::smooth_reference_with`] with the
//!   walk-back estimator), serial;
//! * `batch` — the engine driven through
//!   [`smooth_sweep::smooth_batch`] over the same workload split into
//!   chunks, at the run's worker count.
//!
//! The engine/reference pair is the PR 3 acceptance gauge (≥ 2×); the
//! records land in `BENCH_sweep.json` so the trajectory stays comparable
//! across commits.

use std::time::Instant;

use smooth_core::reference::{smooth_reference_with, ReferencePatternEstimator};
use smooth_core::{smooth_with_scratch, RateSelection, SmoothScratch, SmootherParams};
use smooth_mpeg::{GopPattern, PictureType, Resolution};
use smooth_sweep::bench::ThroughputRecord;
use smooth_sweep::{smooth_batch, SweepJob};
use smooth_trace::VideoTrace;

/// Pictures in the synthetic workload.
pub const SYNTHETIC_PICTURES: usize = 1_000_000;

/// Lookahead used by the throughput measurements.
pub const THROUGHPUT_H: usize = 32;

/// A deterministic synthetic trace: the paper's (3, 9) pattern with
/// per-type base sizes and a mild LCG jitter, `n` pictures long.
pub fn synthetic_trace(n: usize) -> VideoTrace {
    let pattern = GopPattern::new(3, 9).expect("(3,9) is valid");
    let mut state = 0x2545F4914F6CDD1Du64;
    let sizes: Vec<u64> = (0..n)
        .map(|i| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let jitter = state >> 48; // 0..65536
            match pattern.type_at(i) {
                PictureType::I => 180_000 + jitter,
                PictureType::P => 80_000 + jitter / 2,
                PictureType::B => 16_000 + jitter / 8,
            }
        })
        .collect();
    VideoTrace::new("synthetic-1m", pattern, Resolution::VGA, 30.0, sizes)
        .expect("synthetic trace is valid")
}

/// Parameters for the throughput runs: the paper's recommended `D`/`K`
/// with the widened `H = 32` lookahead.
pub fn throughput_params() -> SmootherParams {
    SmootherParams::at_30fps(0.2, 1, THROUGHPUT_H).expect("0.2 s is feasible")
}

/// Timed repetitions per serial measurement. The workloads are
/// deterministic, so all variance is external (scheduler preemption,
/// frequency transitions, noisy-neighbor VMs); the minimum over a few
/// repeats is the standard noise-robust estimator of the true cost.
pub const MEASURE_REPEATS: usize = 5;

/// Runs `work` [`MEASURE_REPEATS`] times and returns every wall time in
/// seconds, in run order — records headline the min and carry
/// median/spread via [`ThroughputRecord::with_walls`]-style builders.
pub(crate) fn sample_of<R>(mut work: impl FnMut() -> R) -> Vec<f64> {
    (0..MEASURE_REPEATS)
        .map(|_| {
            let t0 = Instant::now();
            let result = work();
            let dt = t0.elapsed().as_secs_f64();
            std::hint::black_box(&result);
            dt
        })
        .collect()
}

/// Runs `work` [`MEASURE_REPEATS`] times and returns the fastest wall
/// time in seconds.
pub(crate) fn best_of<R>(work: impl FnMut() -> R) -> f64 {
    sample_of(work).into_iter().fold(f64::INFINITY, f64::min)
}

/// Times the incremental-engine hot path (serial, reused scratch).
pub fn measure_engine(trace: &VideoTrace) -> ThroughputRecord {
    let params = throughput_params();
    let mut scratch = SmoothScratch::new();
    let walls = sample_of(|| smooth_with_scratch(trace, params, &mut scratch));
    ThroughputRecord::with_walls(
        "hotpath_synthetic_1M_H32_engine",
        trace.len() as u64,
        &walls,
        1,
    )
}

/// Times the pre-PR naive hot path (per-picture refill + walk-back).
pub fn measure_reference(trace: &VideoTrace) -> ThroughputRecord {
    let params = throughput_params();
    let estimator = ReferencePatternEstimator::default();
    let walls =
        sample_of(|| smooth_reference_with(trace, params, &estimator, RateSelection::Basic));
    ThroughputRecord::with_walls(
        "hotpath_synthetic_1M_H32_reference",
        trace.len() as u64,
        &walls,
        1,
    )
}

/// Times [`smooth_batch`] over the same pictures split into per-chunk
/// traces (one job per chunk), at `threads` workers.
pub fn measure_batch(trace: &VideoTrace, threads: usize, chunks: usize) -> ThroughputRecord {
    let params = throughput_params();
    let chunk_len = trace.len().div_ceil(chunks.max(1));
    let traces: Vec<VideoTrace> = trace
        .sizes
        .chunks(chunk_len.max(1))
        .map(|sizes| {
            VideoTrace::new(
                "synthetic-chunk",
                trace.pattern,
                trace.resolution,
                trace.fps,
                sizes.to_vec(),
            )
            .expect("chunk trace is valid")
        })
        .collect();
    let jobs: Vec<SweepJob<'_>> = traces
        .iter()
        .map(|trace| SweepJob { trace, params })
        .collect();
    let (results, stats) = smooth_batch(threads, &jobs);
    std::hint::black_box(&results);
    ThroughputRecord::new(
        "batch_synthetic_1M_H32_engine",
        stats.pictures,
        stats.wall_seconds,
        stats.threads,
    )
}

/// The records `BENCH_sweep.json` carries: engine vs reference (serial)
/// plus a parallel batch at the run's worker count.
pub fn standard_suite(threads: usize) -> Vec<ThroughputRecord> {
    let trace = synthetic_trace(SYNTHETIC_PICTURES);
    vec![
        measure_engine(&trace),
        measure_reference(&trace),
        measure_batch(&trace, threads, 64),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use smooth_core::smooth;

    #[test]
    fn synthetic_trace_is_deterministic() {
        let a = synthetic_trace(1_000);
        let b = synthetic_trace(1_000);
        assert_eq!(a.sizes, b.sizes);
        assert_eq!(a.sizes.len(), 1_000);
    }

    #[test]
    fn engine_and_reference_agree_on_synthetic_prefix() {
        // The two measured paths must compute the same schedules, or the
        // speedup would compare different algorithms.
        let trace = synthetic_trace(3_000);
        let params = throughput_params();
        let engine = smooth(&trace, params);
        let estimator = ReferencePatternEstimator::default();
        let reference = smooth_reference_with(&trace, params, &estimator, RateSelection::Basic);
        assert_eq!(engine, reference);
    }

    #[test]
    fn measurements_produce_positive_rates() {
        let trace = synthetic_trace(20_000);
        let params = throughput_params();
        let mut scratch = SmoothScratch::new();
        let t0 = Instant::now();
        std::hint::black_box(smooth_with_scratch(&trace, params, &mut scratch));
        assert!(t0.elapsed().as_secs_f64() > 0.0);
        let rec = measure_batch(&trace, 2, 8);
        assert_eq!(rec.pictures, 20_000);
        assert!(rec.pictures_per_sec > 0.0);
    }
}
