//! Event-driven churn throughput: aggregate picture decisions per
//! second while the fleet itself churns ([`smooth_engine::DynamicEngine`]).
//!
//! Where `sessionbench.rs` measures the lockstep path (every session on
//! the same 30 fps clock, every session decided every tick), this
//! measures the timing-wheel path the ROADMAP's dynamic-workload framing
//! asks for: heterogeneous picture clocks (equal-weight 24/25/30/60 fps)
//! and a seeded arrival/departure process recycling slots live. The
//! standard point ramps to `sessions` live, then churns ~1 % of the
//! fleet per simulated second over one further second.
//!
//! Each measurement replays the same deterministic
//! [`churn_trace`](smooth_engine::churn_trace) into a fresh engine per
//! repeat and times **only** [`DynamicEngine::run_trace`] — trace
//! generation and engine construction are excluded — keeping the min
//! over [`crate::throughput::MEASURE_REPEATS`] runs. Records land in
//! `BENCH_sweep.json` as `churn_throughput[]`.
//!
//! [`DynamicEngine::run_trace`]: smooth_engine::DynamicEngine::run_trace

use std::time::Instant;

use smooth_engine::{
    churn_trace, fps_class, ChurnSpec, ChurnTrace, DynamicClass, DynamicEngine, SyntheticFleet,
    TICKS_PER_SEC,
};
use smooth_sweep::bench::ChurnThroughputRecord;

use crate::throughput::MEASURE_REPEATS;

/// Simulated seconds each measurement replays (ramp + churn).
pub const CHURN_SECONDS: u64 = 2;

/// Churn intensity: 1 % of the initial fleet per simulated second.
pub const CHURN_PPM_PER_SEC: u64 = 10_000;

/// The standard initial-fleet size for `BENCH_sweep.json`.
pub const STANDARD_CHURN_SESSIONS: usize = 1_000_000;

/// Shard size the measurements use (matches the scale smoke test).
pub const CHURN_SHARD_SIZE: usize = 4096;

/// The heterogeneous mix every churn measurement runs: equal-weight
/// 24/25/30/60 fps classes of the paper-recommended smoother.
pub fn standard_mix() -> (Vec<DynamicClass>, Vec<u32>) {
    let classes: Vec<_> = [24u64, 25, 30, 60].iter().map(|&f| fps_class(f)).collect();
    let weights = vec![1u32; classes.len()];
    (classes, weights)
}

/// The deterministic churn trace a measurement at `sessions` replays:
/// seeded ramp over the first second, then `churn_ppm_per_sec` of the
/// initial fleet joining and leaving per second until the horizon.
pub fn standard_trace(sessions: usize, seconds: u64, churn_ppm_per_sec: u64) -> ChurnTrace {
    let (classes, weights) = standard_mix();
    churn_trace(&ChurnSpec {
        seed: 0xC_0041_7E57,
        initial: sessions,
        weights,
        periods: classes.iter().map(|c| c.period_ticks).collect(),
        ticks_per_sec: TICKS_PER_SEC,
        horizon: TICKS_PER_SEC * seconds,
        churn_ppm_per_sec,
    })
}

/// Times the dynamic engine replaying the standard churn trace at
/// `sessions` initial fleet and `threads` workers. Trace generation and
/// engine construction are untimed; the clock covers exactly the
/// event-driven replay (wheel ticks, churn, decisions).
pub fn measure_churn(sessions: usize, threads: usize) -> ChurnThroughputRecord {
    let trace = standard_trace(sessions, CHURN_SECONDS, CHURN_PPM_PER_SEC);
    let (classes, _) = standard_mix();
    let src = SyntheticFleet {
        seed: 0xC_0041_7E57,
        pattern: classes[0].class.pattern,
    };
    let mut walls = Vec::with_capacity(MEASURE_REPEATS);
    let mut decisions = 0u64;
    let mut joined = 0u64;
    for _ in 0..MEASURE_REPEATS {
        let mut engine = DynamicEngine::new(classes.clone(), trace.peak_live, CHURN_SHARD_SIZE)
            .expect("standard mix is valid");
        let t0 = Instant::now();
        engine
            .run_trace(&src, &trace, threads)
            .expect("trace fits capacity");
        walls.push(t0.elapsed().as_secs_f64());
        std::hint::black_box(engine.digest());
        decisions = engine.decisions();
        joined = engine.joined();
    }
    ChurnThroughputRecord::with_walls(
        &format!("churn_synthetic_S{sessions}"),
        sessions,
        CHURN_PPM_PER_SEC,
        joined,
        trace.horizon,
        decisions,
        &walls,
        threads,
    )
}

/// The records `BENCH_sweep.json` carries by default: one point at the
/// standard 1M-session fleet.
pub fn standard_churn_suite(threads: usize) -> Vec<ChurnThroughputRecord> {
    vec![measure_churn(STANDARD_CHURN_SESSIONS, threads)]
}

/// A single-point suite at an explicit fleet size (the `--sessions N`
/// scale knob).
pub fn scaled_churn_suite(threads: usize, sessions: usize) -> Vec<ChurnThroughputRecord> {
    vec![measure_churn(sessions, threads)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_churn_fleet_measures_decisions_and_churn() {
        let rec = measure_churn(200, 1);
        assert_eq!(rec.sessions, 200);
        assert_eq!(rec.churn_ppm_per_sec, CHURN_PPM_PER_SEC);
        assert_eq!(rec.ticks, TICKS_PER_SEC * CHURN_SECONDS);
        // The whole initial fleet joined (plus any churn arrivals).
        assert!(rec.joined >= 200);
        // The mixed clocks decide ~31 pictures/session over the
        // post-ramp second, give or take the ramp's partial feeds.
        assert!(rec.decisions > 200 * 20);
        assert!(rec.decisions_per_second > 0.0);
        assert_eq!(rec.threads, 1);
        assert_eq!(rec.name, "churn_synthetic_S200");
    }

    #[test]
    fn scaled_suite_is_one_point_at_the_requested_count() {
        let recs = scaled_churn_suite(1, 150);
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].sessions, 150);
    }
}
