//! Fused fleet-to-link throughput: the session engine streaming its
//! decisions straight into the online link aggregator
//! ([`smooth_engine::LiveMux`]) versus the offline baseline that runs
//! the engine and sweeps the schedules through the multiplexer
//! afterwards ([`smooth_engine::mux::mux_sessions`]).
//!
//! Both paths compute the identical aggregate — same link stats, same
//! per-session (σ, ρ) window — so the measurement is a pure pipeline
//! comparison: the fused path posts each decision as an O(log S) delta
//! into the aggregation tree while the fleet advances, while the
//! baseline replays every session through lazy rate cursors into the
//! k-way-merge sweep after the fact. Each point re-asserts the bitwise
//! oracle equality before it reports, so a speedup can never be quoted
//! for a run that diverged.
//!
//! Three wall times are taken, each a
//! min-of-[`crate::throughput::MEASURE_REPEATS`]:
//!
//! - **fused** — `run_fused`, the engine streaming into [`LiveMux`];
//! - **engine** — a bare `SessionEngine::run` with no aggregation, the
//!   decision work both pipelines share (`engine_seconds`);
//! - **sweep** — `mux_sessions` on a fresh engine, the offline
//!   aggregation pass this module replaces.
//!
//! The literal run-engine-then-`mux_sessions` baseline is
//! `offline_seconds = engine + sweep` (the consumer needs the fleet
//! product *and* the link aggregate, and `mux_sessions` refuses a
//! spent engine, so the offline path pays both). Alongside the
//! end-to-end `speedup`, the record derives `mux_pass_speedup` =
//! (offline − engine) / (fused − engine): the speedup of the
//! aggregation pass itself once the shared decision floor — identical
//! work on both sides — is subtracted. Records land in
//! `BENCH_sweep.json` as `fleet_mux_throughput[]`.

use std::time::Instant;

use smooth_engine::mux::mux_sessions;
use smooth_engine::{LiveMux, MuxConfig, SessionEngine, SyntheticFleet};
use smooth_netsim::RateSweep;
use smooth_sweep::bench::FleetMuxThroughputRecord;

use crate::sessionbench::{session_class, SESSION_TICKS};
use crate::throughput::MEASURE_REPEATS;

/// The standard session ladder for `fleet_mux_throughput[]`: a cheap
/// sanity point plus the headline megasession measurement.
pub const STANDARD_FLEET_MUX_SESSIONS: [usize; 2] = [10_000, 1_000_000];

/// Link parameters per session: ~0.9 nominal load against the synthetic
/// fleet's ~1.45 Mbps mean, ~2 kbit of buffer each, and ρ at the
/// per-session capacity share.
const CAPACITY_PER_SESSION: f64 = 1.6e6;
const BUFFER_PER_SESSION: f64 = 2.0e3;

/// The measurement window for a `ticks`-tick fleet: from zero to past
/// every possible departure (last arrival at `ticks`·τ plus the delay
/// bound, with slack), so both paths aggregate the full schedules.
fn window_end(ticks: u64) -> f64 {
    (ticks as f64 + 60.0) / 30.0
}

/// Times `sessions` concurrent sessions through `ticks` lockstep ticks
/// plus the finishing drain, fused with the online aggregator — then
/// times the bare engine (the shared decision floor) and the offline
/// `mux_sessions` sweep over the identical window, and asserts fused
/// and offline landed on the same bits before deriving the speedups.
/// Fleet construction is excluded from every timed region.
pub fn measure_fleet_mux(sessions: usize, ticks: u64, threads: usize) -> FleetMuxThroughputRecord {
    let class = session_class();
    let fleet = SyntheticFleet {
        seed: 0x5e55be7c,
        pattern: class.pattern,
    };
    let cfg = MuxConfig {
        capacity_bps: CAPACITY_PER_SESSION * sessions as f64,
        buffer_bits: BUFFER_PER_SESSION * sessions as f64,
        t_start: 0.0,
        t_end: window_end(ticks),
        descriptor_rho_bps: CAPACITY_PER_SESSION,
    };

    let mut walls = Vec::with_capacity(MEASURE_REPEATS);
    let mut decisions = 0u64;
    let mut fused = None;
    for _ in 0..MEASURE_REPEATS {
        let mut engine = SessionEngine::new(vec![class.clone()]);
        engine.add_sessions_placed(0, sessions, threads);
        let mut mux = LiveMux::new(sessions, engine.shard_size(), cfg);
        let t0 = Instant::now();
        let stats = engine
            .run_fused(&fleet, ticks, threads, &mut mux)
            .expect("fresh engine");
        walls.push(t0.elapsed().as_secs_f64());
        decisions = engine.decisions();
        fused = Some(stats);
    }
    let fused = fused.expect("at least one repeat");

    // The shared decision floor: the bare engine with no aggregation at
    // all. Both pipelines pay this work; the offline baseline pays it
    // as its first stage.
    let mut engine_floor = f64::INFINITY;
    for _ in 0..MEASURE_REPEATS {
        let mut engine = SessionEngine::new(vec![class.clone()]);
        engine.add_sessions_placed(0, sessions, threads);
        let t0 = Instant::now();
        engine.run(&fleet, ticks, true, threads);
        engine_floor = engine_floor.min(t0.elapsed().as_secs_f64());
    }

    // The offline aggregation pass: `mux_sessions` replays the fleet
    // through lazy rate cursors into the k-way-merge sweep. It needs a
    // fresh engine (a spent one is a `StaleEngine` error), so the
    // literal run-engine-then-sweep baseline is floor + sweep.
    let sweep = RateSweep {
        capacity_bps: cfg.capacity_bps,
        buffer_bits: cfg.buffer_bits,
    };
    let mut sweep_wall = f64::INFINITY;
    let mut baseline = None;
    for _ in 0..MEASURE_REPEATS {
        let mut engine = SessionEngine::new(vec![class.clone()]);
        engine.add_sessions_placed(0, sessions, threads);
        let t0 = Instant::now();
        let stats =
            mux_sessions(engine, fleet, ticks, &sweep, cfg.t_start, cfg.t_end).expect("fresh");
        sweep_wall = sweep_wall.min(t0.elapsed().as_secs_f64());
        baseline = Some(stats);
    }
    let baseline = baseline.expect("at least one repeat");
    let offline = engine_floor + sweep_wall;

    // The frozen-oracle pin, re-run at measurement scale: a speedup is
    // only reportable for a bit-identical aggregate.
    assert_eq!(
        fused.mux.arrived_bits.to_bits(),
        baseline.arrived_bits.to_bits()
    );
    assert_eq!(fused.mux.lost_bits.to_bits(), baseline.lost_bits.to_bits());
    assert_eq!(
        fused.mux.served_bits.to_bits(),
        baseline.served_bits.to_bits()
    );
    assert_eq!(
        fused.mux.max_queue_bits.to_bits(),
        baseline.max_queue_bits.to_bits()
    );
    assert_eq!(
        fused.mux.utilization.to_bits(),
        baseline.utilization.to_bits()
    );

    FleetMuxThroughputRecord::with_walls(
        &format!("fleet_mux_synthetic_S{sessions}"),
        sessions,
        ticks,
        decisions,
        &walls,
        Some(offline),
        Some(engine_floor),
        threads,
    )
}

/// The records `BENCH_sweep.json` carries by default: the
/// [`STANDARD_FLEET_MUX_SESSIONS`] ladder at [`SESSION_TICKS`] ticks.
pub fn standard_fleet_mux_suite(threads: usize) -> Vec<FleetMuxThroughputRecord> {
    STANDARD_FLEET_MUX_SESSIONS
        .iter()
        .map(|&s| measure_fleet_mux(s, SESSION_TICKS, threads))
        .collect()
}

/// A single-point suite at an explicit session count (the `--sessions N`
/// scale knob).
pub fn scaled_fleet_mux_suite(threads: usize, sessions: usize) -> Vec<FleetMuxThroughputRecord> {
    vec![measure_fleet_mux(sessions, SESSION_TICKS, threads)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_fleet_point_pins_the_oracle_and_reports_speedup() {
        // `measure_fleet_mux` asserts the fused/baseline bit equality
        // internally; reaching the record at all is the oracle pin.
        let rec = measure_fleet_mux(300, 8, 1);
        assert_eq!(rec.name, "fleet_mux_synthetic_S300");
        assert_eq!(rec.sessions, 300);
        assert_eq!(rec.ticks, 8);
        assert_eq!(rec.decisions, 300 * 8);
        assert!(rec.decisions_per_second > 0.0);
        assert!(rec.offline_seconds.is_some());
        assert!(rec.engine_seconds.is_some());
        assert!(rec.speedup.is_some());
        assert!(rec.wall_seconds_median.is_some());
        // offline = engine floor + sweep pass, so it strictly exceeds
        // the floor by construction.
        assert!(rec.offline_seconds.unwrap() > rec.engine_seconds.unwrap());
    }

    #[test]
    fn scaled_suite_is_one_point_at_the_requested_count() {
        let recs = scaled_fleet_mux_suite(1, 150);
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].sessions, 150);
        assert_eq!(recs[0].decisions, 150 * SESSION_TICKS);
    }
}
