//! Minimal table type shared by the experiment harness: pretty printing
//! for the terminal and CSV output for plotting.

use std::fmt::Write as _;
use std::path::Path;

/// A titled table of stringly-typed cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Title printed above the table and used for the CSV file name.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows; each must have `columns.len()` cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the column count.
    pub fn push(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row width mismatch in {}",
            self.title
        );
        self.rows.push(cells);
    }

    /// Renders aligned for the terminal.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let header: Vec<String> = self
            .columns
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect();
        let _ = writeln!(out, "{}", header.join("  "));
        let _ = writeln!(out, "{}", "-".repeat(header.join("  ").len()));
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect();
            let _ = writeln!(out, "{}", line.join("  "));
        }
        out
    }

    /// Renders as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.columns.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }

    /// File-system-safe slug of the title.
    pub fn slug(&self) -> String {
        self.title
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '_'
                }
            })
            .collect::<String>()
            .split('_')
            .filter(|s| !s.is_empty())
            .collect::<Vec<_>>()
            .join("_")
    }

    /// Writes `<dir>/<slug>.csv`.
    pub fn save_csv(&self, dir: impl AsRef<Path>) -> std::io::Result<std::path::PathBuf> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.csv", self.slug()));
        std::fs::write(&path, self.to_csv())?;
        Ok(path)
    }
}

/// Formats a float with `digits` fractional digits.
pub fn f(value: f64, digits: usize) -> String {
    format!("{value:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Fig X: demo (units)", &["a", "bbbb", "c"]);
        t.push(vec!["1".into(), "2".into(), "3.5".into()]);
        t.push(vec!["10".into(), "20".into(), "30.25".into()]);
        t
    }

    #[test]
    fn render_is_aligned() {
        let r = sample().render();
        assert!(r.contains("## Fig X: demo (units)"));
        let lines: Vec<&str> = r.lines().collect();
        // Header and rows share the same width.
        assert_eq!(lines[1].len(), lines[3].len());
    }

    #[test]
    fn csv_roundtrip_structure() {
        let csv = sample().to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("a,bbbb,c"));
        assert_eq!(lines.next(), Some("1,2,3.5"));
    }

    #[test]
    fn slug_is_safe() {
        assert_eq!(sample().slug(), "fig_x_demo_units");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn push_checks_width() {
        sample().push(vec!["only-one".into()]);
    }

    #[test]
    fn save_csv_writes_file() {
        let dir = std::env::temp_dir().join("smooth_bench_table_test");
        let path = sample().save_csv(&dir).unwrap();
        let content = std::fs::read_to_string(path).unwrap();
        assert!(content.starts_with("a,bbbb,c"));
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(f(3.0, 0), "3");
    }
}
