//! Regenerates the fused fleet-to-link throughput records standalone —
//! the [`smooth_bench::fleetmuxbench`] suite without the rest of the
//! evaluation. Records are upserted into the `fleet_mux_throughput[]`
//! array of an existing `BENCH_sweep.json` when present (dedup key:
//! name + commit + threads), or into a fresh report otherwise.
//!
//! ```sh
//! fleetmux [--sessions N] [--threads N] [--bench-json PATH]
//! ```

use smooth_bench::fleetmuxbench;
use smooth_sweep::bench::SweepBenchReport;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut bench_json = String::from("BENCH_sweep.json");
    let mut threads_opt: Option<usize> = None;
    let mut sessions_opt: Option<usize> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{flag} requires a value");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--bench-json" => bench_json = value("--bench-json"),
            "--threads" => {
                let v = value("--threads");
                threads_opt = Some(v.parse().unwrap_or_else(|_| {
                    eprintln!("--threads: cannot parse {v:?}");
                    std::process::exit(2);
                }));
            }
            "--sessions" => {
                let v = value("--sessions");
                sessions_opt = Some(v.parse().unwrap_or_else(|_| {
                    eprintln!("--sessions: cannot parse {v:?}");
                    std::process::exit(2);
                }));
            }
            "--help" | "-h" => {
                println!("usage: fleetmux [--sessions N] [--threads N] [--bench-json PATH]");
                return;
            }
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }

    let (threads, thread_source) = smooth_sweep::resolve_threads_with_source(threads_opt);
    smooth_sweep::set_default_threads(threads);

    let path = std::path::Path::new(&bench_json);
    let mut report = if path.exists() {
        SweepBenchReport::load(path).unwrap_or_else(|e| {
            eprintln!("failed to load {bench_json}: {e}");
            std::process::exit(1);
        })
    } else {
        SweepBenchReport::with_thread_source(threads, thread_source)
    };

    let records = match sessions_opt {
        Some(sessions) => fleetmuxbench::scaled_fleet_mux_suite(threads, sessions),
        None => fleetmuxbench::standard_fleet_mux_suite(threads),
    };
    for record in records {
        let mut speedup = record
            .speedup
            .map(|s| format!(", {s:.1}x vs offline"))
            .unwrap_or_default();
        if let Some(m) = record.mux_pass_speedup {
            speedup.push_str(&format!(", {m:.1}x mux pass"));
        }
        println!(
            "{}: {:.0} decisions/s ({} sessions, {} ticks, {:.3}s fused{speedup}, {} thread(s))",
            record.name,
            record.decisions_per_second,
            record.sessions,
            record.ticks,
            record.wall_seconds,
            record.threads
        );
        report.record_fleet_mux_throughput(record);
    }

    match report.save(path) {
        Ok(()) => println!("fleet_mux_throughput[] -> {bench_json}"),
        Err(e) => {
            eprintln!("failed to write {bench_json}: {e}");
            std::process::exit(1);
        }
    }
}
