//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```sh
//! experiments [names...] [--csv-dir DIR] [--series]
//! ```
//!
//! With no names, runs everything. Series tables (thousands of rows,
//! meant for plotting) are written to CSV but elided on the terminal
//! unless `--series` is given.

use smooth_bench::experiments;
use smooth_bench::Table;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut names: Vec<String> = Vec::new();
    let mut csv_dir = String::from("results");
    let mut print_series = false;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--csv-dir" => {
                csv_dir = it.next().unwrap_or_else(|| {
                    eprintln!("--csv-dir requires a value");
                    std::process::exit(2);
                })
            }
            "--series" => print_series = true,
            "--help" | "-h" => {
                println!("usage: experiments [names...] [--csv-dir DIR] [--series]");
                println!(
                    "names: {}",
                    experiments::all()
                        .iter()
                        .map(|(n, _)| *n)
                        .collect::<Vec<_>>()
                        .join(" ")
                );
                return;
            }
            other => names.push(other.to_string()),
        }
    }

    let all = experiments::all();
    let selected: Vec<&(&str, fn() -> Vec<Table>)> = if names.is_empty() {
        all.iter().collect()
    } else {
        names
            .iter()
            .map(|n| {
                all.iter().find(|(name, _)| name == n).unwrap_or_else(|| {
                    eprintln!(
                        "unknown experiment {n:?}; known: {}",
                        all.iter().map(|(x, _)| *x).collect::<Vec<_>>().join(" ")
                    );
                    std::process::exit(2);
                })
            })
            .collect()
    };

    for (name, gen) in selected {
        println!("==================== {name} ====================");
        for table in gen() {
            match table.save_csv(&csv_dir) {
                Ok(path) => {
                    let is_series = table.title.contains("series");
                    if is_series && !print_series {
                        println!(
                            "## {} -> {} ({} rows, printed to CSV only)",
                            table.title,
                            path.display(),
                            table.rows.len()
                        );
                    } else {
                        print!("{}", table.render());
                        println!("   -> {}", path.display());
                    }
                }
                Err(e) => {
                    eprintln!("failed to write CSV for {}: {e}", table.title);
                    print!("{}", table.render());
                }
            }
            println!();
        }
    }
}
