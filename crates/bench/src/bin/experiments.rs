//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```sh
//! experiments [names...] [--csv-dir DIR] [--series] [--threads N]
//!             [--bench-json PATH] [--sources N] [--sessions N]
//! ```
//!
//! With no names, runs everything. Series tables (thousands of rows,
//! meant for plotting) are written to CSV but elided on the terminal
//! unless `--series` is given.
//!
//! Sweep-heavy figures fan out over `--threads` workers (default: all
//! cores; output is bit-identical for any value). Every run times each
//! figure and writes a `BENCH_sweep.json` perf report recording the
//! thread count with its provenance, the git commit, a serial re-run of
//! *every* figure when the main run was parallel (so per-figure speedups
//! are tracked suite-wide), and hot-path throughput (pictures/sec for the
//! incremental engine vs the naive reference on a synthetic 1M-picture
//! trace at H = 32, plus a parallel batch over the same workload) and
//! multiplexer-sweep throughput (events/sec for the streaming k-way-merge
//! engine vs the frozen quadratic `mux::reference`, over a source-count
//! ladder up to 10k — or at exactly `--sources N` when given) and
//! session-engine throughput (aggregate decisions/sec for a fleet of
//! concurrent live sessions, over a session ladder up to 1M — or at
//! exactly `--sessions N` when given) and event-driven churn throughput
//! (the timing-wheel dynamic engine on a 24/25/30/60 fps mix under
//! ~1 %/s live churn, recorded as `churn_throughput[]`) and a
//! cores-vs-throughput scaling curve (the same fleet at a 1, 2, 4, …
//! worker ladder with pinned workers and first-touch shard placement,
//! recorded as `scaling[]`).

use std::time::Instant;

use smooth_bench::churnbench;
use smooth_bench::experiments;
use smooth_bench::fleetmuxbench;
use smooth_bench::muxbench;
use smooth_bench::scalebench;
use smooth_bench::sessionbench;
use smooth_bench::throughput;
use smooth_sweep::bench::SweepBenchReport;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut names: Vec<String> = Vec::new();
    let mut csv_dir = String::from("results");
    let mut bench_json = String::from("BENCH_sweep.json");
    let mut print_series = false;
    let mut threads_opt: Option<usize> = None;
    let mut sources_opt: Option<usize> = None;
    let mut sessions_opt: Option<usize> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--csv-dir" => {
                csv_dir = it.next().unwrap_or_else(|| {
                    eprintln!("--csv-dir requires a value");
                    std::process::exit(2);
                })
            }
            "--bench-json" => {
                bench_json = it.next().unwrap_or_else(|| {
                    eprintln!("--bench-json requires a value");
                    std::process::exit(2);
                })
            }
            "--threads" => {
                let v = it.next().unwrap_or_else(|| {
                    eprintln!("--threads requires a value");
                    std::process::exit(2);
                });
                threads_opt = Some(v.parse().unwrap_or_else(|_| {
                    eprintln!("--threads: cannot parse {v:?}");
                    std::process::exit(2);
                }));
            }
            "--sources" => {
                let v = it.next().unwrap_or_else(|| {
                    eprintln!("--sources requires a value");
                    std::process::exit(2);
                });
                sources_opt = Some(v.parse().unwrap_or_else(|_| {
                    eprintln!("--sources: cannot parse {v:?}");
                    std::process::exit(2);
                }));
            }
            "--sessions" => {
                let v = it.next().unwrap_or_else(|| {
                    eprintln!("--sessions requires a value");
                    std::process::exit(2);
                });
                sessions_opt = Some(v.parse().unwrap_or_else(|_| {
                    eprintln!("--sessions: cannot parse {v:?}");
                    std::process::exit(2);
                }));
            }
            "--series" => print_series = true,
            "--help" | "-h" => {
                println!(
                    "usage: experiments [names...] [--csv-dir DIR] [--series] \
                     [--threads N] [--bench-json PATH] [--sources N] [--sessions N]"
                );
                println!(
                    "names: {}",
                    experiments::all()
                        .iter()
                        .map(|(n, _)| *n)
                        .collect::<Vec<_>>()
                        .join(" ")
                );
                return;
            }
            other => names.push(other.to_string()),
        }
    }

    let (threads, thread_source) = smooth_sweep::resolve_threads_with_source(threads_opt);
    smooth_sweep::set_default_threads(threads);

    let all = experiments::all();
    let selected: Vec<&experiments::Experiment> = if names.is_empty() {
        all.iter().collect()
    } else {
        names
            .iter()
            .map(|n| {
                all.iter().find(|(name, _)| name == n).unwrap_or_else(|| {
                    eprintln!(
                        "unknown experiment {n:?}; known: {}",
                        all.iter().map(|(x, _)| *x).collect::<Vec<_>>().join(" ")
                    );
                    std::process::exit(2);
                })
            })
            .collect()
    };

    let mut report = SweepBenchReport::with_thread_source(threads, thread_source);
    for &&(name, gen) in &selected {
        println!("==================== {name} ====================");
        let tables = report.time(name, gen);
        for table in tables {
            match table.save_csv(&csv_dir) {
                Ok(path) => {
                    let is_series = table.title.contains("series");
                    if is_series && !print_series {
                        println!(
                            "## {} -> {} ({} rows, printed to CSV only)",
                            table.title,
                            path.display(),
                            table.rows.len()
                        );
                    } else {
                        print!("{}", table.render());
                        println!("   -> {}", path.display());
                    }
                }
                Err(e) => {
                    eprintln!("failed to write CSV for {}: {e}", table.title);
                    print!("{}", table.render());
                }
            }
            println!();
        }
    }

    // Serial re-runs of every selected figure so BENCH_sweep.json records
    // per-figure parallel speedups suite-wide. When the main run was
    // already serial, each figure is its own baseline — copy the wall time
    // instead of paying for a second identical run.
    if threads > 1 {
        smooth_sweep::set_default_threads(1);
        for &&(name, gen) in &selected {
            let t0 = Instant::now();
            std::hint::black_box(gen());
            report.set_serial_baseline(name, t0.elapsed().as_secs_f64());
        }
        smooth_sweep::set_default_threads(threads);
    } else {
        let copies: Vec<(String, f64)> = report
            .figures
            .iter()
            .map(|f| (f.name.clone(), f.wall_seconds))
            .collect();
        for (name, wall) in copies {
            report.set_serial_baseline(&name, wall);
        }
    }

    // Hot-path throughput: the acceptance gauge for the incremental
    // lookahead engine (see crates/bench/src/throughput.rs).
    println!("==================== throughput ====================");
    for record in throughput::standard_suite(threads) {
        println!(
            "{}: {:.0} pictures/s ({} pictures, {:.3}s, {} thread(s))",
            record.name,
            record.pictures_per_sec,
            record.pictures,
            record.wall_seconds,
            record.threads
        );
        report.record_throughput(record);
    }
    println!();

    // Multiplexer-sweep throughput: the acceptance gauge for the
    // streaming k-way-merge mux (see crates/bench/src/muxbench.rs).
    println!("==================== mux throughput ====================");
    let mux_records = match sources_opt {
        Some(sources) => muxbench::scaled_mux_suite(threads, sources),
        None => muxbench::standard_mux_suite(threads),
    };
    for record in mux_records {
        let speedup = record
            .speedup
            .map(|s| format!(", {s:.1}x vs reference"))
            .unwrap_or_default();
        println!(
            "{}: {:.0} events/s ({} sources, {} events, {:.4}s{speedup}, {} thread(s))",
            record.name,
            record.events_per_sec,
            record.sources,
            record.events,
            record.wall_seconds,
            record.threads
        );
        report.record_mux_throughput(record);
    }
    println!();

    // Session-engine throughput: the acceptance gauge for the
    // million-session fleet engine (see crates/bench/src/sessionbench.rs).
    println!("==================== session throughput ====================");
    let session_records = match sessions_opt {
        Some(sessions) => sessionbench::scaled_session_suite(threads, sessions),
        None => sessionbench::standard_session_suite(threads),
    };
    for record in session_records {
        println!(
            "{}: {:.0} decisions/s ({} sessions, {} ticks, {} decisions, {:.3}s, {} thread(s))",
            record.name,
            record.decisions_per_second,
            record.sessions,
            record.ticks,
            record.decisions,
            record.wall_seconds,
            record.threads
        );
        report.record_session_throughput(record);
    }
    println!();

    // Churn throughput: the acceptance gauge for the event-driven
    // dynamic engine — heterogeneous fps mix under ~1 %/s live churn
    // (see crates/bench/src/churnbench.rs).
    println!("==================== churn throughput ====================");
    let churn_records = match sessions_opt {
        Some(sessions) => churnbench::scaled_churn_suite(threads, sessions),
        None => churnbench::standard_churn_suite(threads),
    };
    for record in churn_records {
        println!(
            "{}: {:.0} decisions/s ({} sessions, {} ppm/s churn, {} joined, {} ticks, {} decisions, {:.3}s, {} thread(s))",
            record.name,
            record.decisions_per_second,
            record.sessions,
            record.churn_ppm_per_sec,
            record.joined,
            record.ticks,
            record.decisions,
            record.wall_seconds,
            record.threads
        );
        report.record_churn_throughput(record);
    }
    println!();

    // Fused fleet-to-link throughput: the session engine streaming its
    // decisions into the online link aggregator, vs the offline
    // run-engine-then-sweep baseline (see
    // crates/bench/src/fleetmuxbench.rs).
    println!("==================== fleet mux throughput ====================");
    let fleet_mux_records = match sessions_opt {
        Some(sessions) => fleetmuxbench::scaled_fleet_mux_suite(threads, sessions),
        None => fleetmuxbench::standard_fleet_mux_suite(threads),
    };
    for record in fleet_mux_records {
        let mut speedup = record
            .speedup
            .map(|s| format!(", {s:.1}x vs offline"))
            .unwrap_or_default();
        if let Some(m) = record.mux_pass_speedup {
            speedup.push_str(&format!(", {m:.1}x mux pass"));
        }
        println!(
            "{}: {:.0} decisions/s ({} sessions, {} ticks, {:.3}s fused{speedup}, {} thread(s))",
            record.name,
            record.decisions_per_second,
            record.sessions,
            record.ticks,
            record.wall_seconds,
            record.threads
        );
        report.record_fleet_mux_throughput(record);
    }
    println!();

    // Cores-vs-throughput scaling: the megasession engine with
    // cache-aware shard placement over a 1,2,4,… worker ladder (see
    // crates/bench/src/scalebench.rs). On a 1-core box the curve is one
    // point.
    println!("==================== scaling ====================");
    let scaling_records = match sessions_opt {
        Some(sessions) => scalebench::scaling_suite(sessions, sessionbench::SESSION_TICKS),
        None => scalebench::standard_scaling_suite(),
    };
    for record in scaling_records {
        println!(
            "{}: {:.0} decisions/s ({} sessions, T={}, {:.3}s, pinned={}, first_touch={})",
            record.name,
            record.decisions_per_second,
            record.sessions,
            record.threads,
            record.wall_seconds,
            record.pinned,
            record.first_touch
        );
        report.record_scaling(record);
    }
    println!();

    match report.save(std::path::Path::new(&bench_json)) {
        Ok(()) => println!(
            "perf report ({} figures, {} threads) -> {bench_json}",
            report.figures.len(),
            report.threads
        ),
        Err(e) => eprintln!("failed to write {bench_json}: {e}"),
    }
}
