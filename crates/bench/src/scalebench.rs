//! Cores-vs-throughput scaling: the megasession engine run at a ladder
//! of worker counts with cache-aware shard placement.
//!
//! Each point builds a fresh fleet with
//! [`smooth_engine::SessionEngine::add_sessions_placed`] — shards are
//! constructed *by the worker that will later advance them* (first-touch
//! placement, so on NUMA boxes a shard's pages land on its worker's
//! node) — and times only [`smooth_engine::SessionEngine::run_pinned`],
//! which stripes shards over workers statically (shard `s` → worker
//! `s mod T`) and best-effort-pins worker `w` to CPU `w`. The static
//! striping makes the assignment identical to construction, so every
//! shard is advanced where it was built.
//!
//! The ladder is 1, 2, 4, … doubling up to the logical core count (the
//! count itself is always included); on a 1-core box the curve is
//! legitimately a single point. Records land in `BENCH_sweep.json` as
//! `scaling[]` with pinning provenance, and the `mpeg-smooth scale`
//! subcommand regenerates them standalone.

use std::time::Instant;

use smooth_engine::{SessionEngine, SyntheticFleet};
use smooth_sweep::bench::ScalingRecord;
use smooth_sweep::{logical_cores, pinning_supported};

use crate::sessionbench::{session_class, SESSION_TICKS};
use crate::throughput::MEASURE_REPEATS;

/// Sessions in the standard scaling fleet.
pub const SCALE_SESSIONS: usize = 1_000_000;

/// The worker-count ladder: powers of two up to `max`, with `max`
/// itself always included as the final rung.
pub fn core_ladder(max: usize) -> Vec<usize> {
    let max = max.max(1);
    let mut ladder = Vec::new();
    let mut t = 1;
    while t < max {
        ladder.push(t);
        t *= 2;
    }
    ladder.push(max);
    ladder
}

/// Times a `sessions`-session fleet through `ticks` lockstep ticks plus
/// the finishing drain at `threads` pinned workers, min over `repeats`.
/// Fleet construction (first-touch, by the advancing workers) is
/// excluded from the timed region.
pub fn measure_scale_point(
    sessions: usize,
    ticks: u64,
    threads: usize,
    repeats: usize,
) -> ScalingRecord {
    let class = session_class();
    let fleet = SyntheticFleet {
        seed: 0x5e55be7c,
        pattern: class.pattern,
    };
    let mut walls = Vec::with_capacity(repeats);
    let mut decisions = 0u64;
    for _ in 0..repeats.max(1) {
        let mut engine = SessionEngine::new(vec![class.clone()]);
        engine.add_sessions_placed(0, sessions, threads);
        let t0 = Instant::now();
        engine.run_pinned(&fleet, ticks, true, threads);
        walls.push(t0.elapsed().as_secs_f64());
        std::hint::black_box(engine.digest());
        decisions = engine.decisions();
    }
    ScalingRecord::with_walls(
        &format!("scale_synthetic_S{sessions}"),
        sessions,
        ticks,
        decisions,
        &walls,
        threads,
        pinning_supported(),
        true,
    )
}

/// The full curve: one point per [`core_ladder`] rung at the box's
/// logical core count.
pub fn scaling_suite(sessions: usize, ticks: u64) -> Vec<ScalingRecord> {
    core_ladder(logical_cores())
        .into_iter()
        .map(|threads| measure_scale_point(sessions, ticks, threads, MEASURE_REPEATS))
        .collect()
}

/// The records `BENCH_sweep.json` carries by default: the standard
/// 1M-session fleet at [`SESSION_TICKS`] ticks.
pub fn standard_scaling_suite() -> Vec<ScalingRecord> {
    scaling_suite(SCALE_SESSIONS, SESSION_TICKS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_doubles_and_always_ends_at_max() {
        assert_eq!(core_ladder(1), vec![1]);
        assert_eq!(core_ladder(2), vec![1, 2]);
        assert_eq!(core_ladder(6), vec![1, 2, 4, 6]);
        assert_eq!(core_ladder(8), vec![1, 2, 4, 8]);
        assert_eq!(core_ladder(0), vec![1]);
    }

    #[test]
    fn scale_point_measures_all_decisions() {
        let rec = measure_scale_point(300, 8, 2, 1);
        assert_eq!(rec.sessions, 300);
        assert_eq!(rec.ticks, 8);
        assert_eq!(rec.threads, 2);
        assert_eq!(rec.decisions, 300 * 8);
        assert!(rec.decisions_per_second > 0.0);
        assert!(rec.first_touch);
        assert_eq!(rec.name, "scale_synthetic_S300");
    }

    #[test]
    fn pinned_point_matches_the_unpinned_engine_digest() {
        // The scaling harness must measure the same computation the rest
        // of the suite measures: placed construction + pinned run is
        // bit-identical to plain construction + dynamic run.
        let class = session_class();
        let fleet = SyntheticFleet {
            seed: 0x5e55be7c,
            pattern: class.pattern,
        };
        let mut pinned = SessionEngine::new(vec![class.clone()]);
        pinned.add_sessions_placed(0, 500, 3);
        pinned.run_pinned(&fleet, 8, true, 3);
        let mut plain = SessionEngine::new(vec![class]);
        plain.add_sessions(0, 500);
        plain.run(&fleet, 8, true, 2);
        assert_eq!(pinned.digest(), plain.digest());
        assert_eq!(pinned.decisions(), plain.decisions());
    }
}
