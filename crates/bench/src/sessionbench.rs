//! Session-engine throughput: aggregate picture decisions per second
//! across a fleet of concurrent live sessions
//! ([`smooth_engine::SessionEngine`]).
//!
//! The ROADMAP's production framing is one process smoothing *many*
//! streams at once, so the number that matters here is not per-picture
//! cost on one long trace (that is `throughput.rs`) but fleet-aggregate
//! decisions/second when a megasession ensemble advances in lockstep
//! ticks. The paper-recommended class (`D = 0.2 s`, `K = 1`, `H = 9`,
//! pattern (3, 9)) is swept over a session ladder up to 1 000 000.
//!
//! Each measurement builds a fresh fleet per repeat (the engine is
//! consumed by `finish`), times **only** the decision phase — the
//! session-major batched [`SessionEngine::run`], bit-identical to the
//! lockstep tick loop but streaming fleet state from memory once per
//! batch instead of once per tick — and keeps the min over
//! [`crate::throughput::MEASURE_REPEATS`] runs. Records land in
//! `BENCH_sweep.json` as `session_throughput[]`.

use std::time::Instant;

use smooth_core::SmootherParams;
use smooth_engine::{SessionClass, SessionEngine, SyntheticFleet};
use smooth_mpeg::GopPattern;
use smooth_sweep::bench::SessionThroughputRecord;

use crate::throughput::MEASURE_REPEATS;

/// Lockstep ticks (pictures per session) each measurement advances.
pub const SESSION_TICKS: u64 = 32;

/// The standard session ladder for `BENCH_sweep.json`.
pub const STANDARD_SESSIONS: [usize; 3] = [10_000, 100_000, 1_000_000];

/// The measured configuration class: the paper's recommended
/// `D = 0.2 s`, `K = 1`, `H = 9` on the (3, 9) GOP pattern.
pub fn session_class() -> SessionClass {
    let pattern = GopPattern::new(3, 9).expect("(3,9) is valid");
    SessionClass::new(
        SmootherParams::at_30fps(0.2, 1, 9).expect("0.2 s is feasible"),
        pattern,
    )
}

/// Times a fleet of `sessions` concurrent sessions through `ticks`
/// lockstep ticks plus the finishing drain, at `threads` workers.
/// Fleet construction is excluded from the timed region; the clock
/// covers exactly the decision work.
pub fn measure_sessions(sessions: usize, ticks: u64, threads: usize) -> SessionThroughputRecord {
    let class = session_class();
    let pattern = class.pattern;
    let fleet = SyntheticFleet {
        seed: 0x5e55be7c,
        pattern,
    };
    let mut walls = Vec::with_capacity(MEASURE_REPEATS);
    let mut decisions = 0u64;
    for _ in 0..MEASURE_REPEATS {
        let mut engine = SessionEngine::new(vec![class.clone()]);
        // First-touch construction (untimed, bit-identical to
        // `add_sessions`): built inside worker threads, the fleet's
        // pages come from fresh allocator arenas instead of whatever
        // the harness fragmented earlier in the run — measured ~20%
        // throughput swing at 1M sessions inside the full suite.
        engine.add_sessions_placed(0, sessions, threads);
        let t0 = Instant::now();
        engine.run(&fleet, ticks, true, threads);
        walls.push(t0.elapsed().as_secs_f64());
        std::hint::black_box(engine.digest());
        decisions = engine.decisions();
    }
    SessionThroughputRecord::with_walls(
        &format!("sessions_synthetic_S{sessions}"),
        sessions,
        ticks,
        decisions,
        &walls,
        threads,
    )
}

/// The records `BENCH_sweep.json` carries by default: the full session
/// ladder at [`SESSION_TICKS`] ticks.
pub fn standard_session_suite(threads: usize) -> Vec<SessionThroughputRecord> {
    STANDARD_SESSIONS
        .iter()
        .map(|&s| measure_sessions(s, SESSION_TICKS, threads))
        .collect()
}

/// A single-point suite at an explicit session count (the `--sessions N`
/// scale knob).
pub fn scaled_session_suite(threads: usize, sessions: usize) -> Vec<SessionThroughputRecord> {
    vec![measure_sessions(sessions, SESSION_TICKS, threads)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_fleet_measures_all_decisions() {
        let rec = measure_sessions(200, 8, 1);
        assert_eq!(rec.sessions, 200);
        assert_eq!(rec.ticks, 8);
        assert_eq!(rec.decisions, 200 * 8);
        assert!(rec.decisions_per_second > 0.0);
        assert_eq!(rec.threads, 1);
        assert_eq!(rec.name, "sessions_synthetic_S200");
    }

    #[test]
    fn scaled_suite_is_one_point_at_the_requested_count() {
        let recs = scaled_session_suite(1, 150);
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].sessions, 150);
        assert_eq!(recs[0].decisions, 150 * SESSION_TICKS);
    }
}
