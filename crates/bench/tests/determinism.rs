//! The ISSUE's hard requirement, enforced end to end: every parallel
//! sweep produces output byte-identical to a serial run.
//!
//! These tests flip the process-wide worker count between figure
//! regenerations and compare the rendered tables byte for byte. They live
//! in one integration test binary (and one #[test] each) so the global
//! [`smooth_sweep::set_default_threads`] never races another test — and
//! even a race would only change timing, never results.

use smooth_bench::experiments;

/// Renders every table of a figure to one string (bytes, not floats —
/// the comparison is textual equality, no tolerance).
fn render_all(gen: fn() -> Vec<smooth_bench::Table>) -> String {
    gen()
        .iter()
        .map(|t| t.render())
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn figure_grids_are_byte_identical_serial_vs_parallel() {
    // Fig 7 (lookahead grid) and fig 8 (slack grid): the two heaviest
    // sweep_table users, plus fig4's per-D fan-out.
    for (name, gen) in experiments::all() {
        if !matches!(name, "fig4" | "fig7" | "fig8") {
            continue;
        }
        smooth_sweep::set_default_threads(1);
        let serial = render_all(gen);
        for threads in [2, 4, 8] {
            smooth_sweep::set_default_threads(threads);
            let parallel = render_all(gen);
            assert_eq!(serial, parallel, "{name} diverged at {threads} threads");
        }
        smooth_sweep::set_default_threads(0);
    }
}

#[test]
fn mux_experiment_is_byte_identical_serial_vs_parallel() {
    // The multiplexing experiment exercises both fan-out layers:
    // buffer_sweep across buffer points and run_multiplex across sources.
    smooth_sweep::set_default_threads(1);
    let serial = render_all(experiments::mux);
    smooth_sweep::set_default_threads(4);
    let parallel = render_all(experiments::mux);
    smooth_sweep::set_default_threads(0);
    assert_eq!(serial, parallel);
}
