//! Offline-vendored mini-serde.
//!
//! This workspace is built in a hermetic environment with no access to
//! crates.io, so the real `serde` cannot be fetched. This crate provides
//! the *subset* of serde's public API that the workspace actually uses —
//! the `Serialize`/`Deserialize` traits, derive macros (via the companion
//! `serde_derive` crate), and the `with`-module adapter surface
//! (`serialize_some`/`serialize_none`, `Option::<T>::deserialize`) — built
//! on a self-describing [`value::Value`] data model instead of serde's
//! visitor machinery. `serde_json` (also vendored) serializes that model.
//!
//! The API is intentionally source-compatible with real serde for every
//! use in this repository, so swapping the real crates back in (by
//! repointing the workspace dependencies at crates.io) requires no source
//! changes elsewhere.

use std::fmt;

pub mod value;

/// A data structure that can be serialized into the [`value::Value`] model.
pub trait Serialize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A format that can consume the [`value::Value`] model.
///
/// Unlike real serde's 30-method serializer, everything funnels through
/// [`serialize_value`](Serializer::serialize_value); the `Option` helpers
/// exist because `#[serde(with = "...")]` adapter modules call them.
pub trait Serializer: Sized {
    type Ok;
    type Error;

    /// Consumes one fully-built value.
    fn serialize_value(self, v: value::Value) -> Result<Self::Ok, Self::Error>;

    /// Serializes `Some(value)` (used by `with`-adapters).
    fn serialize_some<T: Serialize + ?Sized>(self, v: &T) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(value::to_value(v))
    }

    /// Serializes `None` (used by `with`-adapters).
    fn serialize_none(self) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(value::Value::Null)
    }
}

/// A data structure that can be reconstructed from the value model.
pub trait Deserialize<'de>: Sized {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A format that can produce the value model.
pub trait Deserializer<'de>: Sized {
    type Error: de::Error;

    /// Surrenders the underlying value.
    fn take_value(self) -> Result<value::Value, Self::Error>;
}

pub mod ser {
    pub use crate::{Serialize, Serializer};
}

pub mod de {
    use std::fmt;

    pub use crate::{Deserialize, Deserializer};

    /// Error constructor contract for deserialization errors.
    pub trait Error: Sized + fmt::Debug + fmt::Display {
        fn custom<T: fmt::Display>(msg: T) -> Self;
    }

    /// A type deserializable without borrowing from the input.
    pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
    impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

// ---------------------------------------------------------------------------
// Serialize implementations for std types
// ---------------------------------------------------------------------------

macro_rules! ser_int {
    ($($t:ty)*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_value(value::Value::Int(*self as i64))
            }
        }
    )*};
}
ser_int!(i8 i16 i32 i64 isize);

macro_rules! ser_uint {
    ($($t:ty)*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_value(value::Value::UInt(*self as u64))
            }
        }
    )*};
}
ser_uint!(u8 u16 u32 u64 usize);

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(value::Value::Float(*self))
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(value::Value::Float(f64::from(*self)))
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(value::Value::Bool(*self))
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(value::Value::Str(self.to_owned()))
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(value::Value::Str(self.clone()))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => s.serialize_some(v),
            None => s.serialize_none(),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(value::Value::Array(
            self.iter().map(value::to_value).collect(),
        ))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(s)
    }
}

impl<T: Serialize> Serialize for std::ops::Range<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(value::Value::Object(vec![
            ("start".to_owned(), value::to_value(&self.start)),
            ("end".to_owned(), value::to_value(&self.end)),
        ]))
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_value(value::Value::Array(vec![$(value::to_value(&self.$n)),+]))
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

// ---------------------------------------------------------------------------
// Deserialize implementations for std types
// ---------------------------------------------------------------------------

fn want<E: de::Error>(expected: &str, got: &value::Value) -> E {
    E::custom(format!("expected {expected}, found {}", got.kind()))
}

macro_rules! de_int {
    ($($t:ty)*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let v = d.take_value()?;
                let wide: i128 = match v {
                    value::Value::Int(i) => i as i128,
                    value::Value::UInt(u) => u as i128,
                    ref other => return Err(want("an integer", other)),
                };
                <$t>::try_from(wide).map_err(|_| {
                    de::Error::custom(format!(
                        "integer {wide} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}
de_int!(i8 i16 i32 i64 isize u8 u16 u32 u64 usize);

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let v = d.take_value()?;
        match v {
            value::Value::Float(f) => Ok(f),
            value::Value::Int(i) => Ok(i as f64),
            value::Value::UInt(u) => Ok(u as f64),
            other => Err(want("a number", &other)),
        }
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        f64::deserialize(d).map(|f| f as f32)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            value::Value::Bool(b) => Ok(b),
            other => Err(want("a boolean", &other)),
        }
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            value::Value::Str(s) => Ok(s),
            other => Err(want("a string", &other)),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            value::Value::Null => Ok(None),
            v => T::deserialize(value::ValueDeserializer::<D::Error>::new(v)).map(Some),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            value::Value::Array(items) => items
                .into_iter()
                .map(|it| T::deserialize(value::ValueDeserializer::<D::Error>::new(it)))
                .collect(),
            other => Err(want("an array", &other)),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::ops::Range<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            value::Value::Object(fields) => {
                let mut start = None;
                let mut end = None;
                for (k, v) in fields {
                    let slot = match k.as_str() {
                        "start" => &mut start,
                        "end" => &mut end,
                        _ => continue,
                    };
                    *slot = Some(T::deserialize(value::ValueDeserializer::<D::Error>::new(
                        v,
                    ))?);
                }
                match (start, end) {
                    (Some(start), Some(end)) => Ok(start..end),
                    _ => Err(de::Error::custom("Range requires `start` and `end`")),
                }
            }
            other => Err(want("a range object", &other)),
        }
    }
}

macro_rules! de_tuple {
    ($(($len:literal: $($n:tt $t:ident),+))*) => {$(
        impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {
            fn deserialize<__De: Deserializer<'de>>(d: __De) -> Result<Self, __De::Error> {
                match d.take_value()? {
                    value::Value::Array(items) if items.len() == $len => {
                        let mut it = items.into_iter();
                        Ok(($({
                            let _ = $n; // positional marker
                            $t::deserialize(value::ValueDeserializer::<__De::Error>::new(
                                it.next().expect("length checked"),
                            ))?
                        },)+))
                    }
                    other => Err(want(
                        concat!("an array of length ", $len),
                        &other,
                    )),
                }
            }
        }
    )*};
}
de_tuple! {
    (1: 0 A)
    (2: 0 A, 1 B)
    (3: 0 A, 1 B, 2 C)
    (4: 0 A, 1 B, 2 C, 3 D)
}

/// Formats a value for error messages without exposing the full payload.
impl fmt::Display for value::Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind())
    }
}
