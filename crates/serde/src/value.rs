//! The self-describing data model every (de)serializer funnels through.

use std::convert::Infallible;
use std::marker::PhantomData;

use crate::{de, Deserialize, Deserializer, Serialize, Serializer};

/// A JSON-shaped value tree.
///
/// Object fields keep insertion order (a `Vec` of pairs, not a map), so
/// serialized output is deterministic and mirrors declaration order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Human-readable kind name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "a boolean",
            Value::Int(_) | Value::UInt(_) => "an integer",
            Value::Float(_) => "a float",
            Value::Str(_) => "a string",
            Value::Array(_) => "an array",
            Value::Object(_) => "an object",
        }
    }
}

/// The serializer that builds a [`Value`]; it cannot fail.
pub struct ValueSerializer;

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = Infallible;

    fn serialize_value(self, v: Value) -> Result<Value, Infallible> {
        Ok(v)
    }
}

/// Converts any serializable value into the data model.
pub fn to_value<T: Serialize + ?Sized>(v: &T) -> Value {
    match v.serialize(ValueSerializer) {
        Ok(value) => value,
        Err(never) => match never {},
    }
}

/// A deserializer that hands back an owned [`Value`], generic over the
/// caller's error type so it can plug into any `Deserialize` impl.
pub struct ValueDeserializer<E> {
    value: Value,
    _marker: PhantomData<fn() -> E>,
}

impl<E> ValueDeserializer<E> {
    pub fn new(value: Value) -> Self {
        ValueDeserializer {
            value,
            _marker: PhantomData,
        }
    }
}

impl<'de, E: de::Error> Deserializer<'de> for ValueDeserializer<E> {
    type Error = E;

    fn take_value(self) -> Result<Value, E> {
        Ok(self.value)
    }
}

// ---------------------------------------------------------------------------
// Helpers used by the derive-generated code
// ---------------------------------------------------------------------------

/// Unwraps a value expected to be an object (derive: struct bodies).
pub fn into_object<E: de::Error>(v: Value, ty: &str) -> Result<Vec<(String, Value)>, E> {
    match v {
        Value::Object(fields) => Ok(fields),
        other => Err(E::custom(format!(
            "expected {ty} as an object, found {}",
            other.kind()
        ))),
    }
}

fn find<'a>(obj: &'a [(String, Value)], name: &str) -> Option<&'a Value> {
    obj.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

/// Deserializes a required field (derive: plain struct fields).
pub fn get_field<T, E>(obj: &[(String, Value)], name: &str) -> Result<T, E>
where
    T: for<'x> Deserialize<'x>,
    E: de::Error,
{
    match find(obj, name) {
        Some(v) => T::deserialize(ValueDeserializer::<E>::new(v.clone())),
        None => Err(E::custom(format!("missing field `{name}`"))),
    }
}

/// Deserializes a `#[serde(default)]` field: missing means `Default`.
pub fn get_field_default<T, E>(obj: &[(String, Value)], name: &str) -> Result<T, E>
where
    T: for<'x> Deserialize<'x> + Default,
    E: de::Error,
{
    match find(obj, name) {
        Some(v) => T::deserialize(ValueDeserializer::<E>::new(v.clone())),
        None => Ok(T::default()),
    }
}

/// Fetches a field for a `#[serde(with = "...")]` adapter; a missing field
/// is surfaced as `Null` so `Option`-based adapters treat it as `None`.
pub fn field_or_null(obj: &[(String, Value)], name: &str) -> Value {
    find(obj, name).cloned().unwrap_or(Value::Null)
}

/// Error helper for unknown enum variants (derive: enums).
pub fn unknown_variant<T, E: de::Error>(ty: &str, variant: &str) -> Result<T, E> {
    Err(E::custom(format!(
        "unknown variant `{variant}` for enum {ty}"
    )))
}
