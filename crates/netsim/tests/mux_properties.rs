//! Property tests for the multiplexer models: conservation laws and
//! monotonicities that must hold for every input, plus a fluid-vs-cell
//! cross-validation.

use proptest::prelude::*;
use smooth_core::RateSegment;
use smooth_metrics::StepFunction;
use smooth_netsim::{cell_times, CellMux, FluidMux};

/// Strategy: a random piecewise-constant source over [0, ~5 s] with rates
/// up to 10 Mbps.
fn arb_source() -> impl Strategy<Value = StepFunction> {
    proptest::collection::vec((0.01f64..0.5, 0.0f64..10.0e6), 1..12).prop_map(|pieces| {
        let mut segs = Vec::with_capacity(pieces.len());
        let mut t = 0.0;
        for (dur, rate) in pieces {
            segs.push(RateSegment {
                start: t,
                end: t + dur,
                rate,
            });
            t += dur;
        }
        StepFunction::from_segments(&segs)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Conservation: offered = lost + served + final queue, exactly.
    #[test]
    fn fluid_mux_conserves_bits(
        sources in proptest::collection::vec(arb_source(), 1..5),
        cap in 1.0e6f64..20.0e6,
        buf in 0.0f64..4.0e6,
    ) {
        let horizon = sources.iter().map(|s| s.domain_end()).fold(0.0f64, f64::max);
        let stats = FluidMux { capacity_bps: cap, buffer_bits: buf }.run(&sources, 0.0, horizon);
        let balance = stats.arrived_bits - stats.lost_bits - stats.served_bits - stats.final_queue_bits;
        prop_assert!(balance.abs() < 1.0, "conservation violated by {balance}");
        prop_assert!(stats.lost_bits >= -1e-9);
        prop_assert!(stats.max_queue_bits <= buf + 1e-6);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&stats.utilization));
    }

    /// Loss is non-increasing in buffer size and in capacity, on the SAME
    /// sample path.
    #[test]
    fn fluid_mux_loss_monotonicities(
        sources in proptest::collection::vec(arb_source(), 1..4),
        cap in 1.0e6f64..15.0e6,
    ) {
        let horizon = sources.iter().map(|s| s.domain_end()).fold(0.0f64, f64::max);
        let loss = |c: f64, b: f64| {
            FluidMux { capacity_bps: c, buffer_bits: b }.run(&sources, 0.0, horizon).loss_ratio()
        };
        let l0 = loss(cap, 0.0);
        let l1 = loss(cap, 1.0e6);
        let l2 = loss(cap, 4.0e6);
        prop_assert!(l1 <= l0 + 1e-12, "buffer monotonicity: {l1} > {l0}");
        prop_assert!(l2 <= l1 + 1e-12, "buffer monotonicity: {l2} > {l1}");
        let lc = loss(cap * 1.5, 1.0e6);
        prop_assert!(lc <= l1 + 1e-12, "capacity monotonicity: {lc} > {l1}");
    }

    /// Packetizer: the cell count equals ceil(bits / payload) and the
    /// times are sorted within the source's domain.
    #[test]
    fn packetizer_invariants(source in arb_source()) {
        let pieces: Vec<RateSegment> = source
            .pieces()
            .map(|(s, e, r)| RateSegment { start: s, end: e, rate: r })
            .collect();
        let total: f64 = pieces.iter().map(|s| s.rate * (s.end - s.start)).sum();
        let cells = cell_times(&pieces);
        let expected = (total / smooth_netsim::CELL_PAYLOAD_BITS).ceil() as usize;
        prop_assert_eq!(cells.len(), expected);
        for w in cells.windows(2) {
            prop_assert!(w[1] >= w[0] - 1e-12);
        }
        if let (Some(&first), Some(&last)) = (cells.first(), cells.last()) {
            prop_assert!(first >= source.domain_start() - 1e-9);
            prop_assert!(last <= source.domain_end() + 1e-9);
        }
    }

    /// Fluid and cell models agree in the clear-cut regimes: both lossless
    /// when overprovisioned, both lossy when drastically overloaded.
    #[test]
    fn fluid_and_cell_models_agree_at_the_extremes(source in arb_source()) {
        let pieces: Vec<RateSegment> = source
            .pieces()
            .map(|(s, e, r)| RateSegment { start: s, end: e, rate: r })
            .collect();
        let peak = pieces.iter().map(|s| s.rate).fold(0.0f64, f64::max);
        prop_assume!(peak > 1.0e6);
        let total: f64 = pieces.iter().map(|s| s.rate * (s.end - s.start)).sum();
        prop_assume!(total > 10.0 * smooth_netsim::CELL_PAYLOAD_BITS);
        let horizon = source.domain_end();
        let cells = cell_times(&pieces);

        // Overprovisioned: capacity 2x the peak (cell mux carries 53/48
        // overhead, so 2x covers it), generous buffers.
        let over_fluid = FluidMux { capacity_bps: 2.0 * peak, buffer_bits: 1.0e6 }
            .run(std::slice::from_ref(&source), 0.0, horizon);
        let over_cell =
            CellMux { capacity_bps: 2.0 * peak, buffer_cells: 256 }.run(&cells);
        prop_assert_eq!(over_fluid.loss_ratio(), 0.0);
        prop_assert_eq!(over_cell.loss_ratio(), 0.0);

        // Starved: capacity a tenth of the mean rate, tiny buffers.
        let mean = total / horizon;
        let starved_fluid = FluidMux { capacity_bps: mean / 10.0, buffer_bits: 424.0 * 4.0 }
            .run(&[source], 0.0, horizon);
        let starved_cell =
            CellMux { capacity_bps: mean / 10.0, buffer_cells: 4 }.run(&cells);
        prop_assert!(starved_fluid.loss_ratio() > 0.3, "{}", starved_fluid.loss_ratio());
        prop_assert!(starved_cell.loss_ratio() > 0.3, "{}", starved_cell.loss_ratio());
    }
}
