//! Property tests for [`smooth_netsim::cyclic_wrap`], the phase-shifted
//! cyclic fold that turns a finite video's rate function into the steady
//! state of a looping source: `g(t) = Σ_k f(t − offset + k·period)`.
//!
//! The invariants: mass (total bits) is conserved for any offset and
//! period, the result lives in `[0, period]`, offset 0 with a covering
//! period is the identity, and an offset of exactly one period is the
//! same fold as offset 0 — including offsets that park pieces right on
//! the wrap boundary.

use proptest::prelude::*;
use smooth_core::RateSegment;
use smooth_metrics::StepFunction;
use smooth_netsim::cyclic_wrap;

/// Total mass (bits) under a rate function.
fn mass(f: &StepFunction) -> f64 {
    f.pieces().map(|(s, e, v)| v * (e - s)).sum()
}

/// A random piecewise-constant source over [0, ~5 s].
fn arb_source() -> impl Strategy<Value = StepFunction> {
    proptest::collection::vec((0.01f64..0.5, 0.0f64..10.0e6), 1..12).prop_map(|pieces| {
        let mut segs = Vec::with_capacity(pieces.len());
        let mut t = 0.0;
        for (dur, rate) in pieces {
            segs.push(RateSegment {
                start: t,
                end: t + dur,
                rate,
            });
            t += dur;
        }
        StepFunction::from_segments(&segs)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Folding conserves mass for any offset (including offsets beyond
    /// one period) and any period — even periods shorter than the video,
    /// where pieces overlap themselves after wrapping.
    #[test]
    fn wrap_conserves_mass_and_stays_in_window(
        source in arb_source(),
        offset in 0.0f64..12.0,
        period_scale in 0.3f64..3.0,
    ) {
        let period = source.domain_end() * period_scale;
        prop_assume!(period > 1e-6);
        let g = cyclic_wrap(&source, offset, period);
        let m0 = mass(&source);
        let m1 = mass(&g);
        prop_assert!(
            (m1 - m0).abs() <= 1e-9 * m0.max(1.0),
            "mass not conserved: {} -> {}", m0, m1
        );
        prop_assert!(g.domain_start() >= -1e-12);
        prop_assert!(g.domain_end() <= period + 1e-9);
    }

    /// Offset 0 with a period covering the whole video is the identity.
    #[test]
    fn zero_offset_with_covering_period_is_identity(source in arb_source()) {
        let period = source.domain_end() + 1.0;
        let g = cyclic_wrap(&source, 0.0, period);
        prop_assert_eq!(mass(&g), mass(&source));
        for (s, e, v) in source.pieces() {
            let mid = 0.5 * (s + e);
            prop_assert_eq!(g.value_at(mid), v, "at t={}", mid);
        }
    }

    /// An offset of exactly one period is the same fold as offset 0
    /// (`g` is periodic in the offset), up to ulp-level boundary jitter
    /// from the `s + period − period` round trip.
    #[test]
    fn offset_of_one_period_matches_zero_offset(
        source in arb_source(),
        period_scale in 0.5f64..2.0,
    ) {
        let period = source.domain_end() * period_scale;
        prop_assume!(period > 1e-3);
        let g0 = cyclic_wrap(&source, 0.0, period);
        let g1 = cyclic_wrap(&source, period, period);
        prop_assert!(
            (mass(&g0) - mass(&g1)).abs() <= 1e-9 * mass(&g0).max(1.0)
        );
        // Values agree away from piece boundaries.
        for (s, e, v) in g0.pieces() {
            prop_assume!(e - s > 1e-9);
            let mid = 0.5 * (s + e);
            prop_assert!(
                (g1.value_at(mid) - v).abs() <= 1e-6 * v.abs().max(1.0),
                "at t={}: {} vs {}", mid, g1.value_at(mid), v
            );
        }
    }
}

/// A piece pushed across the wrap boundary splits into a tail at the end
/// of the window and a head at the start — with the analytic values.
#[test]
fn near_boundary_offset_splits_piece_across_wrap() {
    let v = 6.0e6;
    let d = 0.4;
    let source = StepFunction::from_segments(&[RateSegment {
        start: 0.0,
        end: d,
        rate: v,
    }]);
    let period = 2.0;
    // Half the piece hangs past the boundary.
    let offset = period - d / 2.0;
    let g = cyclic_wrap(&source, offset, period);

    assert!((mass(&g) - v * d).abs() <= 1e-6);
    // Tail: [period - d/2, period); head: [0, d/2).
    assert_eq!(g.value_at(period - d / 4.0), v);
    assert_eq!(g.value_at(d / 4.0), v);
    // Middle of the window is silent.
    assert_eq!(g.value_at(period / 2.0), 0.0);
}

/// Offset exactly 0 versus offset exactly equal to the period on a
/// boundary-aligned piece: both place the mass identically.
#[test]
fn exact_zero_and_exact_period_offsets_agree_on_aligned_piece() {
    let source = StepFunction::from_segments(&[RateSegment {
        start: 0.0,
        end: 1.0,
        rate: 3.0e6,
    }]);
    let period = 1.0;
    let g0 = cyclic_wrap(&source, 0.0, period);
    let g1 = cyclic_wrap(&source, period, period);
    for i in 0..10 {
        let t = (i as f64 + 0.5) / 10.0;
        assert_eq!(g0.value_at(t), 3.0e6);
        assert_eq!(g1.value_at(t), 3.0e6);
    }
    assert!((mass(&g0) - 3.0e6).abs() <= 1e-6);
    assert!((mass(&g1) - 3.0e6).abs() <= 1e-6);
}
