//! Equivalence proptests for the streaming k-way-merge mux engine:
//! [`smooth_netsim::RateSweep`] must be **bit-identical** — not merely
//! within tolerance — to the frozen quadratic oracle
//! `smooth_netsim::mux::reference` on every input, and the sharded
//! threaded path must be bit-identical for every thread count. Both
//! engines share the canonical `SumTree` summation order and the exact
//! (`==`) breakpoint dedup, which is what makes `to_bits` equality an
//! achievable spec rather than a flaky aspiration.

use proptest::prelude::*;
use smooth_core::RateSegment;
use smooth_metrics::StepFunction;
use smooth_netsim::{mux, FluidMux, FluidMuxStats, RateSweep, MUX_MAX_SHARDS};
use smooth_rng::Rng;

/// All six stat fields as raw bits, so `assert_eq!` means bit-identical.
fn bits(s: &FluidMuxStats) -> [u64; 6] {
    [
        s.arrived_bits.to_bits(),
        s.lost_bits.to_bits(),
        s.served_bits.to_bits(),
        s.final_queue_bits.to_bits(),
        s.max_queue_bits.to_bits(),
        s.utilization.to_bits(),
    ]
}

/// Builds a piecewise-constant source starting at `base + offset`.
fn build_source(base: f64, offset: f64, pieces: &[(f64, f64)]) -> StepFunction {
    let mut segs = Vec::with_capacity(pieces.len());
    let mut t = base + offset;
    for &(dur, rate) in pieces {
        segs.push(RateSegment {
            start: t,
            end: t + dur,
            rate,
        });
        t += dur;
    }
    StepFunction::from_segments(&segs)
}

/// A deterministic pseudo-random ensemble large enough to exercise the
/// sharded threaded path (`>= 2 * MUX_MAX_SHARDS` sources).
fn large_ensemble(seed: u64) -> Vec<StepFunction> {
    let mut rng = Rng::seed_from_u64(seed);
    let count = 2 * MUX_MAX_SHARDS + (rng.next_u64() % 37) as usize;
    (0..count)
        .map(|s| {
            let mut r = rng.fork(s as u64);
            let pieces: Vec<(f64, f64)> = (0..1 + (r.next_u64() % 4) as usize)
                .map(|_| (r.range_f64(0.01, 0.3), r.range_f64(0.0, 8.0e6)))
                .collect();
            build_source(0.0, r.range_f64(0.0, 1.0), &pieces)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The streaming engine (serial and threaded) matches the frozen
    /// quadratic reference bit-for-bit over random source ensembles,
    /// offsets, capacities, and buffer sizes — including windows parked
    /// a million seconds from the origin, where one f64 ulp is ~1.2e-10 s
    /// and any epsilon-based breakpoint handling would misbehave.
    #[test]
    fn streaming_sweep_is_bit_identical_to_reference(
        base in prop_oneof![Just(0.0f64), Just(1.0e6f64)],
        sources in proptest::collection::vec(
            (
                0.0f64..2.0,
                proptest::collection::vec((0.001f64..0.4, 0.0f64..10.0e6), 1..10),
            ),
            1..24,
        ),
        cap in 1.0e6f64..20.0e6,
        buf in 0.0f64..4.0e6,
        threads in 1usize..9,
    ) {
        let inputs: Vec<StepFunction> = sources
            .iter()
            .map(|(off, pieces)| build_source(base, *off, pieces))
            .collect();
        let horizon = inputs
            .iter()
            .map(|f| f.domain_end())
            .fold(base, f64::max);
        let fluid = FluidMux { capacity_bps: cap, buffer_bits: buf };
        let oracle = mux::reference::run(&fluid, &inputs, base, horizon);
        let fast = fluid.run(&inputs, base, horizon);
        prop_assert_eq!(bits(&oracle), bits(&fast));

        let sweep = RateSweep { capacity_bps: cap, buffer_bits: buf };
        let threaded = sweep.run_threaded(&inputs, base, horizon, threads);
        prop_assert_eq!(bits(&oracle), bits(&threaded));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Above the sharding threshold, every thread count pops out the same
    /// bits as the serial sweep and the quadratic reference.
    #[test]
    fn sharded_sweep_is_bit_identical_for_any_thread_count(
        seed in 0u64..1_000,
        buf in 0.0f64..2.0e6,
    ) {
        let inputs = large_ensemble(seed);
        let cap = 2.0e6 * inputs.len() as f64 / 2.0;
        let horizon = inputs
            .iter()
            .map(|f| f.domain_end())
            .fold(0.0, f64::max);
        let fluid = FluidMux { capacity_bps: cap, buffer_bits: buf };
        let oracle = mux::reference::run(&fluid, &inputs, 0.0, horizon);
        let sweep = RateSweep { capacity_bps: cap, buffer_bits: buf };
        let serial = sweep.run_threaded(&inputs, 0.0, horizon, 1);
        prop_assert_eq!(bits(&oracle), bits(&serial));
        for threads in [2, 3, 8, 64] {
            let t = sweep.run_threaded(&inputs, 0.0, horizon, threads);
            prop_assert_eq!(bits(&serial), bits(&t), "threads={}", threads);
        }
    }
}

/// Regression for the scale-unsafe cut dedup: the old `FluidMux::run`
/// merged cuts closer than an **absolute** `1e-12`, which silently
/// vanished sub-epsilon bursts near `t = 0`. Exact dedup must keep them.
#[test]
fn sub_epsilon_sliver_near_origin_is_integrated() {
    // All of the source's mass sits in a 1e-13-second sliver: the old
    // dedup collapsed its two cuts into one and integrated zero bits.
    let sliver = StepFunction::from_segments(&[RateSegment {
        start: 1.0,
        end: 1.0 + 1e-13,
        rate: 5.0e6,
    }]);
    let fluid = FluidMux {
        capacity_bps: 1.0e6,
        buffer_bits: 1.0e3,
    };
    let stats = fluid.run(std::slice::from_ref(&sliver), 0.0, 2.0);
    let expected = 5.0e6 * ((1.0 + 1e-13) - 1.0);
    assert!(
        stats.arrived_bits > 0.0,
        "sub-epsilon sliver was dropped (the old 1e-12 dedup bug)"
    );
    assert!(
        (stats.arrived_bits - expected).abs() <= 1e-2 * expected,
        "arrived {} != expected {expected}",
        stats.arrived_bits
    );
    let oracle = mux::reference::run(&fluid, std::slice::from_ref(&sliver), 0.0, 2.0);
    assert_eq!(bits(&oracle), bits(&stats));
}

/// Regression pinning behaviour for windows starting near `t = 1e6` s,
/// where one ulp (~1.2e-10 s) dwarfs the old absolute dedup epsilon:
/// breakpoints nanoseconds apart must stay distinct and both engines
/// must agree bitwise.
#[test]
fn window_at_a_million_seconds_is_exact() {
    let t0 = 1.0e6;
    let a = StepFunction::from_segments(&[
        RateSegment {
            start: t0,
            end: t0 + 1e-9,
            rate: 8.0e6,
        },
        RateSegment {
            start: t0 + 1e-9,
            end: t0 + 1.5,
            rate: 2.0e6,
        },
    ]);
    let b = StepFunction::from_segments(&[RateSegment {
        start: t0 + 0.25,
        end: t0 + 2.0,
        rate: 3.0e6,
    }]);
    let inputs = vec![a, b];
    let fluid = FluidMux {
        capacity_bps: 4.0e6,
        buffer_bits: 0.5e6,
    };
    let oracle = mux::reference::run(&fluid, &inputs, t0, t0 + 2.0);
    let fast = fluid.run(&inputs, t0, t0 + 2.0);
    assert_eq!(bits(&oracle), bits(&fast));
    assert!(fast.arrived_bits > 0.0);
    let balance = fast.arrived_bits - fast.lost_bits - fast.served_bits - fast.final_queue_bits;
    assert!(balance.abs() < 1.0, "conservation violated by {balance}");
}

/// The zero-length-window guard: utilization must be 0, not NaN.
#[test]
fn zero_length_window_has_zero_utilization_not_nan() {
    let src = StepFunction::from_segments(&[RateSegment {
        start: 0.0,
        end: 1.0,
        rate: 1.0e6,
    }]);
    let fluid = FluidMux {
        capacity_bps: 1.0e6,
        buffer_bits: 0.0,
    };
    for (s, e) in [(0.5, 0.5), (2.0, 1.0)] {
        let stats = fluid.run(std::slice::from_ref(&src), s, e);
        assert_eq!(stats.utilization, 0.0, "window [{s}, {e}]");
        assert!(!stats.utilization.is_nan());
        assert_eq!(stats.arrived_bits, 0.0);
    }
}
