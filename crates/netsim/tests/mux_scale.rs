//! Scale smoke test: the streaming mux engine at 10k sources.
//!
//! The old materialize-then-resample multiplexer was O(S²·B·log B) — at
//! 10 000 sources it would grind for hours. The streaming k-way merge is
//! O(T·log S) and must finish the same ensemble in single-digit seconds
//! (asserted in release builds only; debug builds run a 1k-source
//! variant with no runtime budget). Loss sanity is checked against a
//! 16-source reference run at identical per-source capacity and buffer:
//! a larger ensemble multiplexes *better*, so its loss ratio must not
//! exceed the small ensemble's by more than a small tolerance.

use std::time::Instant;

use smooth_core::RateSegment;
use smooth_metrics::StepFunction;
use smooth_netsim::{mux, FluidMux, FluidMuxStats, RateSweep};
use smooth_rng::Rng;

fn bits(s: &FluidMuxStats) -> [u64; 6] {
    [
        s.arrived_bits.to_bits(),
        s.lost_bits.to_bits(),
        s.served_bits.to_bits(),
        s.final_queue_bits.to_bits(),
        s.max_queue_bits.to_bits(),
        s.utilization.to_bits(),
    ]
}

/// A bursty on/off-ish synthetic source: random piece durations in
/// [20 ms, 200 ms], rates uniform in [0, 4 Mbps] (mean ~2 Mbps).
fn synthetic_source(seed: u64, horizon: f64) -> StepFunction {
    let mut rng = Rng::seed_from_u64(seed);
    let mut segs = Vec::new();
    let mut t = 0.0;
    while t < horizon {
        let dur = rng.range_f64(0.02, 0.2);
        segs.push(RateSegment {
            start: t,
            end: (t + dur).min(horizon),
            rate: rng.range_f64(0.0, 4.0e6),
        });
        t += dur;
    }
    StepFunction::from_segments(&segs)
}

fn ensemble(count: usize, horizon: f64) -> Vec<StepFunction> {
    (0..count)
        .map(|s| synthetic_source(0x5eed ^ s as u64, horizon))
        .collect()
}

#[test]
fn ten_thousand_source_sweep_is_fast_and_sane() {
    let big_s: usize = if cfg!(debug_assertions) {
        1_000
    } else {
        10_000
    };
    let horizon = 4.0;
    // Per-source capacity sized for ~0.85 nominal load at the ~2 Mbps
    // synthetic mean; buffer ~2 kbit per source.
    let per_source_cap = 2.35e6;
    let per_source_buf = 2.0e3;

    let small_s = 16;
    let small = ensemble(small_s, horizon);
    let small_mux = FluidMux {
        capacity_bps: per_source_cap * small_s as f64,
        buffer_bits: per_source_buf * small_s as f64,
    };
    let small_ref = mux::reference::run(&small_mux, &small, 0.0, horizon);
    let balance = small_ref.arrived_bits
        - small_ref.lost_bits
        - small_ref.served_bits
        - small_ref.final_queue_bits;
    assert!(balance.abs() < 1.0, "reference conservation: {balance}");

    let big = ensemble(big_s, horizon);
    let sweep = RateSweep {
        capacity_bps: per_source_cap * big_s as f64,
        buffer_bits: per_source_buf * big_s as f64,
    };
    let t0 = Instant::now();
    let stats = sweep.run(&big, 0.0, horizon);
    let wall = t0.elapsed().as_secs_f64();

    let balance = stats.arrived_bits - stats.lost_bits - stats.served_bits - stats.final_queue_bits;
    assert!(balance.abs() < 1.0, "sweep conservation: {balance}");
    assert!(stats.arrived_bits > 0.0);
    assert!(
        (0.0..=1.0 + 1e-9).contains(&stats.utilization),
        "utilization {}",
        stats.utilization
    );

    // Statistical-multiplexing sanity: at identical per-source capacity
    // and buffer, the large ensemble must not lose a larger fraction
    // than the 16-source reference (modulo a small tolerance for the
    // different sample paths).
    assert!(
        stats.loss_ratio() <= small_ref.loss_ratio() + 0.01,
        "large-ensemble loss {} exceeds 16-source reference loss {}",
        stats.loss_ratio(),
        small_ref.loss_ratio()
    );

    // The sharded threaded path agrees bitwise at scale too.
    let threaded = sweep.run_threaded(&big, 0.0, horizon, 7);
    assert_eq!(bits(&stats), bits(&threaded));

    // Runtime budget: single-digit seconds at 10k sources, release only
    // (debug builds are ~an order of magnitude slower and smaller).
    if !cfg!(debug_assertions) {
        assert!(
            wall < 9.0,
            "10k-source sweep took {wall:.2} s — budget is single-digit seconds"
        );
    }
}
