//! The statistical-multiplexing experiment (DESIGN.md exp. **X-mux**).
//!
//! The paper motivates smoothing with the observation — demonstrated by
//! its references [10, 11] — that a finite-buffer packet switch carries
//! variance-reduced traffic with far less loss. This module builds that
//! experiment: `n` independent VBR video sources (seed variants of a
//! paper sequence, phase-staggered so their I pictures don't align by
//! construction) feed one finite-buffer multiplexer, either raw or
//! smoothed with the paper's algorithm, and we measure the loss ratio.

use crate::mux::FluidMuxStats;
use crate::sweep::RateSweep;
use serde::{Deserialize, Serialize};
use smooth_core::{smooth, SmootherParams};
use smooth_metrics::{baseline_rate_function, rate_function, StepFunction};
use smooth_rng::Rng;
use smooth_trace::{generate, SequenceId, VideoTrace};

/// How each source's rate function is produced.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SourceMode {
    /// Raw encoder output: each picture sent in its own period
    /// ([`smooth_core::unsmoothed`]).
    Unsmoothed,
    /// Smoothed with the paper's algorithm at the given parameters.
    Smoothed {
        /// Parameters for the smoother.
        params: SmootherParams,
    },
}

/// Configuration of one multiplexing run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiplexConfig {
    /// Which paper sequence the sources are variants of.
    pub sequence: SequenceId,
    /// Number of pictures per source.
    pub pictures: usize,
    /// Number of sources feeding the switch.
    pub sources: usize,
    /// Raw or smoothed sources.
    pub mode: SourceMode,
    /// Output link capacity, bits/second.
    pub capacity_bps: f64,
    /// Switch buffer, bits.
    pub buffer_bits: f64,
    /// Seed for source variants and phase offsets.
    pub seed: u64,
}

/// One run's outcome, bundling the mux stats with the offered load.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MultiplexOutcome {
    /// Raw multiplexer statistics.
    pub stats: FluidMuxStats,
    /// Sum of the sources' long-run mean rates, bits/second.
    pub offered_mean_bps: f64,
    /// Offered mean divided by capacity.
    pub nominal_load: f64,
}

impl MultiplexOutcome {
    /// Fraction of offered bits lost.
    pub fn loss_ratio(&self) -> f64 {
        self.stats.loss_ratio()
    }
}

/// Builds the rate function of one source under `mode`.
pub fn source_rate_function(trace: &VideoTrace, mode: SourceMode) -> StepFunction {
    match mode {
        SourceMode::Unsmoothed => baseline_rate_function(&smooth_core::unsmoothed(trace)),
        SourceMode::Smoothed { params } => rate_function(&smooth(trace, params)),
    }
}

/// Wraps `f` cyclically into `[0, period)` with a phase shift of `offset`
/// seconds: `g(t) = Σ_k f(t − offset + k·period)`.
///
/// This turns a finite video's rate function into the steady state of a
/// source looping that video — the standard way to build an ensemble of
/// *independent, stationary* VBR sources from one trace. (Without the
/// wrap, every source's scene changes would line up in wall-clock time
/// and the "statistical" in statistical multiplexing would be gone.)
pub fn cyclic_wrap(f: &StepFunction, offset: f64, period: f64) -> StepFunction {
    assert!(period > 0.0, "period must be positive");
    // Collect folded sub-pieces in [0, period).
    let mut folded: Vec<(f64, f64, f64)> = Vec::new();
    for (s, e, v) in f.pieces() {
        if e <= s || v == 0.0 {
            continue;
        }
        let (mut s, e) = (s + offset, e + offset);
        // Normalize the start into [0, period).
        let shift = (s / period).floor() * period;
        s -= shift;
        let e = e - shift;
        // Split across wrap boundaries.
        let mut a = s;
        while a < e - 1e-15 {
            let k = (a / period).floor();
            let seg_end = e.min((k + 1.0) * period);
            folded.push((a - k * period, seg_end - k * period, v));
            a = seg_end;
        }
    }
    // Sweep: sum overlapping contributions.
    let mut cuts: Vec<f64> = vec![0.0, period];
    for &(a, b, _) in &folded {
        cuts.push(a);
        cuts.push(b);
    }
    cuts.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    cuts.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
    let mut breaks = Vec::with_capacity(cuts.len());
    let mut values = Vec::with_capacity(cuts.len());
    breaks.push(cuts[0]);
    for w in cuts.windows(2) {
        let mid = 0.5 * (w[0] + w[1]);
        let v: f64 = folded
            .iter()
            .filter(|&&(a, b, _)| a <= mid && mid < b)
            .map(|&(_, _, v)| v)
            .sum();
        values.push(v);
        breaks.push(w[1]);
    }
    StepFunction::new(breaks, values)
}

/// Runs one multiplexing experiment with the default worker count
/// ([`smooth_sweep::default_threads`]).
///
/// Each source is a seed variant of the configured sequence, looped
/// cyclically with a uniformly random phase (drawn from `cfg.seed`), so
/// the ensemble behaves like independent stationary viewers — scene
/// changes and I pictures do not line up across sources.
pub fn run_multiplex(cfg: &MultiplexConfig) -> MultiplexOutcome {
    run_multiplex_threaded(cfg, smooth_sweep::default_threads())
}

/// [`run_multiplex`] with an explicit worker count. The outcome is
/// bit-identical for every `threads`: all RNG draws (source variants,
/// phase offsets) and the `offered_mean` summation stay in source order
/// on the calling thread; only the per-source smoothing — the hot part —
/// fans out, with results collected back in source order.
pub fn run_multiplex_threaded(cfg: &MultiplexConfig, threads: usize) -> MultiplexOutcome {
    let (inputs, offered_mean, period) = multiplex_inputs_threaded(cfg, threads);
    let stats = RateSweep {
        capacity_bps: cfg.capacity_bps,
        buffer_bits: cfg.buffer_bits,
    }
    .run_threaded(&inputs, 0.0, period, threads);
    MultiplexOutcome {
        stats,
        offered_mean_bps: offered_mean,
        nominal_load: offered_mean / cfg.capacity_bps,
    }
}

/// Builds the source-rate ensemble of a multiplexing run without running
/// the multiplexer: `(inputs, offered_mean_bps, period)`.
///
/// Exposed so throughput benchmarks can prepare the same trace-derived
/// ensemble once and feed it to both the streaming engine and the frozen
/// `mux::reference` oracle. Bit-identical for every `threads` — all RNG
/// draws stay in source order on the calling thread; only the per-source
/// smoothing fans out.
pub fn multiplex_inputs_threaded(
    cfg: &MultiplexConfig,
    threads: usize,
) -> (Vec<StepFunction>, f64, f64) {
    let mut rng = Rng::seed_from_u64(cfg.seed);
    let mut inputs = Vec::with_capacity(cfg.sources);
    let mut offered_mean = 0.0;
    let mut period: f64 = 0.0;

    let mut traces: Vec<_> = Vec::with_capacity(cfg.sources);
    for s in 0..cfg.sources {
        let trace = generate(cfg.sequence, cfg.pictures, rng.fork(s as u64).next_u64());
        offered_mean += trace.mean_rate_bps();
        period = period.max(trace.duration());
        traces.push(trace);
    }
    let raw: Vec<StepFunction> = smooth_sweep::par_map(threads, &traces, |_, trace| {
        source_rate_function(trace, cfg.mode)
    });
    for f in &raw {
        let offset = rng.range_f64(0.0, period);
        inputs.push(cyclic_wrap(f, offset, period));
    }
    (inputs, offered_mean, period)
}

/// Sweeps buffer sizes at a fixed capacity with the default worker count,
/// returning `(buffer_bits, unsmoothed_loss, smoothed_loss)` rows — the
/// X-mux table.
pub fn buffer_sweep(
    base: &MultiplexConfig,
    params: SmootherParams,
    buffers: &[f64],
) -> Vec<(f64, f64, f64)> {
    buffer_sweep_threaded(base, params, buffers, smooth_sweep::default_threads())
}

/// [`buffer_sweep`] with an explicit worker count. Each buffer point is
/// an independent pair of runs, so the sweep fans out across points
/// (each run kept serial inside to avoid nested thread explosions) and
/// rows come back in `buffers` order.
pub fn buffer_sweep_threaded(
    base: &MultiplexConfig,
    params: SmootherParams,
    buffers: &[f64],
    threads: usize,
) -> Vec<(f64, f64, f64)> {
    smooth_sweep::par_map(threads, buffers, |_, &buffer_bits| {
        let raw = run_multiplex_threaded(
            &MultiplexConfig {
                buffer_bits,
                mode: SourceMode::Unsmoothed,
                ..*base
            },
            1,
        );
        let smoothed = run_multiplex_threaded(
            &MultiplexConfig {
                buffer_bits,
                mode: SourceMode::Smoothed { params },
                ..*base
            },
            1,
        );
        (buffer_bits, raw.loss_ratio(), smoothed.loss_ratio())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_cfg() -> MultiplexConfig {
        MultiplexConfig {
            sequence: SequenceId::Driving1,
            pictures: 120,
            sources: 8,
            mode: SourceMode::Unsmoothed,
            // 8 sources at ~2.1 Mbps mean: nominal load ~0.85 on 20 Mbps,
            // with a small ATM-scale buffer (0.25 Mbit ~ 590 cells) -
            // the regime where picture-scale burstiness, not scene-scale
            // rate, drives loss.
            capacity_bps: 20.0e6,
            buffer_bits: 0.25e6,
            seed: 42,
        }
    }

    fn smoothing() -> SmootherParams {
        SmootherParams::at_30fps(0.2, 1, 9).expect("feasible")
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run_multiplex(&base_cfg());
        let b = run_multiplex(&base_cfg());
        assert_eq!(a, b);
    }

    #[test]
    fn multiplex_parallel_matches_serial_exactly() {
        let serial = run_multiplex_threaded(&base_cfg(), 1);
        for threads in [2, 4, 16] {
            let parallel = run_multiplex_threaded(&base_cfg(), threads);
            assert_eq!(serial, parallel, "threads={threads}");
        }
    }

    #[test]
    fn buffer_sweep_parallel_matches_serial_exactly() {
        // Bit-identical rows (f64 ==, no tolerance) for any worker count.
        let buffers = [0.0, 0.25e6, 1.0e6, 4.0e6];
        let serial = buffer_sweep_threaded(&base_cfg(), smoothing(), &buffers, 1);
        for threads in [2, 8] {
            let parallel = buffer_sweep_threaded(&base_cfg(), smoothing(), &buffers, threads);
            assert_eq!(serial, parallel, "threads={threads}");
        }
    }

    #[test]
    fn smoothing_cuts_loss_at_equal_resources() {
        let raw = run_multiplex(&base_cfg());
        let smoothed = run_multiplex(&MultiplexConfig {
            mode: SourceMode::Smoothed {
                params: smoothing(),
            },
            ..base_cfg()
        });
        assert!(
            raw.loss_ratio() > 0.0,
            "config should stress the switch: raw loss {}",
            raw.loss_ratio()
        );
        assert!(
            smoothed.loss_ratio() < 0.5 * raw.loss_ratio(),
            "smoothing should cut loss substantially: raw {} vs smoothed {}",
            raw.loss_ratio(),
            smoothed.loss_ratio()
        );
    }

    #[test]
    fn loss_monotone_in_buffer_for_both_modes() {
        let buffers = [0.0, 0.25e6, 1.0e6, 4.0e6];
        let rows = buffer_sweep(&base_cfg(), smoothing(), &buffers);
        for w in rows.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-9, "raw loss must fall with buffer");
            assert!(
                w[1].2 <= w[0].2 + 1e-9,
                "smoothed loss must fall with buffer"
            );
        }
        // Smoothed never loses more than raw at the same buffer.
        for (buf, raw, smoothed) in rows {
            assert!(smoothed <= raw + 1e-12, "buffer {buf}: {smoothed} > {raw}");
        }
    }

    #[test]
    fn overprovisioned_link_never_loses() {
        let cfg = MultiplexConfig {
            capacity_bps: 200.0e6,
            ..base_cfg()
        };
        assert_eq!(run_multiplex(&cfg).loss_ratio(), 0.0);
    }

    #[test]
    fn nominal_load_reflects_sources() {
        let out = run_multiplex(&base_cfg());
        // 8 driving sources at ~2.1-2.5 Mbps on 20 Mbps.
        assert!(
            (0.6..1.1).contains(&out.nominal_load),
            "load {}",
            out.nominal_load
        );
        let fewer = run_multiplex(&MultiplexConfig {
            sources: 4,
            ..base_cfg()
        });
        assert!(fewer.nominal_load < out.nominal_load);
    }

    #[test]
    fn more_sources_more_loss() {
        let few = run_multiplex(&MultiplexConfig {
            sources: 6,
            ..base_cfg()
        });
        let many = run_multiplex(&MultiplexConfig {
            sources: 10,
            ..base_cfg()
        });
        assert!(many.loss_ratio() >= few.loss_ratio());
    }
}
