//! Streaming k-way-merge multiplexer sweep.
//!
//! [`crate::mux::FluidMux`]'s original run loop (frozen as
//! [`crate::mux::reference`]) materializes every breakpoint of every
//! input into one sorted cut vector and then re-samples **all S inputs
//! on every interval** — O(S²·B·log B) time and O(S·B) transient memory
//! for S sources of B breakpoints. That is exact but hopeless at the
//! ROADMAP's scale: the statistical-multiplexing payoff (paper §1, §3,
//! Figures 7–8) only shows at hundreds-to-thousands of sources.
//!
//! [`RateSweep`] replaces it with a streaming k-way merge:
//!
//! * one forward-only [`smooth_metrics::StepCursor`] per source,
//! * a binary min-heap of each source's next breakpoint,
//! * the aggregate rate maintained *incrementally* — an event updates one
//!   leaf of a [`SumTree`] pairwise summation tree (O(log S)) instead of
//!   re-summing all S sources.
//!
//! Total cost: O(T·log S) time and O(S) memory, T = total breakpoints.
//!
//! ### Why the result is still bit-identical to the reference
//!
//! Both paths enumerate the same intervals (every distinct breakpoint in
//! `(t_start, t_end)`, deduplicated *exactly* — see the scale-safety note
//! on [`crate::mux::reference`]), assign each interval the value the
//! inputs take on it (a cursor here, `value_at` at the interval's left
//! endpoint there — equal by [`smooth_metrics::StepCursor`]'s contract),
//! and reduce the S values with the same canonical [`SumTree`] order,
//! whose root is a pure function of the current leaf values regardless of
//! whether it was updated incrementally or rebuilt from scratch. The
//! queue dynamics then run through the shared [`QueueState`] stepper. The
//! `sweep_props` proptests pin the equality bit-for-bit.
//!
//! ### Deterministic sharded parallelism
//!
//! [`RateSweep::run_threaded`] fans the merge out over
//! power-of-two-aligned source shards ([`ShardPlan`], fixed by S alone —
//! never by the worker count) via [`smooth_sweep::par_map`]: each shard
//! produces its aggregate rate as a step function using the [`SumTree`]
//! subtree its leaves occupy in the serial engine's tree, and a second
//! (tiny) sweep merges the shard aggregates with the tree's top levels.
//! Because shard boundaries coincide with subtree boundaries, the
//! composed sum is *the same tree* — so the parallel result is
//! bit-identical to the serial one for any thread count.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use smooth_metrics::{RateCursor, StepCursor, StepFunction};
use smooth_sweep::{par_map, ShardPlan, SumTree};

use crate::mux::FluidMuxStats;

/// Upper bound on aggregation shards for [`RateSweep::run_threaded`].
/// Chosen by source count only (see [`ShardPlan`]), so the shard layout —
/// and therefore every output bit — is independent of the worker count.
pub const MUX_MAX_SHARDS: usize = 64;

/// Streaming k-way-merge fluid multiplexer engine: the scalable
/// production path behind [`crate::mux::FluidMux::run`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateSweep {
    /// Output link capacity, bits/second.
    pub capacity_bps: f64,
    /// Buffer size, bits.
    pub buffer_bits: f64,
}

impl RateSweep {
    /// Runs the sweep serially over `[t_start, t_end]`.
    ///
    /// A zero-length (or inverted) window yields all-zero stats rather
    /// than NaN utilization.
    ///
    /// # Panics
    ///
    /// Panics if capacity is non-positive or the buffer is negative.
    pub fn run(&self, inputs: &[StepFunction], t_start: f64, t_end: f64) -> FluidMuxStats {
        self.check();
        let mut state = QueueState::new();
        sweep_intervals(inputs, inputs.len(), t_start, t_end, |agg, a, b| {
            state.advance(agg, b - a, self.capacity_bps, self.buffer_bits);
        });
        state.into_stats(self.capacity_bps, t_start, t_end)
    }

    /// [`RateSweep::run`] with the aggregation fanned out over `threads`
    /// workers. Bit-identical to the serial run for every thread count:
    /// shard boundaries are fixed power-of-two [`SumTree`] subtrees of
    /// the serial engine's summation tree, and the per-shard aggregate
    /// step functions are merged in shard order by the tree's top levels.
    pub fn run_threaded(
        &self,
        inputs: &[StepFunction],
        t_start: f64,
        t_end: f64,
        threads: usize,
    ) -> FluidMuxStats {
        self.check();
        // One worker, a degenerate window, or too few sources to be worth
        // the shard pass: the serial engine is the same bits, cheaper.
        if threads <= 1 || inputs.len() < 2 * MUX_MAX_SHARDS || t_end <= t_start {
            return self.run(inputs, t_start, t_end);
        }

        let plan = ShardPlan::new(inputs.len(), MUX_MAX_SHARDS);
        let shards: Vec<usize> = (0..plan.count).collect();
        let partials: Vec<StepFunction> = par_map(threads, &shards, |_, &s| {
            shard_aggregate(&inputs[plan.range(s)], plan.width, t_start, t_end)
        });

        let mut state = QueueState::new();
        sweep_intervals(&partials, plan.count, t_start, t_end, |agg, a, b| {
            state.advance(agg, b - a, self.capacity_bps, self.buffer_bits);
        });
        state.into_stats(self.capacity_bps, t_start, t_end)
    }

    /// Runs the sweep over already-seated forward [`RateCursor`]s —
    /// sources produced on the fly (per-session schedules streaming out
    /// of the `smooth-engine` session engine) instead of materialized
    /// [`StepFunction`]s. Each cursor must be seated at `t_start`
    /// (`advance_past(t_start)`) before the call.
    ///
    /// For cursors backed by step functions this is bit-identical to
    /// [`RateSweep::run`]: both drive the same merge over the same
    /// [`SumTree`] (pinned by a unit test below).
    ///
    /// # Panics
    ///
    /// Panics if capacity is non-positive or the buffer is negative.
    pub fn run_cursors<C: RateCursor>(
        &self,
        cursors: &mut [C],
        t_start: f64,
        t_end: f64,
    ) -> FluidMuxStats {
        self.check();
        let leaves = cursors.len();
        let mut state = QueueState::new();
        sweep_cursors(cursors, leaves, t_start, t_end, |agg, a, b| {
            state.advance(agg, b - a, self.capacity_bps, self.buffer_bits);
        });
        state.into_stats(self.capacity_bps, t_start, t_end)
    }

    fn check(&self) {
        assert!(self.capacity_bps > 0.0, "capacity must be positive");
        assert!(self.buffer_bits >= 0.0, "buffer must be non-negative");
    }
}

/// One shard's aggregate rate over the window, as a step function whose
/// breakpoints are *all* of the shard's source breakpoints (value-
/// preserving runs are kept, never merged — the phase-2 merge must see
/// the same interval set the serial engine would).
///
/// `width` is the shard's [`SumTree`] leaf count in the serial tree
/// (missing trailing leaves stay zero), so the emitted values are interior
/// nodes of that tree.
fn shard_aggregate(shard: &[StepFunction], width: usize, t_start: f64, t_end: f64) -> StepFunction {
    debug_assert!(shard.len() <= width);
    let mut breaks = Vec::with_capacity(2 + total_breaks(shard));
    let mut values = Vec::with_capacity(1 + total_breaks(shard));
    breaks.push(t_start);
    sweep_intervals(shard, width, t_start, t_end, |agg, _a, b| {
        values.push(agg);
        breaks.push(b);
    });
    StepFunction::new(breaks, values)
}

fn total_breaks(inputs: &[StepFunction]) -> usize {
    inputs.iter().map(|f| f.breakpoints().len()).sum()
}

/// A heap entry: the next breakpoint of one source. Ordered so that
/// [`BinaryHeap`] pops the *earliest* time first (ties broken by source
/// index for a total order; tie order is immaterial to the result because
/// all same-time events are applied before the next interval closes).
#[derive(Debug, Clone, Copy)]
struct NextBreak {
    t: f64,
    src: u32,
}

impl PartialEq for NextBreak {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for NextBreak {}
impl PartialOrd for NextBreak {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for NextBreak {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the min time on top.
        other
            .t
            .partial_cmp(&self.t)
            .expect("breakpoints must be finite")
            .then_with(|| other.src.cmp(&self.src))
    }
}

/// The k-way merge core: visits every interval between consecutive
/// distinct breakpoint times in `[t_start, t_end]`, calling
/// `on_interval(agg, a, b)` with the canonical [`SumTree`] aggregate of
/// the inputs' values on `[a, b)`.
///
/// `tree_leaves` is the summation-tree size (≥ `inputs.len()`); passing a
/// shard's full width keeps shard trees congruent with the serial tree.
/// Does nothing when `t_end <= t_start`.
fn sweep_intervals(
    inputs: &[StepFunction],
    tree_leaves: usize,
    t_start: f64,
    t_end: f64,
    on_interval: impl FnMut(f64, f64, f64),
) {
    if t_end <= t_start {
        return;
    }
    let mut cursors: Vec<StepCursor<'_>> = inputs.iter().map(|f| f.cursor_at(t_start)).collect();
    sweep_cursors(&mut cursors, tree_leaves, t_start, t_end, on_interval);
}

/// [`sweep_intervals`] generalized over the cursor representation: the
/// same merge, driven by any [`RateCursor`] implementation. Cursors must
/// already be seated at `t_start`. For [`StepCursor`]s this is *the*
/// serial engine (the step-function path above is a thin wrapper), so
/// there is one merge loop to reason about, not two.
///
/// Pop order is deterministic regardless of heap insertion order:
/// [`NextBreak`]'s ordering is total (time, then source index), so equal-
/// time events drain in source order for any cursor backing.
pub fn sweep_cursors<C: RateCursor>(
    cursors: &mut [C],
    tree_leaves: usize,
    t_start: f64,
    t_end: f64,
    mut on_interval: impl FnMut(f64, f64, f64),
) {
    if t_end <= t_start {
        return;
    }
    let mut tree = SumTree::new(tree_leaves);
    let mut heap: BinaryHeap<NextBreak> = BinaryHeap::with_capacity(cursors.len());
    for (i, cursor) in cursors.iter_mut().enumerate() {
        tree.set(i, cursor.value());
        if let Some(t) = cursor.next_break() {
            if t < t_end {
                heap.push(NextBreak { t, src: i as u32 });
            }
        }
    }

    let mut t = t_start;
    while let Some(ev) = heap.pop() {
        if ev.t > t {
            on_interval(tree.total(), t, ev.t);
            t = ev.t;
        }
        let i = ev.src as usize;
        let cursor = &mut cursors[i];
        cursor.advance_past(ev.t);
        tree.set(i, cursor.value());
        if let Some(next) = cursor.next_break() {
            if next < t_end {
                heap.push(NextBreak {
                    t: next,
                    src: ev.src,
                });
            }
        }
    }
    if t_end > t {
        on_interval(tree.total(), t, t_end);
    }
}

/// The exact fluid finite-buffer FIFO queue stepper, shared verbatim by
/// [`RateSweep`], [`crate::mux::reference`], and the fused
/// `smooth-engine` link aggregator so the paths cannot drift: given the
/// same `(agg, dt)` interval sequence they execute the same IEEE
/// operations, which is what makes their stats bit-comparable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueueState {
    q: f64,
    arrived: f64,
    lost: f64,
    served: f64,
    max_q: f64,
}

impl Default for QueueState {
    fn default() -> Self {
        Self::new()
    }
}

impl QueueState {
    /// An empty queue with zeroed counters.
    pub fn new() -> Self {
        QueueState {
            q: 0.0,
            arrived: 0.0,
            lost: 0.0,
            served: 0.0,
            max_q: 0.0,
        }
    }

    /// Integrates one interval of aggregate input rate `agg` over `dt`
    /// seconds, splitting at the buffer-full / buffer-empty crossing when
    /// one occurs mid-interval.
    pub fn advance(&mut self, agg: f64, mut dt: f64, capacity_bps: f64, buffer_bits: f64) {
        if dt <= 0.0 {
            return;
        }
        self.arrived += agg * dt;
        let net = agg - capacity_bps;

        if net > 0.0 {
            // Queue filling: possibly hit the buffer ceiling mid-interval.
            let to_full = (buffer_bits - self.q) / net;
            if to_full < dt {
                // Fill phase: everything served at capacity.
                self.served += capacity_bps * to_full;
                self.q = buffer_bits;
                dt -= to_full;
                // Overflow phase: excess is dropped.
                self.lost += net * dt;
                self.served += capacity_bps * dt;
            } else {
                self.served += capacity_bps * dt;
                self.q += net * dt;
            }
        } else {
            // Queue draining: possibly empty mid-interval.
            let to_empty = if net < 0.0 {
                self.q / (-net)
            } else {
                f64::INFINITY
            };
            if to_empty < dt {
                // Drain phase: output at full capacity until empty.
                self.served += capacity_bps * to_empty;
                self.q = 0.0;
                dt -= to_empty;
                // Starved phase: output equals input (< capacity).
                self.served += agg * dt;
            } else {
                self.served += capacity_bps * dt;
                self.q += net * dt;
            }
        }
        self.max_q = self.max_q.max(self.q);
    }

    /// Finalizes the run. Utilization is defined as 0 over a zero-length
    /// (or inverted) window instead of NaN.
    pub fn into_stats(self, capacity_bps: f64, t_start: f64, t_end: f64) -> FluidMuxStats {
        let denom = capacity_bps * (t_end - t_start);
        FluidMuxStats {
            arrived_bits: self.arrived,
            lost_bits: self.lost,
            served_bits: self.served,
            final_queue_bits: self.q,
            max_queue_bits: self.max_q,
            utilization: if denom > 0.0 {
                self.served / denom
            } else {
                0.0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mux::{reference, FluidMux};
    use smooth_core::RateSegment;

    fn step(segs: &[(f64, f64, f64)]) -> StepFunction {
        let segs: Vec<RateSegment> = segs
            .iter()
            .map(|&(s, e, r)| RateSegment {
                start: s,
                end: e,
                rate: r,
            })
            .collect();
        StepFunction::from_segments(&segs)
    }

    fn assert_stats_bits_eq(a: &FluidMuxStats, b: &FluidMuxStats, what: &str) {
        for (name, x, y) in [
            ("arrived_bits", a.arrived_bits, b.arrived_bits),
            ("lost_bits", a.lost_bits, b.lost_bits),
            ("served_bits", a.served_bits, b.served_bits),
            ("final_queue_bits", a.final_queue_bits, b.final_queue_bits),
            ("max_queue_bits", a.max_queue_bits, b.max_queue_bits),
            ("utilization", a.utilization, b.utilization),
        ] {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{what}: {name} differs: {x} vs {y}"
            );
        }
    }

    fn mixed_inputs() -> Vec<StepFunction> {
        vec![
            step(&[(0.0, 1.0, 6.0e6), (1.0, 2.0, 1.0e6), (2.0, 3.0, 7.0e6)]),
            step(&[(0.5, 2.5, 2.0e6)]),
            step(&[(0.25, 0.75, 4.0e6), (1.5, 2.75, 3.0e6)]),
            StepFunction::zero(),
        ]
    }

    #[test]
    fn sweep_matches_reference_on_mixed_inputs() {
        let mux = FluidMux {
            capacity_bps: 4.0e6,
            buffer_bits: 0.5e6,
        };
        let engine = RateSweep {
            capacity_bps: mux.capacity_bps,
            buffer_bits: mux.buffer_bits,
        };
        let inputs = mixed_inputs();
        for (a, b) in [(0.0, 3.0), (-1.0, 4.0), (0.6, 2.1), (2.9, 3.5)] {
            let want = reference::run(&mux, &inputs, a, b);
            let got = engine.run(&inputs, a, b);
            assert_stats_bits_eq(&got, &want, &format!("window [{a}, {b}]"));
        }
    }

    #[test]
    fn threaded_matches_serial_below_and_above_shard_threshold() {
        // Construct > 2 * MUX_MAX_SHARDS sources so the shard path runs.
        let inputs: Vec<StepFunction> = (0..3 * MUX_MAX_SHARDS)
            .map(|i| {
                let phase = (i % 7) as f64 * 0.11;
                step(&[
                    (phase, phase + 0.9, 1.0e6 + i as f64 * 1.0e3),
                    (phase + 1.1, phase + 2.0, 0.5e6),
                ])
            })
            .collect();
        let engine = RateSweep {
            capacity_bps: 80.0e6,
            buffer_bits: 0.2e6,
        };
        let serial = engine.run(&inputs, 0.0, 3.0);
        for threads in [1, 2, 3, 8, 64] {
            let par = engine.run_threaded(&inputs, 0.0, 3.0, threads);
            assert_stats_bits_eq(&par, &serial, &format!("threads={threads}"));
        }
        // And the small-ensemble fallback is the same bits too.
        let few = &inputs[..5];
        let serial = engine.run(few, 0.0, 3.0);
        let par = engine.run_threaded(few, 0.0, 3.0, 4);
        assert_stats_bits_eq(&par, &serial, "few-source fallback");
    }

    #[test]
    fn zero_length_window_gives_zero_stats_not_nan() {
        let engine = RateSweep {
            capacity_bps: 1.0e6,
            buffer_bits: 1.0e6,
        };
        let inputs = mixed_inputs();
        for (a, b) in [(1.0, 1.0), (2.0, 1.0)] {
            let stats = engine.run(&inputs, a, b);
            assert_eq!(stats.arrived_bits, 0.0);
            assert_eq!(stats.utilization, 0.0, "no NaN on window [{a}, {b}]");
            assert!(!stats.utilization.is_nan());
            let threaded = engine.run_threaded(&inputs, a, b, 8);
            assert_stats_bits_eq(&threaded, &stats, "degenerate window threaded");
        }
    }

    #[test]
    fn run_cursors_matches_run_bitwise() {
        let engine = RateSweep {
            capacity_bps: 4.0e6,
            buffer_bits: 0.5e6,
        };
        let inputs = mixed_inputs();
        for (a, b) in [(0.0, 3.0), (-1.0, 4.0), (0.6, 2.1), (2.9, 3.5), (1.0, 1.0)] {
            let want = engine.run(&inputs, a, b);
            let mut cursors: Vec<StepCursor<'_>> = inputs.iter().map(|f| f.cursor_at(a)).collect();
            let got = engine.run_cursors(&mut cursors, a, b);
            assert_stats_bits_eq(&got, &want, &format!("cursors on [{a}, {b}]"));
        }
    }

    #[test]
    fn duplicate_breakpoints_collapse_to_one_interval() {
        // Zero-length piece inside a source: the sweep must treat the
        // duplicated time as one event, like the reference's exact dedup.
        let f = StepFunction::new(vec![0.0, 1.0, 1.0, 2.0], vec![3.0e6, 9.9e6, 1.0e6]);
        let mux = FluidMux {
            capacity_bps: 2.0e6,
            buffer_bits: 0.5e6,
        };
        let engine = RateSweep {
            capacity_bps: mux.capacity_bps,
            buffer_bits: mux.buffer_bits,
        };
        let inputs = vec![f];
        let want = reference::run(&mux, &inputs, 0.0, 2.0);
        let got = engine.run(&inputs, 0.0, 2.0);
        assert_stats_bits_eq(&got, &want, "duplicate breaks");
        assert!((want.arrived_bits - 4.0e6).abs() < 1.0);
    }
}
