//! ATM-style packetization of a rate schedule.
//!
//! The paper targets ATM networks (§1): the smoother's output is a fluid
//! rate function, but the network sees 53-byte cells (48 bytes of
//! payload). This module converts a piecewise-constant rate schedule into
//! the deterministic sequence of cell emission times that a shaper
//! transmitting at exactly `r(t)` would produce.

use smooth_core::RateSegment;

/// Payload bits per ATM cell (48 bytes).
pub const CELL_PAYLOAD_BITS: f64 = 48.0 * 8.0;

/// Wire bits per ATM cell (53 bytes: 5-byte header + 48-byte payload).
pub const CELL_WIRE_BITS: f64 = 53.0 * 8.0;

/// Emission times of ATM cells for a transmitter following `segments`.
///
/// A cell is emitted whenever another [`CELL_PAYLOAD_BITS`] of payload has
/// been produced; a final partial cell (AAL-style padding) is emitted at
/// the end of the last segment if any bits remain.
///
/// The returned times are non-decreasing.
pub fn cell_times(segments: &[RateSegment]) -> Vec<f64> {
    let total_bits: f64 = segments.iter().map(|s| s.rate * (s.end - s.start)).sum();
    if total_bits <= 0.0 {
        return Vec::new();
    }
    let n_cells = (total_bits / CELL_PAYLOAD_BITS).ceil() as usize;
    let mut times = Vec::with_capacity(n_cells);
    let mut produced = 0.0f64; // payload bits emitted so far
    let mut next_cell = CELL_PAYLOAD_BITS; // produce threshold for next cell

    for seg in segments {
        if seg.rate <= 0.0 {
            continue;
        }
        let seg_bits = seg.rate * (seg.end - seg.start);
        let seg_end_cum = produced + seg_bits;
        while next_cell <= seg_end_cum + 1e-9 {
            let dt = (next_cell - produced) / seg.rate;
            times.push(seg.start + dt.max(0.0));
            next_cell += CELL_PAYLOAD_BITS;
        }
        produced = seg_end_cum;
    }
    // Partial final cell: flush at the end of transmission.
    if times.len() < n_cells {
        let end = segments
            .iter()
            .map(|s| s.end)
            .fold(f64::NEG_INFINITY, f64::max);
        times.push(end);
    }
    times
}

/// Merges several sorted cell-time streams into one sorted stream
/// (the arrival process at a multiplexer fed by many sources).
pub fn merge_cell_streams(streams: &[Vec<f64>]) -> Vec<f64> {
    let mut all: Vec<f64> = streams.iter().flatten().copied().collect();
    all.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(start: f64, end: f64, rate: f64) -> RateSegment {
        RateSegment { start, end, rate }
    }

    #[test]
    fn cell_count_is_ceil_of_payload() {
        // 1000 bits at 1000 bps over 1s: ceil(1000/384) = 3 cells.
        let times = cell_times(&[seg(0.0, 1.0, 1000.0)]);
        assert_eq!(times.len(), 3);
        // First full cell at 384/1000 s, second at 768/1000 s, flush at 1.
        assert!((times[0] - 0.384).abs() < 1e-9);
        assert!((times[1] - 0.768).abs() < 1e-9);
        assert!((times[2] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn exact_multiple_needs_no_flush() {
        // Exactly 2 cells worth of bits.
        let bits = 2.0 * CELL_PAYLOAD_BITS;
        let times = cell_times(&[seg(0.0, 1.0, bits)]);
        assert_eq!(times.len(), 2);
        assert!((times[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn times_are_monotone_across_segments() {
        let segs = vec![
            seg(0.0, 0.5, 2_000_000.0),
            seg(0.5, 1.0, 500_000.0),
            seg(1.5, 2.0, 1_000_000.0),
        ];
        let times = cell_times(&segs);
        for w in times.windows(2) {
            assert!(w[1] >= w[0] - 1e-12);
        }
        // Cell spacing within a constant-rate segment is constant.
        let d0 = times[1] - times[0];
        let d1 = times[2] - times[1];
        assert!((d0 - d1).abs() < 1e-9);
    }

    #[test]
    fn higher_rate_means_denser_cells() {
        let fast = cell_times(&[seg(0.0, 1.0, 4_000_000.0)]);
        let slow = cell_times(&[seg(0.0, 1.0, 1_000_000.0)]);
        assert!(fast.len() > 3 * slow.len());
    }

    #[test]
    fn zero_rate_and_empty_inputs() {
        assert!(cell_times(&[]).is_empty());
        assert!(cell_times(&[seg(0.0, 1.0, 0.0)]).is_empty());
    }

    #[test]
    fn merge_is_sorted_union() {
        let a = vec![0.1, 0.5, 0.9];
        let b = vec![0.2, 0.4, 1.0];
        let merged = merge_cell_streams(&[a, b]);
        assert_eq!(merged, vec![0.1, 0.2, 0.4, 0.5, 0.9, 1.0]);
    }

    #[test]
    fn conservation_of_cells_across_merge() {
        let s1 = cell_times(&[seg(0.0, 1.0, 1_000_000.0)]);
        let s2 = cell_times(&[seg(0.3, 1.3, 2_000_000.0)]);
        let merged = merge_cell_streams(&[s1.clone(), s2.clone()]);
        assert_eq!(merged.len(), s1.len() + s2.len());
    }
}
