//! Token-bucket traffic policing (ATM usage-parameter control).
//!
//! A 1994 ATM network admits a VBR connection under a *traffic contract*:
//! a sustained rate ρ and a burst tolerance σ, enforced by a leaky/token
//! bucket at the network edge. The burstier the source, the larger the σ
//! it must purchase. This module measures exactly that: the minimal σ a
//! rate function needs at a given ρ ([`min_bucket_for`]) and what a
//! policer drops when the contract is tighter ([`TokenBucket::police`]).
//!
//! This is the per-connection dual of the multiplexing experiment: the
//! paper's smoothing shrinks the σ a connection must buy by an order of
//! magnitude (see the `upc` experiment table).

use serde::{Deserialize, Serialize};
use smooth_metrics::StepFunction;

/// A fluid token bucket: tokens accrue at `rate_bps` up to `bucket_bits`;
/// arriving traffic consumes tokens; traffic arriving when the bucket is
/// empty (and above the token rate) is non-conforming.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TokenBucket {
    /// Sustained (token) rate ρ, bits/second.
    pub rate_bps: f64,
    /// Burst tolerance σ, bits.
    pub bucket_bits: f64,
}

/// Outcome of policing a stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PoliceStats {
    /// Total bits offered.
    pub offered_bits: f64,
    /// Bits tagged non-conforming (dropped at the edge).
    pub dropped_bits: f64,
    /// Lowest token level observed (0 when the bucket ran dry).
    pub min_tokens: f64,
}

impl PoliceStats {
    /// Fraction of offered bits dropped.
    pub fn drop_ratio(&self) -> f64 {
        if self.offered_bits <= 0.0 {
            0.0
        } else {
            self.dropped_bits / self.offered_bits
        }
    }
}

impl TokenBucket {
    /// Polices a piecewise-constant arrival function over `[t0, t1]`,
    /// starting with a full bucket. Exact between breakpoints.
    ///
    /// # Panics
    ///
    /// Panics if ρ ≤ 0 or σ < 0.
    pub fn police(&self, f: &StepFunction, t0: f64, t1: f64) -> PoliceStats {
        assert!(self.rate_bps > 0.0, "token rate must be positive");
        assert!(self.bucket_bits >= 0.0, "bucket must be non-negative");

        let mut cuts: Vec<f64> = vec![t0, t1];
        cuts.extend(
            f.breakpoints()
                .iter()
                .copied()
                .filter(|&t| t > t0 && t < t1),
        );
        cuts.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        cuts.dedup_by(|a, b| (*a - *b).abs() < 1e-12);

        let mut tokens = self.bucket_bits;
        let mut offered = 0.0;
        let mut dropped = 0.0;
        let mut min_tokens = tokens;

        for w in cuts.windows(2) {
            let (a, b) = (w[0], w[1]);
            let mut dt = b - a;
            if dt <= 0.0 {
                continue;
            }
            let arr = f.value_at(0.5 * (a + b));
            offered += arr * dt;
            let net = self.rate_bps - arr; // token balance derivative
            if net < 0.0 {
                // Tokens draining: possibly hit empty mid-interval.
                let to_empty = tokens / (-net);
                if to_empty < dt {
                    tokens = 0.0;
                    dt -= to_empty;
                    // Bucket dry: only ρ of the arrival conforms.
                    dropped += (arr - self.rate_bps) * dt;
                } else {
                    tokens += net * dt;
                }
            } else {
                tokens = (tokens + net * dt).min(self.bucket_bits);
            }
            min_tokens = min_tokens.min(tokens);
        }

        PoliceStats {
            offered_bits: offered,
            dropped_bits: dropped,
            min_tokens,
        }
    }
}

/// The minimal burst tolerance σ for which a token bucket at rate ρ
/// passes `f` over `[t0, t1]` without drops:
/// `σ_min = sup_{s ≤ t} [A(t) − A(s) − ρ·(t − s)]`
/// where `A` is the cumulative arrival function. Zero when ρ meets or
/// exceeds the stream's peak rate.
pub fn min_bucket_for(f: &StepFunction, rate_bps: f64, t0: f64, t1: f64) -> f64 {
    assert!(rate_bps > 0.0, "token rate must be positive");
    // g(t) = A(t) − ρ·t is piecewise linear with corners at breakpoints;
    // σ_min = max_t [g(t) − min_{s ≤ t} g(s)].
    let mut cuts: Vec<f64> = vec![t0, t1];
    cuts.extend(
        f.breakpoints()
            .iter()
            .copied()
            .filter(|&t| t > t0 && t < t1),
    );
    cuts.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    cuts.dedup_by(|a, b| (*a - *b).abs() < 1e-12);

    let mut cum = 0.0f64;
    let mut g_min = 0.0f64; // g(t0) = 0
    let mut sigma = 0.0f64;
    let mut t_prev = t0;
    for &t in &cuts[1..] {
        let arr = f.value_at(0.5 * (t_prev + t));
        cum += arr * (t - t_prev);
        let g = cum - rate_bps * (t - t0);
        sigma = sigma.max(g - g_min);
        g_min = g_min.min(g);
        t_prev = t;
    }
    sigma
}

#[cfg(test)]
mod tests {
    use super::*;
    use smooth_core::RateSegment;

    fn step(segs: &[(f64, f64, f64)]) -> StepFunction {
        let segs: Vec<RateSegment> = segs
            .iter()
            .map(|&(s, e, r)| RateSegment {
                start: s,
                end: e,
                rate: r,
            })
            .collect();
        StepFunction::from_segments(&segs)
    }

    #[test]
    fn constant_stream_needs_no_bucket_at_its_rate() {
        let f = step(&[(0.0, 10.0, 2.0e6)]);
        assert!(min_bucket_for(&f, 2.0e6, 0.0, 10.0) < 1e-6);
        assert!(min_bucket_for(&f, 2.5e6, 0.0, 10.0) < 1e-6);
        // Below the stream rate, the deficit accumulates linearly.
        let sigma = min_bucket_for(&f, 1.5e6, 0.0, 10.0);
        assert!((sigma - 0.5e6 * 10.0).abs() < 1.0);
    }

    #[test]
    fn burst_needs_exactly_its_excess() {
        // 8 Mbps for 1 s then 1 Mbps for 7 s; ρ = 2 Mbps.
        // Burst excess: (8-2) Mbit accumulated in the first second.
        let f = step(&[(0.0, 1.0, 8.0e6), (1.0, 8.0, 1.0e6)]);
        let sigma = min_bucket_for(&f, 2.0e6, 0.0, 8.0);
        assert!((sigma - 6.0e6).abs() < 1.0, "{sigma}");
    }

    #[test]
    fn police_at_min_bucket_never_drops() {
        let f = step(&[(0.0, 1.0, 8.0e6), (1.0, 3.0, 1.0e6), (3.0, 4.0, 9.0e6)]);
        for rho in [2.0e6, 3.0e6, 5.0e6] {
            let sigma = min_bucket_for(&f, rho, 0.0, 4.0);
            let ok = TokenBucket {
                rate_bps: rho,
                bucket_bits: sigma,
            }
            .police(&f, 0.0, 4.0);
            assert!(
                ok.dropped_bits < 1e-3,
                "rho={rho}: dropped {}",
                ok.dropped_bits
            );
            // Tightness: 10% less bucket drops something (when sigma > 0).
            if sigma > 1.0 {
                let tight = TokenBucket {
                    rate_bps: rho,
                    bucket_bits: 0.9 * sigma,
                }
                .police(&f, 0.0, 4.0);
                assert!(
                    tight.dropped_bits > 0.0,
                    "rho={rho}: undersized bucket must drop"
                );
            }
        }
    }

    #[test]
    fn sigma_monotone_decreasing_in_rho() {
        let f = step(&[(0.0, 1.0, 8.0e6), (1.0, 3.0, 1.0e6), (3.0, 4.0, 9.0e6)]);
        let sigmas: Vec<f64> = [1.5e6, 2.0e6, 4.0e6, 8.0e6]
            .iter()
            .map(|&r| min_bucket_for(&f, r, 0.0, 4.0))
            .collect();
        for w in sigmas.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "{sigmas:?}");
        }
        // At the peak rate, no bucket is needed.
        assert!(min_bucket_for(&f, 9.0e6, 0.0, 4.0) < 1e-6);
    }

    #[test]
    fn police_conserves_bits() {
        let f = step(&[(0.0, 2.0, 6.0e6), (2.0, 4.0, 0.5e6)]);
        let tb = TokenBucket {
            rate_bps: 2.0e6,
            bucket_bits: 1.0e6,
        };
        let stats = tb.police(&f, 0.0, 4.0);
        assert!((stats.offered_bits - (12.0e6 + 1.0e6)).abs() < 1.0);
        assert!(stats.dropped_bits >= 0.0 && stats.dropped_bits < stats.offered_bits);
    }

    #[test]
    fn generous_bucket_passes_everything() {
        let f = step(&[(0.0, 1.0, 10.0e6), (1.0, 2.0, 0.1e6)]);
        let tb = TokenBucket {
            rate_bps: 1.0e6,
            bucket_bits: 1.0e9,
        };
        assert_eq!(tb.police(&f, 0.0, 2.0).drop_ratio(), 0.0);
    }

    #[test]
    fn zero_bucket_passes_only_rho() {
        let f = step(&[(0.0, 2.0, 5.0e6)]);
        let tb = TokenBucket {
            rate_bps: 2.0e6,
            bucket_bits: 0.0,
        };
        let stats = tb.police(&f, 0.0, 2.0);
        assert!(
            (stats.dropped_bits - 6.0e6).abs() < 1.0,
            "{}",
            stats.dropped_bits
        );
    }

    #[test]
    #[should_panic(expected = "token rate must be positive")]
    fn rejects_zero_rho() {
        min_bucket_for(&step(&[(0.0, 1.0, 1.0)]), 0.0, 0.0, 1.0);
    }
}
