//! Finite-buffer FIFO multiplexer models.
//!
//! The paper's motivation (§1, §3, citing Reibman & Berger and Reininger
//! et al.): the statistical multiplexing gain of a finite-buffer packet
//! switch improves substantially when the variance of its input traffic is
//! reduced — which is exactly what lossless smoothing does. These two
//! models let the experiments quantify that claim:
//!
//! * [`FluidMux`] — inputs are piecewise-constant rate functions; queue
//!   dynamics are integrated *exactly* between breakpoints (no time
//!   slotting, no discretization error);
//! * [`CellMux`] — inputs are discrete ATM cell arrival times; service is
//!   deterministic at line rate; the buffer holds a fixed number of cells.

use serde::{Deserialize, Serialize};
use smooth_metrics::StepFunction;

/// Outcome of a fluid multiplexer run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FluidMuxStats {
    /// Total bits offered by all sources.
    pub arrived_bits: f64,
    /// Bits dropped on buffer overflow.
    pub lost_bits: f64,
    /// Bits transmitted on the output link.
    pub served_bits: f64,
    /// Bits still queued at the end of the run.
    pub final_queue_bits: f64,
    /// Largest queue occupancy observed.
    pub max_queue_bits: f64,
    /// Mean utilization of the output link over the run.
    pub utilization: f64,
}

impl FluidMuxStats {
    /// Fraction of offered bits lost.
    pub fn loss_ratio(&self) -> f64 {
        if self.arrived_bits <= 0.0 {
            0.0
        } else {
            self.lost_bits / self.arrived_bits
        }
    }
}

/// A fluid finite-buffer FIFO multiplexer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FluidMux {
    /// Output link capacity, bits/second.
    pub capacity_bps: f64,
    /// Buffer size, bits.
    pub buffer_bits: f64,
}

impl FluidMux {
    /// Runs the multiplexer over `[t_start, t_end]` with the given input
    /// rate functions, integrating the queue exactly between breakpoints.
    ///
    /// Since the streaming port this delegates to the k-way-merge
    /// [`crate::sweep::RateSweep`] engine — O(T·log S) in the total
    /// breakpoint count T instead of the original O(S²·B·log B) — while
    /// producing stats bit-identical to the frozen [`reference`] (the
    /// `sweep_props` proptests pin this). A zero-length window yields
    /// all-zero stats (utilization 0, not NaN).
    ///
    /// # Panics
    ///
    /// Panics if capacity is non-positive or the buffer is negative.
    pub fn run(&self, inputs: &[StepFunction], t_start: f64, t_end: f64) -> FluidMuxStats {
        crate::sweep::RateSweep {
            capacity_bps: self.capacity_bps,
            buffer_bits: self.buffer_bits,
        }
        .run(inputs, t_start, t_end)
    }
}

/// The pre-streaming-port fluid multiplexer, retained as the test oracle
/// (the same pattern as `smooth_core::reference`): materialize every
/// breakpoint of every input into one sorted cut vector, then walk the
/// intervals re-sampling **all** inputs per interval — O(S²·B·log B).
/// Nothing in this module is called by production code paths; the
/// `sweep_props` proptests and the `mux_throughput` benchmark pin
/// [`crate::sweep::RateSweep`] against it.
///
/// Two conventions are shared with the streaming engine so that "equal"
/// can mean *bit-identical* rather than within-tolerance (f64 addition is
/// not associative, so the summation order is part of the spec):
///
/// * per-interval aggregation uses the canonical
///   [`smooth_sweep::SumTree`] pairwise order (also the more accurate
///   order — O(log S) rounding growth vs O(S) for a naive fold);
/// * cuts are deduplicated **exactly** (`==`), not with the original
///   absolute `1e-12` epsilon, which was scale-unsafe: near `t = 0` it
///   collapsed distinct sub-epsilon breakpoints (vanishing bursts
///   entirely), while for windows at large `t` (≈ 1e6 s, where one ulp
///   is ≈ 1.2e-10) it could never fire at all, so its only effect was a
///   scale-dependent change in integration results. Each interval then
///   samples at its *left endpoint* — exact for right-open step
///   functions, where midpoint sampling could land on the wrong side of
///   a sub-ulp interval.
pub mod reference {
    use super::{FluidMux, FluidMuxStats};
    use crate::sweep::QueueState;
    use smooth_metrics::StepFunction;
    use smooth_sweep::SumTree;

    /// The original materialize-then-resample run loop. Quadratic in the
    /// source count; exact; the oracle for [`crate::sweep::RateSweep`].
    pub fn run(mux: &FluidMux, inputs: &[StepFunction], t_start: f64, t_end: f64) -> FluidMuxStats {
        assert!(mux.capacity_bps > 0.0, "capacity must be positive");
        assert!(mux.buffer_bits >= 0.0, "buffer must be non-negative");

        let mut state = QueueState::new();
        if t_end > t_start {
            // Merge breakpoints of all inputs within the window.
            let mut cuts: Vec<f64> = vec![t_start, t_end];
            for f in inputs {
                cuts.extend(
                    f.breakpoints()
                        .iter()
                        .copied()
                        .filter(|&t| t > t_start && t < t_end),
                );
            }
            cuts.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            cuts.dedup();

            let mut values = vec![0.0f64; inputs.len()];
            for w in cuts.windows(2) {
                let (a, b) = (w[0], w[1]);
                if b <= a {
                    continue;
                }
                // The value on [a, b) is the value at the left endpoint:
                // no input has a breakpoint strictly inside the interval.
                for (slot, f) in values.iter_mut().zip(inputs) {
                    *slot = f.value_at(a);
                }
                let agg = SumTree::sum_of(&values);
                state.advance(agg, b - a, mux.capacity_bps, mux.buffer_bits);
            }
        }
        state.into_stats(mux.capacity_bps, t_start, t_end)
    }
}

/// Outcome of a cell multiplexer run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CellMuxStats {
    /// Cells offered.
    pub arrived_cells: usize,
    /// Cells dropped on buffer overflow.
    pub dropped_cells: usize,
    /// Largest number of cells in the system at once.
    pub max_occupancy: usize,
}

impl CellMuxStats {
    /// Fraction of offered cells dropped.
    pub fn loss_ratio(&self) -> f64 {
        if self.arrived_cells == 0 {
            0.0
        } else {
            self.dropped_cells as f64 / self.arrived_cells as f64
        }
    }
}

/// A cell-granular finite-buffer FIFO multiplexer with deterministic
/// service (one cell every `CELL_WIRE_BITS / capacity` seconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellMux {
    /// Output link capacity, bits/second (on the wire: 53-byte cells).
    pub capacity_bps: f64,
    /// Buffer size in cells, *excluding* the one in service.
    pub buffer_cells: usize,
}

impl CellMux {
    /// Runs the multiplexer over a sorted sequence of cell arrival times.
    ///
    /// # Panics
    ///
    /// Panics if capacity is non-positive or arrivals are unsorted.
    pub fn run(&self, arrivals: &[f64]) -> CellMuxStats {
        assert!(self.capacity_bps > 0.0, "capacity must be positive");
        let service = crate::packetizer::CELL_WIRE_BITS / self.capacity_bps;
        // `work` = seconds of service already committed (backlog) at the
        // time of the previous arrival.
        let mut work = 0.0f64;
        let mut prev_t = f64::NEG_INFINITY;
        let mut dropped = 0usize;
        let mut max_occupancy = 0usize;
        let system_capacity = (self.buffer_cells + 1) as f64 * service;

        for &t in arrivals {
            assert!(t >= prev_t - 1e-12, "arrivals must be sorted");
            if prev_t.is_finite() {
                work = (work - (t - prev_t)).max(0.0);
            }
            prev_t = t;
            if work + service > system_capacity + 1e-12 {
                dropped += 1;
            } else {
                work += service;
                // Tolerate float fuzz from long subtraction chains: a
                // backlog within 1e-9 of a whole number of cells is that
                // whole number.
                let occupancy = (work / service - 1e-9).ceil().max(1.0) as usize;
                max_occupancy = max_occupancy.max(occupancy);
            }
        }

        CellMuxStats {
            arrived_cells: arrivals.len(),
            dropped_cells: dropped,
            max_occupancy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smooth_core::RateSegment;

    fn step(segs: &[(f64, f64, f64)]) -> StepFunction {
        let segs: Vec<RateSegment> = segs
            .iter()
            .map(|&(s, e, r)| RateSegment {
                start: s,
                end: e,
                rate: r,
            })
            .collect();
        StepFunction::from_segments(&segs)
    }

    #[test]
    fn fluid_no_loss_when_capacity_exceeds_peak() {
        let mux = FluidMux {
            capacity_bps: 10.0e6,
            buffer_bits: 0.0,
        };
        let inputs = vec![step(&[(0.0, 10.0, 3.0e6)]), step(&[(0.0, 10.0, 4.0e6)])];
        let stats = mux.run(&inputs, 0.0, 10.0);
        assert_eq!(stats.loss_ratio(), 0.0);
        assert!((stats.arrived_bits - 70.0e6).abs() < 1.0);
        assert!((stats.utilization - 0.7).abs() < 1e-9);
    }

    #[test]
    fn fluid_zero_buffer_drops_exact_excess() {
        let mux = FluidMux {
            capacity_bps: 5.0e6,
            buffer_bits: 0.0,
        };
        // 8 Mbps offered for 2 s: 6 Mbit must drop.
        let inputs = vec![step(&[(0.0, 2.0, 8.0e6)])];
        let stats = mux.run(&inputs, 0.0, 2.0);
        assert!((stats.lost_bits - 6.0e6).abs() < 1.0);
        assert!((stats.loss_ratio() - 6.0 / 16.0).abs() < 1e-9);
    }

    #[test]
    fn fluid_buffer_absorbs_short_burst() {
        // 8 Mbps for 1 s then 2 Mbps for 3 s into a 5 Mbps link:
        // burst excess = 3 Mbit; a 3 Mbit buffer absorbs it entirely.
        let mux = FluidMux {
            capacity_bps: 5.0e6,
            buffer_bits: 3.0e6,
        };
        let inputs = vec![step(&[(0.0, 1.0, 8.0e6), (1.0, 4.0, 2.0e6)])];
        let stats = mux.run(&inputs, 0.0, 4.0);
        assert_eq!(stats.loss_ratio(), 0.0);
        assert!((stats.max_queue_bits - 3.0e6).abs() < 1.0);
        // And the queue fully drains before the end (drain rate 3 Mbps,
        // 1 s needed).
        assert!(stats.final_queue_bits.abs() < 1.0);
    }

    #[test]
    fn fluid_undersized_buffer_loses_the_difference() {
        let mux = FluidMux {
            capacity_bps: 5.0e6,
            buffer_bits: 1.0e6,
        };
        let inputs = vec![step(&[(0.0, 1.0, 8.0e6), (1.0, 4.0, 2.0e6)])];
        let stats = mux.run(&inputs, 0.0, 4.0);
        // Excess 3 Mbit, buffer 1 Mbit -> 2 Mbit lost.
        assert!(
            (stats.lost_bits - 2.0e6).abs() < 1.0,
            "lost {}",
            stats.lost_bits
        );
    }

    #[test]
    fn fluid_conservation() {
        let mux = FluidMux {
            capacity_bps: 4.0e6,
            buffer_bits: 0.5e6,
        };
        let inputs = vec![
            step(&[(0.0, 1.0, 6.0e6), (1.0, 2.0, 1.0e6), (2.0, 3.0, 7.0e6)]),
            step(&[(0.5, 2.5, 2.0e6)]),
        ];
        let stats = mux.run(&inputs, 0.0, 3.0);
        let balance =
            stats.arrived_bits - stats.lost_bits - stats.served_bits - stats.final_queue_bits;
        assert!(balance.abs() < 1.0, "conservation violated by {balance}");
    }

    #[test]
    fn fluid_loss_monotone_in_buffer_and_capacity() {
        let inputs = vec![step(&[
            (0.0, 1.0, 9.0e6),
            (1.0, 2.0, 1.0e6),
            (2.0, 3.0, 9.0e6),
        ])];
        let loss = |cap: f64, buf: f64| {
            FluidMux {
                capacity_bps: cap,
                buffer_bits: buf,
            }
            .run(&inputs, 0.0, 3.0)
            .loss_ratio()
        };
        assert!(loss(5.0e6, 0.0) >= loss(5.0e6, 1.0e6));
        assert!(loss(5.0e6, 1.0e6) >= loss(5.0e6, 4.0e6));
        assert!(loss(4.0e6, 1.0e6) >= loss(6.0e6, 1.0e6));
    }

    #[test]
    fn cell_mux_no_drops_when_spaced() {
        // Arrivals exactly at the service rate: never more than 1 in
        // system.
        let mux = CellMux {
            capacity_bps: 424_000.0,
            buffer_cells: 0,
        };
        let service = 1e-3; // 424 bits at 424 kbps
        let arrivals: Vec<f64> = (0..100).map(|i| i as f64 * service).collect();
        let stats = mux.run(&arrivals);
        assert_eq!(stats.dropped_cells, 0);
        assert_eq!(stats.max_occupancy, 1);
    }

    #[test]
    fn cell_mux_batch_overflows_small_buffer() {
        // 10 simultaneous cells into a buffer of 4 (+1 in service): 5
        // accepted, 5 dropped.
        let mux = CellMux {
            capacity_bps: 424_000.0,
            buffer_cells: 4,
        };
        let arrivals = vec![0.0; 10];
        let stats = mux.run(&arrivals);
        assert_eq!(stats.arrived_cells, 10);
        assert_eq!(stats.dropped_cells, 5);
        assert_eq!(stats.max_occupancy, 5);
    }

    #[test]
    fn cell_mux_loss_monotone_in_buffer() {
        let arrivals: Vec<f64> = (0..1000).map(|i| (i / 10) as f64 * 1e-3).collect();
        let loss = |buf: usize| {
            CellMux {
                capacity_bps: 424_000.0,
                buffer_cells: buf,
            }
            .run(&arrivals)
            .loss_ratio()
        };
        assert!(loss(0) >= loss(4));
        assert!(loss(4) >= loss(16));
        assert!(loss(16) >= loss(64));
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn cell_mux_rejects_unsorted() {
        CellMux {
            capacity_bps: 1e6,
            buffer_cells: 1,
        }
        .run(&[1.0, 0.5]);
    }

    #[test]
    fn empty_inputs() {
        let f = FluidMux {
            capacity_bps: 1e6,
            buffer_bits: 1e6,
        }
        .run(&[], 0.0, 1.0);
        assert_eq!(f.loss_ratio(), 0.0);
        let c = CellMux {
            capacity_bps: 1e6,
            buffer_cells: 1,
        }
        .run(&[]);
        assert_eq!(c.loss_ratio(), 0.0);
    }
}
