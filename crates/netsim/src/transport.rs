//! Transport packetization: from coded bytes to network packets and back.
//!
//! The paper studies smoothing *inside a transport protocol* (Figure 1)
//! and discusses what bitstream damage does to a decoder (§2: resync at
//! slice start codes). This module closes that loop for the whole
//! workspace: a coded MPEG stream is cut into sequence-numbered packets,
//! a lossy network drops some, the receiver reassembles what survives
//! (zero-filling gaps, like a transport handing up a damaged elementary
//! stream), and `smooth_mpeg::parse_stream` measures the slice-level
//! damage — so a multiplexer's cell-loss ratio can be translated into
//! "slices lost per second of video".

use serde::{Deserialize, Serialize};
use smooth_rng::Rng;
use std::ops::Range;

/// A transport packet: a sequence number and the byte range of the coded
/// stream it carries.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    /// Sequence number (consecutive from 0).
    pub seq: u32,
    /// Byte range of the original stream.
    pub range: Range<usize>,
}

/// Cuts a coded stream into packets of at most `mtu` payload bytes.
///
/// # Panics
///
/// Panics if `mtu == 0`.
pub fn packetize(stream_len: usize, mtu: usize) -> Vec<Packet> {
    assert!(mtu > 0, "mtu must be positive");
    let mut packets = Vec::with_capacity(stream_len.div_ceil(mtu));
    let mut seq = 0u32;
    let mut at = 0usize;
    while at < stream_len {
        let end = (at + mtu).min(stream_len);
        packets.push(Packet {
            seq,
            range: at..end,
        });
        seq += 1;
        at = end;
    }
    packets
}

/// Reassembles the stream from the packets that survived, zero-filling
/// the ranges of missing packets (the receiver knows the original length
/// from framing). Surviving packets may arrive in any order.
pub fn reassemble(stream_len: usize, survivors: &[Packet], original: &[u8]) -> Vec<u8> {
    let mut out = vec![0u8; stream_len];
    for p in survivors {
        let range = p.range.start.min(stream_len)..p.range.end.min(stream_len);
        out[range.clone()].copy_from_slice(&original[range]);
    }
    out
}

/// Outcome of pushing a stream through a lossy packet network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LossySessionReport {
    /// Packets sent.
    pub packets_sent: usize,
    /// Packets dropped.
    pub packets_lost: usize,
    /// Byte ranges of the dropped packets (for content-damage
    /// accounting: a coded unit whose payload intersects one of these is
    /// corrupt even if its headers survive).
    pub lost_ranges: Vec<Range<usize>>,
    /// The damaged stream the receiver handed to the decoder.
    pub received: Vec<u8>,
}

impl LossySessionReport {
    /// Packet loss ratio.
    pub fn loss_ratio(&self) -> f64 {
        if self.packets_sent == 0 {
            0.0
        } else {
            self.packets_lost as f64 / self.packets_sent as f64
        }
    }
}

/// Sends `stream` through a network dropping each packet independently
/// with probability `loss_prob`.
pub fn lossy_session(
    stream: &[u8],
    mtu: usize,
    loss_prob: f64,
    rng: &mut Rng,
) -> LossySessionReport {
    assert!(
        (0.0..=1.0).contains(&loss_prob),
        "loss probability {loss_prob} outside [0,1]"
    );
    let packets = packetize(stream.len(), mtu);
    let sent = packets.len();
    let mut survivors = Vec::with_capacity(sent);
    let mut lost_ranges = Vec::new();
    for p in packets {
        if rng.next_f64() >= loss_prob {
            survivors.push(p);
        } else {
            lost_ranges.push(p.range.clone());
        }
    }
    LossySessionReport {
        packets_sent: sent,
        packets_lost: lost_ranges.len(),
        received: reassemble(stream.len(), &survivors, stream),
        lost_ranges,
    }
}

/// Counts how many of `units` (byte ranges of coded elements, e.g.
/// slices) intersect any lost range — the content-level damage a decoder
/// would display even where the structure parses.
pub fn units_damaged(units: &[Range<usize>], lost: &[Range<usize>]) -> usize {
    units
        .iter()
        .filter(|u| lost.iter().any(|l| l.start < u.end && u.start < l.end))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packetize_covers_exactly() {
        let packets = packetize(1000, 48);
        assert_eq!(packets.len(), 21);
        assert_eq!(packets[0].range, 0..48);
        assert_eq!(packets.last().unwrap().range, 960..1000);
        // Contiguous, non-overlapping, sequence-numbered.
        for (i, w) in packets.windows(2).enumerate() {
            assert_eq!(w[0].range.end, w[1].range.start);
            assert_eq!(w[0].seq as usize, i);
        }
    }

    #[test]
    fn packetize_exact_multiple_and_empty() {
        assert_eq!(packetize(96, 48).len(), 2);
        assert!(packetize(0, 48).is_empty());
    }

    #[test]
    #[should_panic(expected = "mtu must be positive")]
    fn packetize_rejects_zero_mtu() {
        packetize(10, 0);
    }

    #[test]
    fn reassemble_identity_when_nothing_lost() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let packets = packetize(data.len(), 53);
        assert_eq!(reassemble(data.len(), &packets, &data), data);
    }

    #[test]
    fn reassemble_zero_fills_gaps_and_handles_reorder() {
        let data: Vec<u8> = vec![0xAB; 200];
        let mut packets = packetize(data.len(), 50);
        packets.remove(1); // lose bytes 50..100
        packets.reverse(); // arbitrary arrival order
        let out = reassemble(data.len(), &packets, &data);
        assert_eq!(&out[..50], &data[..50]);
        assert!(out[50..100].iter().all(|&b| b == 0));
        assert_eq!(&out[100..], &data[100..]);
    }

    #[test]
    fn lossy_session_zero_loss_is_identity() {
        let data: Vec<u8> = (0..1000).map(|i| (i % 251) as u8).collect();
        let mut rng = Rng::seed_from_u64(1);
        let r = lossy_session(&data, 188, 0.0, &mut rng);
        assert_eq!(r.packets_lost, 0);
        assert!(r.lost_ranges.is_empty());
        assert_eq!(r.received, data);
    }

    #[test]
    fn lossy_session_full_loss_zeroes_everything() {
        let data = vec![0xFFu8; 500];
        let mut rng = Rng::seed_from_u64(2);
        let r = lossy_session(&data, 100, 1.0, &mut rng);
        assert_eq!(r.packets_lost, r.packets_sent);
        assert!(r.received.iter().all(|&b| b == 0));
        assert!((r.loss_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lossy_session_rate_is_approximately_honored() {
        let data = vec![1u8; 188 * 10_000];
        let mut rng = Rng::seed_from_u64(3);
        let r = lossy_session(&data, 188, 0.05, &mut rng);
        let ratio = r.loss_ratio();
        assert!((0.035..0.065).contains(&ratio), "{ratio}");
    }
}

#[cfg(test)]
mod damage_tests {
    use super::*;

    #[test]
    // single_range_in_vec_init: one-element range slices are the point
    // of these boundary cases, not a typo for [start, end].
    #[allow(clippy::single_range_in_vec_init)]
    fn units_damaged_counts_intersections() {
        let units = vec![0..100, 100..200, 200..300];
        let lost = vec![150..160, 295..320];
        assert_eq!(units_damaged(&units, &lost), 2);
        assert_eq!(units_damaged(&units, &[]), 0);
        // Touching at the boundary (exclusive end) is not damage.
        assert_eq!(units_damaged(&units, &[100..100]), 0);
        assert_eq!(units_damaged(&[0..10], &[10..20]), 0);
    }

    #[test]
    fn lost_ranges_cover_exactly_the_zeroed_bytes() {
        let data = vec![7u8; 1000];
        let mut rng = Rng::seed_from_u64(11);
        let r = lossy_session(&data, 100, 0.3, &mut rng);
        for range in &r.lost_ranges {
            assert!(r.received[range.clone()].iter().all(|&b| b == 0));
        }
        let lost_bytes: usize = r.lost_ranges.iter().map(|x| x.len()).sum();
        let zeroed = r.received.iter().filter(|&&b| b == 0).count();
        assert_eq!(lost_bytes, zeroed);
    }
}
