//! # smooth-netsim
//!
//! Network substrate for the `mpeg-smooth` workspace: an ATM-style cell
//! packetizer, exact fluid and cell-granular finite-buffer FIFO
//! multiplexers, and the statistical-multiplexing experiment that
//! quantifies the paper's motivation — reducing the variance of VBR video
//! (by lossless smoothing) slashes the loss of a finite-buffer switch at
//! the same utilization (paper §1/§3, refs [10, 11]).
//!
//! ```
//! use smooth_netsim::{run_multiplex, MultiplexConfig, SourceMode};
//! use smooth_core::SmootherParams;
//! use smooth_trace::SequenceId;
//!
//! let base = MultiplexConfig {
//!     sequence: SequenceId::Driving1,
//!     pictures: 90,
//!     sources: 8,
//!     mode: SourceMode::Unsmoothed,
//!     capacity_bps: 20.0e6,
//!     buffer_bits: 1.0e6,
//!     seed: 7,
//! };
//! let raw = run_multiplex(&base);
//! let params = SmootherParams::at_30fps(0.2, 1, 9).unwrap();
//! let smoothed = run_multiplex(&MultiplexConfig {
//!     mode: SourceMode::Smoothed { params }, ..base
//! });
//! assert!(smoothed.loss_ratio() <= raw.loss_ratio());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiment;
pub mod mux;
pub mod packetizer;
pub mod policer;
pub mod sweep;
pub mod transport;

pub use experiment::{
    buffer_sweep, buffer_sweep_threaded, cyclic_wrap, multiplex_inputs_threaded, run_multiplex,
    run_multiplex_threaded, source_rate_function, MultiplexConfig, MultiplexOutcome, SourceMode,
};
pub use mux::{CellMux, CellMuxStats, FluidMux, FluidMuxStats};
pub use packetizer::{cell_times, merge_cell_streams, CELL_PAYLOAD_BITS, CELL_WIRE_BITS};
pub use policer::{min_bucket_for, PoliceStats, TokenBucket};
pub use sweep::{sweep_cursors, QueueState, RateSweep, MUX_MAX_SHARDS};
pub use transport::{
    lossy_session, packetize, reassemble, units_damaged, LossySessionReport, Packet,
};
