//! Property tests for the MPEG structural layer: pattern algebra,
//! reordering, and bit-level I/O.

use proptest::prelude::*;
use smooth_mpeg::bitstream::{BitReader, BitWriter};
use smooth_mpeg::{display_to_transmission, transmission_order, GopPattern, PictureType};

/// Strategy: a random regular (M, N) pair.
fn arb_pattern() -> impl Strategy<Value = GopPattern> {
    (1usize..=4, 1usize..=4)
        .prop_map(|(m, gops)| GopPattern::new(m, m * gops).expect("N is a multiple of M"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Pattern string representation round-trips for every regular pattern.
    #[test]
    fn pattern_parse_display_roundtrip(pat in arb_pattern()) {
        let reparsed = GopPattern::parse(&pat.to_string()).expect("own display must parse");
        prop_assert_eq!(pat, reparsed);
    }

    /// Exactly one I per period, references every M, B elsewhere.
    #[test]
    fn pattern_structure(pat in arb_pattern()) {
        let (i, p, b) = pat.type_counts();
        prop_assert_eq!(i, 1);
        prop_assert_eq!(p, pat.n() / pat.m() - 1);
        prop_assert_eq!(b, pat.n() - pat.n() / pat.m());
        for idx in 0..3 * pat.n() {
            let t = pat.type_at(idx);
            prop_assert_eq!(t.is_reference(), idx % pat.m() == 0 || t == PictureType::I);
        }
    }

    /// Transmission order is a permutation that puts every picture after
    /// both of its references.
    #[test]
    fn transmission_order_is_causal_permutation(pat in arb_pattern(), count in 0usize..80) {
        let order = transmission_order(&pat, count);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..count).collect::<Vec<_>>(), "must be a permutation");

        let inv = display_to_transmission(&pat, count);
        for d in 0..count {
            if let Some(past) = pat.past_reference(d) {
                prop_assert!(inv[d] > inv[past], "picture {d} before its past ref");
            }
            if let Some(fut) = pat.future_reference(d) {
                if fut < count {
                    prop_assert!(inv[d] > inv[fut], "B {d} before its future ref");
                }
            }
        }
    }

    /// Bit-level writer/reader round-trips arbitrary field sequences.
    #[test]
    fn bit_io_roundtrip(fields in proptest::collection::vec((0u32..=0xFFFF_FFFF, 1u8..=32), 0..64)) {
        let mut w = BitWriter::new();
        let mut expected = Vec::with_capacity(fields.len());
        for &(value, width) in &fields {
            let masked = if width == 32 { value } else { value & ((1u32 << width) - 1) };
            w.put(masked, width);
            expected.push((masked, width));
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for (masked, width) in expected {
            prop_assert_eq!(r.get(width).expect("enough bits"), masked);
        }
    }
}
