//! Display-order ↔ transmission-order conversion.
//!
//! A B picture depends on a reference picture *in the future* of display
//! order, so it cannot be decoded until that reference has been received.
//! MPEG therefore transmits the reference picture following a group of B
//! pictures ahead of the group (paper §2):
//!
//! ```text
//! display:      I B B P B B P B B I B B P ...
//! transmission: I P B B P B B I B B P B B ...
//! ```
//!
//! Functions here compute the permutation between the two orders for a
//! finite sequence. Indices are 0-based display positions.

use crate::gop::GopPattern;
use crate::picture::PictureType;

/// Returns the display indices of a `count`-picture sequence in
/// **transmission (coded) order**.
///
/// Rule: scan display order; B pictures are held back until the reference
/// picture that follows them has been emitted. Trailing B pictures whose
/// future reference lies beyond the end of the sequence are emitted last,
/// in display order (a real encoder would end the sequence on a reference
/// picture; this is the graceful degradation for truncated traces).
///
/// # Example
///
/// ```
/// use smooth_mpeg::{GopPattern, transmission_order};
///
/// let pat = GopPattern::new(3, 9).unwrap();
/// let order = transmission_order(&pat, 10);
/// assert_eq!(order, vec![0, 3, 1, 2, 6, 4, 5, 9, 7, 8]);
/// ```
pub fn transmission_order(pattern: &GopPattern, count: usize) -> Vec<usize> {
    let mut out = Vec::with_capacity(count);
    let mut pending_b: Vec<usize> = Vec::with_capacity(pattern.b_run_len());
    for i in 0..count {
        match pattern.type_at(i) {
            PictureType::B => pending_b.push(i),
            PictureType::I | PictureType::P => {
                out.push(i);
                out.append(&mut pending_b);
            }
        }
    }
    // Truncated tail: B pictures with no future reference inside the
    // sequence.
    out.append(&mut pending_b);
    out
}

/// Inverse permutation of [`transmission_order`]: `result[d]` is the
/// transmission position of the picture at display index `d`.
pub fn display_to_transmission(pattern: &GopPattern, count: usize) -> Vec<usize> {
    let order = transmission_order(pattern, count);
    let mut inv = vec![0usize; count];
    for (tx_pos, &display_idx) in order.iter().enumerate() {
        inv[display_idx] = tx_pos;
    }
    inv
}

/// Maximum decoder reordering depth: the largest distance (in pictures) a
/// picture moves between display and transmission order. This bounds the
/// decoder's reorder buffer, and equals `M − 1` shifts for B pictures plus
/// the reference pull-ahead.
pub fn max_reorder_distance(pattern: &GopPattern, count: usize) -> usize {
    let inv = display_to_transmission(pattern, count);
    inv.iter()
        .enumerate()
        .map(|(d, &t)| d.abs_diff(t))
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_transmission_example() {
        // Paper §2: display IBBPBBPBBIBBP -> transmission IPBBPBBIBBPBB.
        let pat = GopPattern::new(3, 9).unwrap();
        let order = transmission_order(&pat, 13);
        let display: String = (0..13).map(|i| pat.type_at(i).as_char()).collect();
        assert_eq!(display, "IBBPBBPBBIBBP");
        let tx: String = order.iter().map(|&i| pat.type_at(i).as_char()).collect();
        assert_eq!(tx, "IPBBPBBIBBPBB");
    }

    #[test]
    fn transmission_is_a_permutation() {
        for (m, n) in [(3, 9), (2, 6), (3, 12), (1, 5)] {
            let pat = GopPattern::new(m, n).unwrap();
            for count in [0, 1, 5, 9, 10, 37] {
                let mut order = transmission_order(&pat, count);
                order.sort_unstable();
                let expected: Vec<usize> = (0..count).collect();
                assert_eq!(
                    order, expected,
                    "not a permutation for M={m} N={n} count={count}"
                );
            }
        }
    }

    #[test]
    fn no_b_pictures_means_identity() {
        let pat = GopPattern::new(1, 5).unwrap(); // IPPPP
        assert_eq!(transmission_order(&pat, 11), (0..11).collect::<Vec<_>>());
    }

    #[test]
    fn b_always_after_its_future_reference() {
        let pat = GopPattern::new(3, 9).unwrap();
        let count = 27;
        let inv = display_to_transmission(&pat, count);
        for d in 0..count {
            if let Some(fr) = pat.future_reference(d) {
                if fr < count {
                    assert!(
                        inv[d] > inv[fr],
                        "B at display {d} must be transmitted after its future ref {fr}"
                    );
                }
            }
            if let Some(pr) = pat.past_reference(d) {
                assert!(
                    inv[d] > inv[pr],
                    "picture {d} must be transmitted after its past ref {pr}"
                );
            }
        }
    }

    #[test]
    fn truncated_tail_bs_are_emitted() {
        let pat = GopPattern::new(3, 9).unwrap();
        // count = 11 ends at display IBBPBBPBB IB: picture 10 is a B whose
        // future reference (12) is absent.
        let order = transmission_order(&pat, 11);
        assert_eq!(order.len(), 11);
        assert!(order.contains(&10));
        // The stranded B comes last.
        assert_eq!(*order.last().unwrap(), 10);
    }

    #[test]
    fn inverse_really_inverts() {
        let pat = GopPattern::new(2, 6).unwrap();
        let count = 20;
        let order = transmission_order(&pat, count);
        let inv = display_to_transmission(&pat, count);
        for (tx_pos, &d) in order.iter().enumerate() {
            assert_eq!(inv[d], tx_pos);
        }
    }

    #[test]
    fn reorder_distance_bounds() {
        // For IPPPP nothing moves.
        assert_eq!(max_reorder_distance(&GopPattern::new(1, 5).unwrap(), 20), 0);
        // For M=3 the reference moves ahead of M-1 = 2 Bs.
        let d = max_reorder_distance(&GopPattern::new(3, 9).unwrap(), 27);
        assert_eq!(d, 2);
    }
}
