//! Whole-stream writer: builds a structurally valid MPEG-1 video bit
//! stream from per-picture size targets.
//!
//! The macroblock layer is modeled as opaque payload bytes (pseudo-random,
//! guaranteed free of start-code emulation) sized so each picture occupies
//! its target bit count. Everything above the macroblock layer — sequence,
//! group, picture, and slice headers, start codes, transmission-order
//! picture reordering — is real, which is exactly the level of structure
//! the paper's transport-protocol perspective cares about (§2).

use super::headers::{GroupHeader, PictureHeader, SequenceHeader, SliceHeader, TimeCode};
use super::start_code::StartCode;
use crate::bitstream::bits::BitWriter;
use crate::gop::GopPattern;
use crate::picture::PictureType;
use crate::reorder::transmission_order;
use smooth_rng::Rng;
use std::ops::Range;

/// Quantizer scales per picture type.
///
/// The paper's sequences were encoded with 4 (I), 6 (P), 15 (B) (§5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuantizerSet {
    /// Quantizer scale for I pictures.
    pub i: u8,
    /// Quantizer scale for P pictures.
    pub p: u8,
    /// Quantizer scale for B pictures.
    pub b: u8,
}

impl QuantizerSet {
    /// The paper's encoding configuration: 4 / 6 / 15 (§5.2).
    pub const PAPER: QuantizerSet = QuantizerSet { i: 4, p: 6, b: 15 };

    /// Scale for the given picture type.
    pub fn for_type(&self, t: PictureType) -> u8 {
        match t {
            PictureType::I => self.i,
            PictureType::P => self.p,
            PictureType::B => self.b,
        }
    }
}

/// Configuration for [`write_stream`].
#[derive(Debug, Clone)]
pub struct StreamSpec {
    /// Sequence header to emit (resolution, picture rate, VBR flag).
    pub sequence: SequenceHeader,
    /// Repeating picture-type pattern.
    pub pattern: GopPattern,
    /// Quantizer scales written into slice headers.
    pub quantizers: QuantizerSet,
    /// Repeat the sequence header before every group (optional in MPEG;
    /// enables random access, paper §2).
    pub repeat_sequence_header: bool,
}

impl StreamSpec {
    /// Spec with the paper's quantizers, no sequence-header repetition.
    pub fn new(sequence: SequenceHeader, pattern: GopPattern) -> Self {
        StreamSpec {
            sequence,
            pattern,
            quantizers: QuantizerSet::PAPER,
            repeat_sequence_header: false,
        }
    }
}

/// A written stream plus the bookkeeping needed to check it.
#[derive(Debug, Clone)]
pub struct WrittenStream {
    /// The coded bytes.
    pub bytes: Vec<u8>,
    /// For each coded (transmission-order) position, the display index of
    /// the picture written there.
    pub coded_order: Vec<usize>,
    /// Byte range of each picture, indexed by coded position. A picture's
    /// range runs from its picture start code to the end of its last
    /// slice.
    pub picture_ranges: Vec<Range<usize>>,
}

impl WrittenStream {
    /// Actual size of the picture at coded position `p`, in bits.
    pub fn picture_bits(&self, p: usize) -> u64 {
        (self.picture_ranges[p].len() as u64) * 8
    }

    /// Actual sizes in **display order**, in bits.
    pub fn display_order_bits(&self) -> Vec<u64> {
        let mut out = vec![0u64; self.coded_order.len()];
        for (p, &d) in self.coded_order.iter().enumerate() {
            out[d] = self.picture_bits(p);
        }
        out
    }
}

/// Fixed per-picture overhead in bytes, given its type and slice count:
/// picture start code + picture header + per-slice (start code + header).
fn picture_overhead_bytes(t: PictureType, slices: usize) -> usize {
    let header_body = match t {
        PictureType::I => 4, // 30 bits -> 4 bytes aligned
        PictureType::P => 5, // 34 bits -> 5 bytes
        PictureType::B => 5, // 38 bits -> 5 bytes
    };
    4 + header_body + slices * 5
}

/// Minimum size of a picture of type `t` with `slices` slices, in bits.
pub fn min_picture_bits(t: PictureType, slices: usize) -> u64 {
    (picture_overhead_bytes(t, slices) as u64) * 8
}

/// Fills `out` with `len` pseudo-random payload bytes that can never form
/// (or extend) a `00 00 01` start-code prefix: `0x00` never occurs.
fn push_payload(out: &mut Vec<u8>, len: usize, rng: &mut Rng) {
    out.reserve(len);
    for _ in 0..len {
        let b = (rng.next_u64() & 0xFF) as u8;
        out.push(if b == 0 { 0x80 } else { b });
    }
}

/// Writes a complete stream.
///
/// `display_sizes[i]` is the target size, in bits, of the picture at
/// display index `i`. Targets below the structural minimum are clamped up
/// (headers cannot be elided); byte granularity rounds every size down to
/// a multiple of 8 bits.
///
/// Pictures are emitted in transmission order; a group header precedes
/// every I picture (groups = GOPs).
pub fn write_stream(spec: &StreamSpec, display_sizes: &[u64], seed: u64) -> WrittenStream {
    let mut rng = Rng::seed_from_u64(seed);
    let order = transmission_order(&spec.pattern, display_sizes.len());
    let fps = spec.sequence.picture_rate.fps();
    let slices = usize::from(spec.sequence.resolution.mb_rows()).min(0xAF);

    let mut bytes = Vec::new();
    let mut coded_order = Vec::with_capacity(order.len());
    let mut picture_ranges = Vec::with_capacity(order.len());

    // Leading sequence header (the only mandatory one, paper §2).
    emit_sequence_header(&mut bytes, &spec.sequence);

    for &display_idx in &order {
        let t = spec.pattern.type_at(display_idx);
        if t == PictureType::I {
            if spec.repeat_sequence_header && !picture_ranges.is_empty() {
                emit_sequence_header(&mut bytes, &spec.sequence);
            }
            let gh = GroupHeader {
                time_code: TimeCode::from_picture_index(display_idx, fps),
                // The first group of a sequence that starts on an I is
                // closed; later groups have leading B pictures that
                // reference the previous group.
                closed_gop: display_idx == 0,
                broken_link: false,
            };
            bytes.extend_from_slice(&StartCode::Group.to_bytes());
            let mut w = BitWriter::new();
            gh.encode(&mut w);
            bytes.extend_from_slice(&w.into_bytes());
        }

        let start = bytes.len();
        let ph = PictureHeader::new((display_idx % 1024) as u16, t);
        bytes.extend_from_slice(&StartCode::Picture.to_bytes());
        let mut w = BitWriter::new();
        ph.encode(&mut w);
        bytes.extend_from_slice(&w.into_bytes());

        // Distribute the remaining byte budget across slices.
        let target_bytes = (display_sizes[display_idx] / 8) as usize;
        let overhead = picture_overhead_bytes(t, slices);
        let payload_total = target_bytes.saturating_sub(overhead);
        let per_slice = payload_total / slices;
        let mut leftover = payload_total % slices;

        let q = spec.quantizers.for_type(t);
        for row in 0..slices {
            let sh = SliceHeader::new((row + 1) as u8, q);
            bytes.extend_from_slice(&StartCode::Slice(sh.vertical_position).to_bytes());
            let mut w = BitWriter::new();
            sh.encode(&mut w);
            bytes.extend_from_slice(&w.into_bytes());
            let extra = usize::from(leftover > 0);
            leftover = leftover.saturating_sub(1);
            push_payload(&mut bytes, per_slice + extra, &mut rng);
        }

        coded_order.push(display_idx);
        picture_ranges.push(start..bytes.len());
    }

    bytes.extend_from_slice(&StartCode::SequenceEnd.to_bytes());
    WrittenStream {
        bytes,
        coded_order,
        picture_ranges,
    }
}

fn emit_sequence_header(bytes: &mut Vec<u8>, h: &SequenceHeader) {
    bytes.extend_from_slice(&StartCode::SequenceHeader.to_bytes());
    let mut w = BitWriter::new();
    h.encode(&mut w);
    bytes.extend_from_slice(&w.into_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitstream::start_code::{scan_start_codes, StartCode};
    use crate::picture::Resolution;

    fn spec_vga() -> StreamSpec {
        StreamSpec::new(
            SequenceHeader::vbr(Resolution::VGA),
            GopPattern::new(3, 9).unwrap(),
        )
    }

    #[test]
    fn stream_begins_with_sequence_header_and_ends_with_end_code() {
        let sizes = vec![50_000u64; 9];
        let s = write_stream(&spec_vga(), &sizes, 1);
        assert_eq!(&s.bytes[..4], &StartCode::SequenceHeader.to_bytes());
        assert_eq!(
            &s.bytes[s.bytes.len() - 4..],
            &StartCode::SequenceEnd.to_bytes()
        );
    }

    #[test]
    fn picture_sizes_hit_targets_to_byte_granularity() {
        let sizes: Vec<u64> = vec![
            200_000, 20_000, 20_008, 100_000, 20_000, 24_000, 96_000, 16_000, 16_000,
        ];
        let s = write_stream(&spec_vga(), &sizes, 2);
        let got = s.display_order_bits();
        for (i, (&want, &have)) in sizes.iter().zip(&got).enumerate() {
            // Byte granularity: within 8 bits, and never over by >= 8.
            assert_eq!(have, (want / 8) * 8, "picture {i}");
        }
    }

    #[test]
    fn tiny_targets_clamp_to_structural_minimum() {
        let sizes = vec![8u64; 9]; // absurdly small: 1 byte
        let s = write_stream(&spec_vga(), &sizes, 3);
        let slices = Resolution::VGA.mb_rows() as usize;
        for p in 0..9 {
            let t = GopPattern::new(3, 9).unwrap().type_at(s.coded_order[p]);
            assert_eq!(s.picture_bits(p), min_picture_bits(t, slices));
        }
    }

    #[test]
    fn pictures_are_in_transmission_order() {
        let sizes = vec![30_000u64; 13];
        let s = write_stream(&spec_vga(), &sizes, 4);
        let pat = GopPattern::new(3, 9).unwrap();
        assert_eq!(s.coded_order, transmission_order(&pat, 13));
    }

    #[test]
    fn group_header_before_every_i_picture() {
        let sizes = vec![30_000u64; 18];
        let s = write_stream(&spec_vga(), &sizes, 5);
        let codes: Vec<StartCode> = scan_start_codes(&s.bytes).map(|(_, c)| c).collect();
        let groups = codes
            .iter()
            .filter(|c| matches!(c, StartCode::Group))
            .count();
        assert_eq!(groups, 2, "18 pictures at N=9 is two GOPs");
        // Every Group code is immediately followed (in code order) by a
        // Picture code.
        for w in codes.windows(2) {
            if w[0] == StartCode::Group {
                assert_eq!(w[1], StartCode::Picture);
            }
        }
    }

    #[test]
    fn payload_never_emulates_start_codes() {
        let sizes = vec![120_000u64; 9];
        let s = write_stream(&spec_vga(), &sizes, 6);
        // Every start code found must be one we intentionally wrote:
        // count picture + slice + group + seq + end codes.
        let slices = Resolution::VGA.mb_rows() as usize;
        let expected = 1 /* seq */ + 1 /* group */ + 9 * (1 + slices) + 1 /* end */;
        assert_eq!(scan_start_codes(&s.bytes).count(), expected);
    }

    #[test]
    fn repeat_sequence_header_mode() {
        let mut spec = spec_vga();
        spec.repeat_sequence_header = true;
        let sizes = vec![30_000u64; 27];
        let s = write_stream(&spec, &sizes, 7);
        let seq_headers = scan_start_codes(&s.bytes)
            .filter(|(_, c)| *c == StartCode::SequenceHeader)
            .count();
        assert_eq!(seq_headers, 3, "leading + one per subsequent GOP");
    }

    #[test]
    fn deterministic_given_seed() {
        let sizes = vec![77_000u64; 9];
        let a = write_stream(&spec_vga(), &sizes, 42);
        let b = write_stream(&spec_vga(), &sizes, 42);
        assert_eq!(a.bytes, b.bytes);
        let c = write_stream(&spec_vga(), &sizes, 43);
        assert_ne!(a.bytes, c.bytes, "different seed, different payload");
    }

    #[test]
    fn empty_sequence_is_just_headers() {
        let s = write_stream(&spec_vga(), &[], 0);
        assert_eq!(s.coded_order.len(), 0);
        let codes: Vec<_> = scan_start_codes(&s.bytes).map(|(_, c)| c).collect();
        assert_eq!(
            codes,
            vec![StartCode::SequenceHeader, StartCode::SequenceEnd]
        );
    }

    #[test]
    fn quantizers_for_type() {
        let q = QuantizerSet::PAPER;
        assert_eq!(q.for_type(PictureType::I), 4);
        assert_eq!(q.for_type(PictureType::P), 6);
        assert_eq!(q.for_type(PictureType::B), 15);
    }
}
