//! MSB-first bit-level reading and writing.
//!
//! MPEG-1 headers are defined as packed big-endian bit fields; these two
//! small cursors are the substrate for the header codecs in
//! [`super::headers`].

/// Error returned when a [`BitReader`] runs off the end of its input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfBits {
    /// Bit position at which the read was attempted.
    pub at_bit: usize,
    /// Number of bits requested.
    pub wanted: usize,
}

impl std::fmt::Display for OutOfBits {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "out of bits: wanted {} at bit offset {}",
            self.wanted, self.at_bit
        )
    }
}

impl std::error::Error for OutOfBits {}

/// Append-only MSB-first bit writer backed by a `Vec<u8>`.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits already used in the final byte (0 when byte-aligned).
    bit_pos: u8,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the low `n` bits of `value`, most significant first.
    ///
    /// # Panics
    ///
    /// Panics if `n > 32` or if `value` has bits set above bit `n`.
    pub fn put(&mut self, value: u32, n: u8) {
        assert!(n <= 32, "cannot write more than 32 bits at once");
        assert!(
            n == 32 || value < (1u32 << n),
            "value {value:#x} does not fit in {n} bits"
        );
        for i in (0..n).rev() {
            let bit = (value >> i) & 1;
            if self.bit_pos == 0 {
                self.bytes.push(0);
            }
            let last = self.bytes.last_mut().expect("pushed above");
            *last |= (bit as u8) << (7 - self.bit_pos);
            self.bit_pos = (self.bit_pos + 1) % 8;
        }
    }

    /// Appends a single marker bit set to 1 (MPEG uses these to prevent
    /// start-code emulation inside headers).
    pub fn marker(&mut self) {
        self.put(1, 1);
    }

    /// Pads with zero bits to the next byte boundary (no-op if aligned).
    pub fn byte_align(&mut self) {
        if self.bit_pos != 0 {
            let pad = 8 - self.bit_pos;
            self.put(0, pad);
        }
    }

    /// `true` when the cursor sits on a byte boundary.
    pub fn is_aligned(&self) -> bool {
        self.bit_pos == 0
    }

    /// Appends whole bytes (must be byte-aligned).
    ///
    /// # Panics
    ///
    /// Panics if the writer is not byte-aligned.
    pub fn put_bytes(&mut self, data: &[u8]) {
        assert!(self.is_aligned(), "put_bytes requires byte alignment");
        self.bytes.extend_from_slice(data);
    }

    /// Total bits written so far.
    pub fn bit_len(&self) -> usize {
        self.bytes.len() * 8
            - if self.bit_pos == 0 {
                0
            } else {
                (8 - self.bit_pos) as usize
            }
    }

    /// Finishes the stream, zero-padding to a byte boundary.
    pub fn into_bytes(mut self) -> Vec<u8> {
        self.byte_align();
        self.bytes
    }
}

/// MSB-first bit reader over a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    data: &'a [u8],
    /// Absolute bit cursor from the start of `data`.
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader positioned at the start of `data`.
    pub fn new(data: &'a [u8]) -> Self {
        BitReader { data, pos: 0 }
    }

    /// Creates a reader positioned at `byte_offset` bytes into `data`.
    pub fn at_byte(data: &'a [u8], byte_offset: usize) -> Self {
        BitReader {
            data,
            pos: byte_offset * 8,
        }
    }

    /// Reads `n` bits as an unsigned integer, most significant first.
    pub fn get(&mut self, n: u8) -> Result<u32, OutOfBits> {
        assert!(n <= 32, "cannot read more than 32 bits at once");
        if self.pos + n as usize > self.data.len() * 8 {
            return Err(OutOfBits {
                at_bit: self.pos,
                wanted: n as usize,
            });
        }
        let mut value: u32 = 0;
        for _ in 0..n {
            let byte = self.data[self.pos / 8];
            let bit = (byte >> (7 - (self.pos % 8))) & 1;
            value = (value << 1) | u32::from(bit);
            self.pos += 1;
        }
        Ok(value)
    }

    /// Reads a marker bit and verifies it is 1.
    pub fn expect_marker(&mut self) -> Result<bool, OutOfBits> {
        Ok(self.get(1)? == 1)
    }

    /// Skips forward to the next byte boundary.
    pub fn byte_align(&mut self) {
        self.pos = self.pos.div_ceil(8) * 8;
    }

    /// Current absolute bit position.
    pub fn bit_pos(&self) -> usize {
        self.pos
    }

    /// Current byte offset (rounded down).
    pub fn byte_pos(&self) -> usize {
        self.pos / 8
    }

    /// Bits remaining.
    pub fn remaining_bits(&self) -> usize {
        self.data.len() * 8 - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_mixed_widths() {
        let mut w = BitWriter::new();
        w.put(0b101, 3);
        w.put(0xABC, 12);
        w.marker();
        w.put(0, 1);
        w.put(0x7FFF_FFFF, 32);
        let bytes = w.into_bytes();

        let mut r = BitReader::new(&bytes);
        assert_eq!(r.get(3).unwrap(), 0b101);
        assert_eq!(r.get(12).unwrap(), 0xABC);
        assert!(r.expect_marker().unwrap());
        assert_eq!(r.get(1).unwrap(), 0);
        assert_eq!(r.get(32).unwrap(), 0x7FFF_FFFF);
    }

    #[test]
    fn alignment_padding_is_zero() {
        let mut w = BitWriter::new();
        w.put(0b1, 1);
        w.byte_align();
        let bytes = w.into_bytes();
        assert_eq!(bytes, vec![0b1000_0000]);
    }

    #[test]
    fn bit_len_tracks_writes() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.put(0b11, 2);
        assert_eq!(w.bit_len(), 2);
        w.put(0x1F, 5);
        assert_eq!(w.bit_len(), 7);
        w.byte_align();
        assert_eq!(w.bit_len(), 8);
        w.put_bytes(&[1, 2, 3]);
        assert_eq!(w.bit_len(), 32);
    }

    #[test]
    fn put_bytes_after_align() {
        let mut w = BitWriter::new();
        w.put(0xFF, 8);
        w.put_bytes(&[0xAA, 0x55]);
        assert_eq!(w.into_bytes(), vec![0xFF, 0xAA, 0x55]);
    }

    #[test]
    #[should_panic(expected = "byte alignment")]
    fn put_bytes_unaligned_panics() {
        let mut w = BitWriter::new();
        w.put(1, 1);
        w.put_bytes(&[0]);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_value_panics() {
        BitWriter::new().put(0b100, 2);
    }

    #[test]
    fn reader_out_of_bits() {
        let data = [0xFFu8];
        let mut r = BitReader::new(&data);
        assert_eq!(r.get(7).unwrap(), 0x7F);
        let err = r.get(2).unwrap_err();
        assert_eq!(
            err,
            OutOfBits {
                at_bit: 7,
                wanted: 2
            }
        );
        // The failed read must not consume anything.
        assert_eq!(r.get(1).unwrap(), 1);
    }

    #[test]
    fn reader_byte_align_and_positions() {
        let data = [0b1010_0000, 0xCD];
        let mut r = BitReader::new(&data);
        assert_eq!(r.get(3).unwrap(), 0b101);
        assert_eq!(r.byte_pos(), 0);
        r.byte_align();
        assert_eq!(r.bit_pos(), 8);
        assert_eq!(r.get(8).unwrap(), 0xCD);
        assert_eq!(r.remaining_bits(), 0);
    }

    #[test]
    fn reader_at_byte_offset() {
        let data = [0x00, 0x00, 0x42];
        let mut r = BitReader::at_byte(&data, 2);
        assert_eq!(r.get(8).unwrap(), 0x42);
    }

    #[test]
    fn zero_bit_reads_and_writes() {
        let mut w = BitWriter::new();
        w.put(0, 0); // no-op
        w.put(0x3, 2);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.get(0).unwrap(), 0);
        assert_eq!(r.get(2).unwrap(), 0x3);
    }
}
