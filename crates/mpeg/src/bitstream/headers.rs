//! Typed MPEG-1 header structures and their bit-level codecs.
//!
//! Field layouts follow ISO/IEC 11172-2. One documented simplification:
//! after each slice header this model byte-aligns and stores opaque
//! macroblock payload bytes (real MPEG packs variable-length macroblock
//! codes unaligned). The structural properties the paper relies on —
//! unique byte-aligned start codes, slice-level resynchronization, header
//! field semantics — are preserved exactly.

use super::bits::{BitReader, BitWriter, OutOfBits};
use crate::picture::{PictureType, Resolution};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors decoding a header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HeaderError {
    /// Ran out of input bits.
    Truncated(OutOfBits),
    /// A marker bit that must be 1 was 0 (classic symptom of corruption).
    BadMarker {
        /// Which header contained the bad marker.
        context: &'static str,
    },
    /// A field held a value with no defined meaning.
    InvalidField {
        /// Which field.
        field: &'static str,
        /// The offending raw value.
        value: u32,
    },
}

impl fmt::Display for HeaderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeaderError::Truncated(e) => write!(f, "truncated header: {e}"),
            HeaderError::BadMarker { context } => write!(f, "bad marker bit in {context}"),
            HeaderError::InvalidField { field, value } => {
                write!(f, "invalid value {value} for field {field}")
            }
        }
    }
}

impl std::error::Error for HeaderError {}

impl From<OutOfBits> for HeaderError {
    fn from(e: OutOfBits) -> Self {
        HeaderError::Truncated(e)
    }
}

/// The MPEG-1 `picture_rate` code (table 2-D.4 of the standard).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PictureRate {
    /// 23.976 pictures/s.
    R23_976,
    /// 24 pictures/s.
    R24,
    /// 25 pictures/s.
    R25,
    /// 29.97 pictures/s.
    R29_97,
    /// 30 pictures/s — the rate used for every experiment in the paper.
    R30,
    /// 50 pictures/s.
    R50,
    /// 59.94 pictures/s.
    R59_94,
    /// 60 pictures/s.
    R60,
}

impl PictureRate {
    /// The 4-bit code carried in the sequence header.
    pub fn code(self) -> u8 {
        match self {
            PictureRate::R23_976 => 1,
            PictureRate::R24 => 2,
            PictureRate::R25 => 3,
            PictureRate::R29_97 => 4,
            PictureRate::R30 => 5,
            PictureRate::R50 => 6,
            PictureRate::R59_94 => 7,
            PictureRate::R60 => 8,
        }
    }

    /// Inverse of [`code`](Self::code).
    pub fn from_code(code: u8) -> Option<Self> {
        Some(match code {
            1 => PictureRate::R23_976,
            2 => PictureRate::R24,
            3 => PictureRate::R25,
            4 => PictureRate::R29_97,
            5 => PictureRate::R30,
            6 => PictureRate::R50,
            7 => PictureRate::R59_94,
            8 => PictureRate::R60,
            _ => return None,
        })
    }

    /// Pictures per second.
    pub fn fps(self) -> f64 {
        match self {
            PictureRate::R23_976 => 24000.0 / 1001.0,
            PictureRate::R24 => 24.0,
            PictureRate::R25 => 25.0,
            PictureRate::R29_97 => 30000.0 / 1001.0,
            PictureRate::R30 => 30.0,
            PictureRate::R50 => 50.0,
            PictureRate::R59_94 => 60000.0 / 1001.0,
            PictureRate::R60 => 60.0,
        }
    }

    /// Picture period τ in seconds (`1 / fps`).
    pub fn tau(self) -> f64 {
        1.0 / self.fps()
    }
}

/// MPEG-1 sequence header: the control information a decoder needs before
/// anything else (paper §2: spatial resolution, picture rate, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SequenceHeader {
    /// Picture dimensions.
    pub resolution: Resolution,
    /// Pel aspect ratio code (1 = square pixels).
    pub pel_aspect_ratio: u8,
    /// Display picture rate.
    pub picture_rate: PictureRate,
    /// Bit rate in units of 400 bit/s; `0x3FFFF` flags variable bit rate
    /// (which is what a VBR encoder writes).
    pub bit_rate_units: u32,
    /// VBV buffer size in units of 16 kbit.
    pub vbv_buffer_size: u16,
    /// Constrained-parameters flag.
    pub constrained: bool,
}

/// `bit_rate` value signalling variable bit rate.
pub const BIT_RATE_VBR: u32 = 0x3FFFF;

impl SequenceHeader {
    /// A VBR sequence header at the given resolution and 30 pictures/s —
    /// the configuration of all four paper sequences.
    pub fn vbr(resolution: Resolution) -> Self {
        SequenceHeader {
            resolution,
            pel_aspect_ratio: 1,
            picture_rate: PictureRate::R30,
            bit_rate_units: BIT_RATE_VBR,
            vbv_buffer_size: 112, // generous decoder buffer
            constrained: false,
        }
    }

    /// Encodes the header body (everything after the start code).
    pub fn encode(&self, w: &mut BitWriter) {
        w.put(u32::from(self.resolution.width), 12);
        w.put(u32::from(self.resolution.height), 12);
        w.put(u32::from(self.pel_aspect_ratio), 4);
        w.put(u32::from(self.picture_rate.code()), 4);
        w.put(self.bit_rate_units, 18);
        w.marker();
        w.put(u32::from(self.vbv_buffer_size), 10);
        w.put(u32::from(self.constrained), 1);
        w.put(0, 1); // load_intra_quantizer_matrix: use default
        w.put(0, 1); // load_non_intra_quantizer_matrix: use default
        debug_assert!(w.is_aligned(), "sequence header body is exactly 8 bytes");
    }

    /// Decodes the header body.
    pub fn decode(r: &mut BitReader<'_>) -> Result<Self, HeaderError> {
        let width = r.get(12)?;
        let height = r.get(12)?;
        if width == 0 || height == 0 {
            return Err(HeaderError::InvalidField {
                field: "horizontal/vertical_size",
                value: 0,
            });
        }
        let pel_aspect_ratio = r.get(4)? as u8;
        let rate_code = r.get(4)? as u8;
        let picture_rate = PictureRate::from_code(rate_code).ok_or(HeaderError::InvalidField {
            field: "picture_rate",
            value: rate_code.into(),
        })?;
        let bit_rate_units = r.get(18)?;
        if !r.expect_marker()? {
            return Err(HeaderError::BadMarker {
                context: "sequence header",
            });
        }
        let vbv_buffer_size = r.get(10)? as u16;
        let constrained = r.get(1)? == 1;
        let load_intra = r.get(1)?;
        if load_intra == 1 {
            // 64 bytes of custom matrix would follow; this model always
            // writes the default matrices.
            return Err(HeaderError::InvalidField {
                field: "load_intra_quantizer_matrix",
                value: 1,
            });
        }
        let load_non_intra = r.get(1)?;
        if load_non_intra == 1 {
            return Err(HeaderError::InvalidField {
                field: "load_non_intra_quantizer_matrix",
                value: 1,
            });
        }
        Ok(SequenceHeader {
            resolution: Resolution {
                width: width as u16,
                height: height as u16,
            },
            pel_aspect_ratio,
            picture_rate,
            bit_rate_units,
            vbv_buffer_size,
            constrained,
        })
    }
}

/// Wall-clock time code carried in every group header (paper §2: "a time
/// code specified in hours, minutes, and seconds is included in each group
/// header" to support random access).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimeCode {
    /// Drop-frame flag (NTSC bookkeeping; always false here).
    pub drop_frame: bool,
    /// Hours (0–23).
    pub hours: u8,
    /// Minutes (0–59).
    pub minutes: u8,
    /// Seconds (0–59).
    pub seconds: u8,
    /// Picture count within the second.
    pub pictures: u8,
}

impl TimeCode {
    /// Builds a time code for display picture index `i` at `fps` pictures
    /// per second.
    pub fn from_picture_index(i: usize, fps: f64) -> Self {
        let total_seconds = (i as f64 / fps).floor() as u64;
        TimeCode {
            drop_frame: false,
            hours: ((total_seconds / 3600) % 24) as u8,
            minutes: ((total_seconds / 60) % 60) as u8,
            seconds: (total_seconds % 60) as u8,
            pictures: (i as u64 % fps.round() as u64) as u8,
        }
    }
}

/// Group-of-pictures header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroupHeader {
    /// Time code of the first displayed picture of the group.
    pub time_code: TimeCode,
    /// `true` if the group can be decoded without the previous group
    /// (no leading B pictures referencing backwards).
    pub closed_gop: bool,
    /// Set by editors when the previous reference was removed.
    pub broken_link: bool,
}

impl GroupHeader {
    /// Encodes the header body (27 bits, then byte-aligned).
    pub fn encode(&self, w: &mut BitWriter) {
        w.put(u32::from(self.time_code.drop_frame), 1);
        w.put(u32::from(self.time_code.hours), 5);
        w.put(u32::from(self.time_code.minutes), 6);
        w.marker();
        w.put(u32::from(self.time_code.seconds), 6);
        w.put(u32::from(self.time_code.pictures), 6);
        w.put(u32::from(self.closed_gop), 1);
        w.put(u32::from(self.broken_link), 1);
        w.byte_align();
    }

    /// Decodes the header body.
    pub fn decode(r: &mut BitReader<'_>) -> Result<Self, HeaderError> {
        let drop_frame = r.get(1)? == 1;
        let hours = r.get(5)? as u8;
        let minutes = r.get(6)? as u8;
        if !r.expect_marker()? {
            return Err(HeaderError::BadMarker {
                context: "group header",
            });
        }
        let seconds = r.get(6)? as u8;
        let pictures = r.get(6)? as u8;
        if minutes > 59 || seconds > 59 {
            return Err(HeaderError::InvalidField {
                field: "time_code",
                value: u32::from(minutes) << 8 | u32::from(seconds),
            });
        }
        let closed_gop = r.get(1)? == 1;
        let broken_link = r.get(1)? == 1;
        r.byte_align();
        Ok(GroupHeader {
            time_code: TimeCode {
                drop_frame,
                hours,
                minutes,
                seconds,
                pictures,
            },
            closed_gop,
            broken_link,
        })
    }
}

/// Picture header (paper §2: "picture type, temporal reference").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PictureHeader {
    /// Display order of this picture within its group, modulo 1024.
    pub temporal_reference: u16,
    /// I, P, or B.
    pub picture_type: PictureType,
    /// VBV delay (16 bits; `0xFFFF` for VBR).
    pub vbv_delay: u16,
    /// Forward motion vector precision/range code (P and B pictures).
    pub forward_f_code: u8,
    /// Backward motion vector precision/range code (B pictures).
    pub backward_f_code: u8,
}

impl PictureHeader {
    /// A header for picture `temporal_reference` of the given type, with
    /// VBR `vbv_delay` and typical f-codes.
    pub fn new(temporal_reference: u16, picture_type: PictureType) -> Self {
        PictureHeader {
            temporal_reference,
            picture_type,
            vbv_delay: 0xFFFF,
            forward_f_code: 3,
            backward_f_code: 3,
        }
    }

    /// Encodes the header body.
    pub fn encode(&self, w: &mut BitWriter) {
        w.put(u32::from(self.temporal_reference), 10);
        w.put(u32::from(self.picture_type.coding_type_code()), 3);
        w.put(u32::from(self.vbv_delay), 16);
        if matches!(self.picture_type, PictureType::P | PictureType::B) {
            w.put(0, 1); // full_pel_forward_vector
            w.put(u32::from(self.forward_f_code), 3);
        }
        if self.picture_type == PictureType::B {
            w.put(0, 1); // full_pel_backward_vector
            w.put(u32::from(self.backward_f_code), 3);
        }
        w.put(0, 1); // extra_bit_picture = 0: no extra information
        w.byte_align();
    }

    /// Decodes the header body.
    pub fn decode(r: &mut BitReader<'_>) -> Result<Self, HeaderError> {
        let temporal_reference = r.get(10)? as u16;
        let code = r.get(3)? as u8;
        let picture_type =
            PictureType::from_coding_type_code(code).ok_or(HeaderError::InvalidField {
                field: "picture_coding_type",
                value: code.into(),
            })?;
        let vbv_delay = r.get(16)? as u16;
        let mut forward_f_code = 0;
        let mut backward_f_code = 0;
        if matches!(picture_type, PictureType::P | PictureType::B) {
            let _full_pel = r.get(1)?;
            forward_f_code = r.get(3)? as u8;
            if forward_f_code == 0 {
                return Err(HeaderError::InvalidField {
                    field: "forward_f_code",
                    value: 0,
                });
            }
        }
        if picture_type == PictureType::B {
            let _full_pel = r.get(1)?;
            backward_f_code = r.get(3)? as u8;
            if backward_f_code == 0 {
                return Err(HeaderError::InvalidField {
                    field: "backward_f_code",
                    value: 0,
                });
            }
        }
        let extra = r.get(1)?;
        if extra != 0 {
            return Err(HeaderError::InvalidField {
                field: "extra_bit_picture",
                value: extra,
            });
        }
        r.byte_align();
        Ok(PictureHeader {
            temporal_reference,
            picture_type,
            vbv_delay,
            forward_f_code,
            backward_f_code,
        })
    }
}

/// Slice header. The slice's vertical position travels in its start code;
/// the body carries the quantizer scale (paper §2/§3.1: the quantizer scale
/// in the slice header is the encoder's rate-control knob).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SliceHeader {
    /// 1-based vertical position (== the slice start-code suffix).
    pub vertical_position: u8,
    /// Quantizer scale, 1–31. Coarser (larger) values shrink the slice at
    /// the cost of visual quality.
    pub quantizer_scale: u8,
}

impl SliceHeader {
    /// Creates a slice header.
    ///
    /// # Panics
    ///
    /// Panics if `vertical_position` is outside `1..=0xAF` or
    /// `quantizer_scale` outside `1..=31`.
    pub fn new(vertical_position: u8, quantizer_scale: u8) -> Self {
        assert!(
            (1..=0xAF).contains(&vertical_position),
            "slice vertical position {vertical_position} outside 1..=0xAF"
        );
        assert!(
            (1..=31).contains(&quantizer_scale),
            "quantizer scale {quantizer_scale} outside 1..=31"
        );
        SliceHeader {
            vertical_position,
            quantizer_scale,
        }
    }

    /// Encodes the body (quantizer scale + extra bit), then byte-aligns
    /// (model simplification; see module docs).
    pub fn encode(&self, w: &mut BitWriter) {
        w.put(u32::from(self.quantizer_scale), 5);
        w.put(0, 1); // extra_bit_slice
        w.byte_align();
    }

    /// Decodes the body given the vertical position from the start code.
    pub fn decode(vertical_position: u8, r: &mut BitReader<'_>) -> Result<Self, HeaderError> {
        let quantizer_scale = r.get(5)? as u8;
        if quantizer_scale == 0 {
            return Err(HeaderError::InvalidField {
                field: "quantizer_scale",
                value: 0,
            });
        }
        let extra = r.get(1)?;
        if extra != 0 {
            return Err(HeaderError::InvalidField {
                field: "extra_bit_slice",
                value: extra,
            });
        }
        r.byte_align();
        Ok(SliceHeader {
            vertical_position,
            quantizer_scale,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_seq(h: SequenceHeader) -> SequenceHeader {
        let mut w = BitWriter::new();
        h.encode(&mut w);
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), 8, "sequence header body is 8 bytes");
        SequenceHeader::decode(&mut BitReader::new(&bytes)).unwrap()
    }

    #[test]
    fn sequence_header_roundtrip() {
        let h = SequenceHeader::vbr(Resolution::VGA);
        assert_eq!(roundtrip_seq(h), h);
        let h2 = SequenceHeader {
            resolution: Resolution::CIF,
            pel_aspect_ratio: 8,
            picture_rate: PictureRate::R25,
            bit_rate_units: 3750, // 1.5 Mbps
            vbv_buffer_size: 20,
            constrained: true,
        };
        assert_eq!(roundtrip_seq(h2), h2);
    }

    #[test]
    fn sequence_header_rejects_bad_rate_code() {
        let mut w = BitWriter::new();
        w.put(640, 12);
        w.put(480, 12);
        w.put(1, 4);
        w.put(0, 4); // invalid picture_rate code 0
        w.put(BIT_RATE_VBR, 18);
        w.marker();
        w.put(112, 10);
        w.put(0, 3);
        let bytes = w.into_bytes();
        let err = SequenceHeader::decode(&mut BitReader::new(&bytes)).unwrap_err();
        assert!(matches!(
            err,
            HeaderError::InvalidField {
                field: "picture_rate",
                ..
            }
        ));
    }

    #[test]
    fn sequence_header_detects_cleared_marker() {
        let h = SequenceHeader::vbr(Resolution::VGA);
        let mut w = BitWriter::new();
        h.encode(&mut w);
        let mut bytes = w.into_bytes();
        // The marker bit is bit 50 of the body: byte 6, mask 0x20.
        bytes[6] &= !0x20;
        let err = SequenceHeader::decode(&mut BitReader::new(&bytes)).unwrap_err();
        assert_eq!(
            err,
            HeaderError::BadMarker {
                context: "sequence header"
            }
        );
    }

    #[test]
    fn picture_rate_codes() {
        for code in 1..=8u8 {
            let r = PictureRate::from_code(code).unwrap();
            assert_eq!(r.code(), code);
            assert!(r.fps() > 0.0);
        }
        assert_eq!(PictureRate::from_code(0), None);
        assert_eq!(PictureRate::from_code(9), None);
        assert!((PictureRate::R30.tau() - 1.0 / 30.0).abs() < 1e-12);
    }

    #[test]
    fn group_header_roundtrip() {
        let h = GroupHeader {
            time_code: TimeCode::from_picture_index(3723 * 30 + 7, 30.0),
            closed_gop: true,
            broken_link: false,
        };
        assert_eq!(h.time_code.hours, 1);
        assert_eq!(h.time_code.minutes, 2);
        assert_eq!(h.time_code.seconds, 3);
        assert_eq!(h.time_code.pictures, 7);
        let mut w = BitWriter::new();
        h.encode(&mut w);
        let bytes = w.into_bytes();
        let decoded = GroupHeader::decode(&mut BitReader::new(&bytes)).unwrap();
        assert_eq!(decoded, h);
    }

    #[test]
    fn time_code_wraps_at_24h() {
        let i = 25 * 3600 * 30; // 25 hours of pictures
        let tc = TimeCode::from_picture_index(i, 30.0);
        assert_eq!(tc.hours, 1);
    }

    #[test]
    fn picture_header_roundtrip_all_types() {
        for t in [PictureType::I, PictureType::P, PictureType::B] {
            let h = PictureHeader::new(42, t);
            let mut w = BitWriter::new();
            h.encode(&mut w);
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            let decoded = PictureHeader::decode(&mut r).unwrap();
            assert_eq!(decoded.temporal_reference, 42);
            assert_eq!(decoded.picture_type, t);
            match t {
                PictureType::I => {
                    assert_eq!(decoded.forward_f_code, 0);
                    assert_eq!(decoded.backward_f_code, 0);
                }
                PictureType::P => {
                    assert_eq!(decoded.forward_f_code, 3);
                    assert_eq!(decoded.backward_f_code, 0);
                }
                PictureType::B => {
                    assert_eq!(decoded.forward_f_code, 3);
                    assert_eq!(decoded.backward_f_code, 3);
                }
            }
        }
    }

    #[test]
    fn picture_header_rejects_type_zero() {
        let mut w = BitWriter::new();
        w.put(0, 10);
        w.put(0, 3); // coding type 0: forbidden
        w.put(0xFFFF, 16);
        w.put(0, 1);
        let bytes = w.into_bytes();
        let err = PictureHeader::decode(&mut BitReader::new(&bytes)).unwrap_err();
        assert!(matches!(
            err,
            HeaderError::InvalidField {
                field: "picture_coding_type",
                ..
            }
        ));
    }

    #[test]
    fn slice_header_roundtrip() {
        let h = SliceHeader::new(17, 15);
        let mut w = BitWriter::new();
        h.encode(&mut w);
        let bytes = w.into_bytes();
        let decoded = SliceHeader::decode(17, &mut BitReader::new(&bytes)).unwrap();
        assert_eq!(decoded, h);
    }

    #[test]
    fn slice_header_rejects_zero_quantizer() {
        let mut w = BitWriter::new();
        w.put(0, 5);
        w.put(0, 1);
        let bytes = w.into_bytes();
        let err = SliceHeader::decode(1, &mut BitReader::new(&bytes)).unwrap_err();
        assert!(matches!(
            err,
            HeaderError::InvalidField {
                field: "quantizer_scale",
                ..
            }
        ));
    }

    #[test]
    #[should_panic(expected = "quantizer scale")]
    fn slice_header_panics_on_bad_scale() {
        SliceHeader::new(1, 32);
    }

    #[test]
    fn truncated_input_is_reported() {
        let bytes = [0u8; 2];
        let err = SequenceHeader::decode(&mut BitReader::new(&bytes)).unwrap_err();
        assert!(matches!(err, HeaderError::Truncated(_)));
    }
}
