//! Bit-error injection utilities.
//!
//! The paper's authors studied the effect of manually flipping bits in
//! coded streams (§2, citing the extended technical report): the decoder
//! loses slices until the next start code. These helpers reproduce that
//! experiment against [`super::parser::parse_stream`].

use smooth_rng::Rng;

/// Flips a single bit (0-based, MSB-first within each byte).
///
/// # Panics
///
/// Panics if `bit_index` is out of range.
pub fn flip_bit(data: &mut [u8], bit_index: usize) {
    let byte = bit_index / 8;
    assert!(byte < data.len(), "bit index {bit_index} out of range");
    data[byte] ^= 0x80 >> (bit_index % 8);
}

/// Flips `count` uniformly random bits (with replacement — the same bit
/// may be flipped twice, cancelling out, exactly like independent channel
/// errors).
pub fn flip_random_bits(data: &mut [u8], count: usize, rng: &mut Rng) {
    let total_bits = data.len() * 8;
    if total_bits == 0 {
        return;
    }
    for _ in 0..count {
        let idx = rng.below(total_bits as u64) as usize;
        flip_bit(data, idx);
    }
}

/// Applies a binary symmetric channel with bit-error rate `ber` to the
/// buffer, returning the number of bits flipped.
pub fn apply_ber(data: &mut [u8], ber: f64, rng: &mut Rng) -> usize {
    assert!(
        (0.0..=1.0).contains(&ber),
        "bit error rate {ber} outside [0,1]"
    );
    let mut flipped = 0;
    for byte in 0..data.len() {
        for bit in 0..8 {
            if rng.next_f64() < ber {
                flip_bit(data, byte * 8 + bit);
                flipped += 1;
            }
        }
    }
    flipped
}

/// Zeroes a run of bytes — models a lost network packet of `len` bytes at
/// `offset` (clamped to the buffer).
pub fn zero_bytes(data: &mut [u8], offset: usize, len: usize) {
    let end = offset.saturating_add(len).min(data.len());
    if offset < data.len() {
        data[offset..end].fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flip_bit_is_involutive() {
        let mut data = vec![0u8; 4];
        flip_bit(&mut data, 0);
        assert_eq!(data[0], 0x80);
        flip_bit(&mut data, 0);
        assert_eq!(data[0], 0x00);
        flip_bit(&mut data, 31);
        assert_eq!(data[3], 0x01);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn flip_bit_bounds_checked() {
        flip_bit(&mut [0u8; 1], 8);
    }

    #[test]
    fn flip_random_bits_changes_data() {
        let mut rng = Rng::seed_from_u64(1);
        let mut data = vec![0u8; 64];
        flip_random_bits(&mut data, 10, &mut rng);
        let ones: u32 = data.iter().map(|b| b.count_ones()).sum();
        assert!(ones > 0 && ones <= 10);
    }

    #[test]
    fn flip_random_bits_on_empty_is_noop() {
        let mut rng = Rng::seed_from_u64(1);
        flip_random_bits(&mut [], 10, &mut rng);
    }

    #[test]
    fn ber_zero_flips_nothing() {
        let mut rng = Rng::seed_from_u64(2);
        let mut data = vec![0xAAu8; 32];
        assert_eq!(apply_ber(&mut data, 0.0, &mut rng), 0);
        assert!(data.iter().all(|&b| b == 0xAA));
    }

    #[test]
    fn ber_one_flips_everything() {
        let mut rng = Rng::seed_from_u64(2);
        let mut data = vec![0xAAu8; 8];
        assert_eq!(apply_ber(&mut data, 1.0, &mut rng), 64);
        assert!(data.iter().all(|&b| b == 0x55));
    }

    #[test]
    fn ber_rate_is_approximately_respected() {
        let mut rng = Rng::seed_from_u64(3);
        let mut data = vec![0u8; 100_000];
        let flipped = apply_ber(&mut data, 1e-3, &mut rng);
        // 800k bits * 1e-3 = 800 expected; allow wide tolerance.
        assert!((600..=1000).contains(&flipped), "{flipped}");
    }

    #[test]
    fn zero_bytes_clamps() {
        let mut data = vec![0xFFu8; 10];
        zero_bytes(&mut data, 8, 10);
        assert_eq!(&data[..8], &[0xFF; 8]);
        assert_eq!(&data[8..], &[0, 0]);
        // Entirely out of range: no-op, no panic.
        zero_bytes(&mut data, 100, 5);
    }
}
