//! Structural model of the MPEG-1 video bit stream (paper §2).
//!
//! The paper's BNF:
//!
//! ```text
//! <sequence>          ::= <sequence header> <group of pictures>
//!                         { [<sequence header>] <group of pictures> }
//!                         <sequence end code>
//! <group of pictures> ::= <group header> <picture> { <picture> }
//! <picture>           ::= <picture header> <slice> { <slice> }
//! <slice>             ::= <slice header> <macroblock> { <macroblock> }
//! ```
//!
//! Headers begin with unique byte-aligned 32-bit start codes; the slice is
//! the smallest resynchronization unit after errors. This module provides
//! a bit-exact writer and a resynchronizing parser for that structure,
//! with the macroblock layer abstracted as sized opaque payload.

pub mod bits;
pub mod corrupt;
pub mod headers;
pub mod parser;
pub mod start_code;
pub mod writer;

pub use bits::{BitReader, BitWriter, OutOfBits};
pub use corrupt::{apply_ber, flip_bit, flip_random_bits, zero_bytes};
pub use headers::{
    GroupHeader, HeaderError, PictureHeader, PictureRate, SequenceHeader, SliceHeader, TimeCode,
    BIT_RATE_VBR,
};
pub use parser::{
    parse_stream, parse_strict, IssueKind, ParseIssue, ParsedPicture, ParsedSlice, ParsedStream,
};
pub use start_code::{find_start_code, scan_start_codes, StartCode};
pub use writer::{min_picture_bits, write_stream, QuantizerSet, StreamSpec, WrittenStream};
