//! MPEG-1 start codes.
//!
//! Every header (sequence, group, picture, slice) begins with a unique
//! 32-bit start code of the form `00 00 01 XX`; uniqueness in the coded
//! stream is what lets a decoder resynchronize after errors (paper §2).

/// The three-byte start-code prefix `00 00 01`.
pub const PREFIX: [u8; 3] = [0x00, 0x00, 0x01];

/// Start-code suffix values (the `XX` byte), per ISO/IEC 11172-2.
pub mod codes {
    /// `picture_start_code` — begins a picture header.
    pub const PICTURE: u8 = 0x00;
    /// First slice start code (`slice_start_code` carries the slice's
    /// vertical position, 1-based).
    pub const SLICE_MIN: u8 = 0x01;
    /// Last slice start code.
    pub const SLICE_MAX: u8 = 0xAF;
    /// `user_data_start_code`.
    pub const USER_DATA: u8 = 0xB2;
    /// `sequence_header_code`.
    pub const SEQUENCE_HEADER: u8 = 0xB3;
    /// `sequence_error_code` (inserted by media layers to flag damage).
    pub const SEQUENCE_ERROR: u8 = 0xB4;
    /// `extension_start_code`.
    pub const EXTENSION: u8 = 0xB5;
    /// `sequence_end_code`.
    pub const SEQUENCE_END: u8 = 0xB7;
    /// `group_start_code` — begins a group-of-pictures header.
    pub const GROUP: u8 = 0xB8;
}

/// A classified start code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StartCode {
    /// Picture header start.
    Picture,
    /// Slice start; payload is the slice's 1-based vertical position
    /// (`0x01..=0xAF`).
    Slice(u8),
    /// User data section.
    UserData,
    /// Sequence header.
    SequenceHeader,
    /// Sequence error code.
    SequenceError,
    /// Extension data.
    Extension,
    /// End of sequence.
    SequenceEnd,
    /// Group-of-pictures header.
    Group,
    /// Reserved / system-layer code not modeled here.
    Other(u8),
}

impl StartCode {
    /// Classifies a suffix byte.
    pub fn from_suffix(suffix: u8) -> StartCode {
        match suffix {
            codes::PICTURE => StartCode::Picture,
            s @ codes::SLICE_MIN..=codes::SLICE_MAX => StartCode::Slice(s),
            codes::USER_DATA => StartCode::UserData,
            codes::SEQUENCE_HEADER => StartCode::SequenceHeader,
            codes::SEQUENCE_ERROR => StartCode::SequenceError,
            codes::EXTENSION => StartCode::Extension,
            codes::SEQUENCE_END => StartCode::SequenceEnd,
            codes::GROUP => StartCode::Group,
            other => StartCode::Other(other),
        }
    }

    /// The suffix byte for this code.
    pub fn suffix(self) -> u8 {
        match self {
            StartCode::Picture => codes::PICTURE,
            StartCode::Slice(s) => s,
            StartCode::UserData => codes::USER_DATA,
            StartCode::SequenceHeader => codes::SEQUENCE_HEADER,
            StartCode::SequenceError => codes::SEQUENCE_ERROR,
            StartCode::Extension => codes::EXTENSION,
            StartCode::SequenceEnd => codes::SEQUENCE_END,
            StartCode::Group => codes::GROUP,
            StartCode::Other(s) => s,
        }
    }

    /// The full 4-byte start code.
    pub fn to_bytes(self) -> [u8; 4] {
        [0x00, 0x00, 0x01, self.suffix()]
    }
}

/// Finds the next start code at or after `from`, returning
/// `(byte_offset_of_prefix, code)`.
///
/// Scanning is byte-aligned, exactly like a real decoder hunting for a
/// resynchronization point.
pub fn find_start_code(data: &[u8], from: usize) -> Option<(usize, StartCode)> {
    if data.len() < 4 {
        return None;
    }
    let mut i = from;
    while i + 4 <= data.len() {
        if data[i] == 0x00 && data[i + 1] == 0x00 && data[i + 2] == 0x01 {
            return Some((i, StartCode::from_suffix(data[i + 3])));
        }
        i += 1;
    }
    None
}

/// Iterates over all start codes in `data`, in order.
pub fn scan_start_codes(data: &[u8]) -> impl Iterator<Item = (usize, StartCode)> + '_ {
    let mut pos = 0usize;
    std::iter::from_fn(move || {
        let (at, code) = find_start_code(data, pos)?;
        pos = at + 4;
        Some((at, code))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_roundtrip() {
        for suffix in 0..=0xFFu8 {
            let code = StartCode::from_suffix(suffix);
            assert_eq!(code.suffix(), suffix);
            assert_eq!(code.to_bytes(), [0, 0, 1, suffix]);
        }
    }

    #[test]
    fn slice_range_classification() {
        assert_eq!(StartCode::from_suffix(0x01), StartCode::Slice(0x01));
        assert_eq!(StartCode::from_suffix(0xAF), StartCode::Slice(0xAF));
        assert_eq!(StartCode::from_suffix(0xB0), StartCode::Other(0xB0));
        assert_eq!(StartCode::from_suffix(0x00), StartCode::Picture);
    }

    #[test]
    fn find_simple() {
        let data = [0xFF, 0x00, 0x00, 0x01, 0xB3, 0x42];
        assert_eq!(
            find_start_code(&data, 0),
            Some((1, StartCode::SequenceHeader))
        );
        // Starting past it finds nothing.
        assert_eq!(find_start_code(&data, 2), None);
    }

    #[test]
    fn find_at_exact_offset() {
        let data = [0x00, 0x00, 0x01, 0x00];
        assert_eq!(find_start_code(&data, 0), Some((0, StartCode::Picture)));
    }

    #[test]
    fn overlapping_zero_runs() {
        // 00 00 00 01 XX: prefix begins at index 1.
        let data = [0x00, 0x00, 0x00, 0x01, 0xB8];
        assert_eq!(find_start_code(&data, 0), Some((1, StartCode::Group)));
    }

    #[test]
    fn scan_finds_all_in_order() {
        let mut data = Vec::new();
        data.extend_from_slice(&StartCode::SequenceHeader.to_bytes());
        data.extend_from_slice(&[0xAA; 7]);
        data.extend_from_slice(&StartCode::Group.to_bytes());
        data.extend_from_slice(&StartCode::Picture.to_bytes());
        data.extend_from_slice(&[0x55; 3]);
        data.extend_from_slice(&StartCode::Slice(1).to_bytes());
        data.extend_from_slice(&StartCode::SequenceEnd.to_bytes());

        let found: Vec<_> = scan_start_codes(&data).map(|(_, c)| c).collect();
        assert_eq!(
            found,
            vec![
                StartCode::SequenceHeader,
                StartCode::Group,
                StartCode::Picture,
                StartCode::Slice(1),
                StartCode::SequenceEnd,
            ]
        );
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert_eq!(find_start_code(&[], 0), None);
        assert_eq!(find_start_code(&[0, 0, 1], 0), None);
        assert_eq!(scan_start_codes(&[0u8; 2]).count(), 0);
    }
}
