//! Resynchronizing MPEG-1 stream parser.
//!
//! The parser mirrors what the paper's §2 says a decoder does with a
//! damaged stream: "whenever errors are detected, the decoder can skip
//! ahead to the next slice start code — or picture start code — and resume
//! decoding from there. One or more slices would be missing from the
//! picture being decoded." Parsing therefore never aborts: structural
//! damage is recorded as [`ParseIssue`]s and skipped.

use super::bits::BitReader;
use super::headers::{GroupHeader, HeaderError, PictureHeader, SequenceHeader, SliceHeader};
use super::start_code::{find_start_code, StartCode};
use std::fmt;
use std::ops::Range;

/// A recoverable problem found while parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseIssue {
    /// Byte offset at which the problem was detected.
    pub at_byte: usize,
    /// What went wrong.
    pub kind: IssueKind,
}

/// Classification of parse problems.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IssueKind {
    /// A header failed to decode; the parser resynchronized to the next
    /// start code.
    BadHeader {
        /// Which header type was being decoded.
        context: &'static str,
        /// The underlying decode error.
        error: HeaderError,
    },
    /// A start code appeared somewhere it is not allowed (e.g. a slice
    /// before any picture header).
    UnexpectedCode {
        /// The code found.
        code: u8,
    },
    /// Stream did not begin with a sequence header.
    MissingSequenceHeader,
    /// Stream ended without a sequence end code.
    MissingSequenceEnd,
    /// Slice vertical positions regressed or repeated within a picture,
    /// indicating lost slices or corruption.
    SliceOrder {
        /// Previous slice position.
        previous: u8,
        /// Offending position.
        found: u8,
    },
    /// An explicit `sequence_error_code` was present in the stream.
    SequenceErrorCode,
}

impl fmt::Display for ParseIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "at byte {}: ", self.at_byte)?;
        match &self.kind {
            IssueKind::BadHeader { context, error } => write!(f, "bad {context} header: {error}"),
            IssueKind::UnexpectedCode { code } => write!(f, "unexpected start code {code:#04x}"),
            IssueKind::MissingSequenceHeader => {
                write!(f, "stream does not begin with a sequence header")
            }
            IssueKind::MissingSequenceEnd => write!(f, "stream has no sequence end code"),
            IssueKind::SliceOrder { previous, found } => {
                write!(f, "slice position {found} after {previous}")
            }
            IssueKind::SequenceErrorCode => write!(f, "sequence error code present"),
        }
    }
}

impl std::error::Error for ParseIssue {}

/// A decoded slice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedSlice {
    /// The slice header.
    pub header: SliceHeader,
    /// Opaque macroblock payload length in bytes.
    pub payload_len: usize,
}

/// A decoded picture.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedPicture {
    /// The picture header.
    pub header: PictureHeader,
    /// Slices, in stream order.
    pub slices: Vec<ParsedSlice>,
    /// Byte range of the picture (start code through last slice payload).
    pub byte_range: Range<usize>,
}

impl ParsedPicture {
    /// Coded size of this picture in bits.
    pub fn size_bits(&self) -> u64 {
        (self.byte_range.len() as u64) * 8
    }
}

/// Result of parsing a stream.
#[derive(Debug, Clone, Default)]
pub struct ParsedStream {
    /// All sequence headers encountered (first is mandatory; repeats are
    /// the optional random-access copies).
    pub sequence_headers: Vec<SequenceHeader>,
    /// Group headers, in order.
    pub groups: Vec<GroupHeader>,
    /// Pictures, in coded (transmission) order.
    pub pictures: Vec<ParsedPicture>,
    /// Recoverable problems, in order of detection. Empty for a clean
    /// stream.
    pub issues: Vec<ParseIssue>,
    /// Whether a sequence end code was seen.
    pub end_seen: bool,
}

impl ParsedStream {
    /// `true` if no issues were recorded.
    pub fn is_clean(&self) -> bool {
        self.issues.is_empty()
    }

    /// Picture sizes in coded order, in bits.
    pub fn picture_sizes(&self) -> Vec<u64> {
        self.pictures.iter().map(|p| p.size_bits()).collect()
    }

    /// Reconstructs display order from `temporal_reference`, valid for
    /// sequences shorter than 1024 pictures (this writer stamps the
    /// display index modulo 1024).
    pub fn display_order_sizes(&self) -> Vec<u64> {
        let mut pairs: Vec<(u16, u64)> = self
            .pictures
            .iter()
            .map(|p| (p.header.temporal_reference, p.size_bits()))
            .collect();
        pairs.sort_by_key(|&(tr, _)| tr);
        pairs.into_iter().map(|(_, s)| s).collect()
    }
}

/// Parses a stream, resynchronizing past any damage.
pub fn parse_stream(data: &[u8]) -> ParsedStream {
    let mut out = ParsedStream::default();
    let mut pos = 0usize;
    let mut first = true;
    // The picture currently being assembled, with its start offset.
    let mut current: Option<(ParsedPicture, usize)> = None;

    // Extends the currently assembled picture (if any) to end at `end`,
    // fixing up the payload length of its last slice.
    fn close_picture(
        out: &mut ParsedStream,
        current: &mut Option<(ParsedPicture, usize)>,
        end: usize,
    ) {
        if let Some((mut pic, start)) = current.take() {
            pic.byte_range = start..end;
            out.pictures.push(pic);
        }
    }

    while let Some((at, code)) = find_start_code(data, pos) {
        if first {
            if code != StartCode::SequenceHeader || at != 0 {
                out.issues.push(ParseIssue {
                    at_byte: at,
                    kind: IssueKind::MissingSequenceHeader,
                });
            }
            first = false;
        }
        let body_start = at + 4;
        pos = body_start;
        match code {
            StartCode::SequenceHeader => {
                close_picture(&mut out, &mut current, at);
                let mut r = BitReader::at_byte(data, body_start);
                match SequenceHeader::decode(&mut r) {
                    Ok(h) => {
                        out.sequence_headers.push(h);
                        pos = r.byte_pos();
                    }
                    Err(error) => out.issues.push(ParseIssue {
                        at_byte: at,
                        kind: IssueKind::BadHeader {
                            context: "sequence",
                            error,
                        },
                    }),
                }
            }
            StartCode::Group => {
                close_picture(&mut out, &mut current, at);
                let mut r = BitReader::at_byte(data, body_start);
                match GroupHeader::decode(&mut r) {
                    Ok(h) => {
                        out.groups.push(h);
                        pos = r.byte_pos();
                    }
                    Err(error) => out.issues.push(ParseIssue {
                        at_byte: at,
                        kind: IssueKind::BadHeader {
                            context: "group",
                            error,
                        },
                    }),
                }
            }
            StartCode::Picture => {
                close_picture(&mut out, &mut current, at);
                let mut r = BitReader::at_byte(data, body_start);
                match PictureHeader::decode(&mut r) {
                    Ok(header) => {
                        current = Some((
                            ParsedPicture {
                                header,
                                slices: Vec::new(),
                                byte_range: at..at,
                            },
                            at,
                        ));
                        pos = r.byte_pos();
                    }
                    Err(error) => out.issues.push(ParseIssue {
                        at_byte: at,
                        kind: IssueKind::BadHeader {
                            context: "picture",
                            error,
                        },
                    }),
                }
            }
            StartCode::Slice(vpos) => match &mut current {
                Some((pic, _)) => {
                    let mut r = BitReader::at_byte(data, body_start);
                    match SliceHeader::decode(vpos, &mut r) {
                        Ok(header) => {
                            if let Some(last) = pic.slices.last() {
                                if header.vertical_position <= last.header.vertical_position {
                                    out.issues.push(ParseIssue {
                                        at_byte: at,
                                        kind: IssueKind::SliceOrder {
                                            previous: last.header.vertical_position,
                                            found: header.vertical_position,
                                        },
                                    });
                                }
                            }
                            let payload_start = r.byte_pos();
                            let payload_end = find_start_code(data, payload_start)
                                .map(|(next, _)| next)
                                .unwrap_or(data.len());
                            pic.slices.push(ParsedSlice {
                                header,
                                payload_len: payload_end - payload_start,
                            });
                            pos = payload_end;
                        }
                        Err(error) => out.issues.push(ParseIssue {
                            at_byte: at,
                            kind: IssueKind::BadHeader {
                                context: "slice",
                                error,
                            },
                        }),
                    }
                }
                None => {
                    out.issues.push(ParseIssue {
                        at_byte: at,
                        kind: IssueKind::UnexpectedCode { code: vpos },
                    });
                }
            },
            StartCode::SequenceEnd => {
                close_picture(&mut out, &mut current, at);
                out.end_seen = true;
            }
            StartCode::SequenceError => {
                out.issues.push(ParseIssue {
                    at_byte: at,
                    kind: IssueKind::SequenceErrorCode,
                });
            }
            StartCode::UserData | StartCode::Extension => {
                // Skipped: scan to the next start code.
            }
            StartCode::Other(c) => {
                out.issues.push(ParseIssue {
                    at_byte: at,
                    kind: IssueKind::UnexpectedCode { code: c },
                });
            }
        }
    }
    close_picture(&mut out, &mut current, data.len());
    if !out.end_seen {
        out.issues.push(ParseIssue {
            at_byte: data.len(),
            kind: IssueKind::MissingSequenceEnd,
        });
    }
    out
}

/// Parses a stream, failing on the first structural issue.
pub fn parse_strict(data: &[u8]) -> Result<ParsedStream, ParseIssue> {
    let parsed = parse_stream(data);
    match parsed.issues.first() {
        Some(issue) => Err(issue.clone()),
        None => Ok(parsed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitstream::writer::{write_stream, StreamSpec};
    use crate::gop::GopPattern;
    use crate::picture::{PictureType, Resolution};
    use crate::SequenceHeader as SeqH;

    fn sample_stream(
        n_pictures: usize,
    ) -> (
        StreamSpec,
        Vec<u64>,
        crate::bitstream::writer::WrittenStream,
    ) {
        let spec = StreamSpec::new(SeqH::vbr(Resolution::VGA), GopPattern::new(3, 9).unwrap());
        let sizes: Vec<u64> = (0..n_pictures)
            .map(|i| match spec.pattern.type_at(i) {
                PictureType::I => 200_000,
                PictureType::P => 100_000,
                PictureType::B => 20_000,
            })
            .collect();
        let written = write_stream(&spec, &sizes, 11);
        (spec, sizes, written)
    }

    #[test]
    fn clean_roundtrip() {
        let (_, sizes, written) = sample_stream(18);
        let parsed = parse_strict(&written.bytes).unwrap();
        assert!(parsed.is_clean());
        assert!(parsed.end_seen);
        assert_eq!(parsed.pictures.len(), 18);
        assert_eq!(parsed.sequence_headers.len(), 1);
        assert_eq!(parsed.groups.len(), 2);
        // Sizes in display order match targets to byte granularity.
        let display = parsed.display_order_sizes();
        for (want, have) in sizes.iter().zip(&display) {
            assert_eq!(*have, (want / 8) * 8);
        }
    }

    #[test]
    fn parsed_types_follow_pattern_in_coded_order() {
        let (spec, _, written) = sample_stream(9);
        let parsed = parse_strict(&written.bytes).unwrap();
        for (pic, &display_idx) in parsed.pictures.iter().zip(&written.coded_order) {
            assert_eq!(pic.header.picture_type, spec.pattern.type_at(display_idx));
            assert_eq!(pic.header.temporal_reference as usize, display_idx);
        }
    }

    #[test]
    fn slice_count_matches_mb_rows() {
        let (_, _, written) = sample_stream(9);
        let parsed = parse_strict(&written.bytes).unwrap();
        for pic in &parsed.pictures {
            assert_eq!(pic.slices.len(), 30, "VGA has 30 macroblock rows");
            // Vertical positions are 1..=30 in order.
            for (i, s) in pic.slices.iter().enumerate() {
                assert_eq!(s.header.vertical_position as usize, i + 1);
            }
        }
    }

    #[test]
    fn corrupted_slice_header_drops_only_that_slice() {
        let (_, _, written) = sample_stream(9);
        let mut bytes = written.bytes.clone();
        // Find the 5th slice start code and zero its quantizer bits
        // (quantizer_scale = 0 is invalid).
        let mut slice_seen = 0;
        let mut target = None;
        for (at, code) in crate::bitstream::start_code::scan_start_codes(&bytes) {
            if matches!(code, StartCode::Slice(_)) {
                slice_seen += 1;
                if slice_seen == 5 {
                    target = Some(at);
                    break;
                }
            }
        }
        let at = target.unwrap();
        bytes[at + 4] = 0x00; // quantizer_scale 0 + extra bit 0
        let parsed = parse_stream(&bytes);
        assert_eq!(parsed.issues.len(), 1);
        assert!(matches!(
            parsed.issues[0].kind,
            IssueKind::BadHeader {
                context: "slice",
                ..
            }
        ));
        // All pictures still present; the damaged picture has 29 slices.
        assert_eq!(parsed.pictures.len(), 9);
        let short: Vec<_> = parsed
            .pictures
            .iter()
            .filter(|p| p.slices.len() == 29)
            .collect();
        assert_eq!(short.len(), 1, "exactly one picture lost exactly one slice");
    }

    #[test]
    fn corrupted_picture_header_drops_picture_but_resyncs() {
        let (_, _, written) = sample_stream(9);
        let mut bytes = written.bytes.clone();
        // Second picture's header: force coding type 0.
        let second_range = &written.picture_ranges[1];
        let at = second_range.start;
        // Body starts after the 4-byte start code: temporal(10) type(3)...
        // Zero bytes 4..6 of the picture: temporal_reference 0, type 0.
        bytes[at + 4] = 0;
        bytes[at + 5] = 0;
        let parsed = parse_stream(&bytes);
        assert!(parsed.issues.iter().any(|i| matches!(
            i.kind,
            IssueKind::BadHeader {
                context: "picture",
                ..
            }
        )));
        // Picture lost, but the remaining 8 parse fine. Its slices are
        // orphaned (UnexpectedCode is NOT raised because resync skips to
        // slices which get attached to... no current picture -> issues).
        assert_eq!(parsed.pictures.len(), 8);
        assert!(parsed
            .issues
            .iter()
            .any(|i| matches!(i.kind, IssueKind::UnexpectedCode { .. })));
    }

    #[test]
    fn truncated_stream_reports_missing_end() {
        let (_, _, written) = sample_stream(9);
        let cut = written.bytes.len() / 2;
        let parsed = parse_stream(&written.bytes[..cut]);
        assert!(!parsed.end_seen);
        assert!(parsed
            .issues
            .iter()
            .any(|i| i.kind == IssueKind::MissingSequenceEnd));
        assert!(
            !parsed.pictures.is_empty(),
            "prefix pictures still recovered"
        );
    }

    #[test]
    fn stream_not_starting_with_sequence_header_is_flagged() {
        let (_, _, written) = sample_stream(9);
        // Chop off the 12-byte sequence header (start code + 8-byte body).
        let parsed = parse_stream(&written.bytes[12..]);
        assert!(parsed
            .issues
            .iter()
            .any(|i| i.kind == IssueKind::MissingSequenceHeader));
        assert_eq!(parsed.pictures.len(), 9, "pictures are still decodable");
    }

    #[test]
    fn garbage_input_yields_no_pictures() {
        let garbage = vec![0xABu8; 1024];
        let parsed = parse_stream(&garbage);
        assert!(parsed.pictures.is_empty());
        assert!(!parsed.end_seen);
    }

    #[test]
    fn strict_mode_fails_on_damage() {
        let (_, _, written) = sample_stream(9);
        let mut bytes = written.bytes.clone();
        let at = written.picture_ranges[0].start;
        bytes[at + 4] = 0;
        bytes[at + 5] = 0;
        assert!(parse_strict(&bytes).is_err());
    }
}
