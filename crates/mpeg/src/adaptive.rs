//! Time-varying GOP patterns.
//!
//! The paper notes (§4.4) that "an MPEG encoder may change the values of
//! M and N adaptively as the scene in a video sequence changes. Note that
//! the basic algorithm does not depend on M, and it uses N only in
//! picture size estimation." A [`PatternSchedule`] represents such an
//! encoder's output: a sequence of pattern segments, the last of which
//! repeats indefinitely.

use crate::gop::{GopPattern, PatternError};
use crate::picture::PictureType;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One run of pictures encoded with a fixed pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PatternSegment {
    /// Number of pictures in this segment. The final segment's count is a
    /// minimum — its pattern continues indefinitely.
    pub pictures: usize,
    /// The pattern in force.
    pub pattern: GopPattern,
}

/// A piecewise-constant pattern assignment over display indices.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PatternSchedule {
    segments: Vec<PatternSegment>,
}

/// Errors building a [`PatternSchedule`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// No segments given.
    Empty,
    /// A segment has zero pictures.
    EmptySegment {
        /// Index of the offending segment.
        index: usize,
    },
    /// A segment's length is not a whole number of its pattern's periods,
    /// so the next segment would start mid-pattern (a real encoder
    /// switches patterns at a GOP boundary).
    MisalignedSwitch {
        /// Index of the offending segment.
        index: usize,
        /// The segment's length.
        pictures: usize,
        /// The pattern period it must be a multiple of.
        n: usize,
    },
    /// Underlying pattern error.
    Pattern(PatternError),
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::Empty => write!(f, "pattern schedule has no segments"),
            ScheduleError::EmptySegment { index } => write!(f, "segment {index} has no pictures"),
            ScheduleError::MisalignedSwitch { index, pictures, n } => write!(
                f,
                "segment {index} has {pictures} pictures, not a multiple of its pattern period {n}"
            ),
            ScheduleError::Pattern(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ScheduleError {}

impl PatternSchedule {
    /// A constant schedule (degenerates to a plain [`GopPattern`]).
    pub fn constant(pattern: GopPattern) -> Self {
        PatternSchedule {
            segments: vec![PatternSegment {
                pictures: pattern.n(),
                pattern,
            }],
        }
    }

    /// Builds a schedule, validating that every non-final segment ends on
    /// a GOP boundary of its own pattern.
    pub fn new(segments: Vec<PatternSegment>) -> Result<Self, ScheduleError> {
        if segments.is_empty() {
            return Err(ScheduleError::Empty);
        }
        for (index, seg) in segments.iter().enumerate() {
            if seg.pictures == 0 {
                return Err(ScheduleError::EmptySegment { index });
            }
            let n = seg.pattern.n();
            if index + 1 < segments.len() && seg.pictures % n != 0 {
                return Err(ScheduleError::MisalignedSwitch {
                    index,
                    pictures: seg.pictures,
                    n,
                });
            }
        }
        Ok(PatternSchedule { segments })
    }

    /// The segments.
    pub fn segments(&self) -> &[PatternSegment] {
        &self.segments
    }

    /// The segment in force at display index `i`, with the index of the
    /// segment's first picture.
    fn segment_at(&self, i: usize) -> (usize, &PatternSegment) {
        let mut offset = 0usize;
        for seg in &self.segments {
            if i < offset + seg.pictures {
                return (offset, seg);
            }
            offset += seg.pictures;
        }
        // Past the declared end: the last segment's pattern repeats.
        let last = self.segments.last().expect("validated non-empty");
        let last_offset: usize = self
            .segments
            .iter()
            .take(self.segments.len() - 1)
            .map(|s| s.pictures)
            .sum();
        (last_offset, last)
    }

    /// Picture type at display index `i`.
    pub fn type_at(&self, i: usize) -> PictureType {
        let (offset, seg) = self.segment_at(i);
        seg.pattern.type_at(i - offset)
    }

    /// The pattern in force at display index `i`.
    pub fn pattern_at(&self, i: usize) -> GopPattern {
        self.segment_at(i).1.pattern
    }

    /// The pattern period `N` in force at display index `i` (what the
    /// smoothing algorithm's estimation and moving average use).
    pub fn n_at(&self, i: usize) -> usize {
        self.pattern_at(i).n()
    }

    /// Display indices at which the pattern changes.
    pub fn switch_points(&self) -> Vec<usize> {
        let mut points = Vec::new();
        let mut offset = 0usize;
        for (k, seg) in self.segments.iter().enumerate() {
            if k > 0 {
                points.push(offset);
            }
            offset += seg.pictures;
        }
        points
    }

    /// Total pictures covered by explicit segments (the last pattern
    /// continues past this).
    pub fn declared_len(&self) -> usize {
        self.segments.iter().map(|s| s.pictures).sum()
    }
}

impl fmt::Display for PatternSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self
            .segments
            .iter()
            .map(|s| format!("{}x{}", s.pictures / s.pattern.n().max(1), s.pattern))
            .collect();
        write!(f, "{}", parts.join(" then "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::picture::PictureType::{B, I, P};

    fn two_phase() -> PatternSchedule {
        PatternSchedule::new(vec![
            PatternSegment {
                pictures: 18,
                pattern: GopPattern::new(3, 9).unwrap(),
            },
            PatternSegment {
                pictures: 12,
                pattern: GopPattern::new(2, 6).unwrap(),
            },
        ])
        .unwrap()
    }

    #[test]
    fn types_follow_active_pattern() {
        let s = two_phase();
        // First segment: IBBPBBPBB twice.
        assert_eq!(s.type_at(0), I);
        assert_eq!(s.type_at(3), P);
        assert_eq!(s.type_at(9), I);
        // Second segment starts at 18 with IBPBPB.
        assert_eq!(s.type_at(18), I);
        assert_eq!(s.type_at(19), B);
        assert_eq!(s.type_at(20), P);
        assert_eq!(s.type_at(24), I);
    }

    #[test]
    fn last_pattern_repeats_forever() {
        let s = two_phase();
        // Beyond the declared 30 pictures the (2,6) pattern continues.
        assert_eq!(s.type_at(30), I);
        assert_eq!(s.type_at(36), I);
        assert_eq!(s.type_at(31), B);
        assert_eq!(s.n_at(100), 6);
    }

    #[test]
    fn switch_points_and_lengths() {
        let s = two_phase();
        assert_eq!(s.switch_points(), vec![18]);
        assert_eq!(s.declared_len(), 30);
        assert_eq!(s.n_at(0), 9);
        assert_eq!(s.n_at(17), 9);
        assert_eq!(s.n_at(18), 6);
    }

    #[test]
    fn constant_schedule_matches_pattern() {
        let pat = GopPattern::new(3, 9).unwrap();
        let s = PatternSchedule::constant(pat);
        for i in 0..40 {
            assert_eq!(s.type_at(i), pat.type_at(i));
        }
        assert!(s.switch_points().is_empty());
    }

    #[test]
    fn rejects_bad_schedules() {
        assert!(matches!(
            PatternSchedule::new(vec![]),
            Err(ScheduleError::Empty)
        ));
        assert!(matches!(
            PatternSchedule::new(vec![PatternSegment {
                pictures: 0,
                pattern: GopPattern::new(3, 9).unwrap()
            }]),
            Err(ScheduleError::EmptySegment { index: 0 })
        ));
        // 10 is not a multiple of 9: mid-GOP switch rejected.
        assert!(matches!(
            PatternSchedule::new(vec![
                PatternSegment {
                    pictures: 10,
                    pattern: GopPattern::new(3, 9).unwrap()
                },
                PatternSegment {
                    pictures: 6,
                    pattern: GopPattern::new(2, 6).unwrap()
                },
            ]),
            Err(ScheduleError::MisalignedSwitch {
                index: 0,
                pictures: 10,
                n: 9
            })
        ));
        // Final segment may end mid-pattern (it repeats anyway).
        assert!(PatternSchedule::new(vec![
            PatternSegment {
                pictures: 9,
                pattern: GopPattern::new(3, 9).unwrap()
            },
            PatternSegment {
                pictures: 7,
                pattern: GopPattern::new(2, 6).unwrap()
            },
        ])
        .is_ok());
    }

    #[test]
    fn display_format() {
        let s = two_phase();
        assert_eq!(s.to_string(), "2xIBBPBBPBB then 2xIBPBPB");
    }
}
