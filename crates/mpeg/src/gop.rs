//! GOP (group of pictures) pattern algebra.
//!
//! An MPEG video sequence repeats a fixed pattern of picture types,
//! specified by two parameters (paper §1):
//!
//! * `M` — distance between consecutive reference pictures (I or P);
//! * `N` — distance between consecutive I pictures (the pattern length).
//!
//! `M = 3, N = 9` gives `IBBPBBPBB` repeating indefinitely; `M = 1, N = 5`
//! gives `IPPPP`. The smoothing algorithm uses `N` for picture-size
//! estimation (`S_j ≈ S_{j−N}`, since pictures `j` and `j−N` have the same
//! type) and does not otherwise depend on `M` (paper §4.4).

use crate::picture::PictureType;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors constructing a [`GopPattern`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatternError {
    /// `M` must be at least 1.
    ZeroM,
    /// `N` must be at least 1.
    ZeroN,
    /// `N` must be a multiple of `M` so the pattern tiles cleanly.
    NotDivisible {
        /// Offending N.
        n: usize,
        /// Offending M.
        m: usize,
    },
    /// A pattern string contained a letter other than I, P, B.
    BadLetter {
        /// Byte offset of the bad letter.
        index: usize,
        /// The letter itself.
        letter: char,
    },
    /// A pattern string must begin with an I picture.
    MustStartWithI,
    /// A pattern string was empty.
    Empty,
    /// A pattern string was not of the regular `I (B^{M-1} P)^{N/M-1} B^{M-1}`
    /// shape (irregular patterns are legal MPEG but outside this model).
    Irregular,
}

impl fmt::Display for PatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternError::ZeroM => write!(f, "M must be >= 1"),
            PatternError::ZeroN => write!(f, "N must be >= 1"),
            PatternError::NotDivisible { n, m } => {
                write!(f, "N = {n} must be a multiple of M = {m}")
            }
            PatternError::BadLetter { index, letter } => {
                write!(f, "invalid pattern letter {letter:?} at index {index}")
            }
            PatternError::MustStartWithI => write!(f, "pattern must start with an I picture"),
            PatternError::Empty => write!(f, "pattern string is empty"),
            PatternError::Irregular => write!(f, "pattern is not a regular (M, N) GOP structure"),
        }
    }
}

impl std::error::Error for PatternError {}

/// A regular repeating GOP pattern, parameterized by `(M, N)`.
///
/// Picture indices are **0-based display order** throughout this crate; the
/// paper's pictures `1, 2, 3, …` correspond to indices `0, 1, 2, …`.
///
/// # Example
///
/// ```
/// use smooth_mpeg::{GopPattern, PictureType};
///
/// let pat = GopPattern::new(3, 9).unwrap();
/// assert_eq!(pat.to_string(), "IBBPBBPBB");
/// assert_eq!(pat.type_at(0), PictureType::I);
/// assert_eq!(pat.type_at(3), PictureType::P);
/// assert_eq!(pat.type_at(10), PictureType::B); // wraps: 10 % 9 == 1
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GopPattern {
    m: usize,
    n: usize,
}

impl GopPattern {
    /// Creates the pattern with reference distance `m` and I-picture
    /// distance `n`.
    pub fn new(m: usize, n: usize) -> Result<Self, PatternError> {
        if m == 0 {
            return Err(PatternError::ZeroM);
        }
        if n == 0 {
            return Err(PatternError::ZeroN);
        }
        if n % m != 0 {
            return Err(PatternError::NotDivisible { n, m });
        }
        Ok(GopPattern { m, n })
    }

    /// Parses a pattern string such as `"IBBPBBPBB"`.
    ///
    /// The string must describe one full period of a regular `(M, N)`
    /// pattern: an `I`, followed by groups of `M−1` `B`s before each
    /// reference.
    pub fn parse(s: &str) -> Result<Self, PatternError> {
        let types: Vec<PictureType> = s
            .chars()
            .enumerate()
            .map(|(index, letter)| {
                PictureType::from_char(letter).ok_or(PatternError::BadLetter { index, letter })
            })
            .collect::<Result<_, _>>()?;
        if types.is_empty() {
            return Err(PatternError::Empty);
        }
        if types[0] != PictureType::I {
            return Err(PatternError::MustStartWithI);
        }
        let n = types.len();
        // M is the distance from the I to the next reference (or N if none).
        let m = types[1..]
            .iter()
            .position(|t| t.is_reference())
            .map(|p| p + 1)
            .unwrap_or(n);
        let candidate = GopPattern::new(m, n).map_err(|_| PatternError::Irregular)?;
        if candidate.types() != types {
            return Err(PatternError::Irregular);
        }
        Ok(candidate)
    }

    /// Distance between reference pictures (I or P).
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Distance between I pictures; the pattern period, called `N`
    /// throughout the paper.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The picture type at 0-based display index `i` (wrapping modulo `N`).
    pub fn type_at(&self, i: usize) -> PictureType {
        let pos = i % self.n;
        if pos == 0 {
            PictureType::I
        } else if pos % self.m == 0 {
            PictureType::P
        } else {
            PictureType::B
        }
    }

    /// One full period of picture types, in display order.
    pub fn types(&self) -> Vec<PictureType> {
        (0..self.n).map(|i| self.type_at(i)).collect()
    }

    /// Counts of (I, P, B) pictures per period.
    pub fn type_counts(&self) -> (usize, usize, usize) {
        let mut counts = (0, 0, 0);
        for i in 0..self.n {
            match self.type_at(i) {
                PictureType::I => counts.0 += 1,
                PictureType::P => counts.1 += 1,
                PictureType::B => counts.2 += 1,
            }
        }
        counts
    }

    /// Iterator over picture types in display order, indefinitely
    /// (the pattern "repeats indefinitely", paper §1).
    pub fn iter(&self) -> impl Iterator<Item = PictureType> + '_ {
        (0..).map(move |i| self.type_at(i))
    }

    /// The display index of the reference picture that a B at display
    /// index `i` predicts *forward* from (its past reference), or the
    /// previous reference for P pictures. `None` for the very first I and
    /// for pictures at the sequence start with no past reference.
    pub fn past_reference(&self, i: usize) -> Option<usize> {
        match self.type_at(i) {
            PictureType::I => None,
            PictureType::P => Some(i - self.m),
            PictureType::B => Some(i - (i % self.m)),
        }
    }

    /// The display index of the *future* reference of a B picture at
    /// display index `i` (the I or P it predicts backward from).
    /// `None` for I and P pictures.
    pub fn future_reference(&self, i: usize) -> Option<usize> {
        match self.type_at(i) {
            PictureType::B => Some(i - (i % self.m) + self.m),
            _ => None,
        }
    }

    /// Number of B pictures between consecutive references (`M − 1`).
    #[inline]
    pub fn b_run_len(&self) -> usize {
        self.m - 1
    }

    /// Encoder lookahead needed before a B picture can be encoded: the
    /// encoder must capture up to the future reference, i.e. `M` pictures
    /// ("an encoder must introduce a delay equal to the time to capture and
    /// digitize M pictures", paper §2).
    #[inline]
    pub fn encoder_lookahead(&self) -> usize {
        if self.m > 1 {
            self.m
        } else {
            0
        }
    }
}

impl fmt::Display for GopPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for t in self.types() {
            write!(f, "{t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::picture::PictureType::{B, I, P};

    #[test]
    fn paper_example_m3_n9() {
        // Paper §1: "if M is 3 and N is 9, then the sequence of encoded
        // pictures is IBBPBBPBB ..."
        let pat = GopPattern::new(3, 9).unwrap();
        assert_eq!(pat.types(), vec![I, B, B, P, B, B, P, B, B]);
        assert_eq!(pat.to_string(), "IBBPBBPBB");
    }

    #[test]
    fn paper_example_m1_n5() {
        // Paper §1: "If M is 1 and N is 5, then the sequence is IPPPP..."
        let pat = GopPattern::new(1, 5).unwrap();
        assert_eq!(pat.to_string(), "IPPPP");
        assert_eq!(pat.type_counts(), (1, 4, 0));
    }

    #[test]
    fn driving2_pattern_m2_n6() {
        // Driving2 is encoded with N = 6, M = 2 (paper §5.1).
        let pat = GopPattern::new(2, 6).unwrap();
        assert_eq!(pat.to_string(), "IBPBPB");
    }

    #[test]
    fn backyard_pattern_m3_n12() {
        let pat = GopPattern::new(3, 12).unwrap();
        assert_eq!(pat.to_string(), "IBBPBBPBBPBB");
        assert_eq!(pat.type_counts(), (1, 3, 8));
    }

    #[test]
    fn wrapping_type_at() {
        let pat = GopPattern::new(3, 9).unwrap();
        for i in 0..100 {
            assert_eq!(pat.type_at(i), pat.type_at(i + 9));
        }
    }

    #[test]
    fn intra_only_pattern() {
        // N = 1 means every picture is an I (pure intraframe, JPEG-like).
        let pat = GopPattern::new(1, 1).unwrap();
        assert_eq!(pat.to_string(), "I");
        assert_eq!(pat.type_counts(), (1, 0, 0));
    }

    #[test]
    fn constructor_rejects_bad_params() {
        assert_eq!(GopPattern::new(0, 9), Err(PatternError::ZeroM));
        assert_eq!(GopPattern::new(3, 0), Err(PatternError::ZeroN));
        assert_eq!(
            GopPattern::new(4, 9),
            Err(PatternError::NotDivisible { n: 9, m: 4 })
        );
    }

    #[test]
    fn parse_roundtrip() {
        for (m, n) in [(3, 9), (2, 6), (3, 12), (1, 5), (1, 1), (4, 12), (2, 2)] {
            let pat = GopPattern::new(m, n).unwrap();
            let reparsed = GopPattern::parse(&pat.to_string()).unwrap();
            assert_eq!(pat, reparsed, "roundtrip failed for M={m} N={n}");
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(matches!(GopPattern::parse(""), Err(PatternError::Empty)));
        assert!(matches!(
            GopPattern::parse("BBI"),
            Err(PatternError::MustStartWithI)
        ));
        assert!(matches!(
            GopPattern::parse("IXB"),
            Err(PatternError::BadLetter {
                index: 1,
                letter: 'X'
            })
        ));
        // Irregular: B-runs of differing length.
        assert!(matches!(
            GopPattern::parse("IBPBB"),
            Err(PatternError::Irregular)
        ));
        // Trailing B-run too short for M = 3.
        assert!(matches!(
            GopPattern::parse("IBBPB"),
            Err(PatternError::Irregular)
        ));
    }

    #[test]
    fn references_m3() {
        let pat = GopPattern::new(3, 9).unwrap();
        // P at 3 references I at 0; P at 6 references P at 3.
        assert_eq!(pat.past_reference(3), Some(0));
        assert_eq!(pat.past_reference(6), Some(3));
        // B at 1, 2 reference I at 0 (past) and P at 3 (future).
        assert_eq!(pat.past_reference(1), Some(0));
        assert_eq!(pat.future_reference(1), Some(3));
        assert_eq!(pat.past_reference(2), Some(0));
        assert_eq!(pat.future_reference(2), Some(3));
        // B at 7, 8 reference P at 6 and I at 9 (next GOP).
        assert_eq!(pat.past_reference(7), Some(6));
        assert_eq!(pat.future_reference(8), Some(9));
        // I has no references.
        assert_eq!(pat.past_reference(0), None);
        assert_eq!(pat.future_reference(0), None);
        assert_eq!(pat.future_reference(3), None);
    }

    #[test]
    fn encoder_lookahead() {
        assert_eq!(GopPattern::new(3, 9).unwrap().encoder_lookahead(), 3);
        assert_eq!(GopPattern::new(1, 5).unwrap().encoder_lookahead(), 0);
    }

    #[test]
    fn iter_matches_type_at() {
        let pat = GopPattern::new(2, 6).unwrap();
        let taken: Vec<_> = pat.iter().take(13).collect();
        let expected: Vec<_> = (0..13).map(|i| pat.type_at(i)).collect();
        assert_eq!(taken, expected);
    }
}
