//! Quantizer-scale size model.
//!
//! The paper's §3.1 reports a concrete measurement: re-encoding an I
//! picture with quantizer scale 30 instead of 4 shrank it from 282,976 to
//! 75,960 bits (and made it "grainy, fuzzy" — the reason lossy rate control
//! should be a last resort). This module fits a two-parameter hyperbolic
//! model `size ∝ c₁ + c₂/q` through that measurement so the synthetic
//! encoder and the `experiments quantizer` reproduction share one curve.

/// Hyperbolic model coefficients, calibrated so that
/// `factor(4) = 1` and `factor(30) = 75960 / 282976`.
const C1: f64 = 0.155_882_352_941_176_5;
const C2: f64 = 3.376_470_588_235_294;

/// Paper's reference measurement: I-picture size at quantizer scale 4.
pub const PAPER_I_BITS_Q4: u64 = 282_976;
/// Paper's reference measurement: the same picture at quantizer scale 30.
pub const PAPER_I_BITS_Q30: u64 = 75_960;

/// Relative coded size of a picture at quantizer scale `q`, normalized to
/// `q = 4` (the paper's I-picture scale).
///
/// # Panics
///
/// Panics if `q` is outside the MPEG range `1..=31`.
pub fn size_factor(q: u8) -> f64 {
    assert!((1..=31).contains(&q), "quantizer scale {q} outside 1..=31");
    C1 + C2 / f64::from(q)
}

/// Size ratio when re-encoding from quantizer `from` to quantizer `to`
/// (`> 1` means the picture grows).
pub fn size_ratio(from: u8, to: u8) -> f64 {
    size_factor(to) / size_factor(from)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrated_to_paper_measurement() {
        // §3.1: 282,976 bits at q=4 -> 75,960 bits at q=30.
        assert!((size_factor(4) - 1.0).abs() < 1e-12);
        let predicted = PAPER_I_BITS_Q4 as f64 * size_ratio(4, 30);
        assert!(
            (predicted - PAPER_I_BITS_Q30 as f64).abs() < 1.0,
            "predicted {predicted}, paper says {PAPER_I_BITS_Q30}"
        );
    }

    #[test]
    fn monotone_decreasing_in_q() {
        for q in 1..31u8 {
            assert!(
                size_factor(q) > size_factor(q + 1),
                "coarser quantization must shrink pictures (q={q})"
            );
        }
    }

    #[test]
    fn ratio_composition() {
        let direct = size_ratio(4, 30);
        let via_15 = size_ratio(4, 15) * size_ratio(15, 30);
        assert!((direct - via_15).abs() < 1e-12);
    }

    #[test]
    fn identity_ratio() {
        for q in [1u8, 4, 15, 31] {
            assert!((size_ratio(q, q) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "outside 1..=31")]
    fn rejects_zero() {
        size_factor(0);
    }

    #[test]
    #[should_panic(expected = "outside 1..=31")]
    fn rejects_32() {
        size_factor(32);
    }
}
