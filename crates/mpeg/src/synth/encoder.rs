//! Synthetic VBR encoder: scene script → per-picture coded sizes.
//!
//! This is the stand-in for the paper's real MPEG encoder (see DESIGN.md
//! §2). It produces a deterministic sequence of picture sizes with the
//! statistical structure the paper describes:
//!
//! * I ≫ P ≫ B, with I roughly an order of magnitude larger than B for
//!   typical natural scenes (§1);
//! * I sizes track scene *complexity*; P/B sizes track *motion* (§1:
//!   "Pictures also require more bits to encode when there is a lot of
//!   motion in a scene (P and B pictures in particular)");
//! * scene changes inflate the first P/B pictures after the cut, because
//!   interframe prediction fails across it (§5.1: "the scene changes give
//!   rise to abrupt changes in picture sizes");
//! * sizes scale with macroblock count (resolution) and quantizer scale;
//! * small multiplicative (lognormal) noise models residual content
//!   variation from picture to picture.

use super::quantizer::size_factor;
use super::scene::SceneScript;
use crate::bitstream::writer::{min_picture_bits, QuantizerSet};
use crate::gop::GopPattern;
use crate::picture::{PictureType, Resolution};
use serde::{Deserialize, Serialize};
use smooth_rng::Rng;

/// Reference macroblock count the base sizes are calibrated at
/// (640×480 = 1200 macroblocks, the paper's main resolution).
const REFERENCE_MACROBLOCKS: f64 = 1200.0;

/// Exponent of the prediction-distance scaling law for P/B pictures.
///
/// Motion-compensation residuals grow with the temporal distance to the
/// reference picture, so a pattern with smaller `M` (references closer
/// together) produces smaller P and B pictures for the same content.
/// Sizes scale as `(M / 3)^0.35`, normalized to the paper's main `M = 3`
/// patterns. This keeps the Driving2 re-encode (`M = 2`) near the same
/// ≈3 Mbps maximum smoothed rate the paper reports for all three VGA
/// sequences.
const PREDICTION_DISTANCE_EXPONENT: f64 = 0.35;

/// Exponent of the size-vs-macroblock-count scaling law.
///
/// Coded bits grow *sublinearly* with pixel count at constant quantizer:
/// a smaller picture of the same scene packs more detail per macroblock.
/// The exponent is fitted to the paper's cross-resolution observation
/// (§5.2): the 352×288 Backyard sequence smooths to about **half** the
/// maximum rate of the 640×480 sequences (≈1.5 vs ≈3 Mbps), not the third
/// that linear macroblock scaling would predict.
const RESOLUTION_EXPONENT: f64 = 0.62;

/// Base coded sizes in bits at the reference point: 640×480, the paper's
/// quantizers (4/6/15), complexity 1.0, motion 1.0.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BaseSizes {
    /// I-picture size at the reference point.
    pub i_bits: f64,
    /// P-picture size at the reference point.
    pub p_bits: f64,
    /// B-picture size at the reference point.
    pub b_bits: f64,
}

impl Default for BaseSizes {
    /// Calibrated so the four paper sequences land in the reported ranges
    /// (I ≈ 150–283 kbit, smoothed rates 1–3 Mbps at 640×480; §5.1–5.2).
    fn default() -> Self {
        BaseSizes {
            i_bits: 210_000.0,
            p_bits: 135_000.0,
            b_bits: 32_000.0,
        }
    }
}

/// Scene-change inflation parameters: the multiplicative boost applied to
/// predicted pictures right after a cut, decaying exponentially with
/// distance from it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SceneChangeBoost {
    /// Peak extra factor for P pictures (a P just after a cut is nearly
    /// intra-coded, so it approaches I size).
    pub p_boost: f64,
    /// Peak extra factor for B pictures (one-sided prediction only).
    pub b_boost: f64,
    /// Decay constant in pictures.
    pub decay: f64,
}

impl Default for SceneChangeBoost {
    fn default() -> Self {
        SceneChangeBoost {
            p_boost: 1.3,
            b_boost: 0.9,
            decay: 2.5,
        }
    }
}

/// The synthetic encoder.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EncoderModel {
    /// Picture dimensions (sizes scale with macroblock count).
    pub resolution: Resolution,
    /// Repeating picture-type pattern.
    pub pattern: GopPattern,
    /// Quantizer scales; defaults to the paper's 4/6/15.
    pub quantizers: QuantizerSetSer,
    /// Reference sizes.
    pub base: BaseSizes,
    /// Scene-change behaviour.
    pub scene_change: SceneChangeBoost,
    /// Lognormal σ of per-picture multiplicative noise.
    pub noise_sigma: f64,
}

/// Serializable mirror of [`QuantizerSet`] (kept separate so the bitstream
/// layer stays serde-free).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuantizerSetSer {
    /// I quantizer scale.
    pub i: u8,
    /// P quantizer scale.
    pub p: u8,
    /// B quantizer scale.
    pub b: u8,
}

impl From<QuantizerSet> for QuantizerSetSer {
    fn from(q: QuantizerSet) -> Self {
        QuantizerSetSer {
            i: q.i,
            p: q.p,
            b: q.b,
        }
    }
}

impl From<QuantizerSetSer> for QuantizerSet {
    fn from(q: QuantizerSetSer) -> Self {
        QuantizerSet {
            i: q.i,
            p: q.p,
            b: q.b,
        }
    }
}

impl EncoderModel {
    /// An encoder at `resolution` with `pattern` and all defaults
    /// (paper quantizers, calibrated base sizes).
    pub fn new(resolution: Resolution, pattern: GopPattern) -> Self {
        EncoderModel {
            resolution,
            pattern,
            quantizers: QuantizerSet::PAPER.into(),
            base: BaseSizes::default(),
            scene_change: SceneChangeBoost::default(),
            noise_sigma: 0.07,
        }
    }

    /// Expected (noise-free) size in bits of picture `i` under `script`.
    ///
    /// Exposed separately from [`encode_sizes`](Self::encode_sizes) so
    /// tests and analytical tooling can reason about the deterministic
    /// skeleton.
    pub fn expected_bits(&self, script: &SceneScript, i: usize) -> f64 {
        let t = self.pattern.type_at(i);
        let (complexity, motion) = script.params_at(i);
        let mb_scale = (f64::from(self.resolution.macroblocks()) / REFERENCE_MACROBLOCKS)
            .powf(RESOLUTION_EXPONENT);
        let q: QuantizerSet = self.quantizers.into();
        let (base, q_ref, q_now) = match t {
            PictureType::I => (self.base.i_bits, QuantizerSet::PAPER.i, q.i),
            PictureType::P => (self.base.p_bits, QuantizerSet::PAPER.p, q.p),
            PictureType::B => (self.base.b_bits, QuantizerSet::PAPER.b, q.b),
        };
        let q_scale = size_factor(q_now) / size_factor(q_ref);
        let content = match t {
            // I pictures depend only on spatial complexity.
            PictureType::I => complexity,
            // Predicted pictures: mild complexity dependence, strong
            // motion dependence (normalized to 1.0 at c = m = 1).
            PictureType::P => (0.3 + 0.7 * complexity) * (0.25 + 0.75 * motion),
            PictureType::B => (0.3 + 0.7 * complexity) * (0.18 + 0.82 * motion),
        };
        let prediction_distance = match t {
            PictureType::I => 1.0,
            // References are M apart; B pictures sit between them.
            PictureType::P | PictureType::B => {
                (self.pattern.m() as f64 / 3.0).powf(PREDICTION_DISTANCE_EXPONENT)
            }
        };
        let boost = match (t, script.pictures_since_change(i)) {
            (PictureType::I, _) | (_, None) => 1.0,
            (PictureType::P, Some(d)) => {
                1.0 + self.scene_change.p_boost * (-(d as f64) / self.scene_change.decay).exp()
            }
            (PictureType::B, Some(d)) => {
                1.0 + self.scene_change.b_boost * (-(d as f64) / self.scene_change.decay).exp()
            }
        };
        base * mb_scale * q_scale * content * prediction_distance * boost * script.event_factor(i)
    }

    /// Generates the full size sequence for `script`, with noise, in
    /// display order. Deterministic for a given `rng` state.
    ///
    /// Sizes are floored at the structural minimum a real picture of that
    /// type occupies (headers cannot be elided) and rounded to whole
    /// bytes.
    pub fn encode_sizes(&self, script: &SceneScript, rng: &mut Rng) -> Vec<u64> {
        let slices = usize::from(self.resolution.mb_rows()).min(0xAF);
        (0..script.total_pictures())
            .map(|i| {
                let t = self.pattern.type_at(i);
                let noisy = self.expected_bits(script, i) * rng.lognormal(0.0, self.noise_sigma);
                let bits = (noisy / 8.0).round().max(0.0) as u64 * 8;
                bits.max(min_picture_bits(t, slices))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::scene::{ScenePhase, SizeEvent};

    fn vga_model() -> EncoderModel {
        EncoderModel::new(Resolution::VGA, GopPattern::new(3, 9).unwrap())
    }

    fn busy_script() -> SceneScript {
        SceneScript::steady(90, 1.0, 1.0)
    }

    #[test]
    fn i_much_larger_than_b() {
        // Paper §1: "the size of an I picture is larger than the size of a
        // B picture by an order of magnitude".
        let m = vga_model();
        let s = busy_script();
        let i_bits = m.expected_bits(&s, 0);
        let b_bits = m.expected_bits(&s, 1);
        let p_bits = m.expected_bits(&s, 3);
        assert!(i_bits / b_bits >= 5.0, "I/B = {}", i_bits / b_bits);
        assert!(i_bits > p_bits && p_bits > b_bits);
    }

    #[test]
    fn standard_allocation_guidance_holds() {
        // Paper fn. 9 / [7]: P should get 2-5x the bits of B, I up to 3x P.
        let m = vga_model();
        let s = busy_script();
        let i = m.expected_bits(&s, 0);
        let p = m.expected_bits(&s, 3);
        let b = m.expected_bits(&s, 1);
        let pb = p / b;
        let ip = i / p;
        assert!((2.0..=5.0).contains(&pb), "P/B = {pb}");
        assert!((1.0..=3.0).contains(&ip), "I/P = {ip}");
    }

    #[test]
    fn motion_inflates_p_and_b_not_i() {
        let m = vga_model();
        let low = SceneScript::steady(90, 1.0, 0.1);
        let high = SceneScript::steady(90, 1.0, 1.0);
        assert_eq!(
            m.expected_bits(&low, 0),
            m.expected_bits(&high, 0),
            "I is motion-independent"
        );
        assert!(
            m.expected_bits(&high, 3) > 2.0 * m.expected_bits(&low, 3),
            "P tracks motion"
        );
        assert!(
            m.expected_bits(&high, 1) > 2.0 * m.expected_bits(&low, 1),
            "B tracks motion"
        );
    }

    #[test]
    fn complexity_inflates_i() {
        let m = vga_model();
        let plain = SceneScript::steady(90, 0.7, 0.5);
        let complex = SceneScript::steady(90, 1.2, 0.5);
        let ratio = m.expected_bits(&complex, 0) / m.expected_bits(&plain, 0);
        assert!((ratio - 1.2 / 0.7).abs() < 1e-9);
    }

    #[test]
    fn scene_change_spikes_p_and_decays() {
        let m = vga_model();
        let steady = SceneScript::steady(180, 1.0, 0.8);
        // Put the cut at 85 so it does not land on an I picture
        // (90 % 9 == 0 would).
        let script2 = SceneScript {
            phases: vec![
                ScenePhase::steady(85, 1.0, 0.8),
                ScenePhase::steady(95, 1.0, 0.8),
            ],
            events: vec![],
        };
        // Picture 87 is a P (87 % 9 == 6), two pictures after the cut.
        let boosted = m.expected_bits(&script2, 87);
        let baseline = m.expected_bits(&steady, 87);
        assert!(boosted > baseline * 1.3, "{boosted} vs {baseline}");
        // Far from the cut the boost has decayed away.
        let far = m.expected_bits(&script2, 130);
        let far_base = m.expected_bits(&steady, 130);
        assert!((far / far_base - 1.0).abs() < 0.01);
    }

    #[test]
    fn i_pictures_unaffected_by_scene_change_boost() {
        let m = vga_model();
        let script = SceneScript {
            phases: vec![
                ScenePhase::steady(90, 1.0, 0.8),
                ScenePhase::steady(90, 1.0, 0.8),
            ],
            events: vec![],
        };
        let steady = SceneScript::steady(180, 1.0, 0.8);
        // Picture 90 is an I right at the cut.
        assert_eq!(m.expected_bits(&script, 90), m.expected_bits(&steady, 90));
    }

    #[test]
    fn events_multiply() {
        let m = vga_model();
        let mut s = busy_script();
        s.events.push(SizeEvent {
            picture: 12,
            factor: 2.5,
        });
        let plain = busy_script();
        let ratio = m.expected_bits(&s, 12) / m.expected_bits(&plain, 12);
        assert!((ratio - 2.5).abs() < 1e-9);
    }

    #[test]
    fn resolution_scales_sizes() {
        let vga = vga_model();
        let cif = EncoderModel::new(Resolution::CIF, GopPattern::new(3, 9).unwrap());
        let s = busy_script();
        let ratio = cif.expected_bits(&s, 0) / vga.expected_bits(&s, 0);
        let expected = (396.0f64 / 1200.0).powf(0.62);
        assert!((ratio - expected).abs() < 1e-9);
        // Sublinear: more bits than linear macroblock scaling would give.
        assert!(ratio > 396.0 / 1200.0);
    }

    #[test]
    fn coarser_quantizer_shrinks_output() {
        let mut coarse = vga_model();
        coarse.quantizers = QuantizerSet {
            i: 30,
            p: 30,
            b: 30,
        }
        .into();
        let fine = vga_model();
        let s = busy_script();
        assert!(coarse.expected_bits(&s, 0) < fine.expected_bits(&s, 0) * 0.3);
    }

    #[test]
    fn encode_sizes_deterministic_and_positive() {
        let m = vga_model();
        let s = busy_script();
        let a = m.encode_sizes(&s, &mut Rng::seed_from_u64(5));
        let b = m.encode_sizes(&s, &mut Rng::seed_from_u64(5));
        assert_eq!(a, b);
        assert_eq!(a.len(), 90);
        assert!(a.iter().all(|&x| x > 0 && x % 8 == 0));
    }

    #[test]
    fn noise_is_small_relative_variation() {
        let m = vga_model();
        let s = busy_script();
        let sizes = m.encode_sizes(&s, &mut Rng::seed_from_u64(6));
        // All I pictures in a steady scene should be within ~±30% of the
        // expected value (noise_sigma = 0.07 -> 4 sigma).
        let expected = m.expected_bits(&s, 0);
        for i in (0..90).step_by(9) {
            let rel = sizes[i] as f64 / expected;
            assert!((0.7..1.3).contains(&rel), "picture {i}: rel {rel}");
        }
    }

    #[test]
    fn paper_intro_example_magnitudes() {
        // Paper §1: "Consider an I picture, which is 200,000 bits long,
        // followed by a B picture, which is 20,000 bits long. (These are
        // realistic numbers from some of the video sequences we have
        // encoded at 640x480.)"
        let m = vga_model();
        let s = SceneScript::steady(90, 1.0, 0.35); // moderate motion
        let i_bits = m.expected_bits(&s, 0);
        let b_bits = m.expected_bits(&s, 1);
        assert!((150_000.0..=283_000.0).contains(&i_bits), "I = {i_bits}");
        assert!((10_000.0..=40_000.0).contains(&b_bits), "B = {b_bits}");
    }
}
