//! Scene scripts: the content model driving the synthetic encoder.
//!
//! A video is described as a list of [`ScenePhase`]s — contiguous runs of
//! pictures sharing a scene, each with a complexity level and a (possibly
//! ramping) motion level — plus optional per-picture [`SizeEvent`]s for
//! isolated anomalies (the paper's Tennis sequence has "two isolated
//! instances of large P pictures", §5.1). Phase boundaries are scene
//! changes, which inflate the first P/B pictures after the cut because
//! interframe prediction fails across it.

use serde::{Deserialize, Serialize};

/// A contiguous run of pictures belonging to one scene.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScenePhase {
    /// Number of pictures in this phase.
    pub pictures: usize,
    /// Spatial complexity of the scene, nominal range `(0, ~1.3]`.
    /// 1.0 is a typical busy natural scene; higher means more detail
    /// (larger I pictures).
    pub complexity: f64,
    /// Motion level at the start of the phase, nominal range `[0, ~1.2]`.
    /// 1.0 is fast full-frame motion (larger P/B pictures).
    pub motion_start: f64,
    /// Motion level at the end of the phase; motion ramps linearly in
    /// between (models Tennis's instructor getting up, §5.1).
    pub motion_end: f64,
    /// `true` if this phase continues the previous one without a cut
    /// (e.g. a motion ramp within one scene). Continuous phases do not
    /// trigger the scene-change size inflation.
    pub continuous: bool,
}

impl ScenePhase {
    /// A phase with constant motion, preceded by a cut.
    pub fn steady(pictures: usize, complexity: f64, motion: f64) -> Self {
        ScenePhase {
            pictures,
            complexity,
            motion_start: motion,
            motion_end: motion,
            continuous: false,
        }
    }

    /// A phase whose motion ramps linearly from `motion_start` to
    /// `motion_end`, preceded by a cut.
    pub fn ramp(pictures: usize, complexity: f64, motion_start: f64, motion_end: f64) -> Self {
        ScenePhase {
            pictures,
            complexity,
            motion_start,
            motion_end,
            continuous: false,
        }
    }

    /// Marks this phase as continuing the previous scene (no cut).
    pub fn continuous(mut self) -> Self {
        self.continuous = true;
        self
    }

    /// Motion at relative position `k` of `self.pictures`.
    fn motion_at(&self, k: usize) -> f64 {
        if self.pictures <= 1 {
            return self.motion_start;
        }
        let t = k as f64 / (self.pictures - 1) as f64;
        self.motion_start + (self.motion_end - self.motion_start) * t
    }
}

/// An isolated multiplicative size anomaly for a single picture.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SizeEvent {
    /// Display index of the affected picture.
    pub picture: usize,
    /// Multiplicative factor applied to that picture's size.
    pub factor: f64,
}

/// A complete content description of a video.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SceneScript {
    /// The phases, in order.
    pub phases: Vec<ScenePhase>,
    /// Isolated per-picture anomalies.
    pub events: Vec<SizeEvent>,
}

impl SceneScript {
    /// A script with a single steady phase and no events.
    pub fn steady(pictures: usize, complexity: f64, motion: f64) -> Self {
        SceneScript {
            phases: vec![ScenePhase::steady(pictures, complexity, motion)],
            events: vec![],
        }
    }

    /// Total picture count.
    pub fn total_pictures(&self) -> usize {
        self.phases.iter().map(|p| p.pictures).sum()
    }

    /// `(complexity, motion)` for display index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is beyond the script.
    pub fn params_at(&self, i: usize) -> (f64, f64) {
        let mut offset = 0;
        for phase in &self.phases {
            if i < offset + phase.pictures {
                return (phase.complexity, phase.motion_at(i - offset));
            }
            offset += phase.pictures;
        }
        panic!("picture index {i} beyond script length {offset}");
    }

    /// Display indices at which a scene change (a cut) occurs: the first
    /// picture of every non-[`continuous`](ScenePhase::continuous) phase
    /// after the first.
    pub fn scene_changes(&self) -> Vec<usize> {
        let mut changes = Vec::new();
        let mut offset = 0;
        for (k, phase) in self.phases.iter().enumerate() {
            if k > 0 && !phase.continuous {
                changes.push(offset);
            }
            offset += phase.pictures;
        }
        changes
    }

    /// Distance (in pictures) from `i` back to the most recent scene
    /// change, or `None` if no change at or before `i`.
    pub fn pictures_since_change(&self, i: usize) -> Option<usize> {
        self.scene_changes()
            .iter()
            .rev()
            .find(|&&c| c <= i)
            .map(|&c| i - c)
    }

    /// Combined event factor for picture `i` (product of all matching
    /// events; 1.0 if none).
    pub fn event_factor(&self, i: usize) -> f64 {
        self.events
            .iter()
            .filter(|e| e.picture == i)
            .map(|e| e.factor)
            .product()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_phase() -> SceneScript {
        SceneScript {
            phases: vec![
                ScenePhase::steady(100, 1.0, 0.9),
                ScenePhase::steady(50, 0.8, 0.2),
            ],
            events: vec![SizeEvent {
                picture: 120,
                factor: 2.5,
            }],
        }
    }

    #[test]
    fn totals_and_params() {
        let s = two_phase();
        assert_eq!(s.total_pictures(), 150);
        assert_eq!(s.params_at(0), (1.0, 0.9));
        assert_eq!(s.params_at(99), (1.0, 0.9));
        assert_eq!(s.params_at(100), (0.8, 0.2));
        assert_eq!(s.params_at(149), (0.8, 0.2));
    }

    #[test]
    #[should_panic(expected = "beyond script")]
    fn params_out_of_range() {
        two_phase().params_at(150);
    }

    #[test]
    fn scene_changes_at_phase_boundaries() {
        let s = two_phase();
        assert_eq!(s.scene_changes(), vec![100]);
        let three = SceneScript {
            phases: vec![
                ScenePhase::steady(10, 1.0, 1.0),
                ScenePhase::steady(10, 1.0, 1.0),
                ScenePhase::steady(10, 1.0, 1.0),
            ],
            events: vec![],
        };
        assert_eq!(three.scene_changes(), vec![10, 20]);
        assert_eq!(SceneScript::steady(30, 1.0, 0.5).scene_changes(), vec![]);
    }

    #[test]
    fn pictures_since_change() {
        let s = two_phase();
        assert_eq!(s.pictures_since_change(50), None);
        assert_eq!(s.pictures_since_change(100), Some(0));
        assert_eq!(s.pictures_since_change(103), Some(3));
    }

    #[test]
    fn motion_ramp_is_linear() {
        let phase = ScenePhase::ramp(11, 1.0, 0.0, 1.0);
        assert!((phase.motion_at(0) - 0.0).abs() < 1e-12);
        assert!((phase.motion_at(5) - 0.5).abs() < 1e-12);
        assert!((phase.motion_at(10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_picture_phase_motion() {
        let phase = ScenePhase::ramp(1, 1.0, 0.3, 0.9);
        assert_eq!(phase.motion_at(0), 0.3);
    }

    #[test]
    fn continuous_phases_are_not_cuts() {
        let s = SceneScript {
            phases: vec![
                ScenePhase::steady(50, 1.0, 0.2),
                ScenePhase::ramp(50, 1.0, 0.2, 0.9).continuous(),
                ScenePhase::steady(50, 0.8, 0.5),
            ],
            events: vec![],
        };
        // Only the third phase begins with a cut.
        assert_eq!(s.scene_changes(), vec![100]);
        // Motion still ramps through the continuous phase.
        let (_, m_mid) = s.params_at(75);
        assert!(m_mid > 0.2 && m_mid < 0.9);
    }

    #[test]
    fn event_factors_compose() {
        let mut s = two_phase();
        s.events.push(SizeEvent {
            picture: 120,
            factor: 2.0,
        });
        assert_eq!(s.event_factor(120), 5.0);
        assert_eq!(s.event_factor(0), 1.0);
    }

    #[test]
    fn ramp_script_params() {
        let s = SceneScript {
            phases: vec![ScenePhase::ramp(21, 1.0, 0.2, 1.0)],
            events: vec![],
        };
        let (_, m0) = s.params_at(0);
        let (_, m10) = s.params_at(10);
        let (_, m20) = s.params_at(20);
        assert!(m0 < m10 && m10 < m20);
        assert!((m10 - 0.6).abs() < 1e-12);
    }
}
