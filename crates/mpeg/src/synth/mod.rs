//! Synthetic VBR encoder model.
//!
//! Substitutes for the paper's real MPEG encoder (DESIGN.md §2): a scene
//! script (phases of complexity/motion plus isolated events) drives a
//! calibrated size model to produce per-picture bit counts with the same
//! dynamics the paper reports for its four sequences.

pub mod encoder;
pub mod quantizer;
pub mod scene;

pub use encoder::{BaseSizes, EncoderModel, QuantizerSetSer, SceneChangeBoost};
pub use quantizer::{size_factor, size_ratio, PAPER_I_BITS_Q30, PAPER_I_BITS_Q4};
pub use scene::{ScenePhase, SceneScript, SizeEvent};
