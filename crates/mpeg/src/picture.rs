//! Picture types and spatial geometry.
//!
//! MPEG distinguishes three kinds of encoded pictures (paper §1–2):
//!
//! * **I** (intracoded) — self-contained, decodable without reference to any
//!   other picture; by far the largest (an order of magnitude bigger than B
//!   for typical natural scenes).
//! * **P** (predicted) — motion-compensated from the preceding I or P
//!   picture.
//! * **B** (bidirectional) — predicted from the preceding *and* following
//!   I-or-P picture; the smallest.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The coding type of an MPEG picture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PictureType {
    /// Intracoded picture: no interframe prediction.
    I,
    /// Predicted picture: forward prediction from the previous reference.
    P,
    /// Bidirectional picture: forward, backward, or interpolated prediction.
    B,
}

impl PictureType {
    /// `true` for picture types that other pictures may predict from
    /// (I and P). B pictures are never used as references in MPEG-1.
    #[inline]
    pub fn is_reference(self) -> bool {
        !matches!(self, PictureType::B)
    }

    /// The 3-bit `picture_coding_type` value carried in the MPEG-1 picture
    /// header (ISO 11172-2 table: 1 = I, 2 = P, 3 = B).
    #[inline]
    pub fn coding_type_code(self) -> u8 {
        match self {
            PictureType::I => 1,
            PictureType::P => 2,
            PictureType::B => 3,
        }
    }

    /// Inverse of [`coding_type_code`](Self::coding_type_code).
    pub fn from_coding_type_code(code: u8) -> Option<Self> {
        match code {
            1 => Some(PictureType::I),
            2 => Some(PictureType::P),
            3 => Some(PictureType::B),
            _ => None,
        }
    }

    /// Single-letter representation, as used in pattern strings like
    /// `"IBBPBBPBB"`.
    #[inline]
    pub fn as_char(self) -> char {
        match self {
            PictureType::I => 'I',
            PictureType::P => 'P',
            PictureType::B => 'B',
        }
    }

    /// Parses a single pattern letter (case-insensitive).
    pub fn from_char(c: char) -> Option<Self> {
        match c.to_ascii_uppercase() {
            'I' => Some(PictureType::I),
            'P' => Some(PictureType::P),
            'B' => Some(PictureType::B),
            _ => None,
        }
    }
}

impl fmt::Display for PictureType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_char())
    }
}

/// Spatial resolution of a video sequence, in pixels.
///
/// MPEG operates on 16×16-pixel macroblocks; dimensions are rounded up to
/// whole macroblocks when counting them (the standard pads the right/bottom
/// edge).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Resolution {
    /// Horizontal size in pixels.
    pub width: u16,
    /// Vertical size in pixels.
    pub height: u16,
}

impl Resolution {
    /// 640×480 — the resolution of Driving1, Driving2, and Tennis in the
    /// paper (§5.1).
    pub const VGA: Resolution = Resolution {
        width: 640,
        height: 480,
    };

    /// 352×288 (CIF) — the resolution of the Backyard sequence (§5.1).
    pub const CIF: Resolution = Resolution {
        width: 352,
        height: 288,
    };

    /// 352×240 (SIF) — the MPEG-1 constrained-parameters target
    /// ("relatively low spatial resolution, e.g. 350×250", paper fn. 1).
    pub const SIF: Resolution = Resolution {
        width: 352,
        height: 240,
    };

    /// Creates a resolution.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or exceeds the 12-bit field of
    /// the MPEG-1 sequence header (4095).
    pub fn new(width: u16, height: u16) -> Self {
        assert!(
            (1..=4095).contains(&width) && (1..=4095).contains(&height),
            "resolution {width}x{height} outside MPEG-1 12-bit range"
        );
        Resolution { width, height }
    }

    /// Macroblock columns (width rounded up to a multiple of 16).
    #[inline]
    pub fn mb_cols(self) -> u16 {
        self.width.div_ceil(16)
    }

    /// Macroblock rows (height rounded up to a multiple of 16).
    #[inline]
    pub fn mb_rows(self) -> u16 {
        self.height.div_ceil(16)
    }

    /// Total macroblocks per picture.
    #[inline]
    pub fn macroblocks(self) -> u32 {
        u32::from(self.mb_cols()) * u32::from(self.mb_rows())
    }

    /// Uncompressed size of one picture in bits at 24 bits/pixel
    /// (the paper's §2 example: 640×480 ≈ 921 kilobytes ≈ 7.4 Mbit).
    #[inline]
    pub fn uncompressed_bits(self) -> u64 {
        u64::from(self.width) * u64::from(self.height) * 24
    }
}

impl fmt::Display for Resolution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.width, self.height)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_types() {
        assert!(PictureType::I.is_reference());
        assert!(PictureType::P.is_reference());
        assert!(!PictureType::B.is_reference());
    }

    #[test]
    fn coding_type_roundtrip() {
        for t in [PictureType::I, PictureType::P, PictureType::B] {
            assert_eq!(
                PictureType::from_coding_type_code(t.coding_type_code()),
                Some(t)
            );
        }
        assert_eq!(PictureType::from_coding_type_code(0), None);
        assert_eq!(PictureType::from_coding_type_code(4), None);
    }

    #[test]
    fn char_roundtrip_case_insensitive() {
        assert_eq!(PictureType::from_char('i'), Some(PictureType::I));
        assert_eq!(PictureType::from_char('p'), Some(PictureType::P));
        assert_eq!(PictureType::from_char('B'), Some(PictureType::B));
        assert_eq!(PictureType::from_char('x'), None);
        for t in [PictureType::I, PictureType::P, PictureType::B] {
            assert_eq!(PictureType::from_char(t.as_char()), Some(t));
        }
    }

    #[test]
    fn display_matches_char() {
        assert_eq!(PictureType::I.to_string(), "I");
        assert_eq!(
            format!("{}{}{}", PictureType::I, PictureType::B, PictureType::P),
            "IBP"
        );
    }

    #[test]
    fn vga_macroblock_grid() {
        // Paper §2: "consider a picture of 640x480 pixels. There are 40x30
        // macroblocks in the picture."
        assert_eq!(Resolution::VGA.mb_cols(), 40);
        assert_eq!(Resolution::VGA.mb_rows(), 30);
        assert_eq!(Resolution::VGA.macroblocks(), 1200);
    }

    #[test]
    fn cif_macroblock_grid() {
        assert_eq!(Resolution::CIF.mb_cols(), 22);
        assert_eq!(Resolution::CIF.mb_rows(), 18);
        assert_eq!(Resolution::CIF.macroblocks(), 396);
    }

    #[test]
    fn non_multiple_of_16_rounds_up() {
        let r = Resolution::new(350, 250);
        assert_eq!(r.mb_cols(), 22); // ceil(350/16) = 22
        assert_eq!(r.mb_rows(), 16); // ceil(250/16) = 16
    }

    #[test]
    fn uncompressed_size_matches_paper_example() {
        // 640*480*24 bits = 921,600 bytes ("about 921 kilobytes", §2) and
        // ~221 Mbps at 30 pictures/s.
        assert_eq!(Resolution::VGA.uncompressed_bits(), 921_600 * 8);
        let mbps = Resolution::VGA.uncompressed_bits() as f64 * 30.0 / 1e6;
        assert!((mbps - 221.0).abs() < 1.0, "{mbps}");
    }

    #[test]
    #[should_panic(expected = "outside MPEG-1 12-bit range")]
    fn zero_width_rejected() {
        Resolution::new(0, 480);
    }
}
