//! # smooth-mpeg
//!
//! MPEG video model for the `mpeg-smooth` workspace — the substrate
//! beneath the SIGCOMM '94 lossless-smoothing algorithm (Lam, Chow & Yau).
//!
//! This crate knows nothing about smoothing; it models the *video side*:
//!
//! * [`PictureType`] / [`Resolution`] — picture kinds and geometry;
//! * [`GopPattern`] — the repeating `(M, N)` pattern of I/P/B pictures
//!   whose existence the smoothing algorithm exploits for size estimation;
//! * [`transmission_order`] — display ↔ coded order reordering forced by
//!   B-picture dependencies;
//! * [`bitstream`] — a bit-exact writer and resynchronizing parser for the
//!   MPEG-1 stream structure (sequence/GOP/picture/slice headers, start
//!   codes), with the macroblock layer as sized opaque payload;
//! * [`synth`] — a calibrated synthetic encoder turning scene scripts into
//!   per-picture bit counts (the stand-in for the paper's unpublished
//!   encoder statistics; see DESIGN.md).
//!
//! ## Example
//!
//! ```
//! use smooth_mpeg::{GopPattern, Resolution, synth::{EncoderModel, SceneScript}};
//! use smooth_rng::Rng;
//!
//! let pattern = GopPattern::new(3, 9).unwrap(); // IBBPBBPBB
//! let encoder = EncoderModel::new(Resolution::VGA, pattern);
//! let script = SceneScript::steady(90, 1.0, 0.8);
//! let sizes = encoder.encode_sizes(&script, &mut Rng::seed_from_u64(1));
//! assert_eq!(sizes.len(), 90);
//! // The I picture dwarfs the B picture that follows it:
//! assert!(sizes[0] > 4 * sizes[1]);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adaptive;
pub mod bitstream;
pub mod gop;
pub mod picture;
pub mod reorder;
pub mod synth;

pub use adaptive::{PatternSchedule, PatternSegment, ScheduleError};
pub use bitstream::{parse_stream, write_stream, QuantizerSet, SequenceHeader, StreamSpec};
pub use gop::{GopPattern, PatternError};
pub use picture::{PictureType, Resolution};
pub use reorder::{display_to_transmission, max_reorder_distance, transmission_order};
