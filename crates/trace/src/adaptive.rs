//! Traces with time-varying GOP patterns.
//!
//! Models the encoder behaviour the paper notes in §4.4: "An MPEG encoder
//! may change the values of M and N adaptively as the scene in a video
//! sequence changes." An [`AdaptiveVideo`] carries a
//! [`PatternSchedule`] instead of a single pattern; the smoothing side
//! (`smooth_core::adaptive`) consumes it with a same-type size estimator.

use crate::trace::TraceError;
use serde::{Deserialize, Serialize};
use smooth_mpeg::synth::{EncoderModel, SceneScript};
use smooth_mpeg::{GopPattern, PatternSchedule, PatternSegment, PictureType, Resolution};
use smooth_rng::Rng;

/// A VBR trace whose GOP pattern changes over time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveVideo {
    /// Human-readable name.
    pub name: String,
    /// The pattern schedule (last segment repeats).
    pub schedule: PatternSchedule,
    /// Spatial resolution.
    pub resolution: Resolution,
    /// Picture rate (pictures/second).
    pub fps: f64,
    /// Per-picture coded sizes in bits, display order.
    pub sizes: Vec<u64>,
}

impl AdaptiveVideo {
    /// Validates the trace (non-empty, positive sizes, sane rate).
    pub fn validate(&self) -> Result<(), TraceError> {
        if !(self.fps.is_finite() && self.fps > 0.0) {
            return Err(TraceError::BadRate);
        }
        if self.sizes.is_empty() {
            return Err(TraceError::Empty);
        }
        if let Some(index) = self.sizes.iter().position(|&s| s == 0) {
            return Err(TraceError::ZeroSize { index });
        }
        Ok(())
    }

    /// Number of pictures.
    pub fn len(&self) -> usize {
        self.sizes.len()
    }

    /// `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.sizes.is_empty()
    }

    /// Picture period τ.
    pub fn tau(&self) -> f64 {
        1.0 / self.fps
    }

    /// Picture type at display index `i`.
    pub fn type_of(&self, i: usize) -> PictureType {
        self.schedule.type_at(i)
    }
}

/// The driving video re-encoded by an *adaptive* encoder: the fast
/// driving scenes use a short-GOP `(2, 6)` pattern (frequent reference
/// pictures cope better with rapid motion), the low-motion close-up uses
/// the efficient `(3, 9)` pattern. Segment lengths are whole numbers of
/// GOPs, as a real encoder would switch.
pub fn adaptive_driving() -> AdaptiveVideo {
    adaptive_driving_with(300, 0xADA)
}

/// [`adaptive_driving`] with custom length and seed. The pattern switches
/// at ~35% and ~65% of the sequence (snapped to GOP boundaries).
pub fn adaptive_driving_with(pictures: usize, seed: u64) -> AdaptiveVideo {
    let fast = GopPattern::new(2, 6).expect("static");
    let slow = GopPattern::new(3, 9).expect("static");
    // Segment lengths: multiples of the segment's own N.
    let len1 = ((pictures as f64 * 0.35 / 6.0).round() as usize).max(1) * 6;
    let len2 = ((pictures as f64 * 0.30 / 9.0).round() as usize).max(1) * 9;
    let len3 = pictures.saturating_sub(len1 + len2).max(1);
    let schedule = PatternSchedule::new(vec![
        PatternSegment {
            pictures: len1,
            pattern: fast,
        },
        PatternSegment {
            pictures: len2,
            pattern: slow,
        },
        PatternSegment {
            pictures: len3,
            pattern: fast,
        },
    ])
    .expect("segment lengths are GOP-aligned by construction");

    // Per-segment content parameters mirror the driving script: fast
    // scenes are complex and high-motion, the close-up is neither.
    let mut rng = Rng::seed_from_u64(seed);
    let mut sizes = Vec::with_capacity(pictures);
    for (seg_idx, (len, pattern, complexity, motion)) in [
        (len1, fast, 1.10, 1.00),
        (len2, slow, 0.80, 0.22),
        (len3, fast, 1.10, 1.00),
    ]
    .into_iter()
    .enumerate()
    {
        let model = EncoderModel::new(Resolution::VGA, pattern);
        let script = SceneScript::steady(len, complexity, motion);
        let mut seg_sizes = model.encode_sizes(&script, &mut rng);
        // Scene-change inflation across the segment boundary: the first
        // predicted pictures after the cut predict poorly.
        if seg_idx > 0 {
            let mut boosted = 0;
            for (off, s) in seg_sizes.iter_mut().enumerate() {
                if pattern.type_at(off) != PictureType::I {
                    *s = (*s as f64 * if boosted == 0 { 1.8 } else { 1.4 }) as u64;
                    boosted += 1;
                    if boosted == 2 {
                        break;
                    }
                }
            }
        }
        sizes.extend(seg_sizes);
    }

    let video = AdaptiveVideo {
        name: "Driving-adaptive".into(),
        schedule,
        resolution: Resolution::VGA,
        fps: 30.0,
        sizes,
    };
    video.validate().expect("valid by construction");
    video
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_declared_structure() {
        let v = adaptive_driving();
        assert_eq!(v.len(), 300);
        assert_eq!(v.schedule.switch_points().len(), 2);
        // Switch points land on I pictures of the new pattern.
        for &sw in &v.schedule.switch_points() {
            assert_eq!(
                v.type_of(sw),
                PictureType::I,
                "switch at {sw} must start a GOP"
            );
        }
        v.validate().unwrap();
    }

    #[test]
    fn pattern_actually_changes() {
        let v = adaptive_driving();
        let switches = v.schedule.switch_points();
        assert_eq!(v.schedule.n_at(0), 6);
        assert_eq!(v.schedule.n_at(switches[0]), 9);
        assert_eq!(v.schedule.n_at(switches[1]), 6);
    }

    #[test]
    fn close_up_segment_is_cheaper() {
        let v = adaptive_driving();
        let switches = v.schedule.switch_points();
        let mean = |range: std::ops::Range<usize>| {
            let s: u64 = v.sizes[range.clone()].iter().sum();
            s as f64 / range.len() as f64
        };
        let fast1 = mean(0..switches[0]);
        let closeup = mean(switches[0] + 3..switches[1]); // skip boosted pictures
        assert!(fast1 > 1.5 * closeup, "fast {fast1} vs close-up {closeup}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(adaptive_driving(), adaptive_driving());
        assert_ne!(
            adaptive_driving_with(300, 1).sizes,
            adaptive_driving_with(300, 2).sizes
        );
    }

    #[test]
    fn custom_lengths() {
        for n in [60, 150, 299] {
            let v = adaptive_driving_with(n, 9);
            assert_eq!(v.len(), n);
            v.validate().unwrap();
        }
    }

    #[test]
    fn validation_catches_problems() {
        let mut v = adaptive_driving_with(60, 1);
        v.sizes[5] = 0;
        assert_eq!(v.validate(), Err(TraceError::ZeroSize { index: 5 }));
        v.sizes.clear();
        assert_eq!(v.validate(), Err(TraceError::Empty));
    }
}
