//! # smooth-trace
//!
//! VBR video traces for the `mpeg-smooth` workspace: the [`VideoTrace`]
//! interchange type, synthetic regenerations of the paper's four MPEG
//! sequences ([`sequences`]), descriptive statistics ([`stats`]), and
//! JSON/CSV persistence ([`io`]).
//!
//! ## Example
//!
//! ```
//! use smooth_trace::sequences::driving1;
//!
//! let trace = driving1();
//! assert_eq!(trace.pattern.to_string(), "IBBPBBPBB");
//! // The burstiness the smoothing algorithm exists to remove:
//! assert!(trace.peak_picture_rate_bps() > 3.0 * trace.mean_rate_bps());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adaptive;
pub mod io;
pub mod sequences;
pub mod stats;
pub mod trace;

pub use adaptive::{adaptive_driving, adaptive_driving_with, AdaptiveVideo};
pub use io::{from_csv, load_csv, load_json, save_csv, save_json, to_csv, TraceIoError};
pub use sequences::{backyard, driving1, driving2, generate, paper_sequences, tennis, SequenceId};
pub use stats::{analyze, autocorrelation, TraceStats, TypeStats};
pub use trace::{TraceError, VideoTrace};
