//! The four MPEG video sequences of the paper's evaluation (§5.1),
//! regenerated synthetically.
//!
//! The authors' per-picture statistics were never published; each builder
//! here reconstructs a sequence from the paper's prose description via the
//! calibrated encoder model in [`smooth_mpeg::synth`] (see DESIGN.md §2
//! for the substitution argument). All sequences run at 30 pictures/s.
//!
//! | Sequence | Pattern (M, N) | Resolution | Content |
//! |----------|----------------|------------|---------|
//! | Driving1 | (3, 9)  | 640×480 | fast car → driver close-up → fast car |
//! | Driving2 | (2, 6)  | 640×480 | same video, different coding pattern |
//! | Tennis   | (3, 9)  | 640×480 | no cuts; motion ramps as instructor rises; 2 isolated large Ps |
//! | Backyard | (3, 12) | 352×288 | detailed backgrounds, mild motion, two cuts |

use crate::trace::VideoTrace;
use smooth_mpeg::synth::{EncoderModel, ScenePhase, SceneScript, SizeEvent};
use smooth_mpeg::{GopPattern, QuantizerSet, Resolution};
use smooth_rng::Rng;

/// Default length of the VGA sequences, in pictures (10 s at 30 pic/s —
/// the span of the paper's Figures 3–5).
pub const DEFAULT_VGA_PICTURES: usize = 300;

/// Default length of Backyard (12 s; N = 12 needs a little longer to show
/// the same number of patterns).
pub const DEFAULT_BACKYARD_PICTURES: usize = 360;

/// Splits `total` into parts proportional to `fractions`; the last part
/// absorbs rounding remainder.
fn split(total: usize, fractions: &[f64]) -> Vec<usize> {
    debug_assert!((fractions.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    let mut parts: Vec<usize> = fractions
        .iter()
        .map(|f| (f * total as f64).round() as usize)
        .collect();
    let assigned: usize = parts.iter().take(parts.len() - 1).sum();
    if let Some(last) = parts.last_mut() {
        *last = total - assigned;
    }
    parts
}

/// The driving video: a car moving very fast in the countryside, a cut to
/// a close-up of the driver, and a cut back (two scene changes). Shared
/// content model for Driving1 and Driving2.
fn driving_script(pictures: usize) -> SceneScript {
    let parts = split(pictures, &[0.35, 0.30, 0.35]);
    SceneScript {
        phases: vec![
            // Fast pan across a detailed countryside: high complexity and
            // near-maximal motion.
            ScenePhase::steady(parts[0], 1.10, 1.00),
            // Close-up of the driver: simpler image, little motion -> the
            // paper notes P and B pictures shrink sharply here.
            ScenePhase::steady(parts[1], 0.80, 0.22),
            // Back to the car.
            ScenePhase::steady(parts[2], 1.10, 1.00),
        ],
        events: vec![],
    }
}

fn build(
    name: &str,
    resolution: Resolution,
    pattern: GopPattern,
    quantizers: Option<QuantizerSet>,
    script: &SceneScript,
    seed: u64,
) -> VideoTrace {
    let mut model = EncoderModel::new(resolution, pattern);
    if let Some(q) = quantizers {
        model.quantizers = q.into();
    }
    let sizes = model.encode_sizes(script, &mut Rng::seed_from_u64(seed));
    VideoTrace::new(name, pattern, resolution, 30.0, sizes)
        .expect("synthetic sequences are valid by construction")
}

/// Driving1: the driving video at `N = 9, M = 3` (pattern `IBBPBBPBB`),
/// 640×480.
pub fn driving1() -> VideoTrace {
    driving1_with(DEFAULT_VGA_PICTURES)
}

/// Driving1 with a custom length.
pub fn driving1_with(pictures: usize) -> VideoTrace {
    build(
        "Driving1",
        Resolution::VGA,
        GopPattern::new(3, 9).expect("static pattern"),
        None,
        &driving_script(pictures),
        0xD1,
    )
}

/// Driving2: the *same video* encoded with `N = 6, M = 2` (pattern
/// `IBPBPB`), 640×480 — the paper re-encodes Driving to study pattern
/// dependence.
pub fn driving2() -> VideoTrace {
    driving2_with(DEFAULT_VGA_PICTURES)
}

/// Driving2 with a custom length.
pub fn driving2_with(pictures: usize) -> VideoTrace {
    build(
        "Driving2",
        Resolution::VGA,
        GopPattern::new(2, 6).expect("static pattern"),
        None,
        &driving_script(pictures),
        0xD1, // same seed as Driving1: same underlying video content
    )
}

/// Tennis: an instructor lectures sitting down, then gets up and moves
/// away. No scene change; motion (and with it P/B sizes) grows gradually.
/// Two isolated large P pictures occur in the first half. `N = 9, M = 3`,
/// 640×480.
pub fn tennis() -> VideoTrace {
    tennis_with(DEFAULT_VGA_PICTURES)
}

/// The tennis content model: no cuts, a gradual motion ramp as the
/// instructor rises, and two isolated large-P events in the first half
/// (snapped onto P slots of the (3, 9) pattern).
fn tennis_script(pictures: usize) -> SceneScript {
    let parts = split(pictures, &[0.5, 0.5]);
    // Snap an index to the nearest P slot of the (3, 9) pattern at or
    // after it (indices ≡ 3 or 6 mod 9).
    let snap_to_p = |i: usize| -> usize {
        (i..i + 9)
            .find(|j| j % 9 == 3 || j % 9 == 6)
            .expect("a P occurs every <= 6 pictures")
    };
    SceneScript {
        phases: vec![
            // Sitting and lecturing: detailed court background (complex),
            // very little motion, creeping up slightly.
            ScenePhase::ramp(parts[0], 1.30, 0.10, 0.22),
            // He gets up and moves away: motion ramps up steadily.
            // Continuous: same scene, no cut.
            ScenePhase::ramp(parts[1], 1.30, 0.22, 0.95).continuous(),
        ],
        events: vec![
            SizeEvent {
                picture: snap_to_p(pictures / 5),
                factor: 2.3,
            },
            SizeEvent {
                picture: snap_to_p(pictures * 7 / 20),
                factor: 2.1,
            },
        ],
    }
}

/// Tennis with a custom length.
pub fn tennis_with(pictures: usize) -> VideoTrace {
    build(
        "Tennis",
        Resolution::VGA,
        GopPattern::new(3, 9).expect("static pattern"),
        None,
        &tennis_script(pictures),
        0x7E,
    )
}

/// Backyard: a person in a backyard, a cut to two other people elsewhere
/// in the yard, and a cut back. Complex, detailed backgrounds; movement
/// but no rapid motion. `N = 12, M = 3`, 352×288.
///
/// Encoded with finer quantizers (3/4/8) than the VGA sequences — at CIF
/// resolution the bit budget allows it — which places its maximum
/// smoothed rate near the paper's reported ≈1.5 Mbps.
pub fn backyard() -> VideoTrace {
    backyard_with(DEFAULT_BACKYARD_PICTURES)
}

/// The backyard content model: detailed backgrounds, mild motion, and
/// two cuts (person -> two people elsewhere -> back).
fn backyard_script(pictures: usize) -> SceneScript {
    let parts = split(pictures, &[0.36, 0.31, 0.33]);
    SceneScript {
        phases: vec![
            ScenePhase::steady(parts[0], 1.25, 0.45),
            ScenePhase::steady(parts[1], 1.30, 0.50),
            ScenePhase::steady(parts[2], 1.25, 0.45),
        ],
        events: vec![],
    }
}

/// The finer quantizers Backyard is encoded with (see [`backyard`]).
fn backyard_quantizers() -> QuantizerSet {
    QuantizerSet { i: 3, p: 4, b: 8 }
}

/// Backyard with a custom length.
pub fn backyard_with(pictures: usize) -> VideoTrace {
    build(
        "Backyard",
        Resolution::CIF,
        GopPattern::new(3, 12).expect("static pattern"),
        Some(backyard_quantizers()),
        &backyard_script(pictures),
        0xBA,
    )
}

/// All four paper sequences at their default lengths, in the paper's
/// order.
pub fn paper_sequences() -> Vec<VideoTrace> {
    vec![driving1(), driving2(), tennis(), backyard()]
}

/// Identifies one of the four paper sequences.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SequenceId {
    /// The driving video at `(M, N) = (3, 9)`.
    Driving1,
    /// The driving video at `(M, N) = (2, 6)`.
    Driving2,
    /// The tennis-instructor video.
    Tennis,
    /// The backyard video at CIF resolution.
    Backyard,
}

impl SequenceId {
    /// All four, in the paper's order.
    pub const ALL: [SequenceId; 4] = [
        SequenceId::Driving1,
        SequenceId::Driving2,
        SequenceId::Tennis,
        SequenceId::Backyard,
    ];
}

/// Generates a *variant* of a paper sequence with a custom length and
/// encoder-noise seed: the same scene script and calibration, but
/// statistically independent picture-level jitter. This is how the
/// multiplexing experiments build ensembles of "different recordings of
/// similar content" feeding one switch.
pub fn generate(id: SequenceId, pictures: usize, seed: u64) -> VideoTrace {
    match id {
        SequenceId::Driving1 => build(
            "Driving1",
            Resolution::VGA,
            GopPattern::new(3, 9).expect("static pattern"),
            None,
            &driving_script(pictures),
            seed,
        ),
        SequenceId::Driving2 => build(
            "Driving2",
            Resolution::VGA,
            GopPattern::new(2, 6).expect("static pattern"),
            None,
            &driving_script(pictures),
            seed,
        ),
        SequenceId::Tennis => build(
            "Tennis",
            Resolution::VGA,
            GopPattern::new(3, 9).expect("static pattern"),
            None,
            &tennis_script(pictures),
            seed,
        ),
        SequenceId::Backyard => build(
            "Backyard",
            Resolution::CIF,
            GopPattern::new(3, 12).expect("static pattern"),
            Some(backyard_quantizers()),
            &backyard_script(pictures),
            seed,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smooth_mpeg::PictureType;

    fn mean(xs: &[u64]) -> f64 {
        xs.iter().sum::<u64>() as f64 / xs.len() as f64
    }

    #[test]
    fn all_sequences_are_valid_and_deterministic() {
        for t in paper_sequences() {
            t.validate().unwrap();
            assert!((t.fps - 30.0).abs() < 1e-12);
        }
        assert_eq!(driving1(), driving1());
        assert_eq!(tennis().sizes, tennis().sizes);
    }

    #[test]
    fn driving1_matches_paper_description() {
        let t = driving1();
        assert_eq!(t.pattern.to_string(), "IBBPBBPBB");
        assert_eq!(t.resolution, Resolution::VGA);
        assert_eq!(t.len(), 300);

        // I sizes in the 150k-290k range (Figure 3 shows ~150k-250k, and
        // §3.1 measured a 282,976-bit I picture).
        let i_sizes = t.sizes_of_type(PictureType::I);
        for &s in &i_sizes {
            assert!((120_000..300_000).contains(&s), "I size {s}");
        }

        // I is roughly an order of magnitude above B overall (§1).
        let b_sizes = t.sizes_of_type(PictureType::B);
        let ratio = mean(&i_sizes) / mean(&b_sizes);
        assert!(ratio > 5.0, "I/B mean ratio {ratio}");

        // Smoothed (pattern) rates span roughly 1-3 Mbps (§5.2).
        let rates = t.pattern_rates_bps();
        let max = rates.iter().cloned().fold(0.0, f64::max);
        let min = rates.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!((2.0e6..3.4e6).contains(&max), "max smoothed rate {max}");
        assert!((0.8e6..1.6e6).contains(&min), "min smoothed rate {min}");
        // "(smoothed) output rates from one scene to the next differ by
        // about a factor of 3 in the worst case" (§1) - allow 1.5-3.5.
        let factor = max / min;
        assert!((1.5..3.5).contains(&factor), "scene rate factor {factor}");
    }

    #[test]
    fn driving1_close_up_shrinks_p_and_b() {
        let t = driving1();
        // Scene 2 occupies pictures 105..195.
        let p_driving: Vec<u64> = (0..105)
            .filter(|i| t.type_of(*i) == PictureType::P)
            .map(|i| t.sizes[i])
            .collect();
        let p_closeup: Vec<u64> = (110..190)
            .filter(|i| t.type_of(*i) == PictureType::P)
            .map(|i| t.sizes[i])
            .collect();
        assert!(
            mean(&p_driving) > 2.0 * mean(&p_closeup),
            "P pictures in the driving scene must dwarf close-up Ps: {} vs {}",
            mean(&p_driving),
            mean(&p_closeup)
        );
        let b_driving: Vec<u64> = (0..105)
            .filter(|i| t.type_of(*i) == PictureType::B)
            .map(|i| t.sizes[i])
            .collect();
        let b_closeup: Vec<u64> = (110..190)
            .filter(|i| t.type_of(*i) == PictureType::B)
            .map(|i| t.sizes[i])
            .collect();
        assert!(mean(&b_driving) > 2.0 * mean(&b_closeup));
    }

    #[test]
    fn driving2_same_video_different_pattern() {
        let t = driving2();
        assert_eq!(t.pattern.to_string(), "IBPBPB");
        assert_eq!(t.len(), 300);
        // Same content: long-run mean rates of the two encodes are within
        // 35% of each other (different pattern mixes shift the average).
        let r1 = driving1().mean_rate_bps();
        let r2 = t.mean_rate_bps();
        assert!(
            (r1 / r2 - 1.0).abs() < 0.35,
            "Driving1 {r1} vs Driving2 {r2}"
        );
    }

    #[test]
    fn tennis_matches_paper_description() {
        let t = tennis();
        assert_eq!(t.pattern.to_string(), "IBBPBBPBB");
        assert_eq!(t.len(), 300);

        // No scene change: I sizes stay in a narrow band throughout.
        let i_sizes = t.sizes_of_type(PictureType::I);
        let i_min = *i_sizes.iter().min().unwrap() as f64;
        let i_max = *i_sizes.iter().max().unwrap() as f64;
        assert!(
            i_max / i_min < 1.6,
            "I sizes should be steady: {i_min}..{i_max}"
        );

        // Gradual motion growth: mean P size in the last third well above
        // the first third.
        let p_first: Vec<u64> = (0..100)
            .filter(|i| t.type_of(*i) == PictureType::P)
            .map(|i| t.sizes[i])
            .collect();
        let p_last: Vec<u64> = (200..300)
            .filter(|i| t.type_of(*i) == PictureType::P)
            .map(|i| t.sizes[i])
            .collect();
        assert!(mean(&p_last) > 1.8 * mean(&p_first));

        // Two isolated large P pictures in the first half: find P-slot
        // outliers > 1.7x their neighbors' median.
        let spikes: Vec<usize> = (0..150)
            .filter(|&i| t.type_of(i) == PictureType::P)
            .filter(|&i| {
                let neighborhood: Vec<u64> = (i.saturating_sub(18)..(i + 18).min(150))
                    .filter(|&j| t.type_of(j) == PictureType::P && j != i)
                    .map(|j| t.sizes[j])
                    .collect();
                t.sizes[i] as f64 > 1.7 * mean(&neighborhood)
            })
            .collect();
        assert_eq!(
            spikes.len(),
            2,
            "expected exactly 2 isolated large Ps, got {spikes:?}"
        );
    }

    #[test]
    fn backyard_matches_paper_description() {
        let t = backyard();
        assert_eq!(t.pattern.to_string(), "IBBPBBPBBPBB");
        assert_eq!(t.resolution, Resolution::CIF);
        assert_eq!(t.len(), 360);

        // Maximum smoothed rate about 1.5 Mbps (§5.2), i.e. roughly half
        // of the VGA sequences' ~3 Mbps.
        let rates = t.pattern_rates_bps();
        let max = rates.iter().cloned().fold(0.0, f64::max);
        assert!(
            (1.0e6..1.8e6).contains(&max),
            "Backyard max smoothed rate {max}"
        );
        let vga_max = driving1()
            .pattern_rates_bps()
            .iter()
            .cloned()
            .fold(0.0, f64::max);
        let ratio = vga_max / max;
        assert!(
            (1.4..2.8).contains(&ratio),
            "VGA/CIF max rate ratio {ratio}"
        );
    }

    #[test]
    fn backyard_is_easiest_to_smooth() {
        // §5.2: "The Backyard sequence appears to be the easiest to
        // smooth." Proxy: lowest coefficient of variation of pattern
        // rates among the four sequences.
        let cv = |t: &VideoTrace| {
            let r = t.pattern_rates_bps();
            let m = r.iter().sum::<f64>() / r.len() as f64;
            let var = r.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / r.len() as f64;
            var.sqrt() / m
        };
        let backyard_cv = cv(&backyard());
        for t in [driving1(), driving2(), tennis()] {
            assert!(
                backyard_cv < cv(&t),
                "Backyard CV {backyard_cv} should be below {} ({})",
                cv(&t),
                t.name
            );
        }
    }

    #[test]
    fn custom_lengths() {
        for n in [60, 150, 301] {
            assert_eq!(driving1_with(n).len(), n);
            assert_eq!(driving2_with(n).len(), n);
            assert_eq!(tennis_with(n).len(), n);
            assert_eq!(backyard_with(n).len(), n);
        }
    }

    #[test]
    fn tennis_events_land_on_p_slots() {
        for n in [120, 300, 600] {
            let t = tennis_with(n);
            // Recompute the snapped event indices the builder used.
            let snap = |i: usize| (i..i + 9).find(|j| j % 9 == 3 || j % 9 == 6).unwrap();
            for idx in [snap(n / 5), snap(n * 7 / 20)] {
                assert_eq!(
                    t.type_of(idx),
                    PictureType::P,
                    "event at {idx} not a P (n={n})"
                );
            }
        }
    }

    #[test]
    fn split_is_exact() {
        assert_eq!(split(300, &[0.35, 0.30, 0.35]), vec![105, 90, 105]);
        let parts = split(301, &[0.35, 0.30, 0.35]);
        assert_eq!(parts.iter().sum::<usize>(), 301);
        let parts = split(7, &[0.5, 0.5]);
        assert_eq!(parts.iter().sum::<usize>(), 7);
    }

    #[test]
    fn unsmoothed_peak_needs_over_6mbps() {
        // §1: "Transmitting the I picture in 1/30 second over a network
        // would require a transmission capacity of 6 Mbps".
        let t = driving1();
        assert!(
            t.peak_picture_rate_bps() > 6.0e6,
            "{}",
            t.peak_picture_rate_bps()
        );
    }
}

#[cfg(test)]
mod generate_tests {
    use super::*;

    #[test]
    fn generate_matches_canonical_with_canonical_seed() {
        assert_eq!(generate(SequenceId::Driving1, 300, 0xD1), driving1());
        assert_eq!(generate(SequenceId::Driving2, 300, 0xD1), driving2());
        assert_eq!(generate(SequenceId::Tennis, 300, 0x7E), tennis());
        assert_eq!(generate(SequenceId::Backyard, 360, 0xBA), backyard());
    }

    #[test]
    fn seed_variants_share_shape_but_not_noise() {
        let a = generate(SequenceId::Driving1, 300, 1);
        let b = generate(SequenceId::Driving1, 300, 2);
        assert_ne!(a.sizes, b.sizes, "different seeds must differ");
        // Same calibration: mean rates within a few percent.
        let ratio = a.mean_rate_bps() / b.mean_rate_bps();
        assert!((ratio - 1.0).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn all_ids_generate_valid_traces() {
        for id in SequenceId::ALL {
            let t = generate(id, 120, 7);
            t.validate().unwrap();
            assert_eq!(t.len(), 120);
        }
    }
}
