//! Descriptive statistics of a trace, per picture type and overall.
//!
//! This is what the paper's Figure 3 visualizes: the size structure of a
//! sequence. The experiment harness prints these tables for `fig3`.

use crate::trace::VideoTrace;
use serde::{Deserialize, Serialize};
use smooth_mpeg::PictureType;

/// Summary statistics of one set of picture sizes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TypeStats {
    /// Number of pictures.
    pub count: usize,
    /// Smallest size in bits.
    pub min: u64,
    /// Largest size in bits.
    pub max: u64,
    /// Mean size in bits.
    pub mean: f64,
    /// Population standard deviation in bits.
    pub std_dev: f64,
}

impl TypeStats {
    /// Computes stats over `sizes`; all-zero stats for an empty slice.
    pub fn of(sizes: &[u64]) -> TypeStats {
        if sizes.is_empty() {
            return TypeStats {
                count: 0,
                min: 0,
                max: 0,
                mean: 0.0,
                std_dev: 0.0,
            };
        }
        let count = sizes.len();
        let min = *sizes.iter().min().expect("non-empty");
        let max = *sizes.iter().max().expect("non-empty");
        let mean = sizes.iter().sum::<u64>() as f64 / count as f64;
        let var = sizes
            .iter()
            .map(|&s| (s as f64 - mean).powi(2))
            .sum::<f64>()
            / count as f64;
        TypeStats {
            count,
            min,
            max,
            mean,
            std_dev: var.sqrt(),
        }
    }
}

/// Full per-type breakdown of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// I-picture statistics.
    pub i: TypeStats,
    /// P-picture statistics.
    pub p: TypeStats,
    /// B-picture statistics.
    pub b: TypeStats,
    /// All pictures together.
    pub overall: TypeStats,
    /// Long-run mean bit rate (bits/s).
    pub mean_rate_bps: f64,
    /// Peak unsmoothed single-picture rate (bits/s).
    pub peak_rate_bps: f64,
    /// Peak-to-mean rate ratio — the burstiness smoothing removes.
    pub peak_to_mean: f64,
}

/// Autocorrelation of the picture-size sequence at the given lags.
///
/// The canonical characterization of MPEG VBR traffic in the ATM
/// literature (\[11\] and successors): strong periodic peaks at multiples
/// of `N` (the I pictures recur) and of `M` (the references recur), which
/// is exactly the structure the smoothing algorithm's `S_j ≈ S_{j−N}`
/// estimator exploits.
///
/// Returns `(lag, r(lag))` pairs; `r(0) = 1`. Lags at or beyond the trace
/// length are skipped. A zero-variance trace yields `r = 0` at all
/// positive lags.
pub fn autocorrelation(trace: &VideoTrace, lags: &[usize]) -> Vec<(usize, f64)> {
    let xs: Vec<f64> = trace.sizes.iter().map(|&s| s as f64).collect();
    let n = xs.len();
    let mean = xs.iter().sum::<f64>() / n as f64;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
    lags.iter()
        .copied()
        .filter(|&lag| lag < n)
        .map(|lag| {
            if lag == 0 {
                return (0, 1.0);
            }
            if var <= 0.0 {
                return (lag, 0.0);
            }
            let cov = (0..n - lag)
                .map(|i| (xs[i] - mean) * (xs[i + lag] - mean))
                .sum::<f64>()
                / (n - lag) as f64;
            (lag, cov / var)
        })
        .collect()
}

/// Analyzes a trace.
pub fn analyze(trace: &VideoTrace) -> TraceStats {
    let i = TypeStats::of(&trace.sizes_of_type(PictureType::I));
    let p = TypeStats::of(&trace.sizes_of_type(PictureType::P));
    let b = TypeStats::of(&trace.sizes_of_type(PictureType::B));
    let overall = TypeStats::of(&trace.sizes);
    let mean_rate_bps = trace.mean_rate_bps();
    let peak_rate_bps = trace.peak_picture_rate_bps();
    TraceStats {
        i,
        p,
        b,
        overall,
        mean_rate_bps,
        peak_rate_bps,
        peak_to_mean: peak_rate_bps / mean_rate_bps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequences::{driving1, paper_sequences};
    use smooth_mpeg::{GopPattern, Resolution};

    #[test]
    fn type_stats_basics() {
        let s = TypeStats::of(&[10, 20, 30]);
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 10);
        assert_eq!(s.max, 30);
        assert!((s.mean - 20.0).abs() < 1e-12);
        assert!((s.std_dev - (200.0f64 / 3.0).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = TypeStats::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn constant_sizes_have_zero_std() {
        let s = TypeStats::of(&[42; 10]);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.min, s.max);
    }

    #[test]
    fn analyze_counts_sum() {
        for t in paper_sequences() {
            let st = analyze(&t);
            assert_eq!(st.i.count + st.p.count + st.b.count, t.len(), "{}", t.name);
            assert!(st.i.mean > st.p.mean, "{}: I > P", t.name);
            assert!(st.p.mean > st.b.mean, "{}: P > B", t.name);
            assert!(st.peak_to_mean > 2.0, "{}: VBR must be bursty", t.name);
        }
    }

    #[test]
    fn analyze_type_partition_matches_pattern_counts() {
        let t = driving1();
        let st = analyze(&t);
        // 300 pictures at N=9: 34 complete I slots (indices 0,9,...,297).
        assert_eq!(st.i.count, 34);
        assert_eq!(st.p.count, 66);
        assert_eq!(st.b.count, 200);
    }

    #[test]
    fn autocorrelation_peaks_at_pattern_multiples() {
        // The I pictures recur every N: the size sequence correlates far
        // more strongly at lag N than at the off-pattern lag N-1.
        let t = driving1();
        let n = t.pattern.n();
        let acf = autocorrelation(&t, &[0, n - 1, n, 2 * n]);
        let at = |lag: usize| acf.iter().find(|&&(l, _)| l == lag).expect("computed").1;
        assert!((at(0) - 1.0).abs() < 1e-12);
        assert!(
            at(n) > 0.7,
            "lag-N autocorrelation should be strong: {}",
            at(n)
        );
        assert!(
            at(n) > at(n - 1) + 0.3,
            "pattern peak must stand out: {} vs {}",
            at(n),
            at(n - 1)
        );
        assert!(at(2 * n) > 0.6, "periodicity persists at 2N: {}", at(2 * n));
    }

    #[test]
    fn autocorrelation_handles_edge_cases() {
        let t = driving1().truncated(10);
        // Lags beyond the length are skipped.
        let acf = autocorrelation(&t, &[0, 5, 10, 100]);
        assert_eq!(acf.len(), 2);
        // Constant trace: zero variance, r = 0 at positive lags.
        let flat = crate::trace::VideoTrace::new(
            "flat",
            GopPattern::new(1, 1).unwrap(),
            Resolution::SIF,
            30.0,
            vec![5_000; 20],
        )
        .unwrap();
        let acf = autocorrelation(&flat, &[0, 1, 5]);
        assert_eq!(acf, vec![(0, 1.0), (1, 0.0), (5, 0.0)]);
    }

    #[test]
    fn intra_only_trace_has_no_p_or_b() {
        let t = crate::trace::VideoTrace::new(
            "intra",
            GopPattern::new(1, 1).unwrap(),
            Resolution::SIF,
            30.0,
            vec![100_000; 30],
        )
        .unwrap();
        let st = analyze(&t);
        assert_eq!(st.p.count, 0);
        assert_eq!(st.b.count, 0);
        assert_eq!(st.i.count, 30);
        assert!(
            (st.peak_to_mean - 1.0).abs() < 1e-9,
            "constant trace is not bursty"
        );
    }
}
