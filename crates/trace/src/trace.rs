//! The [`VideoTrace`] type: a named sequence of picture sizes.
//!
//! This is the interchange type of the whole workspace: the synthetic
//! encoder produces traces, the smoothing algorithm consumes them, and the
//! experiment harness sweeps over them. A trace is always in **display
//! order** (the order pictures are captured and displayed), matching the
//! paper's system model where picture `i` arrives at the smoothing queue
//! during `((i−1)τ, iτ]`.

use serde::{Deserialize, Serialize};
use smooth_mpeg::{GopPattern, PictureType, Resolution};
use std::fmt;

/// Validation errors for a [`VideoTrace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The trace has no pictures.
    Empty,
    /// A picture has size zero (every coded picture has headers).
    ZeroSize {
        /// Display index of the offending picture.
        index: usize,
    },
    /// The picture rate is not positive and finite.
    BadRate,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Empty => write!(f, "trace contains no pictures"),
            TraceError::ZeroSize { index } => write!(f, "picture {index} has size 0"),
            TraceError::BadRate => write!(f, "picture rate must be positive and finite"),
        }
    }
}

impl std::error::Error for TraceError {}

/// A VBR video trace: per-picture coded sizes plus the metadata the
/// smoothing algorithm needs (pattern, picture rate).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VideoTrace {
    /// Human-readable name ("Driving1", …).
    pub name: String,
    /// The repeating picture-type pattern.
    pub pattern: GopPattern,
    /// Spatial resolution the video was "encoded" at.
    pub resolution: Resolution,
    /// Picture rate in pictures per second (30 for all paper sequences).
    pub fps: f64,
    /// Per-picture coded sizes in bits, display order.
    pub sizes: Vec<u64>,
}

impl VideoTrace {
    /// Creates and validates a trace.
    pub fn new(
        name: impl Into<String>,
        pattern: GopPattern,
        resolution: Resolution,
        fps: f64,
        sizes: Vec<u64>,
    ) -> Result<Self, TraceError> {
        let trace = VideoTrace {
            name: name.into(),
            pattern,
            resolution,
            fps,
            sizes,
        };
        trace.validate()?;
        Ok(trace)
    }

    /// Checks the invariants: non-empty, positive sizes, sane rate.
    pub fn validate(&self) -> Result<(), TraceError> {
        if !(self.fps.is_finite() && self.fps > 0.0) {
            return Err(TraceError::BadRate);
        }
        if self.sizes.is_empty() {
            return Err(TraceError::Empty);
        }
        if let Some(index) = self.sizes.iter().position(|&s| s == 0) {
            return Err(TraceError::ZeroSize { index });
        }
        Ok(())
    }

    /// Number of pictures.
    #[inline]
    pub fn len(&self) -> usize {
        self.sizes.len()
    }

    /// `true` if the trace has no pictures.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.sizes.is_empty()
    }

    /// Picture period τ in seconds.
    #[inline]
    pub fn tau(&self) -> f64 {
        1.0 / self.fps
    }

    /// Duration of the video in seconds.
    pub fn duration(&self) -> f64 {
        self.len() as f64 * self.tau()
    }

    /// Total coded bits.
    pub fn total_bits(&self) -> u64 {
        self.sizes.iter().sum()
    }

    /// Long-run average bit rate in bits/second.
    pub fn mean_rate_bps(&self) -> f64 {
        self.total_bits() as f64 / self.duration()
    }

    /// Peak *unsmoothed* rate: the rate needed to send the largest picture
    /// within one picture period (the paper's §1 example: a 200,000-bit I
    /// picture at 30 pictures/s needs over 6 Mbps unsmoothed).
    pub fn peak_picture_rate_bps(&self) -> f64 {
        self.sizes.iter().copied().max().unwrap_or(0) as f64 * self.fps
    }

    /// Picture type at display index `i`.
    #[inline]
    pub fn type_of(&self, i: usize) -> PictureType {
        self.pattern.type_at(i)
    }

    /// Sizes of all pictures of type `t`, in display order.
    pub fn sizes_of_type(&self, t: PictureType) -> Vec<u64> {
        self.sizes
            .iter()
            .enumerate()
            .filter(|&(i, _)| self.type_of(i) == t)
            .map(|(_, &s)| s)
            .collect()
    }

    /// Sum of picture sizes for each complete pattern (GOP), in order.
    /// A trailing partial pattern is ignored.
    pub fn pattern_sums(&self) -> Vec<u64> {
        let n = self.pattern.n();
        self.sizes.chunks_exact(n).map(|c| c.iter().sum()).collect()
    }

    /// Ideal smoothed rate of each complete pattern:
    /// `(S_i + … + S_{i+N−1}) / (N·τ)` (paper §3.2).
    pub fn pattern_rates_bps(&self) -> Vec<f64> {
        let n_tau = self.pattern.n() as f64 * self.tau();
        self.pattern_sums()
            .iter()
            .map(|&s| s as f64 / n_tau)
            .collect()
    }

    /// Writes this trace as a structurally real MPEG-1 bit stream
    /// (sequence/GOP/picture/slice headers with the macroblock layer as
    /// sized opaque payload; see `smooth_mpeg::bitstream`).
    ///
    /// The `seed` drives the payload filler only — structure and sizes
    /// are fully determined by the trace.
    pub fn to_bitstream(&self, seed: u64) -> smooth_mpeg::bitstream::WrittenStream {
        let spec = smooth_mpeg::bitstream::StreamSpec::new(
            smooth_mpeg::bitstream::SequenceHeader::vbr(self.resolution),
            self.pattern,
        );
        smooth_mpeg::bitstream::write_stream(&spec, &self.sizes, seed)
    }

    /// A new trace containing only the first `n` pictures.
    pub fn truncated(&self, n: usize) -> VideoTrace {
        VideoTrace {
            name: self.name.clone(),
            pattern: self.pattern,
            resolution: self.resolution,
            fps: self.fps,
            sizes: self.sizes[..n.min(self.sizes.len())].to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> VideoTrace {
        let pattern = GopPattern::new(3, 9).unwrap();
        let sizes: Vec<u64> = (0..18)
            .map(|i| match pattern.type_at(i) {
                PictureType::I => 180_000,
                PictureType::P => 90_000,
                PictureType::B => 18_000,
            })
            .collect();
        VideoTrace::new("toy", pattern, Resolution::VGA, 30.0, sizes).unwrap()
    }

    #[test]
    fn validation_catches_bad_traces() {
        let pattern = GopPattern::new(3, 9).unwrap();
        assert_eq!(
            VideoTrace::new("x", pattern, Resolution::VGA, 30.0, vec![]).unwrap_err(),
            TraceError::Empty
        );
        assert_eq!(
            VideoTrace::new("x", pattern, Resolution::VGA, 30.0, vec![100, 0, 100]).unwrap_err(),
            TraceError::ZeroSize { index: 1 }
        );
        assert_eq!(
            VideoTrace::new("x", pattern, Resolution::VGA, 0.0, vec![100]).unwrap_err(),
            TraceError::BadRate
        );
        assert_eq!(
            VideoTrace::new("x", pattern, Resolution::VGA, f64::NAN, vec![100]).unwrap_err(),
            TraceError::BadRate
        );
    }

    #[test]
    fn basic_accessors() {
        let t = toy();
        assert_eq!(t.len(), 18);
        assert!(!t.is_empty());
        assert!((t.tau() - 1.0 / 30.0).abs() < 1e-12);
        assert!((t.duration() - 0.6).abs() < 1e-12);
        let per_gop = 180_000 + 2 * 90_000 + 6 * 18_000;
        assert_eq!(t.total_bits(), 2 * per_gop);
        assert!((t.mean_rate_bps() - (2 * per_gop) as f64 / 0.6).abs() < 1e-6);
    }

    #[test]
    fn peak_rate_is_i_picture_rate() {
        let t = toy();
        assert!((t.peak_picture_rate_bps() - 180_000.0 * 30.0).abs() < 1e-9);
        // Matches the §1 motivation: far above the mean rate.
        assert!(t.peak_picture_rate_bps() > 3.0 * t.mean_rate_bps());
    }

    #[test]
    fn sizes_by_type() {
        let t = toy();
        assert_eq!(t.sizes_of_type(PictureType::I), vec![180_000; 2]);
        assert_eq!(t.sizes_of_type(PictureType::P), vec![90_000; 4]);
        assert_eq!(t.sizes_of_type(PictureType::B), vec![18_000; 12]);
    }

    #[test]
    fn pattern_sums_and_rates() {
        let t = toy();
        let per_gop = 180_000u64 + 2 * 90_000 + 6 * 18_000;
        assert_eq!(t.pattern_sums(), vec![per_gop; 2]);
        let rate = per_gop as f64 / (9.0 / 30.0);
        for r in t.pattern_rates_bps() {
            assert!((r - rate).abs() < 1e-9);
        }
    }

    #[test]
    fn partial_trailing_pattern_ignored() {
        let mut t = toy();
        t.sizes.extend_from_slice(&[50_000; 4]); // 4 extra pictures
        assert_eq!(t.pattern_sums().len(), 2);
    }

    #[test]
    fn truncated_trace() {
        let t = toy();
        let t2 = t.truncated(9);
        assert_eq!(t2.len(), 9);
        assert_eq!(&t2.sizes[..], &t.sizes[..9]);
        // Truncating beyond the end is a no-op clone.
        assert_eq!(t.truncated(100).len(), 18);
    }

    #[test]
    fn to_bitstream_roundtrips_through_the_parser() {
        let t = toy();
        let written = t.to_bitstream(3);
        let parsed = smooth_mpeg::bitstream::parse_strict(&written.bytes).unwrap();
        assert_eq!(parsed.pictures.len(), t.len());
        for (have, want) in parsed.display_order_sizes().iter().zip(&t.sizes) {
            assert_eq!(*have, (want / 8) * 8);
        }
    }

    #[test]
    fn serde_json_roundtrip() {
        let t = toy();
        let json = serde_json::to_string(&t).unwrap();
        let back: VideoTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}
