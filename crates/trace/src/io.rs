//! Trace persistence: JSON (full fidelity) and CSV (interchange with
//! plotting tools and the original trace-file tradition of the VBR video
//! literature).
//!
//! CSV format, one row per picture in display order:
//!
//! ```csv
//! index,type,bits
//! 0,I,198000
//! 1,B,21000
//! ```
//!
//! CSV carries the pattern implicitly (via the `type` column, which is
//! validated against the declared pattern on load) and the remaining
//! metadata in `# key=value` comment lines.

use crate::trace::{TraceError, VideoTrace};
use smooth_mpeg::{GopPattern, Resolution};
use std::fmt;
use std::path::Path;

/// Errors loading or saving traces.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// JSON (de)serialization error.
    Json(serde_json::Error),
    /// CSV syntax or semantic error.
    Csv {
        /// 1-based line number.
        line: usize,
        /// Explanation.
        message: String,
    },
    /// The decoded trace failed validation.
    Invalid(TraceError),
}

impl fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "I/O error: {e}"),
            TraceIoError::Json(e) => write!(f, "JSON error: {e}"),
            TraceIoError::Csv { line, message } => write!(f, "CSV error at line {line}: {message}"),
            TraceIoError::Invalid(e) => write!(f, "invalid trace: {e}"),
        }
    }
}

impl std::error::Error for TraceIoError {}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

impl From<serde_json::Error> for TraceIoError {
    fn from(e: serde_json::Error) -> Self {
        TraceIoError::Json(e)
    }
}

impl From<TraceError> for TraceIoError {
    fn from(e: TraceError) -> Self {
        TraceIoError::Invalid(e)
    }
}

/// Saves a trace as pretty-printed JSON.
pub fn save_json(trace: &VideoTrace, path: impl AsRef<Path>) -> Result<(), TraceIoError> {
    let json = serde_json::to_string_pretty(trace)?;
    std::fs::write(path, json)?;
    Ok(())
}

/// Loads and validates a JSON trace.
pub fn load_json(path: impl AsRef<Path>) -> Result<VideoTrace, TraceIoError> {
    let text = std::fs::read_to_string(path)?;
    let trace: VideoTrace = serde_json::from_str(&text)?;
    trace.validate()?;
    Ok(trace)
}

/// Renders a trace to CSV (see module docs for the format).
pub fn to_csv(trace: &VideoTrace) -> String {
    let mut out = String::new();
    out.push_str(&format!("# name={}\n", trace.name));
    out.push_str(&format!("# pattern={}\n", trace.pattern));
    out.push_str(&format!(
        "# resolution={}x{}\n",
        trace.resolution.width, trace.resolution.height
    ));
    out.push_str(&format!("# fps={}\n", trace.fps));
    out.push_str("index,type,bits\n");
    for (i, &bits) in trace.sizes.iter().enumerate() {
        out.push_str(&format!("{},{},{}\n", i, trace.type_of(i), bits));
    }
    out
}

/// Parses a CSV trace produced by [`to_csv`].
pub fn from_csv(text: &str) -> Result<VideoTrace, TraceIoError> {
    let mut name = String::from("unnamed");
    let mut pattern: Option<GopPattern> = None;
    let mut resolution = Resolution::SIF;
    let mut fps = 30.0f64;
    let mut sizes: Vec<u64> = Vec::new();
    let mut header_seen = false;

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim();
            if let Some((key, value)) = comment.split_once('=') {
                match key.trim() {
                    "name" => name = value.trim().to_string(),
                    "pattern" => {
                        pattern = Some(GopPattern::parse(value.trim()).map_err(|e| {
                            TraceIoError::Csv {
                                line: line_no,
                                message: format!("bad pattern: {e}"),
                            }
                        })?)
                    }
                    "resolution" => {
                        let (w, h) = value.trim().split_once('x').ok_or(TraceIoError::Csv {
                            line: line_no,
                            message: "resolution must be WxH".into(),
                        })?;
                        let width: u16 = w.parse().map_err(|_| TraceIoError::Csv {
                            line: line_no,
                            message: format!("bad width {w:?}"),
                        })?;
                        let height: u16 = h.parse().map_err(|_| TraceIoError::Csv {
                            line: line_no,
                            message: format!("bad height {h:?}"),
                        })?;
                        resolution = Resolution::new(width, height);
                    }
                    "fps" => {
                        fps = value.trim().parse().map_err(|_| TraceIoError::Csv {
                            line: line_no,
                            message: format!("bad fps {value:?}"),
                        })?
                    }
                    _ => {} // unknown metadata: ignore, forward compatible
                }
            }
            continue;
        }
        if !header_seen {
            if line != "index,type,bits" {
                return Err(TraceIoError::Csv {
                    line: line_no,
                    message: format!("expected header 'index,type,bits', found {line:?}"),
                });
            }
            header_seen = true;
            continue;
        }
        let mut fields = line.split(',');
        let (Some(index_s), Some(type_s), Some(bits_s), None) =
            (fields.next(), fields.next(), fields.next(), fields.next())
        else {
            return Err(TraceIoError::Csv {
                line: line_no,
                message: "expected 3 fields".into(),
            });
        };
        let index: usize = index_s.trim().parse().map_err(|_| TraceIoError::Csv {
            line: line_no,
            message: format!("bad index {index_s:?}"),
        })?;
        if index != sizes.len() {
            return Err(TraceIoError::Csv {
                line: line_no,
                message: format!("index {index} out of order (expected {})", sizes.len()),
            });
        }
        let bits: u64 = bits_s.trim().parse().map_err(|_| TraceIoError::Csv {
            line: line_no,
            message: format!("bad bits {bits_s:?}"),
        })?;
        if let Some(pat) = &pattern {
            let declared = type_s.trim();
            let expected = pat.type_at(index).to_string();
            if declared != expected {
                return Err(TraceIoError::Csv {
                    line: line_no,
                    message: format!(
                        "picture {index} declared type {declared} but pattern {pat} implies {expected}"
                    ),
                });
            }
        }
        sizes.push(bits);
    }

    let pattern = pattern.ok_or(TraceIoError::Csv {
        line: 0,
        message: "missing '# pattern=' metadata line".into(),
    })?;
    Ok(VideoTrace::new(name, pattern, resolution, fps, sizes)?)
}

/// Saves a trace as CSV.
pub fn save_csv(trace: &VideoTrace, path: impl AsRef<Path>) -> Result<(), TraceIoError> {
    std::fs::write(path, to_csv(trace))?;
    Ok(())
}

/// Loads and validates a CSV trace.
pub fn load_csv(path: impl AsRef<Path>) -> Result<VideoTrace, TraceIoError> {
    from_csv(&std::fs::read_to_string(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequences::{backyard, driving1};

    #[test]
    fn csv_roundtrip() {
        for t in [driving1(), backyard()] {
            let csv = to_csv(&t);
            let back = from_csv(&csv).unwrap();
            assert_eq!(back, t);
        }
    }

    #[test]
    fn json_file_roundtrip() {
        let dir = std::env::temp_dir().join("smooth_trace_test_json");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("driving1.json");
        let t = driving1();
        save_json(&t, &path).unwrap();
        let back = load_json(&path).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn csv_file_roundtrip() {
        let dir = std::env::temp_dir().join("smooth_trace_test_csv");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("backyard.csv");
        let t = backyard();
        save_csv(&t, &path).unwrap();
        let back = load_csv(&path).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn csv_rejects_type_mismatch() {
        let csv = "# pattern=IBBPBBPBB\nindex,type,bits\n0,B,1000\n";
        let err = from_csv(csv).unwrap_err();
        assert!(matches!(err, TraceIoError::Csv { line: 3, .. }), "{err}");
    }

    #[test]
    fn csv_rejects_out_of_order_index() {
        let csv = "# pattern=IBBPBBPBB\nindex,type,bits\n1,B,1000\n";
        assert!(matches!(
            from_csv(csv),
            Err(TraceIoError::Csv { line: 3, .. })
        ));
    }

    #[test]
    fn csv_requires_pattern() {
        let csv = "index,type,bits\n0,I,1000\n";
        let err = from_csv(csv).unwrap_err();
        assert!(matches!(err, TraceIoError::Csv { line: 0, .. }));
    }

    #[test]
    fn csv_rejects_bad_header() {
        let csv = "# pattern=IBBPBBPBB\npicture,kind,size\n";
        assert!(matches!(
            from_csv(csv),
            Err(TraceIoError::Csv { line: 2, .. })
        ));
    }

    #[test]
    fn csv_rejects_zero_size_via_validation() {
        let csv = "# pattern=I\nindex,type,bits\n0,I,0\n";
        assert!(matches!(
            from_csv(csv),
            Err(TraceIoError::Invalid(TraceError::ZeroSize { index: 0 }))
        ));
    }

    #[test]
    fn csv_ignores_unknown_metadata_and_blank_lines() {
        let csv = "# pattern=I\n# curator=someone\n\nindex,type,bits\n0,I,800\n\n";
        let t = from_csv(csv).unwrap();
        assert_eq!(t.sizes, vec![800]);
    }

    #[test]
    fn load_json_missing_file_errors() {
        assert!(matches!(
            load_json("/nonexistent/x.json"),
            Err(TraceIoError::Io(_))
        ));
    }
}
