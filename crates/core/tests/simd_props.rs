//! Properties pinning every SIMD dispatch path to the scalar fallback.
//!
//! The `std::arch` kernels of `smooth_core::simd` must be **bit
//! identical** to the portable scalar kernel (which the
//! `incremental_props` suite in turn pins to the frozen naive
//! reference). These tests force each available dispatch level on the
//! same inputs and byte-compare the full schedules, exercise the cold
//! crossing path, and check that `BlockLanes` reuse across pictures
//! cannot leak lane state.
//!
//! The dispatch level is process-global, so every test that forces it
//! holds [`LEVEL_LOCK`] — the harness runs `#[test]` functions on
//! worker threads in one process.

use std::sync::Mutex;

use proptest::prelude::*;
use smooth_core::simd::{
    available_levels, bound_blocks8_at_level, reset_active_level, set_active_level, SimdLevel,
};
use smooth_core::{
    smooth_with, BlockLanes, PatternEstimator, RateSelection, SmootherParams, SmoothingResult,
    TypeDefaultEstimator,
};
use smooth_mpeg::{GopPattern, Resolution};
use smooth_trace::VideoTrace;

/// Serializes every test that flips the process-global dispatch level.
static LEVEL_LOCK: Mutex<()> = Mutex::new(());

const TAU: f64 = 1.0 / 30.0;

/// Strategy: a random regular GOP pattern.
fn arb_pattern() -> impl Strategy<Value = GopPattern> {
    prop_oneof![
        Just((3usize, 9usize)),
        Just((2, 6)),
        Just((3, 12)),
        Just((1, 5)),
        Just((1, 1)),
        Just((4, 12)),
    ]
    .prop_map(|(m, n)| GopPattern::new(m, n).expect("regular pattern"))
}

/// Strategy: a random trace over a random pattern. Sizes span three
/// orders of magnitude so the bound-crossing early exit fires often.
fn arb_trace() -> impl Strategy<Value = VideoTrace> {
    (arb_pattern(), 1usize..150)
        .prop_flat_map(|(pattern, len)| {
            (
                Just(pattern),
                proptest::collection::vec(1_000u64..1_000_000, len),
            )
        })
        .prop_map(|(pattern, sizes)| {
            VideoTrace::new("prop", pattern, Resolution::VGA, 30.0, sizes).expect("positive sizes")
        })
}

/// Strategy: feasible parameters with `H` well past one block so the
/// kernels run multi-block (`H = 8..40`), plus sub-block tails.
fn arb_params() -> impl Strategy<Value = SmootherParams> {
    (1usize..=5, 1usize..=40, 0.0f64..0.4).prop_map(|(k, h, extra_slack)| {
        let d = (k as f64 + 1.0) * TAU + extra_slack;
        SmootherParams::new(d, k, h, TAU).expect("feasible by construction")
    })
}

/// The schedule as raw bytes: every `f64` as its IEEE bit pattern, so
/// `-0.0 != +0.0` and comparisons are exact.
#[allow(clippy::type_complexity)]
fn schedule_bits(result: &SmoothingResult) -> Vec<(usize, u64, u64, u64, u64, u64, u64, usize)> {
    result
        .schedule
        .iter()
        .map(|p| {
            (
                p.index,
                p.start.to_bits(),
                p.rate.to_bits(),
                p.depart.to_bits(),
                p.delay.to_bits(),
                p.lower0.to_bits(),
                p.upper0.to_bits(),
                p.lookahead_used,
            )
        })
        .collect()
}

/// Restores auto-detection even if a test panics mid-override.
struct LevelGuard;
impl Drop for LevelGuard {
    fn drop(&mut self) {
        reset_active_level();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Forcing each available dispatch level on the same trace and
    /// parameters produces byte-identical schedules, for both
    /// estimators and both rate selections.
    #[test]
    fn all_dispatch_paths_produce_identical_schedules(
        trace in arb_trace(),
        params in arb_params(),
    ) {
        let _lock = LEVEL_LOCK.lock().unwrap();
        let _restore = LevelGuard;
        for selection in [RateSelection::Basic, RateSelection::MovingAverage] {
            let mut want_pat = None;
            let mut want_typed = None;
            for level in available_levels() {
                prop_assert!(set_active_level(level), "level {level:?} refused");
                let pat = schedule_bits(&smooth_with(
                    &trace, params, &PatternEstimator::default(), selection,
                ));
                let typed = schedule_bits(&smooth_with(
                    &trace, params, &TypeDefaultEstimator::default(), selection,
                ));
                match &want_pat {
                    None => want_pat = Some(pat),
                    Some(w) => prop_assert_eq!(
                        w, &pat, "pattern estimator diverged at {:?}", level
                    ),
                }
                match &want_typed {
                    None => want_typed = Some(typed),
                    Some(w) => prop_assert_eq!(
                        w, &typed, "type-default estimator diverged at {:?}", level
                    ),
                }
            }
        }
    }

    /// Kernel-level pinning on raw windows: every level returns the same
    /// `(h, crossed, exit-state)` bits for the same window, in both
    /// prefix-sum modes and across start-up transients (`time` large
    /// enough that denominators start nonpositive, exercising the
    /// branchless +∞ select and the crossing locator).
    #[test]
    fn kernels_agree_on_raw_windows(
        sizes in proptest::collection::vec(0u64..2_000_000, 8..64),
        i in 0usize..400,
        k in 0usize..4,
        d_centi in 1u32..60,
        time_centi in 0u32..2_000,
    ) {
        let _lock = LEVEL_LOCK.lock().unwrap();
        let sizes: Vec<f64> = sizes.into_iter().map(|s| s as f64).collect();
        let d_bound = d_centi as f64 * 0.01;
        let time = time_centi as f64 * 0.01;
        for exact in [false, true] {
            let mut want = None;
            for level in available_levels() {
                let mut lanes = BlockLanes::default();
                let got = bound_blocks8_at_level(
                    level, &sizes, i, k, TAU, d_bound, time, exact, &mut lanes,
                ).expect("available level");
                let key = (
                    got.0,
                    got.1,
                    got.2.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                );
                match &want {
                    None => want = Some(key),
                    Some(w) => prop_assert_eq!(
                        w, &key, "kernel {:?} diverged (exact={})", level, exact
                    ),
                }
            }
        }
    }

    /// `BlockLanes` reuse across calls cannot leak state: running an
    /// arbitrary dirtying window first (crossing blocks included — they
    /// write every lane array) must leave a second call's result
    /// byte-identical to one made with a fresh buffer.
    #[test]
    fn lanes_reuse_across_pictures_cannot_leak(
        dirty_sizes in proptest::collection::vec(0u64..2_000_000, 8..64),
        probe_sizes in proptest::collection::vec(0u64..2_000_000, 8..64),
        dirty_time_centi in 0u32..2_000,
        i in 0usize..400,
        k in 0usize..4,
        exact in prop_oneof![Just(false), Just(true)],
    ) {
        let _lock = LEVEL_LOCK.lock().unwrap();
        let dirty: Vec<f64> = dirty_sizes.into_iter().map(|s| s as f64).collect();
        let probe: Vec<f64> = probe_sizes.into_iter().map(|s| s as f64).collect();
        for level in available_levels() {
            let mut reused = BlockLanes::default();
            // Dirty the buffer with an unrelated window (a large `time`
            // biases toward nonpositive denominators and crossings).
            let _ = bound_blocks8_at_level(
                level, &dirty, 0, 1, TAU, 0.05,
                dirty_time_centi as f64 * 0.01, !exact, &mut reused,
            );
            let with_reused = bound_blocks8_at_level(
                level, &probe, i, k, TAU, 0.2, 0.1, exact, &mut reused,
            ).expect("available level");
            let mut fresh = BlockLanes::default();
            let with_fresh = bound_blocks8_at_level(
                level, &probe, i, k, TAU, 0.2, 0.1, exact, &mut fresh,
            ).expect("available level");
            prop_assert_eq!(with_reused.0, with_fresh.0, "h diverged at {:?}", level);
            prop_assert_eq!(with_reused.1, with_fresh.1, "crossed diverged at {:?}", level);
            let reused_bits: Vec<u64> = with_reused.2.iter().map(|v| v.to_bits()).collect();
            let fresh_bits: Vec<u64> = with_fresh.2.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(reused_bits, fresh_bits, "exit state diverged at {:?}", level);
        }
    }
}

/// On x86-64 the ladder must contain the explicit SSE2 kernel (it is
/// baseline), and forcing a level the CPU lacks must be refused.
#[test]
fn dispatch_ladder_is_sane() {
    let _lock = LEVEL_LOCK.lock().unwrap();
    let _restore = LevelGuard;
    let levels = available_levels();
    assert_eq!(levels[0], SimdLevel::Scalar);
    #[cfg(target_arch = "x86_64")]
    assert!(levels.contains(&SimdLevel::Sse2));
    for level in [SimdLevel::Scalar, SimdLevel::Sse2, SimdLevel::Avx2] {
        assert_eq!(set_active_level(level), levels.contains(&level));
    }
}
